file(REMOVE_RECURSE
  "CMakeFiles/playground.dir/playground.cpp.o"
  "CMakeFiles/playground.dir/playground.cpp.o.d"
  "playground"
  "playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
