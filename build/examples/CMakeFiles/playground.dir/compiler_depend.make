# Empty compiler generated dependencies file for playground.
# This may be replaced when dependencies are built.
