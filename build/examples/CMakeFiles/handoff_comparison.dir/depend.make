# Empty dependencies file for handoff_comparison.
# This may be replaced when dependencies are built.
