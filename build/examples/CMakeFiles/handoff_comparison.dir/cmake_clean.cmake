file(REMOVE_RECURSE
  "CMakeFiles/handoff_comparison.dir/handoff_comparison.cpp.o"
  "CMakeFiles/handoff_comparison.dir/handoff_comparison.cpp.o.d"
  "handoff_comparison"
  "handoff_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handoff_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
