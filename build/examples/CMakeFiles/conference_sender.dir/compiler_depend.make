# Empty compiler generated dependencies file for conference_sender.
# This may be replaced when dependencies are built.
