file(REMOVE_RECURSE
  "CMakeFiles/conference_sender.dir/conference_sender.cpp.o"
  "CMakeFiles/conference_sender.dir/conference_sender.cpp.o.d"
  "conference_sender"
  "conference_sender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_sender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
