# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_handoff_comparison "/root/repo/build/examples/handoff_comparison")
set_tests_properties(example_handoff_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campus_fleet "/root/repo/build/examples/campus_fleet" "1")
set_tests_properties(example_campus_fleet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conference_sender "/root/repo/build/examples/conference_sender")
set_tests_properties(example_conference_sender PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_playground "/root/repo/build/examples/playground" "--horizon" "120")
set_tests_properties(example_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
