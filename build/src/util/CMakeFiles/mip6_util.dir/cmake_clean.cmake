file(REMOVE_RECURSE
  "CMakeFiles/mip6_util.dir/buffer.cpp.o"
  "CMakeFiles/mip6_util.dir/buffer.cpp.o.d"
  "CMakeFiles/mip6_util.dir/checksum.cpp.o"
  "CMakeFiles/mip6_util.dir/checksum.cpp.o.d"
  "CMakeFiles/mip6_util.dir/strings.cpp.o"
  "CMakeFiles/mip6_util.dir/strings.cpp.o.d"
  "libmip6_util.a"
  "libmip6_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
