# Empty dependencies file for mip6_util.
# This may be replaced when dependencies are built.
