file(REMOVE_RECURSE
  "libmip6_util.a"
)
