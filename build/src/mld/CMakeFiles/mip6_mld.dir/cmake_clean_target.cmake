file(REMOVE_RECURSE
  "libmip6_mld.a"
)
