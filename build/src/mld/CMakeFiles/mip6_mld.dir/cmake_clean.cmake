file(REMOVE_RECURSE
  "CMakeFiles/mip6_mld.dir/host.cpp.o"
  "CMakeFiles/mip6_mld.dir/host.cpp.o.d"
  "CMakeFiles/mip6_mld.dir/messages.cpp.o"
  "CMakeFiles/mip6_mld.dir/messages.cpp.o.d"
  "CMakeFiles/mip6_mld.dir/router.cpp.o"
  "CMakeFiles/mip6_mld.dir/router.cpp.o.d"
  "libmip6_mld.a"
  "libmip6_mld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_mld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
