# Empty compiler generated dependencies file for mip6_mld.
# This may be replaced when dependencies are built.
