# CMake generated Testfile for 
# Source directory: /root/repo/src/mld
# Build directory: /root/repo/build/src/mld
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
