file(REMOVE_RECURSE
  "CMakeFiles/mip6_pimdm.dir/messages.cpp.o"
  "CMakeFiles/mip6_pimdm.dir/messages.cpp.o.d"
  "CMakeFiles/mip6_pimdm.dir/router.cpp.o"
  "CMakeFiles/mip6_pimdm.dir/router.cpp.o.d"
  "libmip6_pimdm.a"
  "libmip6_pimdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_pimdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
