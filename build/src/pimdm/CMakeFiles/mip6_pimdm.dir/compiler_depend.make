# Empty compiler generated dependencies file for mip6_pimdm.
# This may be replaced when dependencies are built.
