file(REMOVE_RECURSE
  "libmip6_pimdm.a"
)
