file(REMOVE_RECURSE
  "libmip6_mipv6.a"
)
