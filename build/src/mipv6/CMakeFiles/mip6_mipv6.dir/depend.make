# Empty dependencies file for mip6_mipv6.
# This may be replaced when dependencies are built.
