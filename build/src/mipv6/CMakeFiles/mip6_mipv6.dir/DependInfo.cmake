
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mipv6/binding_cache.cpp" "src/mipv6/CMakeFiles/mip6_mipv6.dir/binding_cache.cpp.o" "gcc" "src/mipv6/CMakeFiles/mip6_mipv6.dir/binding_cache.cpp.o.d"
  "/root/repo/src/mipv6/ha_redundancy.cpp" "src/mipv6/CMakeFiles/mip6_mipv6.dir/ha_redundancy.cpp.o" "gcc" "src/mipv6/CMakeFiles/mip6_mipv6.dir/ha_redundancy.cpp.o.d"
  "/root/repo/src/mipv6/home_agent.cpp" "src/mipv6/CMakeFiles/mip6_mipv6.dir/home_agent.cpp.o" "gcc" "src/mipv6/CMakeFiles/mip6_mipv6.dir/home_agent.cpp.o.d"
  "/root/repo/src/mipv6/messages.cpp" "src/mipv6/CMakeFiles/mip6_mipv6.dir/messages.cpp.o" "gcc" "src/mipv6/CMakeFiles/mip6_mipv6.dir/messages.cpp.o.d"
  "/root/repo/src/mipv6/mobile_node.cpp" "src/mipv6/CMakeFiles/mip6_mipv6.dir/mobile_node.cpp.o" "gcc" "src/mipv6/CMakeFiles/mip6_mipv6.dir/mobile_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipv6/CMakeFiles/mip6_ipv6.dir/DependInfo.cmake"
  "/root/repo/build/src/mld/CMakeFiles/mip6_mld.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mip6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mip6_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mip6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mip6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
