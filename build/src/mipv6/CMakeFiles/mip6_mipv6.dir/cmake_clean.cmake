file(REMOVE_RECURSE
  "CMakeFiles/mip6_mipv6.dir/binding_cache.cpp.o"
  "CMakeFiles/mip6_mipv6.dir/binding_cache.cpp.o.d"
  "CMakeFiles/mip6_mipv6.dir/ha_redundancy.cpp.o"
  "CMakeFiles/mip6_mipv6.dir/ha_redundancy.cpp.o.d"
  "CMakeFiles/mip6_mipv6.dir/home_agent.cpp.o"
  "CMakeFiles/mip6_mipv6.dir/home_agent.cpp.o.d"
  "CMakeFiles/mip6_mipv6.dir/messages.cpp.o"
  "CMakeFiles/mip6_mipv6.dir/messages.cpp.o.d"
  "CMakeFiles/mip6_mipv6.dir/mobile_node.cpp.o"
  "CMakeFiles/mip6_mipv6.dir/mobile_node.cpp.o.d"
  "libmip6_mipv6.a"
  "libmip6_mipv6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_mipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
