file(REMOVE_RECURSE
  "libmip6_core.a"
)
