file(REMOVE_RECURSE
  "CMakeFiles/mip6_core.dir/describe.cpp.o"
  "CMakeFiles/mip6_core.dir/describe.cpp.o.d"
  "CMakeFiles/mip6_core.dir/figure1.cpp.o"
  "CMakeFiles/mip6_core.dir/figure1.cpp.o.d"
  "CMakeFiles/mip6_core.dir/metrics.cpp.o"
  "CMakeFiles/mip6_core.dir/metrics.cpp.o.d"
  "CMakeFiles/mip6_core.dir/mobile_service.cpp.o"
  "CMakeFiles/mip6_core.dir/mobile_service.cpp.o.d"
  "CMakeFiles/mip6_core.dir/mobility.cpp.o"
  "CMakeFiles/mip6_core.dir/mobility.cpp.o.d"
  "CMakeFiles/mip6_core.dir/random_topology.cpp.o"
  "CMakeFiles/mip6_core.dir/random_topology.cpp.o.d"
  "CMakeFiles/mip6_core.dir/traffic.cpp.o"
  "CMakeFiles/mip6_core.dir/traffic.cpp.o.d"
  "CMakeFiles/mip6_core.dir/world.cpp.o"
  "CMakeFiles/mip6_core.dir/world.cpp.o.d"
  "libmip6_core.a"
  "libmip6_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
