# Empty compiler generated dependencies file for mip6_core.
# This may be replaced when dependencies are built.
