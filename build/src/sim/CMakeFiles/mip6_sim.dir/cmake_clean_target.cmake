file(REMOVE_RECURSE
  "libmip6_sim.a"
)
