file(REMOVE_RECURSE
  "CMakeFiles/mip6_sim.dir/rng.cpp.o"
  "CMakeFiles/mip6_sim.dir/rng.cpp.o.d"
  "CMakeFiles/mip6_sim.dir/scheduler.cpp.o"
  "CMakeFiles/mip6_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/mip6_sim.dir/time.cpp.o"
  "CMakeFiles/mip6_sim.dir/time.cpp.o.d"
  "CMakeFiles/mip6_sim.dir/timer.cpp.o"
  "CMakeFiles/mip6_sim.dir/timer.cpp.o.d"
  "CMakeFiles/mip6_sim.dir/trace.cpp.o"
  "CMakeFiles/mip6_sim.dir/trace.cpp.o.d"
  "libmip6_sim.a"
  "libmip6_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
