# Empty compiler generated dependencies file for mip6_sim.
# This may be replaced when dependencies are built.
