file(REMOVE_RECURSE
  "libmip6_runner.a"
)
