file(REMOVE_RECURSE
  "CMakeFiles/mip6_runner.dir/parallel.cpp.o"
  "CMakeFiles/mip6_runner.dir/parallel.cpp.o.d"
  "libmip6_runner.a"
  "libmip6_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
