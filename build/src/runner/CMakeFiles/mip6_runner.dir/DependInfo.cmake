
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/parallel.cpp" "src/runner/CMakeFiles/mip6_runner.dir/parallel.cpp.o" "gcc" "src/runner/CMakeFiles/mip6_runner.dir/parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/mip6_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mip6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mip6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
