# Empty dependencies file for mip6_runner.
# This may be replaced when dependencies are built.
