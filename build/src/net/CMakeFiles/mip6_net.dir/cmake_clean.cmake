file(REMOVE_RECURSE
  "CMakeFiles/mip6_net.dir/interface.cpp.o"
  "CMakeFiles/mip6_net.dir/interface.cpp.o.d"
  "CMakeFiles/mip6_net.dir/link.cpp.o"
  "CMakeFiles/mip6_net.dir/link.cpp.o.d"
  "CMakeFiles/mip6_net.dir/network.cpp.o"
  "CMakeFiles/mip6_net.dir/network.cpp.o.d"
  "CMakeFiles/mip6_net.dir/node.cpp.o"
  "CMakeFiles/mip6_net.dir/node.cpp.o.d"
  "CMakeFiles/mip6_net.dir/packet.cpp.o"
  "CMakeFiles/mip6_net.dir/packet.cpp.o.d"
  "libmip6_net.a"
  "libmip6_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
