# Empty dependencies file for mip6_net.
# This may be replaced when dependencies are built.
