file(REMOVE_RECURSE
  "libmip6_net.a"
)
