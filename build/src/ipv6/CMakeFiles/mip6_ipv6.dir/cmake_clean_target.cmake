file(REMOVE_RECURSE
  "libmip6_ipv6.a"
)
