# Empty dependencies file for mip6_ipv6.
# This may be replaced when dependencies are built.
