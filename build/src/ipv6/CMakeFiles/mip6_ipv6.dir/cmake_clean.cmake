file(REMOVE_RECURSE
  "CMakeFiles/mip6_ipv6.dir/address.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/address.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/addressing.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/addressing.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/datagram.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/datagram.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/ext_headers.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/ext_headers.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/global_routing.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/global_routing.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/header.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/header.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/icmpv6.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/icmpv6.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/icmpv6_dispatch.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/icmpv6_dispatch.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/ripng.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/ripng.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/routing.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/routing.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/stack.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/stack.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/tunnel.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/tunnel.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/udp.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/udp.cpp.o.d"
  "CMakeFiles/mip6_ipv6.dir/udp_demux.cpp.o"
  "CMakeFiles/mip6_ipv6.dir/udp_demux.cpp.o.d"
  "libmip6_ipv6.a"
  "libmip6_ipv6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_ipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
