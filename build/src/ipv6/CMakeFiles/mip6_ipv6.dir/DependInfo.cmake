
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipv6/address.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/address.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/address.cpp.o.d"
  "/root/repo/src/ipv6/addressing.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/addressing.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/addressing.cpp.o.d"
  "/root/repo/src/ipv6/datagram.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/datagram.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/datagram.cpp.o.d"
  "/root/repo/src/ipv6/ext_headers.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/ext_headers.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/ext_headers.cpp.o.d"
  "/root/repo/src/ipv6/global_routing.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/global_routing.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/global_routing.cpp.o.d"
  "/root/repo/src/ipv6/header.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/header.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/header.cpp.o.d"
  "/root/repo/src/ipv6/icmpv6.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/icmpv6.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/icmpv6.cpp.o.d"
  "/root/repo/src/ipv6/icmpv6_dispatch.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/icmpv6_dispatch.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/icmpv6_dispatch.cpp.o.d"
  "/root/repo/src/ipv6/ripng.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/ripng.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/ripng.cpp.o.d"
  "/root/repo/src/ipv6/routing.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/routing.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/routing.cpp.o.d"
  "/root/repo/src/ipv6/stack.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/stack.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/stack.cpp.o.d"
  "/root/repo/src/ipv6/tunnel.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/tunnel.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/tunnel.cpp.o.d"
  "/root/repo/src/ipv6/udp.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/udp.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/udp.cpp.o.d"
  "/root/repo/src/ipv6/udp_demux.cpp" "src/ipv6/CMakeFiles/mip6_ipv6.dir/udp_demux.cpp.o" "gcc" "src/ipv6/CMakeFiles/mip6_ipv6.dir/udp_demux.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mip6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mip6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mip6_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mip6_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
