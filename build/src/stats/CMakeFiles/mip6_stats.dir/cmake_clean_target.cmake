file(REMOVE_RECURSE
  "libmip6_stats.a"
)
