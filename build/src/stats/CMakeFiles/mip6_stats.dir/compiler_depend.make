# Empty compiler generated dependencies file for mip6_stats.
# This may be replaced when dependencies are built.
