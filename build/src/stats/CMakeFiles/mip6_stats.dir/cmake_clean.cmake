file(REMOVE_RECURSE
  "CMakeFiles/mip6_stats.dir/counters.cpp.o"
  "CMakeFiles/mip6_stats.dir/counters.cpp.o.d"
  "CMakeFiles/mip6_stats.dir/gauge.cpp.o"
  "CMakeFiles/mip6_stats.dir/gauge.cpp.o.d"
  "CMakeFiles/mip6_stats.dir/histogram.cpp.o"
  "CMakeFiles/mip6_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/mip6_stats.dir/summary.cpp.o"
  "CMakeFiles/mip6_stats.dir/summary.cpp.o.d"
  "CMakeFiles/mip6_stats.dir/table.cpp.o"
  "CMakeFiles/mip6_stats.dir/table.cpp.o.d"
  "libmip6_stats.a"
  "libmip6_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip6_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
