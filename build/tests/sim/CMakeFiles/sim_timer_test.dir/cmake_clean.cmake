file(REMOVE_RECURSE
  "CMakeFiles/sim_timer_test.dir/timer_test.cpp.o"
  "CMakeFiles/sim_timer_test.dir/timer_test.cpp.o.d"
  "sim_timer_test"
  "sim_timer_test.pdb"
  "sim_timer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
