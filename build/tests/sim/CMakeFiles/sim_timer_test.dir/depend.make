# Empty dependencies file for sim_timer_test.
# This may be replaced when dependencies are built.
