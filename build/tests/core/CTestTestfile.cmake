# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_traffic_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_world_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_mobility_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_strategy_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_describe_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_mobile_service_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_topology_shapes_test[1]_include.cmake")
