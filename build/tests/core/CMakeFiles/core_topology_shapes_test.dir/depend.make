# Empty dependencies file for core_topology_shapes_test.
# This may be replaced when dependencies are built.
