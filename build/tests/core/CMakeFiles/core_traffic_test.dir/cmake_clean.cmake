file(REMOVE_RECURSE
  "CMakeFiles/core_traffic_test.dir/traffic_test.cpp.o"
  "CMakeFiles/core_traffic_test.dir/traffic_test.cpp.o.d"
  "core_traffic_test"
  "core_traffic_test.pdb"
  "core_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
