file(REMOVE_RECURSE
  "CMakeFiles/core_mobile_service_test.dir/mobile_service_test.cpp.o"
  "CMakeFiles/core_mobile_service_test.dir/mobile_service_test.cpp.o.d"
  "core_mobile_service_test"
  "core_mobile_service_test.pdb"
  "core_mobile_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mobile_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
