# Empty compiler generated dependencies file for core_world_test.
# This may be replaced when dependencies are built.
