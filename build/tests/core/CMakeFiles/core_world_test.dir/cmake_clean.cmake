file(REMOVE_RECURSE
  "CMakeFiles/core_world_test.dir/world_test.cpp.o"
  "CMakeFiles/core_world_test.dir/world_test.cpp.o.d"
  "core_world_test"
  "core_world_test.pdb"
  "core_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
