# CMake generated Testfile for 
# Source directory: /root/repo/tests/mipv6
# Build directory: /root/repo/build/tests/mipv6
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mipv6/mipv6_messages_test[1]_include.cmake")
include("/root/repo/build/tests/mipv6/mipv6_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/mipv6/mipv6_ha_redundancy_test[1]_include.cmake")
