# Empty compiler generated dependencies file for mipv6_messages_test.
# This may be replaced when dependencies are built.
