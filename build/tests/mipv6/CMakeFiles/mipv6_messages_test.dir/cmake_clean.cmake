file(REMOVE_RECURSE
  "CMakeFiles/mipv6_messages_test.dir/messages_test.cpp.o"
  "CMakeFiles/mipv6_messages_test.dir/messages_test.cpp.o.d"
  "mipv6_messages_test"
  "mipv6_messages_test.pdb"
  "mipv6_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mipv6_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
