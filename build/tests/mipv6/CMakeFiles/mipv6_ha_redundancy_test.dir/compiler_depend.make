# Empty compiler generated dependencies file for mipv6_ha_redundancy_test.
# This may be replaced when dependencies are built.
