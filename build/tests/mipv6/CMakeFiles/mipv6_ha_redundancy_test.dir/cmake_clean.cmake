file(REMOVE_RECURSE
  "CMakeFiles/mipv6_ha_redundancy_test.dir/ha_redundancy_test.cpp.o"
  "CMakeFiles/mipv6_ha_redundancy_test.dir/ha_redundancy_test.cpp.o.d"
  "mipv6_ha_redundancy_test"
  "mipv6_ha_redundancy_test.pdb"
  "mipv6_ha_redundancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mipv6_ha_redundancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
