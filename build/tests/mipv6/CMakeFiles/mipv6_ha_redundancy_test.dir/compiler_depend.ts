# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mipv6_ha_redundancy_test.
