file(REMOVE_RECURSE
  "CMakeFiles/mipv6_protocol_test.dir/protocol_test.cpp.o"
  "CMakeFiles/mipv6_protocol_test.dir/protocol_test.cpp.o.d"
  "mipv6_protocol_test"
  "mipv6_protocol_test.pdb"
  "mipv6_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mipv6_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
