# Empty compiler generated dependencies file for mipv6_protocol_test.
# This may be replaced when dependencies are built.
