# Empty dependencies file for util_checksum_test.
# This may be replaced when dependencies are built.
