file(REMOVE_RECURSE
  "CMakeFiles/util_checksum_test.dir/checksum_test.cpp.o"
  "CMakeFiles/util_checksum_test.dir/checksum_test.cpp.o.d"
  "util_checksum_test"
  "util_checksum_test.pdb"
  "util_checksum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
