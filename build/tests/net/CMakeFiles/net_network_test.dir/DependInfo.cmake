
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/network_test.cpp" "tests/net/CMakeFiles/net_network_test.dir/network_test.cpp.o" "gcc" "tests/net/CMakeFiles/net_network_test.dir/network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mip6_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/mip6_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/pimdm/CMakeFiles/mip6_pimdm.dir/DependInfo.cmake"
  "/root/repo/build/src/mipv6/CMakeFiles/mip6_mipv6.dir/DependInfo.cmake"
  "/root/repo/build/src/mld/CMakeFiles/mip6_mld.dir/DependInfo.cmake"
  "/root/repo/build/src/ipv6/CMakeFiles/mip6_ipv6.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mip6_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mip6_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mip6_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mip6_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
