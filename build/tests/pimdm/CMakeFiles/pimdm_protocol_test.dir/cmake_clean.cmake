file(REMOVE_RECURSE
  "CMakeFiles/pimdm_protocol_test.dir/protocol_test.cpp.o"
  "CMakeFiles/pimdm_protocol_test.dir/protocol_test.cpp.o.d"
  "pimdm_protocol_test"
  "pimdm_protocol_test.pdb"
  "pimdm_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimdm_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
