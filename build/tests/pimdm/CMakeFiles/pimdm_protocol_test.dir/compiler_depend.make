# Empty compiler generated dependencies file for pimdm_protocol_test.
# This may be replaced when dependencies are built.
