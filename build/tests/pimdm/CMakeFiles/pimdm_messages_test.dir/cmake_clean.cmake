file(REMOVE_RECURSE
  "CMakeFiles/pimdm_messages_test.dir/messages_test.cpp.o"
  "CMakeFiles/pimdm_messages_test.dir/messages_test.cpp.o.d"
  "pimdm_messages_test"
  "pimdm_messages_test.pdb"
  "pimdm_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimdm_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
