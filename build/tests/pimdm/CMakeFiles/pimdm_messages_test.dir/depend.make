# Empty dependencies file for pimdm_messages_test.
# This may be replaced when dependencies are built.
