# Empty compiler generated dependencies file for pimdm_state_refresh_test.
# This may be replaced when dependencies are built.
