file(REMOVE_RECURSE
  "CMakeFiles/pimdm_state_refresh_test.dir/state_refresh_test.cpp.o"
  "CMakeFiles/pimdm_state_refresh_test.dir/state_refresh_test.cpp.o.d"
  "pimdm_state_refresh_test"
  "pimdm_state_refresh_test.pdb"
  "pimdm_state_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimdm_state_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
