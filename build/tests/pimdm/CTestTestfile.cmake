# CMake generated Testfile for 
# Source directory: /root/repo/tests/pimdm
# Build directory: /root/repo/build/tests/pimdm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pimdm/pimdm_messages_test[1]_include.cmake")
include("/root/repo/build/tests/pimdm/pimdm_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/pimdm/pimdm_state_refresh_test[1]_include.cmake")
