# CMake generated Testfile for 
# Source directory: /root/repo/tests/mld
# Build directory: /root/repo/build/tests/mld
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mld/mld_messages_test[1]_include.cmake")
include("/root/repo/build/tests/mld/mld_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/mld/mld_adaptive_querier_test[1]_include.cmake")
include("/root/repo/build/tests/mld/mld_timer_sweep_test[1]_include.cmake")
