file(REMOVE_RECURSE
  "CMakeFiles/mld_adaptive_querier_test.dir/adaptive_querier_test.cpp.o"
  "CMakeFiles/mld_adaptive_querier_test.dir/adaptive_querier_test.cpp.o.d"
  "mld_adaptive_querier_test"
  "mld_adaptive_querier_test.pdb"
  "mld_adaptive_querier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mld_adaptive_querier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
