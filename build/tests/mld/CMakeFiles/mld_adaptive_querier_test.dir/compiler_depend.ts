# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mld_adaptive_querier_test.
