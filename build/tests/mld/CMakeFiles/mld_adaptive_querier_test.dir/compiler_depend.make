# Empty compiler generated dependencies file for mld_adaptive_querier_test.
# This may be replaced when dependencies are built.
