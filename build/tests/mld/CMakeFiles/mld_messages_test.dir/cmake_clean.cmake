file(REMOVE_RECURSE
  "CMakeFiles/mld_messages_test.dir/messages_test.cpp.o"
  "CMakeFiles/mld_messages_test.dir/messages_test.cpp.o.d"
  "mld_messages_test"
  "mld_messages_test.pdb"
  "mld_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mld_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
