# Empty compiler generated dependencies file for mld_messages_test.
# This may be replaced when dependencies are built.
