# Empty dependencies file for mld_protocol_test.
# This may be replaced when dependencies are built.
