file(REMOVE_RECURSE
  "CMakeFiles/mld_protocol_test.dir/protocol_test.cpp.o"
  "CMakeFiles/mld_protocol_test.dir/protocol_test.cpp.o.d"
  "mld_protocol_test"
  "mld_protocol_test.pdb"
  "mld_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mld_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
