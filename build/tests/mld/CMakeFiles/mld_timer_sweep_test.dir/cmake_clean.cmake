file(REMOVE_RECURSE
  "CMakeFiles/mld_timer_sweep_test.dir/timer_sweep_test.cpp.o"
  "CMakeFiles/mld_timer_sweep_test.dir/timer_sweep_test.cpp.o.d"
  "mld_timer_sweep_test"
  "mld_timer_sweep_test.pdb"
  "mld_timer_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mld_timer_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
