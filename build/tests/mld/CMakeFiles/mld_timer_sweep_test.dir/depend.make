# Empty dependencies file for mld_timer_sweep_test.
# This may be replaced when dependencies are built.
