# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mld_timer_sweep_test.
