# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration/figure1_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/integration/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/integration/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/integration/join_delay_distribution_test[1]_include.cmake")
