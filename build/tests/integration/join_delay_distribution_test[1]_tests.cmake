add_test([=[JoinDelayDistribution.QueryWaitIsUniformOverTheQueryInterval]=]  /root/repo/build/tests/integration/join_delay_distribution_test [==[--gtest_filter=JoinDelayDistribution.QueryWaitIsUniformOverTheQueryInterval]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[JoinDelayDistribution.QueryWaitIsUniformOverTheQueryInterval]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests/integration SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  join_delay_distribution_test_TESTS JoinDelayDistribution.QueryWaitIsUniformOverTheQueryInterval)
