# Empty compiler generated dependencies file for join_delay_distribution_test.
# This may be replaced when dependencies are built.
