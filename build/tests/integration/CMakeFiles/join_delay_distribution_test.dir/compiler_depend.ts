# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for join_delay_distribution_test.
