file(REMOVE_RECURSE
  "CMakeFiles/join_delay_distribution_test.dir/join_delay_distribution_test.cpp.o"
  "CMakeFiles/join_delay_distribution_test.dir/join_delay_distribution_test.cpp.o.d"
  "join_delay_distribution_test"
  "join_delay_distribution_test.pdb"
  "join_delay_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_delay_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
