# Empty dependencies file for figure1_smoke_test.
# This may be replaced when dependencies are built.
