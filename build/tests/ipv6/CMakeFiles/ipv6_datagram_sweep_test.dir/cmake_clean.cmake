file(REMOVE_RECURSE
  "CMakeFiles/ipv6_datagram_sweep_test.dir/datagram_sweep_test.cpp.o"
  "CMakeFiles/ipv6_datagram_sweep_test.dir/datagram_sweep_test.cpp.o.d"
  "ipv6_datagram_sweep_test"
  "ipv6_datagram_sweep_test.pdb"
  "ipv6_datagram_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_datagram_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
