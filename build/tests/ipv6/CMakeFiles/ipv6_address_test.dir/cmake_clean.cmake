file(REMOVE_RECURSE
  "CMakeFiles/ipv6_address_test.dir/address_test.cpp.o"
  "CMakeFiles/ipv6_address_test.dir/address_test.cpp.o.d"
  "ipv6_address_test"
  "ipv6_address_test.pdb"
  "ipv6_address_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_address_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
