file(REMOVE_RECURSE
  "CMakeFiles/ipv6_ripng_test.dir/ripng_test.cpp.o"
  "CMakeFiles/ipv6_ripng_test.dir/ripng_test.cpp.o.d"
  "ipv6_ripng_test"
  "ipv6_ripng_test.pdb"
  "ipv6_ripng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_ripng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
