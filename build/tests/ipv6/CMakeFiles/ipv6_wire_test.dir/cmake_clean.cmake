file(REMOVE_RECURSE
  "CMakeFiles/ipv6_wire_test.dir/wire_test.cpp.o"
  "CMakeFiles/ipv6_wire_test.dir/wire_test.cpp.o.d"
  "ipv6_wire_test"
  "ipv6_wire_test.pdb"
  "ipv6_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
