file(REMOVE_RECURSE
  "CMakeFiles/ipv6_stack_test.dir/stack_test.cpp.o"
  "CMakeFiles/ipv6_stack_test.dir/stack_test.cpp.o.d"
  "ipv6_stack_test"
  "ipv6_stack_test.pdb"
  "ipv6_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
