# Empty compiler generated dependencies file for ipv6_stack_test.
# This may be replaced when dependencies are built.
