# Empty dependencies file for ipv6_routing_test.
# This may be replaced when dependencies are built.
