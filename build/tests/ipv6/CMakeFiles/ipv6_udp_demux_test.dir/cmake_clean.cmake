file(REMOVE_RECURSE
  "CMakeFiles/ipv6_udp_demux_test.dir/udp_demux_test.cpp.o"
  "CMakeFiles/ipv6_udp_demux_test.dir/udp_demux_test.cpp.o.d"
  "ipv6_udp_demux_test"
  "ipv6_udp_demux_test.pdb"
  "ipv6_udp_demux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipv6_udp_demux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
