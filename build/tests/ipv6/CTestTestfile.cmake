# CMake generated Testfile for 
# Source directory: /root/repo/tests/ipv6
# Build directory: /root/repo/build/tests/ipv6
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ipv6/ipv6_address_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6/ipv6_wire_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6/ipv6_routing_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6/ipv6_stack_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6/ipv6_ripng_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6/ipv6_udp_demux_test[1]_include.cmake")
include("/root/repo/build/tests/ipv6/ipv6_datagram_sweep_test[1]_include.cmake")
