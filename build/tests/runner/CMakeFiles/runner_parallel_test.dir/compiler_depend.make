# Empty compiler generated dependencies file for runner_parallel_test.
# This may be replaced when dependencies are built.
