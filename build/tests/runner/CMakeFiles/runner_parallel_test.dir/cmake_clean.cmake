file(REMOVE_RECURSE
  "CMakeFiles/runner_parallel_test.dir/parallel_test.cpp.o"
  "CMakeFiles/runner_parallel_test.dir/parallel_test.cpp.o.d"
  "runner_parallel_test"
  "runner_parallel_test.pdb"
  "runner_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
