# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("stats")
subdirs("net")
subdirs("ipv6")
subdirs("mld")
subdirs("pimdm")
subdirs("mipv6")
subdirs("core")
subdirs("runner")
subdirs("integration")
