# CMake generated Testfile for 
# Source directory: /root/repo/tests/stats
# Build directory: /root/repo/build/tests/stats
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats/stats_summary_test[1]_include.cmake")
include("/root/repo/build/tests/stats/stats_counters_test[1]_include.cmake")
include("/root/repo/build/tests/stats/stats_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/stats/stats_table_test[1]_include.cmake")
include("/root/repo/build/tests/stats/stats_gauge_test[1]_include.cmake")
