file(REMOVE_RECURSE
  "CMakeFiles/stats_gauge_test.dir/gauge_test.cpp.o"
  "CMakeFiles/stats_gauge_test.dir/gauge_test.cpp.o.d"
  "stats_gauge_test"
  "stats_gauge_test.pdb"
  "stats_gauge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_gauge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
