# Empty dependencies file for stats_gauge_test.
# This may be replaced when dependencies are built.
