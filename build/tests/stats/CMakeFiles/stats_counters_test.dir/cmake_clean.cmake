file(REMOVE_RECURSE
  "CMakeFiles/stats_counters_test.dir/counters_test.cpp.o"
  "CMakeFiles/stats_counters_test.dir/counters_test.cpp.o.d"
  "stats_counters_test"
  "stats_counters_test.pdb"
  "stats_counters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
