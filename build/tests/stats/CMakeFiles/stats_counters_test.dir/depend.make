# Empty dependencies file for stats_counters_test.
# This may be replaced when dependencies are built.
