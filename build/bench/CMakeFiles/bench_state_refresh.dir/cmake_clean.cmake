file(REMOVE_RECURSE
  "CMakeFiles/bench_state_refresh.dir/bench_state_refresh.cpp.o"
  "CMakeFiles/bench_state_refresh.dir/bench_state_refresh.cpp.o.d"
  "bench_state_refresh"
  "bench_state_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
