# Empty dependencies file for bench_state_refresh.
# This may be replaced when dependencies are built.
