# Empty dependencies file for bench_sender_mobility.
# This may be replaced when dependencies are built.
