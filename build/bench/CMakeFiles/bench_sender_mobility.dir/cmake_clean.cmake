file(REMOVE_RECURSE
  "CMakeFiles/bench_sender_mobility.dir/bench_sender_mobility.cpp.o"
  "CMakeFiles/bench_sender_mobility.dir/bench_sender_mobility.cpp.o.d"
  "bench_sender_mobility"
  "bench_sender_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sender_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
