# Empty dependencies file for bench_fig4_sender_tunnel.
# This may be replaced when dependencies are built.
