file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sender_tunnel.dir/bench_fig4_sender_tunnel.cpp.o"
  "CMakeFiles/bench_fig4_sender_tunnel.dir/bench_fig4_sender_tunnel.cpp.o.d"
  "bench_fig4_sender_tunnel"
  "bench_fig4_sender_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sender_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
