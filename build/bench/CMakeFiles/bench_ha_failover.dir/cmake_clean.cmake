file(REMOVE_RECURSE
  "CMakeFiles/bench_ha_failover.dir/bench_ha_failover.cpp.o"
  "CMakeFiles/bench_ha_failover.dir/bench_ha_failover.cpp.o.d"
  "bench_ha_failover"
  "bench_ha_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ha_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
