file(REMOVE_RECURSE
  "CMakeFiles/bench_prune_delay.dir/bench_prune_delay.cpp.o"
  "CMakeFiles/bench_prune_delay.dir/bench_prune_delay.cpp.o.d"
  "bench_prune_delay"
  "bench_prune_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prune_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
