file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_receiver_tunnel.dir/bench_fig3_receiver_tunnel.cpp.o"
  "CMakeFiles/bench_fig3_receiver_tunnel.dir/bench_fig3_receiver_tunnel.cpp.o.d"
  "bench_fig3_receiver_tunnel"
  "bench_fig3_receiver_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_receiver_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
