# Empty compiler generated dependencies file for bench_fig3_receiver_tunnel.
# This may be replaced when dependencies are built.
