# Empty compiler generated dependencies file for bench_binding_lifetime.
# This may be replaced when dependencies are built.
