file(REMOVE_RECURSE
  "CMakeFiles/bench_binding_lifetime.dir/bench_binding_lifetime.cpp.o"
  "CMakeFiles/bench_binding_lifetime.dir/bench_binding_lifetime.cpp.o.d"
  "bench_binding_lifetime"
  "bench_binding_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binding_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
