# Empty compiler generated dependencies file for bench_cmp_approaches.
# This may be replaced when dependencies are built.
