file(REMOVE_RECURSE
  "CMakeFiles/bench_cmp_approaches.dir/bench_cmp_approaches.cpp.o"
  "CMakeFiles/bench_cmp_approaches.dir/bench_cmp_approaches.cpp.o.d"
  "bench_cmp_approaches"
  "bench_cmp_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
