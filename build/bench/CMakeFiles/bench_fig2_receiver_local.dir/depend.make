# Empty dependencies file for bench_fig2_receiver_local.
# This may be replaced when dependencies are built.
