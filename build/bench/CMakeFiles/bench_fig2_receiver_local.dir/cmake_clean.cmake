file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_receiver_local.dir/bench_fig2_receiver_local.cpp.o"
  "CMakeFiles/bench_fig2_receiver_local.dir/bench_fig2_receiver_local.cpp.o.d"
  "bench_fig2_receiver_local"
  "bench_fig2_receiver_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_receiver_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
