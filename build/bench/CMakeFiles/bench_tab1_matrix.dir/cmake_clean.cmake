file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_matrix.dir/bench_tab1_matrix.cpp.o"
  "CMakeFiles/bench_tab1_matrix.dir/bench_tab1_matrix.cpp.o.d"
  "bench_tab1_matrix"
  "bench_tab1_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
