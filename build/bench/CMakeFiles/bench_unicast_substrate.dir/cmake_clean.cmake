file(REMOVE_RECURSE
  "CMakeFiles/bench_unicast_substrate.dir/bench_unicast_substrate.cpp.o"
  "CMakeFiles/bench_unicast_substrate.dir/bench_unicast_substrate.cpp.o.d"
  "bench_unicast_substrate"
  "bench_unicast_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unicast_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
