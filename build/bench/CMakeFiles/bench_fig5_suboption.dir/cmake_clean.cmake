file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_suboption.dir/bench_fig5_suboption.cpp.o"
  "CMakeFiles/bench_fig5_suboption.dir/bench_fig5_suboption.cpp.o.d"
  "bench_fig5_suboption"
  "bench_fig5_suboption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_suboption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
