file(REMOVE_RECURSE
  "CMakeFiles/bench_mld_timers.dir/bench_mld_timers.cpp.o"
  "CMakeFiles/bench_mld_timers.dir/bench_mld_timers.cpp.o.d"
  "bench_mld_timers"
  "bench_mld_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mld_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
