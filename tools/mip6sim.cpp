// mip6sim — declarative scenario runner.
//
// Loads a ScenarioSpec JSON file, fans `--replications` derived seeds
// through run_replications() (each replication compiles its own World, so
// workers share nothing), prints per-metric summary statistics and writes
// a mip6-bench-v1 report (same schema as the bench trajectory,
// docs/PERF.md) so scenario sweeps plug into the existing JSON tooling.
//
// Usage:
//   mip6sim <scenario.json> [--replications N] [--seed S] [--threads T]
//           [--duration SECS] [--out FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <scenario.json> [options]\n"
      "  --replications N   independent seeded runs (default 1)\n"
      "  --seed S           base seed (default: the spec's seed)\n"
      "  --threads T        worker threads, 0 = hardware (default 0)\n"
      "  --duration SECS    override the spec's duration_s\n"
      "  --out FILE         report path (default BENCH_<name>.json)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mip6;

  std::string scenario_path;
  std::size_t replications = 1;
  std::size_t threads = 0;
  std::optional<std::uint64_t> seed;
  std::optional<Time> duration;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--replications") {
      replications = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--duration") {
      duration = Time::seconds(std::strtod(value(), nullptr));
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else if (scenario_path.empty()) {
      scenario_path = arg;
    } else {
      std::fprintf(stderr, "%s: more than one scenario file given\n", argv[0]);
      return usage(argv[0]);
    }
  }
  if (scenario_path.empty()) return usage(argv[0]);
  if (replications == 0) {
    std::fprintf(stderr, "%s: --replications must be at least 1\n", argv[0]);
    return 2;
  }

  ScenarioSpec spec;
  try {
    spec = ScenarioSpec::load_file(scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  ReplicationOptions opts;
  opts.replications = replications;
  opts.base_seed = seed.value_or(spec.seed);
  opts.threads = threads;

  std::printf("scenario %s (%s)\n", spec.name.c_str(),
              spec.description.empty() ? "no description"
                                       : spec.description.c_str());
  std::printf("horizon %s, %zu replication(s), base seed %llu\n\n",
              duration.value_or(spec.duration).str().c_str(), replications,
              static_cast<unsigned long long>(opts.base_seed));

  std::map<std::string, Summary> merged;
  bench::WallTimer timer;
  try {
    merged = run_replications(opts, [&](std::uint64_t s) {
      return run_scenario(spec, s, duration);
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replication failed: %s\n", e.what());
    return 1;
  }
  const double wall_s = timer.elapsed_s();

  Table table({"metric", "mean", "min", "max", "stddev", "n"});
  for (const auto& [name, summary] : merged) {
    table.add_row({name, fmt_double(summary.mean(), 3),
                   fmt_double(summary.min(), 3), fmt_double(summary.max(), 3),
                   fmt_double(summary.stddev(), 3),
                   std::to_string(summary.count())});
  }
  std::printf("%s\n", table.str().c_str());

  // mip6-bench-v1 report: headline run stats + one row per metric.
  double total_events = 0.0;
  if (auto it = merged.find("events"); it != merged.end()) {
    total_events = it->second.sum();
  }
  Json doc = Json::object();
  doc.set("schema", "mip6-bench-v1");
  doc.set("name", spec.name);
  Json metrics = Json::object();
  metrics.set("wall_s", wall_s);
  metrics.set("events", total_events);
  metrics.set("ns_per_event",
              total_events > 0 ? wall_s * 1e9 / total_events : 0.0);
  metrics.set("events_per_s", wall_s > 0 ? total_events / wall_s : 0.0);
  metrics.set("peak_rss_bytes", bench::peak_rss_bytes());
  metrics.set("replications", static_cast<double>(replications));
  metrics.set("base_seed", static_cast<double>(opts.base_seed));
  doc.set("metrics", std::move(metrics));
  Json rows = Json::array();
  for (const auto& [name, summary] : merged) {
    Json row = Json::object();
    row.set("metric", name);
    row.set("mean", summary.mean());
    row.set("min", summary.min());
    row.set("max", summary.max());
    row.set("stddev", summary.stddev());
    row.set("n", static_cast<double>(summary.count()));
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));

  if (out_path.empty()) out_path = "BENCH_" + spec.name + ".json";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("# report: %s\n", out_path.c_str());
  return 0;
}
