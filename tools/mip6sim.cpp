// mip6sim — declarative scenario runner and chaos-search driver.
//
// Default mode loads a ScenarioSpec JSON file, fans `--replications`
// derived seeds through run_replications() (each replication compiles its
// own World, so workers share nothing), prints per-metric summary
// statistics and writes a mip6-bench-v1 report (same schema as the bench
// trajectory, docs/PERF.md) so scenario sweeps plug into the existing JSON
// tooling.
//
// Subcommands (docs/FAULTS.md, "Chaos search & reproducer corpus"):
//   chaos-search   randomized fault-plan exploration + ddmin shrinking
//   chaos-replay   byte-exact replay of committed corpus reproducers
//
// Usage:
//   mip6sim <scenario.json> [--replications N] [--seed S] [--threads T]
//           [--duration SECS] [--out FILE]
//   mip6sim chaos-search <scenario.json> [options]
//   mip6sim chaos-replay <entry.json|corpus-dir>... [options]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/search.hpp"
#include "report.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

namespace {

using namespace mip6;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <scenario.json> [options]\n"
      "       %s chaos-search <scenario.json> [options]\n"
      "       %s chaos-replay <entry.json|corpus-dir>... [options]\n"
      "\n"
      "run options:\n"
      "  --replications N   independent seeded runs (default 1)\n"
      "  --seed S           base seed override; replication k runs with a\n"
      "                     seed derived from S (default: the spec's seed),\n"
      "                     so CI can pin an exact reproducible sweep\n"
      "  --threads T        worker threads, 0 = hardware. With several\n"
      "                     replications they parallelize the sweep; with\n"
      "                     one replication they shard the world itself\n"
      "                     (byte-identical to serial at any T). Default:\n"
      "                     the spec's own \"threads\" (1 = serial)\n"
      "  --duration SECS    override the spec's duration_s\n"
      "  --out FILE         report path (default BENCH_<name>.json)\n"
      "\n"
      "chaos-search options:\n"
      "  --budget N         fault plans to explore (default 8)\n"
      "  --seed S           search seed; plan i uses a seed derived from S\n"
      "                     (default: the spec's seed)\n"
      "  --both-engines     run every plan under PIM-DM and HPIM-DM\n"
      "  --settle SECS      convergence deadline after the last repair\n"
      "                     (default 15)\n"
      "  --max-disruptions N  fault/repair pairs per plan, upper bound\n"
      "                     (default 4)\n"
      "  --no-shrink        skip ddmin minimization of failing plans\n"
      "  --corpus-dir DIR   write reproducer JSON for findings (and pins)\n"
      "  --pin N            also record the first N explored plans as\n"
      "                     clean corpus entries (requires --corpus-dir)\n"
      "  --out FILE         mip6-bench-v1 summary (default\n"
      "                     BENCH_chaos_search_<name>.json)\n"
      "\n"
      "chaos-replay options:\n"
      "  --scenario-dir DIR directory the entries' scenario file names\n"
      "                     resolve against (default examples/scenarios)\n"
      "  --record           rewrite each entry's expected block from the\n"
      "                     observed outcome instead of checking it\n"
      "  --trace            print the chaos trace of each entry\n"
      "  --out FILE         optional mip6-bench-v1 summary of the replay\n"
      "\n"
      "exit codes (all modes): 0 success; 1 load/run error; 2 bad usage;\n"
      "  3 violations — a failed audit or a never-completed recovery in\n"
      "  run mode, any violating plan in chaos-search, any expectation\n"
      "  mismatch in chaos-replay\n",
      argv0, argv0, argv0);
  return 2;
}

struct ArgParser {
  int argc;
  char** argv;
  int i = 1;
  const char* value(const std::string& arg) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
      std::exit(2);
    }
    return argv[++i];
  }
};

int write_bench_report(const std::string& out_path, const std::string& name,
                       double wall_s, double total_events,
                       const std::vector<std::pair<std::string, double>>& rows) {
  Json doc = Json::object();
  doc.set("schema", "mip6-bench-v1");
  doc.set("name", name);
  Json metrics = Json::object();
  metrics.set("wall_s", wall_s);
  metrics.set("events", total_events);
  metrics.set("ns_per_event",
              total_events > 0 ? wall_s * 1e9 / total_events : 0.0);
  metrics.set("events_per_s", wall_s > 0 ? total_events / wall_s : 0.0);
  metrics.set("peak_rss_bytes", bench::peak_rss_bytes());
  doc.set("metrics", std::move(metrics));
  Json jrows = Json::array();
  for (const auto& [metric, val] : rows) {
    Json row = Json::object();
    row.set("metric", metric);
    row.set("mean", val);
    row.set("min", val);
    row.set("max", val);
    row.set("stddev", 0.0);
    row.set("n", 1.0);
    jrows.push_back(std::move(row));
  }
  doc.set("rows", std::move(jrows));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("# report: %s\n", out_path.c_str());
  return 0;
}

int write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

// --- default run mode ------------------------------------------------------

int cmd_run(int argc, char** argv) {
  std::string scenario_path;
  std::size_t replications = 1;
  std::optional<std::size_t> threads;
  std::optional<std::uint64_t> seed;
  std::optional<Time> duration;
  std::string out_path;

  ArgParser args{argc, argv};
  for (; args.i < argc; ++args.i) {
    const std::string arg = argv[args.i];
    if (arg == "--replications") {
      replications =
          static_cast<std::size_t>(std::strtoull(args.value(arg), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(args.value(arg), nullptr, 10);
    } else if (arg == "--threads") {
      threads =
          static_cast<std::size_t>(std::strtoull(args.value(arg), nullptr, 10));
    } else if (arg == "--duration") {
      duration = Time::seconds(std::strtod(args.value(arg), nullptr));
    } else if (arg == "--out") {
      out_path = args.value(arg);
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else if (scenario_path.empty()) {
      scenario_path = arg;
    } else {
      std::fprintf(stderr, "%s: more than one scenario file given\n", argv[0]);
      return usage(argv[0]);
    }
  }
  if (scenario_path.empty()) return usage(argv[0]);
  if (replications == 0) {
    std::fprintf(stderr, "%s: --replications must be at least 1\n", argv[0]);
    return 2;
  }

  ScenarioSpec spec;
  try {
    spec = ScenarioSpec::load_file(scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  ReplicationOptions opts;
  opts.replications = replications;
  opts.base_seed = seed.value_or(spec.seed);
  opts.threads = threads.value_or(0);
  if (threads && replications == 1) {
    // A single world: --threads goes inside it (windowed parallel
    // scheduler) instead of across replications. 0 = one per hardware
    // thread. Without the flag the spec's own "threads" knob decides.
    spec.threads = static_cast<std::uint32_t>(*threads);
    opts.threads = 1;
  }

  std::printf("scenario %s (%s)\n", spec.name.c_str(),
              spec.description.empty() ? "no description"
                                       : spec.description.c_str());
  std::printf("horizon %s, %zu replication(s), base seed %llu\n\n",
              duration.value_or(spec.duration).str().c_str(), replications,
              static_cast<unsigned long long>(opts.base_seed));

  std::map<std::string, Summary> merged;
  bench::WallTimer timer;
  try {
    merged = run_replications(opts, [&](std::uint64_t s) {
      return run_scenario(spec, s, duration);
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replication failed: %s\n", e.what());
    return 1;
  }
  const double wall_s = timer.elapsed_s();

  Table table({"metric", "mean", "min", "max", "stddev", "n"});
  for (const auto& [name, summary] : merged) {
    table.add_row({name, fmt_double(summary.mean(), 3),
                   fmt_double(summary.min(), 3), fmt_double(summary.max(), 3),
                   fmt_double(summary.stddev(), 3),
                   std::to_string(summary.count())});
  }
  std::printf("%s\n", table.str().c_str());

  // mip6-bench-v1 report: headline run stats + one row per metric.
  double total_events = 0.0;
  if (auto it = merged.find("events"); it != merged.end()) {
    total_events = it->second.sum();
  }
  Json doc = Json::object();
  doc.set("schema", "mip6-bench-v1");
  doc.set("name", spec.name);
  Json metrics = Json::object();
  metrics.set("wall_s", wall_s);
  metrics.set("events", total_events);
  metrics.set("ns_per_event",
              total_events > 0 ? wall_s * 1e9 / total_events : 0.0);
  metrics.set("events_per_s", wall_s > 0 ? total_events / wall_s : 0.0);
  metrics.set("peak_rss_bytes", bench::peak_rss_bytes());
  metrics.set("replications", static_cast<double>(replications));
  metrics.set("base_seed", static_cast<double>(opts.base_seed));
  doc.set("metrics", std::move(metrics));
  Json rows = Json::array();
  for (const auto& [name, summary] : merged) {
    Json row = Json::object();
    row.set("metric", name);
    row.set("mean", summary.mean());
    row.set("min", summary.min());
    row.set("max", summary.max());
    row.set("stddev", summary.stddev());
    row.set("n", static_cast<double>(summary.count()));
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));

  if (out_path.empty()) out_path = "BENCH_" + spec.name + ".json";
  if (int rc = write_text_file(out_path, doc.dump(2)); rc != 0) return rc;
  std::printf("# report: %s\n", out_path.c_str());

  // CI contract: a failed audit or a never-completed recovery is a
  // nonzero exit, so pipelines fail loudly instead of shipping a green
  // run with a broken world inside.
  double audit_violations = 0.0;
  if (auto it = merged.find("fault_audit_violations"); it != merged.end()) {
    audit_violations = it->second.sum();
  }
  double unrecovered = 0.0;
  if (auto it = merged.find("fault_unrecovered"); it != merged.end()) {
    unrecovered = it->second.sum();
  }
  if (audit_violations > 0 || unrecovered > 0) {
    std::fprintf(stderr,
                 "FAIL: %.0f audit violation(s), %.0f unrecovered "
                 "disruption(s)\n",
                 audit_violations, unrecovered);
    return 3;
  }
  return 0;
}

// --- chaos-search ----------------------------------------------------------

std::string repro_file_name(const std::string& scenario_name,
                            const std::string& tag, std::size_t index,
                            const std::string& engine) {
  std::string name = scenario_name + "-" + tag + std::to_string(index);
  if (engine != "spec") name += "-" + engine;
  return name + ".json";
}

int cmd_chaos_search(int argc, char** argv) {
  std::string scenario_path;
  std::string corpus_dir;
  std::string out_path;
  std::size_t pin = 0;
  std::optional<std::uint64_t> seed;
  ChaosSearchConfig cfg;
  cfg.budget = 8;

  ArgParser args{argc, argv};
  for (; args.i < argc; ++args.i) {
    const std::string arg = argv[args.i];
    if (arg == "--budget") {
      cfg.budget =
          static_cast<std::size_t>(std::strtoull(args.value(arg), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(args.value(arg), nullptr, 10);
    } else if (arg == "--both-engines") {
      cfg.both_engines = true;
    } else if (arg == "--settle") {
      cfg.run.settle = Time::seconds(std::strtod(args.value(arg), nullptr));
    } else if (arg == "--max-disruptions") {
      cfg.max_disruptions =
          static_cast<int>(std::strtol(args.value(arg), nullptr, 10));
    } else if (arg == "--no-shrink") {
      cfg.shrink_failures = false;
    } else if (arg == "--corpus-dir") {
      corpus_dir = args.value(arg);
    } else if (arg == "--pin") {
      pin =
          static_cast<std::size_t>(std::strtoull(args.value(arg), nullptr, 10));
    } else if (arg == "--out") {
      out_path = args.value(arg);
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else if (scenario_path.empty()) {
      scenario_path = arg;
    } else {
      std::fprintf(stderr, "%s: more than one scenario file given\n", argv[0]);
      return usage(argv[0]);
    }
  }
  if (scenario_path.empty()) return usage(argv[0]);
  if (pin > 0 && corpus_dir.empty()) {
    std::fprintf(stderr, "%s: --pin requires --corpus-dir\n", argv[0]);
    return 2;
  }

  ScenarioSpec spec;
  try {
    spec = ScenarioSpec::load_file(scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (seed) cfg.seed = *seed; else cfg.seed = spec.seed;

  const std::string scenario_file =
      std::filesystem::path(scenario_path).filename().string();

  std::printf("chaos-search %s: budget %zu, seed %llu, engines %s\n",
              spec.name.c_str(), cfg.budget,
              static_cast<unsigned long long>(cfg.seed),
              cfg.both_engines ? "pimdm+hpimdm" : "spec");

  bench::WallTimer timer;
  ChaosSearchResult result;
  try {
    result = chaos_search(spec, cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos-search failed: %s\n", e.what());
    return 1;
  }
  const double wall_s = timer.elapsed_s();

  std::printf("explored %zu world(s), %zu violating, %zu shrunk\n",
              result.explored, result.violating, result.shrunk);
  for (const auto& [cls, n] : result.class_counts) {
    std::printf("  %-22s %zu\n", cls.c_str(), n);
  }
  for (const ChaosSearchFinding& f : result.findings) {
    std::printf("finding: seed %llu engine %s, %zu -> %zu unit(s)\n",
                static_cast<unsigned long long>(f.plan_seed),
                f.engine.c_str(), f.shrink_stats.initial_units,
                f.shrink_stats.final_units);
    for (const ChaosViolation& v : f.violations) {
      std::printf("  [%s] %s\n", violation_class_name(v.cls),
                  v.detail.c_str());
    }
  }

  int rc = 0;
  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);
    // Findings: the shrunk plan plus the outcome of re-running it.
    std::vector<std::string> engines =
        cfg.both_engines ? std::vector<std::string>{"pimdm", "hpimdm"}
                         : std::vector<std::string>{"spec"};
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
      const ChaosSearchFinding& f = result.findings[i];
      ChaosReproducer repro;
      repro.scenario = scenario_file;
      repro.engine = f.engine;
      repro.seed = spec.seed;
      repro.settle_s = cfg.run.settle.to_seconds();
      repro.plan = f.shrunk;
      // Capture the expected block through the exact code path chaos-replay
      // will use (oracle derived inside), so the recorded classes/trace are
      // reproducible by construction.
      ChaosRunResult rr = replay_reproducer(spec, repro, cfg.run);
      repro.classes = rr.classes();
      repro.trace = rr.trace;
      std::string path = corpus_dir + "/" +
                         repro_file_name(spec.name, "f", i, f.engine);
      if (write_text_file(path, repro.to_json().dump(2)) != 0) rc = 1;
      std::printf("# reproducer: %s\n", path.c_str());
    }
    // Pins: clean entries locking in today's (trace, classification) for
    // the first N explored plans — regression anchors even with zero
    // violations on the current tree.
    for (std::size_t i = 0; i < pin && i < result.plans.size(); ++i) {
      const auto& [plan_seed, plan] = result.plans[i];
      (void)plan_seed;
      for (const std::string& engine : engines) {
        ChaosReproducer repro;
        repro.scenario = scenario_file;
        repro.engine = engine;
        repro.seed = spec.seed;
        repro.settle_s = cfg.run.settle.to_seconds();
        repro.plan = plan;
        ChaosRunResult rr = replay_reproducer(spec, repro, cfg.run);
        repro.classes = rr.classes();
        repro.trace = rr.trace;
        std::string path = corpus_dir + "/" +
                           repro_file_name(spec.name, "p", i, engine);
        if (write_text_file(path, repro.to_json().dump(2)) != 0) rc = 1;
        std::printf("# pinned: %s\n", path.c_str());
      }
    }
  }

  if (out_path.empty()) {
    out_path = "BENCH_chaos_search_" + spec.name + ".json";
  }
  std::vector<std::pair<std::string, double>> rows = {
      {"explored", static_cast<double>(result.explored)},
      {"violating", static_cast<double>(result.violating)},
      {"shrunk", static_cast<double>(result.shrunk)},
  };
  for (const auto& [cls, n] : result.class_counts) {
    rows.emplace_back("class/" + cls, static_cast<double>(n));
  }
  if (int wrc = write_bench_report(out_path, "chaos_search_" + spec.name,
                                   wall_s,
                                   static_cast<double>(result.executed_events),
                                   rows);
      wrc != 0) {
    return wrc;
  }
  if (rc != 0) return rc;
  return result.violating > 0 ? 3 : 0;
}

// --- chaos-replay ----------------------------------------------------------

int cmd_chaos_replay(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string scenario_dir = "examples/scenarios";
  std::string out_path;
  bool record = false;
  bool print_trace = false;

  ArgParser args{argc, argv};
  for (; args.i < argc; ++args.i) {
    const std::string arg = argv[args.i];
    if (arg == "--scenario-dir") {
      scenario_dir = args.value(arg);
    } else if (arg == "--record") {
      record = true;
    } else if (arg == "--trace") {
      print_trace = true;
    } else if (arg == "--out") {
      out_path = args.value(arg);
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  // Expand directories to their .json entries, sorted for determinism.
  std::vector<std::string> entries;
  for (const std::string& input : inputs) {
    if (std::filesystem::is_directory(input)) {
      std::vector<std::string> found;
      for (const auto& de : std::filesystem::directory_iterator(input)) {
        if (de.path().extension() == ".json") {
          found.push_back(de.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      entries.insert(entries.end(), found.begin(), found.end());
    } else {
      entries.push_back(input);
    }
  }
  if (entries.empty()) {
    std::fprintf(stderr, "%s: no corpus entries found\n", argv[0]);
    return 1;
  }

  bench::WallTimer timer;
  double total_events = 0.0;
  std::size_t mismatches = 0;
  for (const std::string& path : entries) {
    ChaosReproducer repro;
    ScenarioSpec spec;
    try {
      repro = ChaosReproducer::load_file(path);
      spec = ScenarioSpec::load_file(scenario_dir + "/" + repro.scenario);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }

    ChaosRunResult rr;
    try {
      rr = replay_reproducer(spec, repro);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: replay failed: %s\n", path.c_str(), e.what());
      return 1;
    }
    total_events += static_cast<double>(rr.executed_events);
    if (print_trace) {
      for (const std::string& line : rr.trace) {
        std::printf("  %s\n", line.c_str());
      }
    }

    if (record) {
      repro.classes = rr.classes();
      repro.trace = rr.trace;
      if (write_text_file(path, repro.to_json().dump(2)) != 0) return 1;
      std::printf("%-60s recorded (%zu class(es), %zu trace line(s))\n",
                  path.c_str(), repro.classes.size(), repro.trace.size());
      continue;
    }

    const bool classes_match = rr.classes() == repro.classes;
    const bool trace_match = rr.trace == repro.trace;
    if (classes_match && trace_match) {
      std::printf("%-60s ok\n", path.c_str());
    } else {
      ++mismatches;
      std::printf("%-60s MISMATCH (%s%s%s)\n", path.c_str(),
                  classes_match ? "" : "classes",
                  (!classes_match && !trace_match) ? ", " : "",
                  trace_match ? "" : "trace");
      if (!classes_match) {
        std::string want, got;
        for (const auto& c : repro.classes) want += c + " ";
        for (const auto& c : rr.classes()) got += c + " ";
        std::printf("  expected classes: %s\n  observed classes: %s\n",
                    want.c_str(), got.c_str());
      }
    }
  }
  const double wall_s = timer.elapsed_s();

  if (!out_path.empty()) {
    std::vector<std::pair<std::string, double>> rows = {
        {"entries", static_cast<double>(entries.size())},
        {"mismatches", static_cast<double>(mismatches)},
    };
    if (int rc = write_bench_report(out_path, "chaos_replay", wall_s,
                                    total_events, rows);
        rc != 0) {
      return rc;
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu corpus mismatch(es)\n", mismatches);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "chaos-search") == 0) {
    return cmd_chaos_search(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "chaos-replay") == 0) {
    return cmd_chaos_replay(argc - 1, argv + 1);
  }
  return cmd_run(argc, argv);
}
