#include "core/figure1.hpp"

#include "util/errors.hpp"

namespace mip6 {

Link& Figure1::link(int n) const {
  switch (n) {
    case 1: return *link1;
    case 2: return *link2;
    case 3: return *link3;
    case 4: return *link4;
    case 5: return *link5;
    case 6: return *link6;
  }
  throw LogicError("Figure 1 has links 1..6");
}

Figure1 build_figure1(std::uint64_t seed, WorldConfig config,
                      StrategyOptions host_strategy) {
  Figure1 f;
  f.world = std::make_unique<World>(seed, config);
  World& w = *f.world;

  f.link1 = &w.add_link("Link1");
  f.link2 = &w.add_link("Link2");
  f.link3 = &w.add_link("Link3");
  f.link4 = &w.add_link("Link4");
  f.link5 = &w.add_link("Link5");
  f.link6 = &w.add_link("Link6");

  f.a = &w.add_router("RouterA", {f.link1, f.link2});
  f.b = &w.add_router("RouterB", {f.link2, f.link3});
  f.c = &w.add_router("RouterC", {f.link2, f.link3});
  f.d = &w.add_router("RouterD", {f.link3, f.link4, f.link5});
  f.e = &w.add_router("RouterE", {f.link3, f.link6});

  // Home agent / default router assignment per the paper: A on Link1, B on
  // Link2, C on Link3, D on Links 4+5, E on Link6. (add_router made A the
  // default for Link2 and B for Link3; fix those.)
  w.set_link_router(*f.link1, *f.a);
  w.set_link_router(*f.link2, *f.b);
  w.set_link_router(*f.link3, *f.c);
  w.set_link_router(*f.link4, *f.d);
  w.set_link_router(*f.link5, *f.d);
  w.set_link_router(*f.link6, *f.e);

  // RouterC (the backbone router) is the whole topology's hier-proxy
  // domain proxy. Pure addressing-plan data: nothing touches the wire
  // unless a host actually runs the hier-proxy strategy.
  for (Link* l :
       {f.link1, f.link2, f.link3, f.link4, f.link5, f.link6}) {
    w.set_link_proxy(*l, *f.c);
  }

  f.sender = &w.add_host("SenderS", *f.link1, host_strategy);
  f.recv1 = &w.add_host("Receiver1", *f.link1, host_strategy);
  f.recv2 = &w.add_host("Receiver2", *f.link2, host_strategy);
  f.recv3 = &w.add_host("Receiver3", *f.link4, host_strategy);

  w.finalize();
  return f;
}

}  // namespace mip6
