// Application-level traffic: a constant-bit-rate multicast source whose
// payload carries a sequence number and send timestamp, and a receiver app
// that logs deliveries (with duplicate suppression) so scenarios can compute
// join delay, loss, latency and duplication.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "ipv6/stack.hpp"
#include "ipv6/udp.hpp"
#include "sim/timer.hpp"

namespace mip6 {

/// CBR payload: sequence number + send timestamp, zero-padded to the
/// requested size.
struct CbrPayload {
  std::uint32_t seq = 0;
  Time sent_at;

  Bytes encode(std::size_t total_size) const;
  static CbrPayload decode(BytesView payload);
  static constexpr std::size_t kMinSize = 12;
};

class CbrSource {
 public:
  /// `send` transmits one UDP payload toward the group — the strategy layer
  /// provides it (native send vs reverse tunnel vs plain host send).
  using SendFn = std::function<void(Bytes payload)>;

  /// `domain` binds the tick timer to a node's scheduler domain so the
  /// source runs on that node's shard under parallel execution; without it
  /// the timer inherits the construction context (the world domain when
  /// built outside a DomainScope, which serializes every tick).
  CbrSource(Scheduler& sched, SendFn send, Time interval,
            std::size_t payload_size,
            std::optional<Domain> domain = std::nullopt);

  void start(Time at);
  void stop();
  std::uint32_t sent() const { return next_seq_; }
  Time interval() const { return interval_; }

 private:
  void tick();

  Scheduler* sched_;
  SendFn send_;
  Time interval_;
  std::size_t payload_size_;
  std::uint32_t next_seq_ = 0;
  Timer timer_;
};

class GroupReceiverApp {
 public:
  struct Rx {
    std::uint32_t seq;
    Time sent_at;
    Time received_at;
  };

  /// Registers as the node's UDP consumer for `port`.
  GroupReceiverApp(Ipv6Stack& stack, std::uint16_t port);

  std::uint64_t unique_received() const { return log_.size(); }
  std::uint64_t duplicates() const { return duplicates_; }
  const std::vector<Rx>& log() const { return log_; }

  /// Receive time of the first datagram delivered at/after `t` — the
  /// numerator of every join-delay measurement.
  std::optional<Time> first_rx_at_or_after(Time t) const;
  std::optional<Time> last_rx() const;
  /// Number of unique datagrams received in [from, to).
  std::uint64_t received_in(Time from, Time to) const;

 private:
  void on_udp(const ParsedDatagram& d, IfaceId iface);

  Scheduler* sched_;
  std::uint16_t port_;
  std::vector<Rx> log_;
  std::set<std::uint32_t> seen_;
  std::uint64_t duplicates_ = 0;
};

}  // namespace mip6
