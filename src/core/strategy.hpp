// The delivery approaches to multicast for mobile hosts. Approaches 1-4 are
// the paper's Table 1:
//
//                          receive locally      receive via tunnel
//   send locally           1 LocalMembership    4 TunnelHaToMh
//   send via tunnel        3 TunnelMhToHa       2 BidirTunnel
//
// Approaches 5 and 6 come from related work and do not fit the 2x2 grid —
// they are implemented as dedicated DeliveryStrategy objects (see
// core/delivery_strategy.hpp):
//   5 HierProxy      — Schmidt/Waehlisch MAP-style domain proxy that holds
//                      group subscriptions on behalf of visiting MNs.
//   6 McastMobility  — Helmy's scheme: the MN's reachability *is* a
//                      dedicated multicast group joined by access routers.
#pragma once

#include <optional>
#include <string>

namespace mip6 {

enum class McastStrategy {
  /// Approach 1: group membership via the local multicast router on the
  /// visited link; sending directly from the care-of address.
  kLocalMembership,
  /// Approach 2: both directions through the home agent tunnel.
  kBidirTunnel,
  /// Approach 3: uni-directional tunnel MH -> HA (send via tunnel, receive
  /// locally).
  kTunnelMhToHa,
  /// Approach 4: uni-directional tunnel HA -> MH (receive via tunnel, send
  /// locally).
  kTunnelHaToMh,
  /// Approach 5: hierarchical domain proxy (MAP-style). A designated proxy
  /// router subscribes on behalf of visiting MNs and tunnels group traffic
  /// to their care-of addresses; intra-domain handoff re-registers at the
  /// same proxy and never touches the home tree.
  kHierProxy,
  /// Approach 6: multicast-based mobility. The MN's reachability is a
  /// per-MN multicast group the HA relays into; access routers join/prune
  /// that group as the MN arrives/leaves (handoff = join-new/prune-old).
  kMcastMobility,
};

/// Every strategy, in Table-1-then-related-work order (bench sweeps).
inline constexpr McastStrategy kAllStrategies[] = {
    McastStrategy::kLocalMembership, McastStrategy::kBidirTunnel,
    McastStrategy::kTunnelMhToHa,    McastStrategy::kTunnelHaToMh,
    McastStrategy::kHierProxy,       McastStrategy::kMcastMobility,
};

/// How a tunnel-receiving mobile node registers its groups with the HA
/// (the two Section 4.3.2 variants).
enum class HaRegistration {
  /// The paper's proposed Multicast Group List Sub-Option in Binding
  /// Updates (Figure 5); works with home agents that are not PIM routers.
  kGroupListBu,
  /// Ordinary MLD Reports sent through the tunnel ("tunnels as
  /// interfaces"); requires a PIM-capable home agent.
  kTunnelMld,
};

struct StrategyOptions {
  McastStrategy strategy = McastStrategy::kLocalMembership;
  HaRegistration registration = HaRegistration::kGroupListBu;
};

/// Receive path uses the local multicast router (vs the HA tunnel). For the
/// related-work approaches this is the nearest Table 1 coordinate: both
/// receive through an encapsulating relay, not local MLD, while away.
inline bool receives_locally(McastStrategy s) {
  return s == McastStrategy::kLocalMembership ||
         s == McastStrategy::kTunnelMhToHa;
}
/// Send path transmits natively on the visited link (vs reverse tunnel).
inline bool sends_locally(McastStrategy s) {
  return s == McastStrategy::kLocalMembership ||
         s == McastStrategy::kTunnelHaToMh ||
         s == McastStrategy::kMcastMobility;
}

inline const char* strategy_name(McastStrategy s) {
  switch (s) {
    case McastStrategy::kLocalMembership: return "local-membership";
    case McastStrategy::kBidirTunnel: return "bidir-tunnel";
    case McastStrategy::kTunnelMhToHa: return "tunnel-mh-to-ha";
    case McastStrategy::kTunnelHaToMh: return "tunnel-ha-to-mh";
    case McastStrategy::kHierProxy: return "hier-proxy";
    case McastStrategy::kMcastMobility: return "mcast-mobility";
  }
  return "?";
}

/// Inverse of strategy_name(); nullopt on an unknown name. The single
/// parser shared by the scenario spec and the benches.
inline std::optional<McastStrategy> strategy_from_name(const std::string& s) {
  for (McastStrategy k : kAllStrategies) {
    if (s == strategy_name(k)) return k;
  }
  return std::nullopt;
}

inline const char* registration_name(HaRegistration r) {
  switch (r) {
    case HaRegistration::kGroupListBu: return "group-list-bu";
    case HaRegistration::kTunnelMld: return "tunnel-mld";
  }
  return "?";
}

inline std::optional<HaRegistration> registration_from_name(
    const std::string& s) {
  if (s == registration_name(HaRegistration::kGroupListBu)) {
    return HaRegistration::kGroupListBu;
  }
  if (s == registration_name(HaRegistration::kTunnelMld)) {
    return HaRegistration::kTunnelMld;
  }
  return std::nullopt;
}

}  // namespace mip6
