// The paper's four approaches to multicast for mobile hosts (Table 1):
//
//                          receive locally      receive via tunnel
//   send locally           1 LocalMembership    4 TunnelHaToMh
//   send via tunnel        3 TunnelMhToHa       2 BidirTunnel
#pragma once

#include <string>

namespace mip6 {

enum class McastStrategy {
  /// Approach 1: group membership via the local multicast router on the
  /// visited link; sending directly from the care-of address.
  kLocalMembership,
  /// Approach 2: both directions through the home agent tunnel.
  kBidirTunnel,
  /// Approach 3: uni-directional tunnel MH -> HA (send via tunnel, receive
  /// locally).
  kTunnelMhToHa,
  /// Approach 4: uni-directional tunnel HA -> MH (receive via tunnel, send
  /// locally).
  kTunnelHaToMh,
};

/// How a tunnel-receiving mobile node registers its groups with the HA
/// (the two Section 4.3.2 variants).
enum class HaRegistration {
  /// The paper's proposed Multicast Group List Sub-Option in Binding
  /// Updates (Figure 5); works with home agents that are not PIM routers.
  kGroupListBu,
  /// Ordinary MLD Reports sent through the tunnel ("tunnels as
  /// interfaces"); requires a PIM-capable home agent.
  kTunnelMld,
};

struct StrategyOptions {
  McastStrategy strategy = McastStrategy::kLocalMembership;
  HaRegistration registration = HaRegistration::kGroupListBu;
};

/// Receive path uses the local multicast router (vs the HA tunnel).
inline bool receives_locally(McastStrategy s) {
  return s == McastStrategy::kLocalMembership ||
         s == McastStrategy::kTunnelMhToHa;
}
/// Send path transmits natively on the visited link (vs reverse tunnel).
inline bool sends_locally(McastStrategy s) {
  return s == McastStrategy::kLocalMembership ||
         s == McastStrategy::kTunnelHaToMh;
}

inline const char* strategy_name(McastStrategy s) {
  switch (s) {
    case McastStrategy::kLocalMembership: return "local-membership";
    case McastStrategy::kBidirTunnel: return "bidir-tunnel";
    case McastStrategy::kTunnelMhToHa: return "tunnel-mh-to-ha";
    case McastStrategy::kTunnelHaToMh: return "tunnel-ha-to-mh";
  }
  return "?";
}

}  // namespace mip6
