#include "core/world.hpp"

#include "core/partition.hpp"
#include "util/errors.hpp"

namespace mip6 {

World::World(std::uint64_t seed, WorldConfig config)
    : config_(config), net_(seed), routing_(net_, plan_) {}

World::~World() { stop(); }

void World::stop() {
  for (auto it = hosts_.rbegin(); it != hosts_.rend(); ++it) {
    (*it)->stop_modules();
  }
  for (auto it = routers_.rbegin(); it != routers_.rend(); ++it) {
    (*it)->stop_modules();
  }
}

Link& World::add_link(const std::string& name, const std::string& prefix) {
  Link& link = net_.add_link(name, config_.link_delay,
                             config_.link_bit_rate_bps);
  std::string p = prefix;
  if (p.empty()) {
    p = "2001:db8:" + std::to_string(next_prefix_index_++) + "::/64";
  }
  plan_.set_link_prefix(link.id(), Prefix::parse(p));
  return link;
}

NodeRuntime& World::add_router(const std::string& name,
                               const std::vector<Link*>& links,
                               const RouterOptions& opts) {
  if (opts.with_pim && !opts.with_mld) {
    throw LogicError("router " + name +
                     ": module 'pimdm' requires 'mld' (PIM learns local "
                     "receivers from MLD)");
  }
  if (opts.with_ha && !opts.with_pim) {
    throw LogicError("router " + name +
                     ": module 'home-agent' requires 'pimdm' (PIM-backed "
                     "group membership)");
  }
  const bool with_ripng =
      opts.with_ripng.value_or(config_.unicast == UnicastRouting::kRipng);

  auto rt = std::make_unique<NodeRuntime>(net_.add_node(name),
                                          /*router=*/true);
  for (Link* link : links) {
    Interface& iface = rt->node->add_interface();
    iface.attach(*link);
  }
  rt->stack = &rt->emplace_module<Ipv6Stack>(*rt->node, plan_,
                                             /*forwarding=*/true);
  // Addresses: link-local + global per attached interface.
  for (const auto& iface : rt->node->interfaces()) {
    rt->stack->add_address(
        iface->id(),
        Address::from_prefix_iid(Address::parse("fe80::"), rt->stack->iid()));
    const Prefix& prefix = plan_.prefix_of(iface->link()->id());
    rt->stack->add_address(
        iface->id(),
        Address::from_prefix_iid(prefix.network(), rt->stack->iid()));
  }
  rt->dispatch = &rt->emplace_module<Icmpv6Dispatcher>(*rt->stack);
  rt->udp = &rt->emplace_module<UdpDemux>(*rt->stack);
  if (opts.with_mld) {
    rt->mld = &rt->emplace_module<MldRouter>(*rt->stack, *rt->dispatch,
                                             opts.mld.value_or(config_.mld));
  }
  if (opts.with_pim) {
    switch (opts.engine.value_or(config_.dense_engine)) {
      case DenseEngineKind::kPimDm:
        rt->pim = &rt->emplace_module<PimDmRouter>(
            *rt->stack, *rt->mld, opts.pim.value_or(config_.pim));
        rt->dense = rt->pim;
        break;
      case DenseEngineKind::kHpimDm:
        rt->hpim = &rt->emplace_module<HpimDmRouter>(
            *rt->stack, *rt->mld, opts.hpim.value_or(config_.hpim));
        rt->dense = rt->hpim;
        break;
    }
  }
  for (const auto& iface : rt->node->interfaces()) {
    if (rt->mld) rt->mld->enable_iface(iface->id());
    if (rt->dense) rt->dense->enable_iface(iface->id());
  }
  if (with_ripng) {
    rt->ripng = &rt->emplace_module<Ripng>(
        *rt->stack, *rt->udp, opts.ripng.value_or(config_.ripng));
    for (const auto& iface : rt->node->interfaces()) {
      rt->ripng->enable_iface(iface->id());
    }
  }
  if (opts.with_ha) {
    // Home agent with dense-engine-backed group membership ("HA is a
    // multicast router") — engine-agnostic, so either engine serves.
    DenseModeEngine* dense = rt->dense;
    rt->ha = &rt->emplace_module<HomeAgent>(
        *rt->stack, opts.mipv6.value_or(config_.mipv6),
        HomeAgent::MembershipBackend{
            [dense](const Address& g) { dense->add_local_receiver(g); },
            [dense](const Address& g) { dense->remove_local_receiver(g); }});
  }
  if (opts.with_proxy && rt->dense != nullptr) {
    // hier-proxy agent: idle (no timers, no traffic) until an MN registers,
    // so enabling it by default costs nothing on legacy scenarios.
    rt->proxy =
        &rt->emplace_module<MulticastProxy>(*rt->stack, *rt->udp, *rt->dense);
  }
  if (opts.with_ar_agent && rt->mld != nullptr) {
    // mcast-mobility agent: likewise idle until an MN sends an ArJoin.
    rt->ar_agent =
        &rt->emplace_module<AccessRouterAgent>(*rt->stack, *rt->udp, *rt->mld);
  }
  routing_.register_stack(*rt->stack);
  // First router on a link becomes its default router / home agent.
  for (Link* link : links) {
    if (!plan_.default_router(link->id())) {
      plan_.set_default_router(link->id(), rt->address_on(*link));
    }
  }
  routers_.push_back(std::move(rt));
  return *routers_.back();
}

NodeRuntime& World::add_host(const std::string& name, Link& home,
                             const HostOptions& opts) {
  auto rt = std::make_unique<NodeRuntime>(net_.add_node(name),
                                          /*router=*/false);
  Interface& iface = rt->node->add_interface();
  iface.attach(home);
  rt->stack = &rt->emplace_module<Ipv6Stack>(*rt->node, plan_,
                                             /*forwarding=*/false);
  rt->dispatch = &rt->emplace_module<Icmpv6Dispatcher>(*rt->stack);
  rt->mld_host = &rt->emplace_module<MldHost>(
      *rt->stack, *rt->dispatch, opts.mld.value_or(config_.mld),
      opts.mld_host.value_or(config_.mld_host));

  const Prefix& home_prefix = plan_.prefix_of(home.id());
  Address home_addr =
      Address::from_prefix_iid(home_prefix.network(), rt->stack->iid());
  auto gw = plan_.default_router(home.id());
  if (!gw) {
    throw LogicError("host " + name + " added to link " + home.name() +
                     " without a router (add the router first)");
  }
  rt->mn = &rt->emplace_module<MobileNode>(*rt->stack, iface.id(), home_addr,
                                           *gw,
                                           opts.mipv6.value_or(config_.mipv6));
  rt->service = &rt->emplace_module<MobileMulticastService>(
      *rt->mn, *rt->mld_host, opts.strategy, opts.mld.value_or(config_.mld));
  routing_.register_stack(*rt->stack);
  hosts_.push_back(std::move(rt));
  return *hosts_.back();
}

void World::set_link_router(Link& link, NodeRuntime& router) {
  plan_.set_default_router(link.id(), router.address_on(link));
}

void World::set_link_proxy(Link& link, NodeRuntime& router) {
  if (router.proxy == nullptr) {
    throw LogicError("set_link_proxy: router " + router.node->name() +
                     " runs no multicast proxy");
  }
  // The proxy may serve links it is not attached to (that is the point of a
  // *domain* proxy), so advertise any global address of the router — the
  // registration travels by unicast routing.
  for (const auto& iface : router.node->interfaces()) {
    if (iface->attached() && router.stack->has_global_address(iface->id())) {
      plan_.set_mcast_proxy(link.id(),
                            router.stack->global_address(iface->id()));
      return;
    }
  }
  throw LogicError("set_link_proxy: router " + router.node->name() +
                   " has no global address");
}

void World::finalize() {
  if (config_.unicast == UnicastRouting::kRipng) {
    // Router RIBs belong to RIPng; only hosts need autoconfiguration.
    routing_.autoconfigure_hosts();
  } else {
    routing_.recompute();
  }
}

std::uint32_t World::enable_parallel(std::uint32_t threads) {
  if (threads <= 1) {
    net_.disable_sharding();
    return 1;
  }
  std::vector<bool> is_host(net_.nodes().size(), false);
  for (const auto& h : hosts_) is_host[h->node->id()] = true;
  Partition part = partition_topology(net_, is_host, threads);
  if (part.shards <= 1) {
    net_.disable_sharding();
    return 1;
  }
  net_.enable_sharding(std::move(part.domain_shard), part.shards,
                       part.lookahead);
  return part.shards;
}

NodeRuntime& World::router_by_name(const std::string& name) const {
  for (const auto& r : routers_) {
    if (r->node->name() == name) return *r;
  }
  throw LogicError("no router named " + name);
}

NodeRuntime& World::host_by_name(const std::string& name) const {
  for (const auto& h : hosts_) {
    if (h->node->name() == name) return *h;
  }
  throw LogicError("no host named " + name);
}

}  // namespace mip6
