#include "core/world.hpp"

#include "util/errors.hpp"

namespace mip6 {

Address RouterEnv::address_on(const Link& link) const {
  return stack->global_address(iface_on(link));
}

IfaceId RouterEnv::iface_on(const Link& link) const {
  for (const auto& iface : node->interfaces()) {
    if (iface->attached() && iface->link() == &link) return iface->id();
  }
  throw LogicError(node->name() + " is not attached to " + link.name());
}

World::World(std::uint64_t seed, WorldConfig config)
    : config_(config), net_(seed), routing_(net_, plan_) {}

Link& World::add_link(const std::string& name, const std::string& prefix) {
  Link& link = net_.add_link(name, config_.link_delay,
                             config_.link_bit_rate_bps);
  std::string p = prefix;
  if (p.empty()) {
    p = "2001:db8:" + std::to_string(next_prefix_index_++) + "::/64";
  }
  plan_.set_link_prefix(link.id(), Prefix::parse(p));
  return link;
}

RouterEnv& World::add_router(const std::string& name,
                             const std::vector<Link*>& links) {
  auto env = std::make_unique<RouterEnv>();
  env->node = &net_.add_node(name);
  for (Link* link : links) {
    Interface& iface = env->node->add_interface();
    iface.attach(*link);
  }
  env->stack = std::make_unique<Ipv6Stack>(*env->node, plan_,
                                           /*forwarding=*/true);
  // Addresses: link-local + global per attached interface.
  for (const auto& iface : env->node->interfaces()) {
    env->stack->add_address(
        iface->id(),
        Address::from_prefix_iid(Address::parse("fe80::"),
                                 env->stack->iid()));
    const Prefix& prefix = plan_.prefix_of(iface->link()->id());
    env->stack->add_address(
        iface->id(),
        Address::from_prefix_iid(prefix.network(), env->stack->iid()));
  }
  env->dispatch = std::make_unique<Icmpv6Dispatcher>(*env->stack);
  env->udp = std::make_unique<UdpDemux>(*env->stack);
  env->mld = std::make_unique<MldRouter>(*env->stack, *env->dispatch,
                                         config_.mld);
  env->pim = std::make_unique<PimDmRouter>(*env->stack, *env->mld,
                                           config_.pim);
  for (const auto& iface : env->node->interfaces()) {
    env->mld->enable_iface(iface->id());
    env->pim->enable_iface(iface->id());
  }
  if (config_.unicast == UnicastRouting::kRipng) {
    env->ripng = std::make_unique<Ripng>(*env->stack, *env->udp,
                                         config_.ripng);
    for (const auto& iface : env->node->interfaces()) {
      env->ripng->enable_iface(iface->id());
    }
  }
  // Home agent with PIM-backed group membership ("HA is a PIM router").
  PimDmRouter* pim = env->pim.get();
  env->ha = std::make_unique<HomeAgent>(
      *env->stack, config_.mipv6,
      HomeAgent::MembershipBackend{
          [pim](const Address& g) { pim->add_local_receiver(g); },
          [pim](const Address& g) { pim->remove_local_receiver(g); }});
  routing_.register_stack(*env->stack);
  // First router on a link becomes its default router / home agent.
  for (Link* link : links) {
    if (!plan_.default_router(link->id())) {
      plan_.set_default_router(link->id(), env->address_on(*link));
    }
  }
  routers_.push_back(std::move(env));
  return *routers_.back();
}

HostEnv& World::add_host(const std::string& name, Link& home,
                         StrategyOptions strategy) {
  auto env = std::make_unique<HostEnv>();
  env->node = &net_.add_node(name);
  Interface& iface = env->node->add_interface();
  iface.attach(home);
  env->stack = std::make_unique<Ipv6Stack>(*env->node, plan_,
                                           /*forwarding=*/false);
  env->dispatch = std::make_unique<Icmpv6Dispatcher>(*env->stack);
  env->mld = std::make_unique<MldHost>(*env->stack, *env->dispatch,
                                       config_.mld, config_.mld_host);

  const Prefix& home_prefix = plan_.prefix_of(home.id());
  Address home_addr =
      Address::from_prefix_iid(home_prefix.network(), env->stack->iid());
  auto gw = plan_.default_router(home.id());
  if (!gw) {
    throw LogicError("host " + name + " added to link " + home.name() +
                     " without a router (add the router first)");
  }
  env->mn = std::make_unique<MobileNode>(*env->stack, iface.id(), home_addr,
                                         *gw, config_.mipv6);
  env->service = std::make_unique<MobileMulticastService>(
      *env->mn, *env->mld, strategy, config_.mld);
  routing_.register_stack(*env->stack);
  hosts_.push_back(std::move(env));
  return *hosts_.back();
}

void World::set_link_router(Link& link, RouterEnv& router) {
  plan_.set_default_router(link.id(), router.address_on(link));
}

void World::finalize() {
  if (config_.unicast == UnicastRouting::kRipng) {
    // Router RIBs belong to RIPng; only hosts need autoconfiguration.
    routing_.autoconfigure_hosts();
  } else {
    routing_.recompute();
  }
}

RouterEnv& World::router_by_name(const std::string& name) const {
  for (const auto& r : routers_) {
    if (r->node->name() == name) return *r;
  }
  throw LogicError("no router named " + name);
}

HostEnv& World::host_by_name(const std::string& name) const {
  for (const auto& h : hosts_) {
    if (h->node->name() == name) return *h;
  }
  throw LogicError("no host named " + name);
}

}  // namespace mip6
