#include "core/describe.hpp"

#include "net/link.hpp"

#include "ipv6/datagram.hpp"
#include "ipv6/icmpv6.hpp"
#include "ipv6/ripng.hpp"
#include "ipv6/udp.hpp"
#include "mipv6/messages.hpp"
#include "mld/messages.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

std::string describe_icmpv6(const ParsedDatagram& d) {
  try {
    Icmpv6Message icmp = Icmpv6Message::parse(d.payload, d.hdr.src, d.hdr.dst);
    switch (icmp.type) {
      case icmpv6::kMldQuery: {
        MldMessage m = MldMessage::from_icmpv6(icmp);
        return m.is_general_query()
                   ? "MLD GeneralQuery maxdelay=" +
                         std::to_string(m.max_response_delay_ms) + "ms"
                   : "MLD Query group=" + m.group.str();
      }
      case icmpv6::kMldReport:
        return "MLD Report group=" +
               MldMessage::from_icmpv6(icmp).group.str();
      case icmpv6::kMldDone:
        return "MLD Done group=" + MldMessage::from_icmpv6(icmp).group.str();
      default:
        return "ICMPv6 type=" + std::to_string(icmp.type);
    }
  } catch (const ParseError&) {
    return "ICMPv6 <malformed>";
  }
}

std::string describe_pim(const ParsedDatagram& d) {
  try {
    PimHeader h = parse_pim(d.payload, d.hdr.src, d.hdr.dst);
    switch (h.type) {
      case PimType::kHello:
        return "PIM Hello holdtime=" +
               std::to_string(PimHello::parse(h.body).holdtime) + "s";
      case PimType::kJoinPrune:
      case PimType::kGraft:
      case PimType::kGraftAck: {
        PimJoinPrune jp = PimJoinPrune::parse(h.body);
        const char* kind = h.type == PimType::kJoinPrune ? "Join/Prune"
                           : h.type == PimType::kGraft   ? "Graft"
                                                         : "GraftAck";
        std::string out = std::string("PIM ") + kind +
                          " up=" + jp.upstream_neighbor.str();
        for (const auto& g : jp.groups) {
          for (const auto& s : g.joined_sources) {
            out += " J(" + s.str() + "," + g.group.str() + ")";
          }
          for (const auto& s : g.pruned_sources) {
            out += " P(" + s.str() + "," + g.group.str() + ")";
          }
        }
        return out;
      }
      case PimType::kAssert: {
        PimAssert a = PimAssert::parse(h.body);
        return "PIM Assert (" + a.source.str() + "," + a.group.str() +
               ") pref=" + std::to_string(a.metric_preference) +
               " metric=" + std::to_string(a.metric);
      }
      case PimType::kStateRefresh: {
        PimStateRefresh sr = PimStateRefresh::parse(h.body);
        return "PIM StateRefresh (" + sr.source.str() + "," +
               sr.group.str() + ") ttl=" + std::to_string(sr.ttl) +
               (sr.prune_indicator ? " P" : "");
      }
    }
    return "PIM type=" + std::to_string(static_cast<int>(h.type));
  } catch (const ParseError&) {
    return "PIM <malformed>";
  }
}

std::string describe_udp(const ParsedDatagram& d) {
  try {
    UdpDatagram u = UdpDatagram::parse(d.payload, d.hdr.src, d.hdr.dst);
    std::string out = "UDP " + std::to_string(u.src_port) + "->" +
                      std::to_string(u.dst_port) + " (" +
                      std::to_string(u.payload.size()) + " B)";
    if (u.dst_port == kRipngPort) {
      try {
        auto rtes = parse_ripng_response(u.payload);
        out = "RIPng Response " + std::to_string(rtes.size()) + " routes";
      } catch (const ParseError&) {
      }
    }
    return out;
  } catch (const ParseError&) {
    return "UDP <malformed>";
  }
}

std::string describe_options(const ParsedDatagram& d) {
  std::string out;
  for (const auto& o : d.dest_options) {
    switch (o.type) {
      case opt::kBindingUpdate:
        try {
          BindingUpdateOption bu = BindingUpdateOption::decode(o);
          out += " BU seq=" + std::to_string(bu.sequence) +
                 " life=" + std::to_string(bu.lifetime_s) + "s";
          if (const BuSubOption* sub =
                  bu.find_sub_option(subopt::kMulticastGroupList)) {
            out += " groups=" +
                   std::to_string(
                       MulticastGroupListSubOption::decode(*sub).groups.size());
          }
        } catch (const ParseError&) {
          out += " BU<malformed>";
        }
        break;
      case opt::kBindingAck:
        out += " BAck";
        break;
      case opt::kHomeAddress:
        try {
          out += " Home=" + HomeAddressOption::decode(o).home_address.str();
        } catch (const ParseError&) {
          out += " Home<malformed>";
        }
        break;
      default:
        out += " opt" + std::to_string(o.type);
    }
  }
  return out;
}

}  // namespace

std::string describe_datagram(BytesView wire) {
  ParsedDatagram d;
  try {
    d = parse_datagram(wire);
  } catch (const ParseError& e) {
    return "<malformed datagram: " + std::string(e.what()) + ">";
  }
  std::string out = "IPv6 " + d.hdr.src.str() + " -> " + d.hdr.dst.str() +
                    " hl=" + std::to_string(d.hdr.hop_limit);
  out += describe_options(d);
  out += " | ";
  switch (d.protocol) {
    case proto::kUdp:
      out += describe_udp(d);
      break;
    case proto::kIcmpv6:
      out += describe_icmpv6(d);
      break;
    case proto::kPim:
      out += describe_pim(d);
      break;
    case proto::kIpv6:
      out += "tunnel[ " + describe_datagram(d.payload) + " ]";
      break;
    case proto::kNoNext:
      out += "(no payload)";
      break;
    default:
      out += "proto=" + std::to_string(d.protocol) + " (" +
             std::to_string(d.payload.size()) + " B)";
  }
  return out;
}

std::string describe_link(const Link& link) {
  std::string out = link.name() + ": " + (link.up() ? "up" : "DOWN");
  const LinkImpairment& imp = link.impairment();
  if (imp.loss > 0.0) {
    out += " loss=" + std::to_string(static_cast<int>(imp.loss * 100)) + "%";
  }
  if (imp.corrupt > 0.0) {
    out +=
        " corrupt=" + std::to_string(static_cast<int>(imp.corrupt * 100)) + "%";
  }
  if (imp.jitter > Time::zero()) {
    out += " jitter=" + std::to_string(imp.jitter.to_millis()) + "ms";
  }
  out += " tx=" + std::to_string(link.tx_packets()) +
         " rx=" + std::to_string(link.rx_packets()) +
         " dropped=" + std::to_string(link.dropped_packets()) +
         " corrupted=" + std::to_string(link.corrupted_packets());
  return out;
}

}  // namespace mip6
