// Quantification of the paper's Section 4.3 comparison criteria.
//
// A network-wide transmission hook classifies every frame placed on every
// link. For the tracked group, each transmission carrying group data —
// natively or inside a Mobile IPv6 tunnel — is charged to the link; per
// distinct application datagram the metric also charges the *optimal* cost
// (bytes × links of the current shortest-path tree from the source link to
// the member links). The difference is exactly the bandwidth the paper
// calls wasted — flooding before prunes, leave-delay forwarding onto
// memberless links, and tunnel detours — and the ratio is the routing
// stretch ("datagrams crossing some links and routers twice").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "ipv6/global_routing.hpp"
#include "ipv6/udp.hpp"
#include "net/network.hpp"

namespace mip6 {

class McastMetrics {
 public:
  /// Starts observing `net` for UDP datagrams to `group` on `data_port`.
  McastMetrics(Network& net, GlobalRouting& routing, Address group,
               std::uint16_t data_port);

  /// Declares the current source link and member links; called by the
  /// scenario whenever membership or positions change. The optimal tree is
  /// recomputed from the unicast topology.
  void update_reference_tree(LinkId source_link,
                             const std::vector<LinkId>& member_links);

  // --- Aggregates -------------------------------------------------------
  /// Total group-data octets placed on links (native + tunneled).
  std::uint64_t actual_bytes() const { return actual_bytes_; }
  /// Octets an ideal shortest-path tree would have placed.
  std::uint64_t optimal_bytes() const { return optimal_bytes_; }
  /// actual - optimal, clamped at zero.
  std::uint64_t wasted_bytes() const {
    return actual_bytes_ > optimal_bytes_ ? actual_bytes_ - optimal_bytes_
                                          : 0;
  }
  double stretch() const {
    return optimal_bytes_ == 0
               ? 0.0
               : static_cast<double>(actual_bytes_) /
                     static_cast<double>(optimal_bytes_);
  }
  /// Octets of group data tunneled (unicast encapsulated) rather than
  /// natively multicast.
  std::uint64_t tunneled_bytes() const { return tunneled_bytes_; }
  std::uint64_t data_transmissions() const { return data_tx_; }
  std::uint64_t distinct_datagrams() const { return seen_seqs_.size(); }

  // --- Per-link views (leave-delay measurements) -------------------------
  Time last_data_tx_on(LinkId link) const;
  std::uint64_t data_tx_count_on(LinkId link) const;
  std::uint64_t data_bytes_on(LinkId link) const;

 private:
  struct LinkStats {
    std::uint64_t tx = 0;
    std::uint64_t bytes = 0;
    Time last_tx = Time::never();
  };

  void on_tx(const Link& link, const Packet& pkt);

  // on_tx runs on whichever shard transmits, so the accumulators are
  // guarded; aggregate reads are for quiesced contexts (structural probes,
  // post-run assertions), same contract as the Link counters.
  mutable std::mutex mu_;
  Network* net_;
  GlobalRouting* routing_;
  Address group_;
  std::uint16_t data_port_;

  std::size_t reference_tree_links_ = 0;
  std::uint64_t actual_bytes_ = 0;
  std::uint64_t optimal_bytes_ = 0;
  std::uint64_t tunneled_bytes_ = 0;
  std::uint64_t data_tx_ = 0;
  std::set<std::uint32_t> seen_seqs_;
  std::map<LinkId, LinkStats> per_link_;
};

}  // namespace mip6
