// The scenario world: one Network plus fully wired protocol engines per
// node. Routers get the full paper role — PIM-DM router, MLD querier and
// Mobile IPv6 home agent — and every host is mobility-capable (a host that
// never moves behaves exactly like a static host).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mobile_service.hpp"
#include "core/strategy.hpp"
#include "ipv6/global_routing.hpp"
#include "ipv6/icmpv6_dispatch.hpp"
#include "ipv6/ripng.hpp"
#include "ipv6/udp_demux.hpp"
#include "ipv6/stack.hpp"
#include "mipv6/home_agent.hpp"
#include "mipv6/mobile_node.hpp"
#include "mld/host.hpp"
#include "mld/router.hpp"
#include "net/network.hpp"
#include "pimdm/router.hpp"

namespace mip6 {

/// Which unicast substrate feeds the RPF checks.
enum class UnicastRouting {
  /// Instantly-converged oracle (ns-3 GlobalRouting style) — default.
  kGlobalOracle,
  /// Real distance-vector protocol with convergence transients.
  kRipng,
};

struct WorldConfig {
  MldConfig mld;
  MldHostPolicy mld_host;
  PimDmConfig pim;
  Mipv6Config mipv6;
  UnicastRouting unicast = UnicastRouting::kGlobalOracle;
  RipngConfig ripng;
  /// Per-link propagation delay / bit rate for new links.
  Time link_delay = Time::us(100);
  std::uint64_t link_bit_rate_bps = 0;  // 0 = infinitely fast
};

struct RouterEnv {
  Node* node = nullptr;
  std::unique_ptr<Ipv6Stack> stack;
  std::unique_ptr<Icmpv6Dispatcher> dispatch;
  std::unique_ptr<UdpDemux> udp;
  std::unique_ptr<MldRouter> mld;
  std::unique_ptr<PimDmRouter> pim;
  std::unique_ptr<HomeAgent> ha;
  std::unique_ptr<Ripng> ripng;  // only with UnicastRouting::kRipng

  /// Global address of this router's interface attached to `link`.
  Address address_on(const Link& link) const;
  IfaceId iface_on(const Link& link) const;
};

struct HostEnv {
  Node* node = nullptr;
  std::unique_ptr<Ipv6Stack> stack;
  std::unique_ptr<Icmpv6Dispatcher> dispatch;
  std::unique_ptr<MldHost> mld;
  std::unique_ptr<MobileNode> mn;
  std::unique_ptr<MobileMulticastService> service;

  IfaceId iface() const { return mn->iface(); }
};

class World {
 public:
  explicit World(std::uint64_t seed = 1, WorldConfig config = {});

  Network& net() { return net_; }
  AddressingPlan& plan() { return plan_; }
  GlobalRouting& routing() { return routing_; }
  Scheduler& scheduler() { return net_.scheduler(); }
  Time now() const { return net_.now(); }
  const WorldConfig& config() const { return config_; }

  /// Creates a link; `prefix` empty means auto ("2001:db8:<n>::/64").
  Link& add_link(const std::string& name, const std::string& prefix = "");

  /// Creates a router attached to `links` with PIM + MLD enabled on every
  /// interface and a home agent (PIM-backed membership).
  RouterEnv& add_router(const std::string& name,
                        const std::vector<Link*>& links);

  /// Creates a (mobility-capable) host homed on `home`, with the link's
  /// designated router as home agent. Strategy defaults to local membership.
  HostEnv& add_host(const std::string& name, Link& home,
                    StrategyOptions strategy = {});

  /// Designates `router` as default router / home agent for `link` (done
  /// automatically for the first router attached to a link).
  void set_link_router(Link& link, RouterEnv& router);

  /// Installs routes and autoconfigures hosts. Call after building the
  /// topology and before run().
  void finalize();

  std::uint64_t run_until(Time t) { return net_.scheduler().run_until(t); }

  const std::vector<std::unique_ptr<RouterEnv>>& routers() const {
    return routers_;
  }
  const std::vector<std::unique_ptr<HostEnv>>& hosts() const { return hosts_; }
  RouterEnv& router_by_name(const std::string& name) const;
  HostEnv& host_by_name(const std::string& name) const;

 private:
  WorldConfig config_;
  Network net_;
  AddressingPlan plan_;
  GlobalRouting routing_;
  std::vector<std::unique_ptr<RouterEnv>> routers_;
  std::vector<std::unique_ptr<HostEnv>> hosts_;
  std::uint32_t next_prefix_index_ = 1;
};

}  // namespace mip6
