// The scenario world: one Network plus a NodeRuntime (ordered
// ProtocolModule stack) per node. By default routers get the full paper
// role — PIM-DM router, MLD querier and Mobile IPv6 home agent — and every
// host is mobility-capable (a host that never moves behaves exactly like a
// static host). Per-node module sets and config overrides allow
// heterogeneous scenarios (e.g. a PIM-less unicast router or a host with a
// different MLD policy).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/node_runtime.hpp"
#include "core/strategy.hpp"
#include "ipv6/global_routing.hpp"
#include "net/network.hpp"

namespace mip6 {

/// Which unicast substrate feeds the RPF checks.
enum class UnicastRouting {
  /// Instantly-converged oracle (ns-3 GlobalRouting style) — default.
  kGlobalOracle,
  /// Real distance-vector protocol with convergence transients.
  kRipng,
};

/// Which dense-mode multicast engine `with_pim` routers run.
enum class DenseEngineKind {
  /// Soft-state flood-and-prune (the paper's substrate) — default.
  kPimDm,
  /// Hard-state engine with reliable, acknowledged control sync.
  kHpimDm,
};

struct WorldConfig {
  MldConfig mld;
  MldHostPolicy mld_host;
  PimDmConfig pim;
  HpimDmConfig hpim;
  Mipv6Config mipv6;
  UnicastRouting unicast = UnicastRouting::kGlobalOracle;
  DenseEngineKind dense_engine = DenseEngineKind::kPimDm;
  RipngConfig ripng;
  /// Per-link propagation delay / bit rate for new links.
  Time link_delay = Time::us(100);
  std::uint64_t link_bit_rate_bps = 0;  // 0 = infinitely fast
};

/// Per-router module selection + config overrides (defaults reproduce the
/// classic full-role router). `ripng` unset follows WorldConfig::unicast;
/// `engine` unset follows WorldConfig::dense_engine.
struct RouterOptions {
  bool with_mld = true;
  bool with_pim = true;       // requires with_mld
  bool with_ha = true;        // requires with_pim (PIM-backed membership)
  bool with_proxy = true;     // hier-proxy agent; requires with_pim
  bool with_ar_agent = true;  // mcast-mobility agent; requires with_mld
  std::optional<DenseEngineKind> engine;
  std::optional<bool> with_ripng;
  std::optional<MldConfig> mld;
  std::optional<PimDmConfig> pim;
  std::optional<HpimDmConfig> hpim;
  std::optional<Mipv6Config> mipv6;
  std::optional<RipngConfig> ripng;
};

/// Per-host strategy + config overrides. Implicitly constructible from a
/// StrategyOptions (or its two enums) so add_host keeps its short forms.
struct HostOptions {
  HostOptions() = default;
  HostOptions(StrategyOptions s) : strategy(s) {}
  HostOptions(McastStrategy s, HaRegistration r) : strategy{s, r} {}

  StrategyOptions strategy;
  std::optional<MldConfig> mld;
  std::optional<MldHostPolicy> mld_host;
  std::optional<Mipv6Config> mipv6;
};

class World {
 public:
  explicit World(std::uint64_t seed = 1, WorldConfig config = {});
  ~World();

  Network& net() { return net_; }
  AddressingPlan& plan() { return plan_; }
  GlobalRouting& routing() { return routing_; }
  Scheduler& scheduler() { return net_.scheduler(); }
  Time now() const { return net_.now(); }
  const WorldConfig& config() const { return config_; }

  /// Creates a link; `prefix` empty means auto ("2001:db8:<n>::/64").
  Link& add_link(const std::string& name, const std::string& prefix = "");

  /// Creates a router attached to `links` with (by default) PIM + MLD
  /// enabled on every interface and a home agent (PIM-backed membership).
  NodeRuntime& add_router(const std::string& name,
                          const std::vector<Link*>& links,
                          const RouterOptions& opts = {});

  /// Creates a (mobility-capable) host homed on `home`, with the link's
  /// designated router as home agent. Strategy defaults to local membership.
  NodeRuntime& add_host(const std::string& name, Link& home,
                        const HostOptions& opts = {});

  /// Designates `router` as default router / home agent for `link` (done
  /// automatically for the first router attached to a link).
  void set_link_router(Link& link, NodeRuntime& router);

  /// Designates `router` (which must run a MulticastProxy) as the
  /// hierarchical multicast proxy serving `link` — the agent hier-proxy MNs
  /// visiting that link register their groups with. Not set by default:
  /// proxy domains are an explicit topology decision.
  void set_link_proxy(Link& link, NodeRuntime& router);

  /// Installs routes and autoconfigures hosts. Call after building the
  /// topology and before run().
  void finalize();

  /// Switches the scheduler into windowed parallel execution over at most
  /// `threads` shards (see core/partition.hpp for the placement rules;
  /// lookahead = minimum link delay). Call after finalize(), before run.
  /// Returns the shard count actually in effect — 1 means the world fell
  /// back to serial (threads <= 1, a zero-delay link, or a topology whose
  /// co-sharding constraints leave a single component). Execution is
  /// byte-identical to serial at any returned count.
  std::uint32_t enable_parallel(std::uint32_t threads);
  void disable_parallel() { net_.disable_sharding(); }

  std::uint64_t run_until(Time t) { return net_.scheduler().run_until(t); }

  /// Deterministic teardown: stops every module, hosts first then routers,
  /// each in reverse construction order (also run by the destructor).
  void stop();

  const std::vector<std::unique_ptr<NodeRuntime>>& routers() const {
    return routers_;
  }
  const std::vector<std::unique_ptr<NodeRuntime>>& hosts() const {
    return hosts_;
  }
  NodeRuntime& router_by_name(const std::string& name) const;
  NodeRuntime& host_by_name(const std::string& name) const;

 private:
  WorldConfig config_;
  Network net_;
  AddressingPlan plan_;
  GlobalRouting routing_;
  std::vector<std::unique_ptr<NodeRuntime>> routers_;
  std::vector<std::unique_ptr<NodeRuntime>> hosts_;
  std::uint32_t next_prefix_index_ = 1;
};

}  // namespace mip6
