// Topology partitioning for conservative parallel execution.
//
// The windowed scheduler (sim/scheduler.hpp) runs each node's domain on a
// fixed shard; cross-shard packet deliveries are staged at window barriers
// under the lookahead guarantee. The partition decides which nodes share a
// shard, under one safety constraint and one quality goal:
//
//   Constraint — every node attached to a host-bearing link is co-sharded
//   with that link's other attachees. A host's home link carries state
//   that one domain writes while neighbors read synchronously during their
//   own events: the home agent's proxy-ND answers (mutated by binding
//   updates in the HA's domain, read by any sender resolving the home
//   address) and the host's autoconfigured address set. Putting the whole
//   home cell — host, designated router, and everyone else on that LAN —
//   on one shard makes those reads same-thread. Router-to-router links
//   only carry structurally-mutated state (attachment list, impairments,
//   admin up/down — all world-domain) and may cross shards freely.
//
//   Goal — balanced shard weights with BFS locality, so most traffic stays
//   shard-local and the per-window cross-shard staging volume stays small.
//
// The lookahead is the minimum propagation delay over all links: a domain
// cannot cause an event on another node sooner than one link traversal.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace mip6 {

struct Partition {
  /// Indexed by scheduler Domain (0 = world, mapped to the structural
  /// shard; domain d >= 1 is node d-1). Values are shard slots.
  std::vector<std::uint32_t> domain_shard;
  /// Shards actually used (<= the requested maximum; 1 = don't bother).
  std::uint32_t shards = 1;
  /// Minimum link propagation delay — the conservative lookahead. Zero or
  /// negative means the topology has a zero-delay link and cannot be
  /// safely windowed (caller should stay serial).
  Time lookahead = Time::zero();
};

/// Computes a partition of `net`'s nodes into at most `max_shards` shards.
/// `is_host` is indexed by NodeId and marks mobility-capable end hosts
/// (their attachment links become co-sharding constraints). Deterministic:
/// depends only on topology and ids, never on execution state.
Partition partition_topology(const Network& net,
                             const std::vector<bool>& is_host,
                             std::uint32_t max_shards);

}  // namespace mip6
