#include "core/traffic.hpp"

namespace mip6 {

Bytes CbrPayload::encode(std::size_t total_size) const {
  if (total_size < kMinSize) total_size = kMinSize;
  BufferWriter w(total_size);
  w.u32(seq);
  w.u64(static_cast<std::uint64_t>(sent_at.nanos()));
  w.zeros(total_size - kMinSize);
  return std::move(w).take();
}

CbrPayload CbrPayload::decode(BytesView payload) {
  BufferReader r(payload);
  CbrPayload p;
  p.seq = r.u32();
  p.sent_at = Time::ns(static_cast<std::int64_t>(r.u64()));
  return p;
}

CbrSource::CbrSource(Scheduler& sched, SendFn send, Time interval,
                     std::size_t payload_size, std::optional<Domain> domain)
    : sched_(&sched), send_(std::move(send)), interval_(interval),
      payload_size_(payload_size), timer_(sched, [this] { tick(); }) {
  if (domain) timer_.bind_domain(*domain);
}

void CbrSource::start(Time at) {
  Time delay = at - sched_->now();
  if (delay < Time::zero()) delay = Time::zero();
  timer_.arm(delay);
}

void CbrSource::stop() { timer_.cancel(); }

void CbrSource::tick() {
  CbrPayload p;
  p.seq = next_seq_++;
  p.sent_at = sched_->now();
  send_(p.encode(payload_size_));
  timer_.arm(interval_);
}

GroupReceiverApp::GroupReceiverApp(Ipv6Stack& stack, std::uint16_t port)
    : sched_(&stack.scheduler()), port_(port) {
  stack.set_proto_handler(
      proto::kUdp,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_udp(d, iface);
      });
}

void GroupReceiverApp::on_udp(const ParsedDatagram& d, IfaceId iface) {
  (void)iface;
  UdpDatagram udp;
  try {
    udp = UdpDatagram::parse(d.payload, d.hdr.src, d.hdr.dst);
  } catch (const ParseError&) {
    return;
  }
  if (udp.dst_port != port_) return;
  CbrPayload p;
  try {
    p = CbrPayload::decode(udp.payload);
  } catch (const ParseError&) {
    return;
  }
  if (!seen_.insert(p.seq).second) {
    ++duplicates_;
    return;
  }
  log_.push_back(Rx{p.seq, p.sent_at, sched_->now()});
}

std::optional<Time> GroupReceiverApp::first_rx_at_or_after(Time t) const {
  std::optional<Time> best;
  for (const auto& rx : log_) {
    if (rx.received_at >= t && (!best || rx.received_at < *best)) {
      best = rx.received_at;
    }
  }
  return best;
}

std::optional<Time> GroupReceiverApp::last_rx() const {
  std::optional<Time> best;
  for (const auto& rx : log_) {
    if (!best || rx.received_at > *best) best = rx.received_at;
  }
  return best;
}

std::uint64_t GroupReceiverApp::received_in(Time from, Time to) const {
  std::uint64_t n = 0;
  for (const auto& rx : log_) {
    if (rx.received_at >= from && rx.received_at < to) ++n;
  }
  return n;
}

}  // namespace mip6
