// The mobile host's multicast service: a thin ProtocolModule shell over a
// pluggable DeliveryStrategy (core/delivery_strategy.hpp). The shell owns
// what is strategy-independent — the MobileNode attachment/link-change
// callbacks and the strategy-switch transition — and delegates the send
// path, the receive/registration path and the handoff sequence to the
// active strategy object.
//
// The paper's four Table 1 approaches share one strategy implementation;
// the related-work approaches (hier-proxy, mcast-mobility) get their own.
#pragma once

#include <memory>

#include "core/delivery_strategy.hpp"
#include "core/strategy.hpp"
#include "mipv6/mobile_node.hpp"
#include "mld/host.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class MobileMulticastService : public ProtocolModule {
 public:
  MobileMulticastService(MobileNode& mn, MldHost& mld, StrategyOptions opts,
                         MldConfig mld_config);
  ~MobileMulticastService() override;

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "service"; }
  /// Subscriptions live in the MobileNode and per-link state in MldHost
  /// (both reset by their own modules); the strategy forgets its own soft
  /// state silently.
  void on_crash() override;
  void on_restart() override {}
  /// Teardown: releases the MobileNode callbacks.
  void stop() override;

  void set_strategy(StrategyOptions opts);
  const StrategyOptions& strategy() const { return opts_; }
  const DeliveryStrategy& delivery() const { return *strategy_; }

  /// Application subscribes to / leaves a group.
  void subscribe(const Address& group);
  void unsubscribe(const Address& group);

  /// Sends one UDP datagram to the group per the sender-side strategy.
  void send_multicast(const Address& group, std::uint16_t src_port,
                      std::uint16_t dst_port, Bytes payload);

  MobileNode& mobile_node() const { return *mn_; }

 private:
  DeliveryContext context() const;

  MobileNode* mn_;
  MldHost* mld_;
  StrategyOptions opts_;
  MldConfig mld_config_;
  std::unique_ptr<DeliveryStrategy> strategy_;
};

}  // namespace mip6
