// Strategy glue: implements the paper's four delivery approaches on top of
// the unmodified MLD / PIM-DM / Mobile IPv6 engines.
//
// The mapping from Section 4.2:
//  * receive locally  -> (re-)join via the MLD host side on every new link
//    (with or without unsolicited Reports, per MldHostPolicy);
//  * receive via tunnel -> register groups with the HA, either through the
//    Multicast Group List Sub-Option in Binding Updates (Figure 5) or by
//    sending MLD Reports through the tunnel;
//  * send locally -> native transmission with the current source address
//    (during the movement-detection window this is the stale address — the
//    paper's spurious-assert trigger);
//  * send via tunnel -> encapsulate with the home address as inner source.
#pragma once

#include <set>

#include "core/strategy.hpp"
#include "ipv6/udp.hpp"
#include "mipv6/mobile_node.hpp"
#include "mld/host.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class MobileMulticastService : public ProtocolModule {
 public:
  MobileMulticastService(MobileNode& mn, MldHost& mld, StrategyOptions opts,
                         MldConfig mld_config);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "service"; }
  /// Nothing of its own to crash: subscriptions live in the MobileNode and
  /// the per-link state in MldHost, both reset by their own modules.
  void on_crash() override {}
  void on_restart() override {}
  /// Teardown: releases the MobileNode callbacks.
  void stop() override;

  void set_strategy(StrategyOptions opts);
  const StrategyOptions& strategy() const { return opts_; }

  /// Application subscribes to / leaves a group.
  void subscribe(const Address& group);
  void unsubscribe(const Address& group);

  /// Sends one UDP datagram to the group per the sender-side strategy.
  void send_multicast(const Address& group, std::uint16_t src_port,
                      std::uint16_t dst_port, Bytes payload);

  MobileNode& mobile_node() const { return *mn_; }

 private:
  void on_attached();
  void apply_receive_policy();

  MobileNode* mn_;
  MldHost* mld_;
  StrategyOptions opts_;
  MldConfig mld_config_;
};

}  // namespace mip6
