// Pluggable multicast delivery strategies (the layer behind
// MobileMulticastService), mirroring the DenseModeEngine pattern: one
// polymorphic interface owning the send path, the receive/registration path
// and the handoff sequence, with one object per approach.
//
// Approaches 1-4 (the paper's Table 1) share a single implementation,
// Table1DeliveryStrategy, that is a verbatim transcription of the
// pre-refactor enum-driven logic — the Figure 1-4 roundtrip tests pin it to
// byte-identical traces. Approaches 5 (hier-proxy) and 6 (mcast-mobility)
// are the related-work schemes the enum could not express; their router-side
// counterparts are the MulticastProxy and AccessRouterAgent modules.
#pragma once

#include <memory>

#include "core/strategy.hpp"
#include "ipv6/udp.hpp"
#include "mipv6/mobile_node.hpp"
#include "mld/host.hpp"

namespace mip6 {

class DeliveryStrategy {
 public:
  virtual ~DeliveryStrategy() = default;

  /// Stable name, identical to strategy_name(options().strategy).
  virtual const char* name() const = 0;
  /// True while the strategy represents the MN's groups *at the home agent*
  /// (group list in BUs or tunneled MLD). A strategy switch away from a
  /// registering strategy sends the explicit empty-group-list BU.
  virtual bool registers_at_ha() const = 0;

  /// Reconciles local MLD state, receive filters and registration signaling
  /// with the MN's current attachment (idempotent; the handoff workhorse).
  virtual void apply_receive_policy() = 0;
  /// Movement completed: care-of address configured, Binding Update sent.
  virtual void on_attached() = 0;
  /// Application joins / leaves a group.
  virtual void subscribe(const Address& group) = 0;
  virtual void unsubscribe(const Address& group) = 0;
  /// Sends one UDP datagram to the group per the sender-side approach.
  virtual void send_multicast(const Address& group, std::uint16_t src_port,
                              std::uint16_t dst_port, Bytes payload) = 0;

  /// Releases strategy-held signaling state (proxy registrations, AR joins,
  /// reachability-group membership) before the strategy is replaced or the
  /// service stops. Must not touch MobileNode callbacks.
  virtual void deactivate() {}
  /// Host crash: forget soft state silently — no wire traffic; router-side
  /// soft state times out on its own.
  virtual void on_host_crash() {}
};

/// Everything a strategy needs from its host node.
struct DeliveryContext {
  MobileNode* mn = nullptr;
  MldHost* mld = nullptr;
  MldConfig mld_config;
};

/// The per-MN reachability group of the mcast-mobility approach: a global-
/// scope transient group derived from the node's interface identifier, so
/// it is deterministic and collision-free across the world.
Address reachability_group(const MobileNode& mn);

std::unique_ptr<DeliveryStrategy> make_delivery_strategy(
    StrategyOptions opts, const DeliveryContext& ctx);

}  // namespace mip6
