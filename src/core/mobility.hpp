// Mobility processes for mobile hosts.
//
// RandomMover: the host hops among a candidate link set with exponential
// dwell times (rate λ = 1/mean_dwell) — the "mobility rate" knob of the
// paper's bandwidth-cost discussion. ItineraryMover: a scripted sequence of
// (time, link) moves for the deterministic figure scenarios.
#pragma once

#include <functional>
#include <vector>

#include "mipv6/mobile_node.hpp"
#include "sim/timer.hpp"

namespace mip6 {

class RandomMover {
 public:
  RandomMover(MobileNode& mn, Rng& rng, std::vector<Link*> candidates,
              Time mean_dwell);

  void start(Time first_move_at);
  void stop();
  std::uint64_t moves() const { return moves_; }

  /// Invoked right after each move (new link already attached).
  void set_on_move(std::function<void(Link&)> cb) { on_move_ = std::move(cb); }

 private:
  void move_once();

  MobileNode* mn_;
  Rng* rng_;
  std::vector<Link*> candidates_;
  Time mean_dwell_;
  std::uint64_t moves_ = 0;
  Timer timer_;
  std::function<void(Link&)> on_move_;
};

/// Scripted moves at fixed times.
class ItineraryMover {
 public:
  struct Step {
    Time at;
    Link* to;
  };

  ItineraryMover(MobileNode& mn, Scheduler& sched);

  void add_step(Time at, Link& to);
  void set_on_move(std::function<void(Link&)> cb) { on_move_ = std::move(cb); }

 private:
  MobileNode* mn_;
  Scheduler* sched_;
  std::function<void(Link&)> on_move_;
};

}  // namespace mip6
