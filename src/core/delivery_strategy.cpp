#include "core/delivery_strategy.hpp"

#include <optional>
#include <vector>

#include "ipv6/datagram.hpp"
#include "mipv6/proxy_messages.hpp"
#include "sim/timer.hpp"

namespace mip6 {

namespace {

/// Sends one mobility control message (proxy register / AR join ...) as a
/// plain UDP datagram from the MN's current source address.
void send_ctrl(MobileNode& mn, const Address& dst, std::uint16_t port,
               const MobilityCtrlMessage& m, const char* counter) {
  UdpDatagram udp;
  udp.src_port = port;
  udp.dst_port = port;
  udp.payload = m.serialize();
  DatagramSpec spec;
  spec.src = mn.current_source();
  spec.dst = dst;
  spec.protocol = proto::kUdp;
  spec.payload = udp.serialize(spec.src, spec.dst);
  mn.stack().network().counters().add(counter);
  mn.stack().send(spec);
}

// ---------------------------------------------------------------------------
// Approaches 1-4: the paper's Table 1, parameterized by the 2x2 predicates.
// This is a verbatim transcription of the pre-refactor enum-driven
// MobileMulticastService logic; the Figure 1-4 roundtrip tests pin it to
// byte-identical traces, so resist the urge to "improve" it.

class Table1DeliveryStrategy final : public DeliveryStrategy {
 public:
  Table1DeliveryStrategy(StrategyOptions opts, const DeliveryContext& ctx)
      : mn_(ctx.mn), mld_(ctx.mld), opts_(opts), mld_config_(ctx.mld_config) {}

  const char* name() const override { return strategy_name(opts_.strategy); }
  bool registers_at_ha() const override {
    return !receives_locally(opts_.strategy);
  }

  void subscribe(const Address& group) override {
    mn_->subscribe(group);
    apply_receive_policy();
  }

  void unsubscribe(const Address& group) override {
    mld_->leave(mn_->iface(), group);
    mn_->unsubscribe(group);
    // A departing member should stop being represented at the HA too.
    if (mn_->away_from_home() && !receives_locally(opts_.strategy)) {
      if (opts_.registration == HaRegistration::kGroupListBu) {
        mn_->send_binding_update();
      }
      mn_->stop_tunneled_reports(group);
    }
  }

  void apply_receive_policy() override {
    const IfaceId iface = mn_->iface();
    const bool local =
        receives_locally(opts_.strategy) || !mn_->away_from_home();

    mn_->set_group_list_in_bu(
        !receives_locally(opts_.strategy) &&
        opts_.registration == HaRegistration::kGroupListBu);

    for (const Address& g : mn_->subscriptions()) {
      if (local) {
        // Local membership on the current link (the MldHost join installs
        // the receive filter and transmits Reports per policy).
        mld_->join(iface, g);
        mn_->stop_tunneled_reports(g);
      } else {
        // Tunnel reception: no local MLD signaling on the foreign link.
        mld_->leave(iface, g);
        mn_->subscribe(g);  // keep the receive filter the leave removed
        if (opts_.registration == HaRegistration::kTunnelMld) {
          // Refresh well inside the HA's listener lifetime.
          mn_->start_tunneled_reports(g, mld_config_.query_interval);
        }
      }
    }
  }

  void on_attached() override {
    apply_receive_policy();
    const bool local =
        receives_locally(opts_.strategy) || !mn_->away_from_home();
    if (local) {
      // Re-announce memberships on the new link (unsolicited Reports if the
      // policy allows; otherwise the paper's "wait for the next Query" case).
      mld_->announce_all(mn_->iface());
    } else if (opts_.registration == HaRegistration::kGroupListBu &&
               mn_->away_from_home() && !mn_->subscriptions().empty()) {
      // The BU sent during attachment already carried the group list;
      // nothing further to do here.
    }
  }

  void send_multicast(const Address& group, std::uint16_t src_port,
                      std::uint16_t dst_port, Bytes payload) override {
    const bool local = sends_locally(opts_.strategy) || !mn_->away_from_home();
    UdpDatagram udp;
    udp.src_port = src_port;
    udp.dst_port = dst_port;
    udp.payload = std::move(payload);

    DatagramSpec spec;
    spec.dst = group;
    spec.protocol = proto::kUdp;
    if (local) {
      // Native send; during the movement-detection window current_source()
      // is still the previous (stale) address.
      spec.src = mn_->current_source();
      spec.payload = udp.serialize(spec.src, spec.dst);
      mn_->stack().send_on_iface(mn_->iface(), spec);
    } else {
      // Reverse tunnel: home address as inner source, so the home-rooted
      // distribution tree keeps serving the group (paper Figure 4).
      spec.src = mn_->home_address();
      spec.payload = udp.serialize(spec.src, spec.dst);
      mn_->tunnel_to_ha(build_datagram(spec));
    }
  }

 private:
  MobileNode* mn_;
  MldHost* mld_;
  StrategyOptions opts_;
  MldConfig mld_config_;
};

// ---------------------------------------------------------------------------
// Approach 5: hierarchical domain proxy (Schmidt/Waehlisch, cs/0408009).
//
// The addressing plan designates a MulticastProxy router per link. While
// away on a link with a proxy, the MN keeps *no* state on the home tree and
// no local MLD state: it registers (home, care-of, groups) at the proxy,
// which subscribes on the MN's behalf and tunnels matching group traffic to
// the care-of address. Intra-domain handoff (same proxy) is one refreshed
// registration — the distribution tree is untouched. The registration is
// soft state refreshed every MLD query interval. The send path reverse-
// tunnels through the HA so the home-rooted tree keeps serving the group
// regardless of where the sender roams.

class HierProxyStrategy final : public DeliveryStrategy {
 public:
  explicit HierProxyStrategy(const DeliveryContext& ctx)
      : mn_(ctx.mn), mld_(ctx.mld), mld_config_(ctx.mld_config) {
    refresh_timer_ = std::make_unique<Timer>(
        mn_->stack().scheduler(),
        [this] {
          if (!proxy_.is_unspecified() && mn_->away_from_home()) {
            send_register();
            refresh_timer_->arm(mld_config_.query_interval);
          }
        },
        mn_->stack().node().domain());
  }

  const char* name() const override { return "hier-proxy"; }
  /// Groups live at the proxy, not the HA.
  bool registers_at_ha() const override { return false; }

  void subscribe(const Address& group) override {
    mn_->subscribe(group);
    apply_receive_policy();
    if (!proxy_.is_unspecified()) send_register();
  }

  void unsubscribe(const Address& group) override {
    mld_->leave(mn_->iface(), group);
    mn_->unsubscribe(group);
    if (!proxy_.is_unspecified()) send_register();  // shrunk group list
  }

  void apply_receive_policy() override {
    const IfaceId iface = mn_->iface();
    mn_->set_group_list_in_bu(false);
    const bool local = !mn_->away_from_home() || !current_proxy().has_value();
    for (const Address& g : mn_->subscriptions()) {
      if (local) {
        // At home — or away in a proxy-less domain, where the strategy
        // degrades to plain local membership.
        mld_->join(iface, g);
      } else {
        // The proxy represents us; keep only the receive filter so the
        // proxy's tunneled copies pass after decapsulation.
        mld_->leave(iface, g);
        mn_->subscribe(g);
      }
    }
  }

  void on_attached() override {
    apply_receive_policy();
    const Address new_proxy =
        current_proxy().value_or(Address());
    if (!proxy_.is_unspecified() && !(proxy_ == new_proxy)) {
      // Inter-domain move (or returned home): release the old proxy now
      // instead of letting the registration age out.
      send_deregister(proxy_);
    }
    proxy_ = new_proxy;
    if (!proxy_.is_unspecified()) {
      send_register();
      refresh_timer_->arm(mld_config_.query_interval);
    } else {
      refresh_timer_->cancel();
      mld_->announce_all(mn_->iface());
    }
  }

  void send_multicast(const Address& group, std::uint16_t src_port,
                      std::uint16_t dst_port, Bytes payload) override {
    UdpDatagram udp;
    udp.src_port = src_port;
    udp.dst_port = dst_port;
    udp.payload = std::move(payload);
    DatagramSpec spec;
    spec.dst = group;
    spec.protocol = proto::kUdp;
    if (!mn_->away_from_home()) {
      spec.src = mn_->current_source();
      spec.payload = udp.serialize(spec.src, spec.dst);
      mn_->stack().send_on_iface(mn_->iface(), spec);
    } else {
      // Reverse tunnel: the home-rooted tree is the one stable tree that
      // survives intra-domain handoff, so mobile senders feed it.
      spec.src = mn_->home_address();
      spec.payload = udp.serialize(spec.src, spec.dst);
      mn_->tunnel_to_ha(build_datagram(spec));
    }
  }

  void deactivate() override {
    if (!proxy_.is_unspecified()) send_deregister(proxy_);
    proxy_ = Address();
    refresh_timer_->cancel();
  }

  void on_host_crash() override {
    // Silent: the proxy's registration lifetime reclaims the state.
    proxy_ = Address();
    refresh_timer_->cancel();
  }

 private:
  std::optional<Address> current_proxy() const {
    if (!mn_->away_from_home()) return std::nullopt;
    Interface& i = mn_->stack().node().iface_by_id(mn_->iface());
    if (i.link() == nullptr) return std::nullopt;
    return mn_->stack().plan().mcast_proxy(i.link()->id());
  }

  void send_register() {
    MobilityCtrlMessage m;
    m.kind = MobilityCtrlKind::kProxyRegister;
    m.home = mn_->home_address();
    m.care_of_or_group = mn_->care_of();
    m.groups.assign(mn_->subscriptions().begin(), mn_->subscriptions().end());
    send_ctrl(*mn_, proxy_, kMcastProxyPort, m, "mn/tx/proxy-register");
  }

  void send_deregister(const Address& proxy) {
    MobilityCtrlMessage m;
    m.kind = MobilityCtrlKind::kProxyDeregister;
    m.home = mn_->home_address();
    send_ctrl(*mn_, proxy, kMcastProxyPort, m, "mn/tx/proxy-dereg");
  }

  MobileNode* mn_;
  MldHost* mld_;
  MldConfig mld_config_;
  /// The proxy currently holding our registration (unspecified = none).
  Address proxy_;
  std::unique_ptr<Timer> refresh_timer_;
};

// ---------------------------------------------------------------------------
// Approach 6: multicast-based mobility (Helmy, cs/0006022).
//
// The MN's reachability is itself a multicast group G_mn: the HA relays
// every subscribed-group datagram into G_mn (encapsulated, re-originated on
// the home link), and the access router of whatever link the MN visits
// joins G_mn on the MN's behalf (proxy MLD state injected by the
// AccessRouterAgent). Handoff = ArJoin at the new access router + explicit
// ArPrune at the previous one, so the delivery tree is repaired by ordinary
// dense-mode graft/prune instead of binding signaling. Sending is native —
// the scheme tunnels nothing on the send path.

class McastMobilityStrategy final : public DeliveryStrategy {
 public:
  explicit McastMobilityStrategy(const DeliveryContext& ctx)
      : mn_(ctx.mn), mld_(ctx.mld), mld_config_(ctx.mld_config),
        g_mn_(reachability_group(*ctx.mn)) {
    // Both flags must be live *before* the next Binding Update goes out —
    // complete_attachment() sends the BU before on_attached() fires.
    mn_->set_group_list_in_bu(true);
    mn_->set_mcast_care_of(g_mn_);
    // Receive filter for the HA's encapsulated relays addressed to G_mn
    // (the per-interface filter survives moves and crashes).
    mn_->stack().join_local_group(mn_->iface(), g_mn_);
    refresh_timer_ = std::make_unique<Timer>(
        mn_->stack().scheduler(),
        [this] {
          if (!ar_.is_unspecified() && mn_->away_from_home()) {
            send_ar(MobilityCtrlKind::kArJoin, ar_);  // keep MLD state alive
            refresh_timer_->arm(mld_config_.query_interval);
          }
        },
        mn_->stack().node().domain());
  }

  const char* name() const override { return "mcast-mobility"; }
  /// Groups ride the BU group list; the HA relays them into G_mn.
  bool registers_at_ha() const override { return true; }

  void subscribe(const Address& group) override {
    mn_->subscribe(group);
    apply_receive_policy();
    // Tell the HA immediately (Table 1 defers to the BU refresh; this
    // scheme's whole point is handoff latency, so it does not).
    if (mn_->away_from_home()) mn_->send_binding_update();
  }

  void unsubscribe(const Address& group) override {
    mld_->leave(mn_->iface(), group);
    mn_->unsubscribe(group);
    if (mn_->away_from_home()) mn_->send_binding_update();
  }

  void apply_receive_policy() override {
    const IfaceId iface = mn_->iface();
    mn_->set_group_list_in_bu(true);
    const bool local = !mn_->away_from_home();
    for (const Address& g : mn_->subscriptions()) {
      if (local) {
        mld_->join(iface, g);
      } else {
        // Data arrives encapsulated inside G_mn; keep only the filter.
        mld_->leave(iface, g);
        mn_->subscribe(g);
      }
    }
  }

  void on_attached() override {
    apply_receive_policy();
    if (!mn_->away_from_home()) {
      // Returned home: the home link serves us natively again.
      mld_->announce_all(mn_->iface());
      prune_previous_ar();
      refresh_timer_->cancel();
      return;
    }
    const Address new_ar = current_access_router().value_or(Address());
    if (!ar_.is_unspecified() && !(ar_ == new_ar)) {
      // Handoff: prune the old access router off G_mn within one RTT
      // instead of waiting out the 260 s listener interval.
      send_ar(MobilityCtrlKind::kArPrune, ar_);
    }
    ar_ = new_ar;
    if (!ar_.is_unspecified()) {
      send_ar(MobilityCtrlKind::kArJoin, ar_);
      refresh_timer_->arm(mld_config_.query_interval);
    } else {
      refresh_timer_->cancel();
    }
  }

  void send_multicast(const Address& group, std::uint16_t src_port,
                      std::uint16_t dst_port, Bytes payload) override {
    // Always native (Helmy's architecture tunnels nothing on the send
    // path); a moved sender roots a fresh tree at its care-of address.
    UdpDatagram udp;
    udp.src_port = src_port;
    udp.dst_port = dst_port;
    udp.payload = std::move(payload);
    DatagramSpec spec;
    spec.dst = group;
    spec.protocol = proto::kUdp;
    spec.src = mn_->current_source();
    spec.payload = udp.serialize(spec.src, spec.dst);
    mn_->stack().send_on_iface(mn_->iface(), spec);
  }

  void deactivate() override {
    prune_previous_ar();
    refresh_timer_->cancel();
    mn_->set_mcast_care_of(Address());
    mn_->stack().leave_local_group(mn_->iface(), g_mn_);
  }

  void on_host_crash() override {
    // Silent: the AR's injected listener state ages out via MLD.
    ar_ = Address();
    refresh_timer_->cancel();
  }

 private:
  std::optional<Address> current_access_router() const {
    Interface& i = mn_->stack().node().iface_by_id(mn_->iface());
    if (i.link() == nullptr) return std::nullopt;
    return mn_->stack().plan().default_router(i.link()->id());
  }

  void prune_previous_ar() {
    if (!ar_.is_unspecified()) send_ar(MobilityCtrlKind::kArPrune, ar_);
    ar_ = Address();
  }

  void send_ar(MobilityCtrlKind kind, const Address& ar) {
    MobilityCtrlMessage m;
    m.kind = kind;
    m.home = mn_->home_address();
    m.care_of_or_group = g_mn_;
    send_ctrl(*mn_, ar, kArAgentPort, m,
              kind == MobilityCtrlKind::kArJoin ? "mn/tx/ar-join"
                                                : "mn/tx/ar-prune");
  }

  MobileNode* mn_;
  MldHost* mld_;
  MldConfig mld_config_;
  Address g_mn_;
  /// The access router currently joined to G_mn for us.
  Address ar_;
  std::unique_ptr<Timer> refresh_timer_;
};

}  // namespace

Address reachability_group(const MobileNode& mn) {
  // ff1e::/16 (transient, global scope) + a fixed tag + the node's IID.
  static const Address kBase = Address::parse("ff1e:4d6d::");
  return Address::from_prefix_iid(kBase, mn.stack().iid());
}

std::unique_ptr<DeliveryStrategy> make_delivery_strategy(
    StrategyOptions opts, const DeliveryContext& ctx) {
  switch (opts.strategy) {
    case McastStrategy::kHierProxy:
      return std::make_unique<HierProxyStrategy>(ctx);
    case McastStrategy::kMcastMobility:
      return std::make_unique<McastMobilityStrategy>(ctx);
    default:
      return std::make_unique<Table1DeliveryStrategy>(opts, ctx);
  }
}

}  // namespace mip6
