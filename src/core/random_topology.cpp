#include "core/random_topology.hpp"

#include <algorithm>

namespace mip6 {

RandomTopology build_random_topology(const RandomTopologyParams& params,
                                     WorldConfig config) {
  RandomTopology t;
  t.world = std::make_unique<World>(params.seed, config);
  World& w = *t.world;
  Rng topo_rng(Rng::derive_seed(params.seed, 0xb0b0));

  const std::size_t n = std::max<std::size_t>(params.routers, 1);

  // Stub link per router, created first so routers attach at creation.
  for (std::size_t i = 0; i < n; ++i) {
    t.stub_links.push_back(&w.add_link("Stub" + std::to_string(i)));
  }

  // Random spanning tree: router i>0 links to a random earlier router.
  // Links must exist before add_router, so decide the shape first.
  std::vector<std::vector<Link*>> attach(n);
  for (std::size_t i = 0; i < n; ++i) attach[i].push_back(t.stub_links[i]);
  // With max_fanout set, a candidate endpoint is rejected once its attach
  // list is full. All fanout-related RNG draws are gated behind the knob
  // so max_fanout == 0 reproduces the historical stream exactly.
  auto has_room = [&](std::size_t r) {
    return params.max_fanout == 0 || attach[r].size() < params.max_fanout;
  };
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t parent = topo_rng.uniform_int(i);
    if (params.max_fanout > 0 && !has_room(parent)) {
      for (int tries = 0; tries < 32 && !has_room(parent); ++tries) {
        parent = topo_rng.uniform_int(i);
      }
      if (!has_room(parent)) {
        // Deterministic fallback: the earliest router with headroom.
        // (If every earlier router is full — only possible for tiny
        // max_fanout values — the bound is exceeded rather than failing:
        // connectivity wins.)
        for (std::size_t r = 0; r < i; ++r) {
          if (has_room(r)) {
            parent = r;
            break;
          }
        }
      }
    }
    Link& l = w.add_link("Transit" + std::to_string(t.transit_links.size()));
    t.transit_links.push_back(&l);
    attach[parent].push_back(&l);
    attach[i].push_back(&l);
  }
  for (std::size_t k = 0; k < params.extra_links && n >= 2; ++k) {
    std::size_t a = topo_rng.uniform_int(n);
    std::size_t b = topo_rng.uniform_int(n);
    if (a == b) continue;
    if (params.max_fanout > 0 && (!has_room(a) || !has_room(b))) continue;
    Link& l = w.add_link("Transit" + std::to_string(t.transit_links.size()));
    t.transit_links.push_back(&l);
    attach[a].push_back(&l);
    attach[b].push_back(&l);
  }

  for (std::size_t i = 0; i < n; ++i) {
    t.routers.push_back(
        &w.add_router("Router" + std::to_string(i), attach[i]));
    // The stub's default router / home agent is its own router.
    w.set_link_router(*t.stub_links[i], *t.routers[i]);
  }
  return t;
}

RandomTopology build_line_topology(std::size_t routers, WorldConfig config,
                                   std::uint64_t seed) {
  RandomTopology t;
  t.world = std::make_unique<World>(seed, config);
  World& w = *t.world;
  const std::size_t n = std::max<std::size_t>(routers, 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.stub_links.push_back(&w.add_link("Stub" + std::to_string(i)));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.transit_links.push_back(&w.add_link("Transit" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Link*> attach{t.stub_links[i]};
    if (i > 0) attach.push_back(t.transit_links[i - 1]);
    if (i + 1 < n) attach.push_back(t.transit_links[i]);
    t.routers.push_back(
        &w.add_router("Router" + std::to_string(i), attach));
    w.set_link_router(*t.stub_links[i], *t.routers[i]);
  }
  return t;
}

RandomTopology build_star_topology(std::size_t arms, WorldConfig config,
                                   std::uint64_t seed) {
  RandomTopology t;
  t.world = std::make_unique<World>(seed, config);
  World& w = *t.world;
  t.stub_links.push_back(&w.add_link("Stub0"));  // core's stub
  for (std::size_t i = 0; i < arms; ++i) {
    t.stub_links.push_back(&w.add_link("Stub" + std::to_string(i + 1)));
    t.transit_links.push_back(&w.add_link("Transit" + std::to_string(i)));
  }
  std::vector<Link*> core_attach{t.stub_links[0]};
  for (Link* l : t.transit_links) core_attach.push_back(l);
  t.routers.push_back(&w.add_router("Core", core_attach));
  w.set_link_router(*t.stub_links[0], *t.routers[0]);
  for (std::size_t i = 0; i < arms; ++i) {
    t.routers.push_back(&w.add_router(
        "Edge" + std::to_string(i),
        {t.transit_links[i], t.stub_links[i + 1]}));
    w.set_link_router(*t.stub_links[i + 1], *t.routers[i + 1]);
  }
  return t;
}

}  // namespace mip6
