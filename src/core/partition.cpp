#include "core/partition.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace mip6 {
namespace {

/// Plain union-find over node ids (path halving, union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

Partition partition_topology(const Network& net,
                             const std::vector<bool>& is_host,
                             std::uint32_t max_shards) {
  Partition out;
  const std::size_t n = net.nodes().size();
  out.domain_shard.assign(n + 1, 0);
  out.domain_shard[kWorldDomain] = Scheduler::kStructuralShard;

  // Lookahead: the tightest link. A zero-delay link breaks the windowing
  // precondition (a domain could affect a neighbor "now"), so report it
  // and let the caller fall back to serial.
  Time min_delay = Time::never();
  for (const auto& link : net.links()) {
    if (link->delay() < min_delay) min_delay = link->delay();
  }
  out.lookahead = min_delay.is_never() ? Time::zero() : min_delay;

  if (n == 0 || max_shards <= 1 || out.lookahead <= Time::zero()) {
    out.shards = 1;
    return out;
  }

  // 1. Safety constraint: contract every host-bearing link's attachees
  //    into one component (see header).
  UnionFind uf(n);
  for (const auto& link : net.links()) {
    const auto& att = link->attached();
    bool host_bearing = false;
    for (const Interface* iface : att) {
      NodeId id = iface->node().id();
      if (id < is_host.size() && is_host[id]) {
        host_bearing = true;
        break;
      }
    }
    if (!host_bearing) continue;
    for (std::size_t i = 1; i < att.size(); ++i) {
      uf.unite(att[0]->node().id(), att[i]->node().id());
    }
  }

  // 2. Contracted component graph: component index by first-seen root,
  //    adjacency from the remaining (router-router) links.
  std::vector<std::uint32_t> comp_of(n);
  std::vector<std::uint32_t> comp_weight;
  for (std::size_t id = 0; id < n; ++id) {
    // The first node of each component (its union-find root after full
    // contraction) defines the component id, so ids follow node order.
    if (uf.find(id) == id) {
      comp_of[id] = static_cast<std::uint32_t>(comp_weight.size());
      comp_weight.push_back(0);
    }
  }
  for (std::size_t id = 0; id < n; ++id) {
    comp_of[id] = comp_of[uf.find(id)];
    ++comp_weight[comp_of[id]];
  }
  const std::size_t c = comp_weight.size();
  std::vector<std::vector<std::uint32_t>> adj(c);
  for (const auto& link : net.links()) {
    const auto& att = link->attached();
    for (std::size_t i = 0; i < att.size(); ++i) {
      for (std::size_t j = i + 1; j < att.size(); ++j) {
        std::uint32_t a = comp_of[att[i]->node().id()];
        std::uint32_t b = comp_of[att[j]->node().id()];
        if (a != b) {
          adj[a].push_back(b);
          adj[b].push_back(a);
        }
      }
    }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // 3. BFS order over components (new seeds in component-id order keep the
  //    result deterministic), then greedy cumulative-weight chunking: a
  //    component goes to the shard its running weight lands in, so shards
  //    come out balanced and BFS-contiguous.
  std::vector<std::uint32_t> order;
  order.reserve(c);
  std::vector<bool> seen(c, false);
  for (std::uint32_t seed = 0; seed < c; ++seed) {
    if (seen[seed]) continue;
    std::queue<std::uint32_t> q;
    q.push(seed);
    seen[seed] = true;
    while (!q.empty()) {
      std::uint32_t u = q.front();
      q.pop();
      order.push_back(u);
      for (std::uint32_t v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
    }
  }

  const std::uint64_t total = n;
  const std::uint64_t want = std::min<std::uint64_t>(max_shards, c);
  std::vector<std::uint32_t> comp_shard(c, 0);
  std::uint64_t cum = 0;
  for (std::uint32_t comp : order) {
    comp_shard[comp] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(want - 1, cum * want / total));
    cum += comp_weight[comp];
  }

  // A heavy component can make the running weight skip a slot entirely;
  // compact the used ids so every worker thread gets real work.
  std::vector<std::uint32_t> remap(want, UINT32_MAX);
  std::uint32_t used = 0;
  for (std::uint32_t comp : order) {
    std::uint32_t& slot = remap[comp_shard[comp]];
    if (slot == UINT32_MAX) slot = used++;
    comp_shard[comp] = slot;
  }

  if (used <= 1) {
    out.shards = 1;
    return out;
  }
  out.shards = used;
  for (std::size_t id = 0; id < n; ++id) {
    out.domain_shard[id + 1] = comp_shard[comp_of[id]];
  }
  return out;
}

}  // namespace mip6
