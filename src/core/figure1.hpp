// The paper's reference network (Figure 1):
//
//      Receiver1   SenderS
//      ----+----------+----   Link 1
//              RouterA
//      ----+----------+----   Link 2    (Receiver2 here)
//        RouterB   RouterC
//      ----+----------+----   Link 3
//        RouterD   RouterE
//      /      |        |
//    Link4  Link5    Link6
//   (Receiver3)
//
// Home agents per the paper: A on Link1, B on Link2, C on Link3, D on
// Links 4+5, E on Link6. Sender S multicasts to group G, Receivers 1-3 are
// members; the initial distribution tree covers Links 1-4.
#pragma once

#include <memory>

#include "core/world.hpp"

namespace mip6 {

struct Figure1 {
  std::unique_ptr<World> world;
  Link* link1 = nullptr;
  Link* link2 = nullptr;
  Link* link3 = nullptr;
  Link* link4 = nullptr;
  Link* link5 = nullptr;
  Link* link6 = nullptr;
  NodeRuntime* a = nullptr;
  NodeRuntime* b = nullptr;
  NodeRuntime* c = nullptr;
  NodeRuntime* d = nullptr;
  NodeRuntime* e = nullptr;
  NodeRuntime* sender = nullptr;
  NodeRuntime* recv1 = nullptr;
  NodeRuntime* recv2 = nullptr;
  NodeRuntime* recv3 = nullptr;

  /// The multicast group G used throughout (global scope).
  static Address group() {
    static const Address kGroup = Address::parse("ff1e::1");
    return kGroup;
  }
  static constexpr std::uint16_t kDataPort = 9000;

  Link& link(int n) const;
};

/// Builds the Figure 1 world. All four hosts use `host_strategy`; the world
/// is finalized (routes installed) before returning.
Figure1 build_figure1(std::uint64_t seed = 1, WorldConfig config = {},
                      StrategyOptions host_strategy = {});

}  // namespace mip6
