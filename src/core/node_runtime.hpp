// One node's protocol-module stack: the ordered set of ProtocolModules a
// World instantiated on a Node, plus typed shortcut pointers for tests,
// benches and the auditor (null when the node's module set omits them).
//
// Lifecycle is generic: the runtime registers crash/restart hooks on its
// Node, so Node::crash() drives every module's on_crash() in reverse
// construction order (after the interfaces detached) and Node::restart()
// drives on_restart() in construction order (after re-attachment). The
// chaos engine therefore only calls node().crash()/restart() — it never
// names an engine. stop_modules() is the deterministic teardown used when
// a World is destroyed and rebuilt within one process.
#pragma once

#include <memory>
#include <vector>

#include "core/mobile_service.hpp"
#include "ipv6/icmpv6_dispatch.hpp"
#include "ipv6/ripng.hpp"
#include "ipv6/stack.hpp"
#include "ipv6/udp_demux.hpp"
#include "mipv6/ar_agent.hpp"
#include "mipv6/home_agent.hpp"
#include "mipv6/mcast_proxy.hpp"
#include "mipv6/mobile_node.hpp"
#include "mld/host.hpp"
#include "mld/router.hpp"
#include "hpimdm/router.hpp"
#include "net/network.hpp"
#include "net/protocol_module.hpp"
#include "pimdm/dense_engine.hpp"
#include "pimdm/router.hpp"

namespace mip6 {

class NodeRuntime {
 public:
  NodeRuntime(Node& node, bool router);
  ~NodeRuntime();
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Constructs a module in place and appends it to the lifecycle order.
  /// The caller (World wiring) also assigns the matching typed shortcut.
  /// Construction runs under the node's DomainScope, so every Timer the
  /// module creates binds to this node's domain and fires on its shard
  /// under parallel execution.
  template <class T, class... Args>
  T& emplace_module(Args&&... args) {
    DomainScope scope(node->network().scheduler(), node->domain());
    auto m = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *m;
    modules_.push_back(std::move(m));
    return ref;
  }

  /// Modules in construction order (start/restart order; crash/stop run
  /// in reverse).
  const std::vector<std::unique_ptr<ProtocolModule>>& modules() const {
    return modules_;
  }

  /// First module of dynamic type T, or nullptr — how generic fault/audit
  /// code reaches an engine without assuming the node carries it.
  template <class T>
  T* find() const {
    for (const auto& m : modules_) {
      if (auto* p = dynamic_cast<T*>(m.get())) return p;
    }
    return nullptr;
  }

  /// Stops every module in reverse construction order (idempotent).
  /// Handlers unregister from the stack/dispatch/demux deterministically,
  /// so the World can be torn down and rebuilt within one process.
  void stop_modules();

  bool is_router() const { return router_; }

  /// Global address of this node's interface attached to `link`.
  Address address_on(const Link& link) const;
  IfaceId iface_on(const Link& link) const;
  /// The mobile node's interface (hosts only; throws without an MN).
  IfaceId iface() const;

  // --- Typed shortcuts (non-owning; null when absent) -------------------
  Node* node = nullptr;
  Ipv6Stack* stack = nullptr;
  Icmpv6Dispatcher* dispatch = nullptr;
  UdpDemux* udp = nullptr;
  MldRouter* mld = nullptr;
  MldHost* mld_host = nullptr;
  /// Whichever dense-mode engine the router runs (aliases pim or hpim).
  /// Engine-agnostic code — the auditor, metrics, the home-agent backend —
  /// goes through this one.
  DenseModeEngine* dense = nullptr;
  PimDmRouter* pim = nullptr;
  HpimDmRouter* hpim = nullptr;
  HomeAgent* ha = nullptr;
  MulticastProxy* proxy = nullptr;
  AccessRouterAgent* ar_agent = nullptr;
  Ripng* ripng = nullptr;
  MobileNode* mn = nullptr;
  MobileMulticastService* service = nullptr;

 private:
  bool router_;
  bool stopped_ = false;
  std::vector<std::unique_ptr<ProtocolModule>> modules_;
};

}  // namespace mip6
