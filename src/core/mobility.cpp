#include "core/mobility.hpp"

#include "util/errors.hpp"

namespace mip6 {

RandomMover::RandomMover(MobileNode& mn, Rng& rng,
                         std::vector<Link*> candidates, Time mean_dwell)
    : mn_(&mn), rng_(&rng), candidates_(std::move(candidates)),
      mean_dwell_(mean_dwell),
      timer_(mn.stack().scheduler(), [this] { move_once(); }) {
  if (candidates_.empty()) {
    throw LogicError("RandomMover needs at least one candidate link");
  }
}

void RandomMover::start(Time first_move_at) {
  Time delay = first_move_at - mn_->stack().scheduler().now();
  if (delay < Time::zero()) delay = Time::zero();
  timer_.arm(delay);
}

void RandomMover::stop() { timer_.cancel(); }

void RandomMover::move_once() {
  // Pick a candidate different from the current link when possible.
  Interface& iface = mn_->stack().node().iface_by_id(mn_->iface());
  Link* current = iface.link();
  Link* target = nullptr;
  for (int attempt = 0; attempt < 16; ++attempt) {
    Link* cand = candidates_[rng_->uniform_int(candidates_.size())];
    if (cand != current) {
      target = cand;
      break;
    }
  }
  if (target == nullptr) target = candidates_[0];
  mn_->move_to(*target);
  ++moves_;
  if (on_move_) on_move_(*target);
  timer_.arm(Time::seconds(rng_->exponential(mean_dwell_.to_seconds())));
}

ItineraryMover::ItineraryMover(MobileNode& mn, Scheduler& sched)
    : mn_(&mn), sched_(&sched) {}

void ItineraryMover::add_step(Time at, Link& to) {
  Link* target = &to;
  sched_->schedule_at(at, [this, target] {
    mn_->move_to(*target);
    if (on_move_) on_move_(*target);
  });
}

}  // namespace mip6
