#include "core/metrics.hpp"

#include "core/traffic.hpp"
#include "ipv6/datagram.hpp"

namespace mip6 {

McastMetrics::McastMetrics(Network& net, GlobalRouting& routing, Address group,
                           std::uint16_t data_port)
    : net_(&net), routing_(&routing), group_(group), data_port_(data_port) {
  net.add_tx_hook(
      [this](const Link& link, const Interface&, const Packet& pkt) {
        on_tx(link, pkt);
      });
}

void McastMetrics::update_reference_tree(
    LinkId source_link, const std::vector<LinkId>& member_links) {
  std::size_t tree =
      routing_->shortest_path_tree(source_link, member_links).size();
  std::lock_guard<std::mutex> lock(mu_);
  reference_tree_links_ = tree;
  // The tree includes the source link itself; data already exists there, so
  // the cost in *additional* transmissions excludes it — but the source's
  // own transmission onto its link is counted in actual_bytes_, so keep the
  // source link in the reference for a like-for-like comparison.
}

void McastMetrics::on_tx(const Link& link, const Packet& pkt) {
  ParsedDatagram d;
  try {
    d = parse_datagram(pkt.view());
  } catch (const ParseError&) {
    return;
  }
  bool tunneled = false;
  const ParsedDatagram* data = &d;
  ParsedDatagram inner;
  if (d.protocol == proto::kIpv6) {
    try {
      inner = parse_datagram(d.payload);
    } catch (const ParseError&) {
      return;
    }
    data = &inner;
    tunneled = true;
  }
  if (!(data->hdr.dst == group_) || data->protocol != proto::kUdp) return;

  UdpDatagram udp;
  CbrPayload payload;
  try {
    udp = UdpDatagram::parse(data->payload, data->hdr.src, data->hdr.dst);
    if (udp.dst_port != data_port_) return;
    payload = CbrPayload::decode(udp.payload);
  } catch (const ParseError&) {
    return;
  }

  const Time now = net_->now();
  std::lock_guard<std::mutex> lock(mu_);
  ++data_tx_;
  actual_bytes_ += pkt.size();
  if (tunneled) tunneled_bytes_ += pkt.size();

  if (seen_seqs_.insert(payload.seq).second) {
    // First appearance of this application datagram anywhere: charge the
    // ideal tree cost using the native (untunneled) wire size.
    std::size_t native_size = Ipv6Header::kSize + data->payload.size();
    optimal_bytes_ +=
        static_cast<std::uint64_t>(native_size) * reference_tree_links_;
  }

  LinkStats& ls = per_link_[link.id()];
  ls.tx += 1;
  ls.bytes += pkt.size();
  // Shards inside one window advance time independently; keep the maximum
  // so "last transmission" is monotone regardless of hook arrival order.
  if (ls.last_tx.is_never() || now > ls.last_tx) ls.last_tx = now;
}

Time McastMetrics::last_data_tx_on(LinkId link) const {
  auto it = per_link_.find(link);
  return it == per_link_.end() ? Time::never() : it->second.last_tx;
}

std::uint64_t McastMetrics::data_tx_count_on(LinkId link) const {
  auto it = per_link_.find(link);
  return it == per_link_.end() ? 0 : it->second.tx;
}

std::uint64_t McastMetrics::data_bytes_on(LinkId link) const {
  auto it = per_link_.find(link);
  return it == per_link_.end() ? 0 : it->second.bytes;
}

}  // namespace mip6
