// One-line human-readable decoding of any datagram this stack produces —
// for traces, examples and debugging. Never throws: malformed input is
// described as such.
#pragma once

#include <string>

#include "util/buffer.hpp"

namespace mip6 {

class Link;

/// e.g. "IPv6 2001:db8:1::99 -> ff1e::1 hl=63 | UDP 9000->9000 (76 B)"
///      "IPv6 fe80::2 -> ff02::d hl=1 | PIM Graft up=fe80::3 J(S,G)"
///      "IPv6 2001:db8:4::4 -> 2001:db8:6::99 hl=64 | tunnel[ IPv6 ... ]"
std::string describe_datagram(BytesView wire);

/// e.g. "link2: up tx=142 rx=140 dropped=2 corrupted=0"
///      "link4: DOWN loss=10% corrupt=1% jitter=5ms tx=80 rx=71 ..."
std::string describe_link(const Link& link);

}  // namespace mip6
