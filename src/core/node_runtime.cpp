#include "core/node_runtime.hpp"

#include "util/errors.hpp"

namespace mip6 {

NodeRuntime::NodeRuntime(Node& n, bool router) : node(&n), router_(router) {
  // Crash wipes soft state in reverse construction order (dependents
  // before their substrates); restart boots forward. The hooks run after
  // the node's interfaces detached / re-attached respectively.
  n.add_crash_hook([this] {
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
      (*it)->on_crash();
    }
  });
  n.add_restart_hook([this] {
    for (auto& m : modules_) m->on_restart();
  });
}

NodeRuntime::~NodeRuntime() { stop_modules(); }

void NodeRuntime::stop_modules() {
  if (stopped_) return;
  stopped_ = true;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    (*it)->stop();
  }
}

Address NodeRuntime::address_on(const Link& link) const {
  return stack->global_address(iface_on(link));
}

IfaceId NodeRuntime::iface_on(const Link& link) const {
  for (const auto& iface : node->interfaces()) {
    if (iface->attached() && iface->link() == &link) return iface->id();
  }
  throw LogicError(node->name() + " is not attached to " + link.name());
}

IfaceId NodeRuntime::iface() const {
  if (mn == nullptr) {
    throw LogicError(node->name() + " has no mobile-node module");
  }
  return mn->iface();
}

}  // namespace mip6
