// Generated topologies for the sweep benches: a random connected router
// graph (spanning tree plus extra cross links) where every router also owns
// a stub LAN that hosts can home on or roam to.
#pragma once

#include <memory>
#include <vector>

#include "core/world.hpp"

namespace mip6 {

struct RandomTopologyParams {
  std::size_t routers = 8;
  /// Extra non-tree links between random router pairs (adds path diversity
  /// and assert opportunities).
  std::size_t extra_links = 2;
  std::uint64_t seed = 1;
  /// Upper bound on a router's attached links (stub included); 0 = no
  /// bound. Large sweeps need this: an unbounded random spanning tree
  /// gives early routers O(log n) fanout, and the per-router interface
  /// budget (e.g. the MFC mif-table width) is finite. 0 keeps the
  /// historical RNG stream byte-for-byte.
  std::size_t max_fanout = 0;
};

struct RandomTopology {
  std::unique_ptr<World> world;
  std::vector<NodeRuntime*> routers;
  /// One stub LAN per router (index-aligned with `routers`).
  std::vector<Link*> stub_links;
  /// Transit links between routers.
  std::vector<Link*> transit_links;
};

/// Builds (but does not finalize) the topology so callers can still add
/// hosts; call `topology.world->finalize()` after adding them.
RandomTopology build_random_topology(const RandomTopologyParams& params,
                                     WorldConfig config = {});

/// Line (chain) of `routers` routers, a stub LAN per router, transit LANs
/// between neighbors — the maximum-diameter case.
RandomTopology build_line_topology(std::size_t routers,
                                   WorldConfig config = {},
                                   std::uint64_t seed = 1);

/// Star: one core router connected by a transit LAN to each of
/// `arms` edge routers, each with its own stub LAN (the core's stub is
/// index 0) — the minimum-diameter case.
RandomTopology build_star_topology(std::size_t arms, WorldConfig config = {},
                                   std::uint64_t seed = 1);

}  // namespace mip6
