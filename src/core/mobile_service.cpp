#include "core/mobile_service.hpp"

#include "ipv6/datagram.hpp"

namespace mip6 {

MobileMulticastService::MobileMulticastService(MobileNode& mn, MldHost& mld,
                                               StrategyOptions opts,
                                               MldConfig mld_config)
    : mn_(&mn), mld_(&mld), opts_(opts), mld_config_(mld_config) {
  mn.set_on_attached([this] { on_attached(); });
  mn.set_on_link_change([this] {
    // Silent departure: no Done, no signaling — just forget per-link state.
    mld_->reset_link_state(mn_->iface());
  });
}

void MobileMulticastService::stop() {
  mn_->set_on_attached(nullptr);
  mn_->set_on_link_change(nullptr);
}

void MobileMulticastService::set_strategy(StrategyOptions opts) {
  const bool was_ha_registered = !receives_locally(opts_.strategy);
  opts_ = opts;
  apply_receive_policy();
  if (was_ha_registered && receives_locally(opts_.strategy) &&
      mn_->away_from_home()) {
    // Tell the HA to stop representing our groups (explicit empty list).
    mn_->send_binding_update_with_group_list({});
  }
}

void MobileMulticastService::subscribe(const Address& group) {
  mn_->subscribe(group);
  apply_receive_policy();
}

void MobileMulticastService::unsubscribe(const Address& group) {
  mld_->leave(mn_->iface(), group);
  mn_->unsubscribe(group);
  // A departing member should stop being represented at the HA too.
  if (mn_->away_from_home() && !receives_locally(opts_.strategy)) {
    if (opts_.registration == HaRegistration::kGroupListBu) {
      mn_->send_binding_update();
    }
    mn_->stop_tunneled_reports(group);
  }
}

void MobileMulticastService::apply_receive_policy() {
  const IfaceId iface = mn_->iface();
  const bool local = receives_locally(opts_.strategy) || !mn_->away_from_home();

  mn_->set_group_list_in_bu(!receives_locally(opts_.strategy) &&
                            opts_.registration == HaRegistration::kGroupListBu);

  for (const Address& g : mn_->subscriptions()) {
    if (local) {
      // Local membership on the current link (the MldHost join installs the
      // receive filter and transmits Reports per policy).
      mld_->join(iface, g);
      mn_->stop_tunneled_reports(g);
    } else {
      // Tunnel reception: no local MLD signaling on the foreign link.
      mld_->leave(iface, g);
      mn_->subscribe(g);  // keep the receive filter the leave removed
      if (opts_.registration == HaRegistration::kTunnelMld) {
        // Refresh well inside the HA's listener lifetime.
        mn_->start_tunneled_reports(g, mld_config_.query_interval);
      }
    }
  }
}

void MobileMulticastService::on_attached() {
  apply_receive_policy();
  const bool local = receives_locally(opts_.strategy) || !mn_->away_from_home();
  if (local) {
    // Re-announce memberships on the new link (unsolicited Reports if the
    // policy allows; otherwise the paper's "wait for the next Query" case).
    mld_->announce_all(mn_->iface());
  } else if (opts_.registration == HaRegistration::kGroupListBu &&
             mn_->away_from_home() && !mn_->subscriptions().empty()) {
    // The BU sent during attachment already carried the group list; nothing
    // further to do here.
  }
}

void MobileMulticastService::send_multicast(const Address& group,
                                            std::uint16_t src_port,
                                            std::uint16_t dst_port,
                                            Bytes payload) {
  const bool local = sends_locally(opts_.strategy) || !mn_->away_from_home();
  UdpDatagram udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.payload = std::move(payload);

  DatagramSpec spec;
  spec.dst = group;
  spec.protocol = proto::kUdp;
  if (local) {
    // Native send; during the movement-detection window current_source()
    // is still the previous (stale) address.
    spec.src = mn_->current_source();
    spec.payload = udp.serialize(spec.src, spec.dst);
    mn_->stack().send_on_iface(mn_->iface(), spec);
  } else {
    // Reverse tunnel: home address as inner source, so the home-rooted
    // distribution tree keeps serving the group (paper Figure 4).
    spec.src = mn_->home_address();
    spec.payload = udp.serialize(spec.src, spec.dst);
    mn_->tunnel_to_ha(build_datagram(spec));
  }
}

}  // namespace mip6
