#include "core/mobile_service.hpp"

namespace mip6 {

MobileMulticastService::MobileMulticastService(MobileNode& mn, MldHost& mld,
                                               StrategyOptions opts,
                                               MldConfig mld_config)
    : mn_(&mn), mld_(&mld), opts_(opts), mld_config_(mld_config),
      strategy_(make_delivery_strategy(opts, context())) {
  mn.set_on_attached([this] { strategy_->on_attached(); });
  mn.set_on_link_change([this] {
    // Silent departure: no Done, no signaling — just forget per-link state.
    mld_->reset_link_state(mn_->iface());
  });
}

MobileMulticastService::~MobileMulticastService() = default;

DeliveryContext MobileMulticastService::context() const {
  DeliveryContext ctx;
  ctx.mn = mn_;
  ctx.mld = mld_;
  ctx.mld_config = mld_config_;
  return ctx;
}

void MobileMulticastService::on_crash() { strategy_->on_host_crash(); }

void MobileMulticastService::stop() {
  strategy_->deactivate();
  mn_->set_on_attached(nullptr);
  mn_->set_on_link_change(nullptr);
}

void MobileMulticastService::set_strategy(StrategyOptions opts) {
  const bool was_ha_registered = strategy_->registers_at_ha();
  strategy_->deactivate();
  opts_ = opts;
  strategy_ = make_delivery_strategy(opts, context());
  strategy_->apply_receive_policy();
  if (was_ha_registered && !strategy_->registers_at_ha() &&
      mn_->away_from_home()) {
    // Tell the HA to stop representing our groups (explicit empty list).
    mn_->send_binding_update_with_group_list({});
  }
}

void MobileMulticastService::subscribe(const Address& group) {
  strategy_->subscribe(group);
}

void MobileMulticastService::unsubscribe(const Address& group) {
  strategy_->unsubscribe(group);
}

void MobileMulticastService::send_multicast(const Address& group,
                                            std::uint16_t src_port,
                                            std::uint16_t dst_port,
                                            Bytes payload) {
  strategy_->send_multicast(group, src_port, dst_port, std::move(payload));
}

}  // namespace mip6
