// Deterministic fuzz executor: N seeds x M mutations per protocol, each
// case classified into the parse taxonomy. The same (protocol, seed, cases)
// triple always explores the same inputs, so a CI failure is reproducible
// locally with no corpus exchange.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fuzz/corpus.hpp"
#include "stats/counters.hpp"

namespace mip6 {

struct FuzzReport {
  std::uint64_t cases = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::array<std::uint64_t, kParseReasonCount> by_reason{};

  /// Attribution invariant: every rejected case landed in exactly one
  /// taxonomy bucket.
  bool attribution_consistent() const {
    std::uint64_t sum = 0;
    for (std::uint64_t v : by_reason) sum += v;
    return sum == rejected && accepted + rejected == cases;
  }

  std::string str() const;
};

/// Runs `cases` mutated frames (derived from `seed`) through the decoders
/// for `proto`. Every seed frame is also replayed unmutated and must be
/// accepted — a generator/decoder drift fails fast instead of silently
/// fuzzing garbage.
FuzzReport fuzz_decoder(FuzzProto proto, std::uint64_t seed,
                        std::size_t cases);

/// Checks the receive-path attribution invariant over a live counter set:
/// for every protocol with `parse/<proto>/rejects`, the per-reason cells
/// must sum to exactly that total. On violation returns false and fills
/// `detail`.
bool reject_counters_consistent(const CounterRegistry& counters,
                                std::string* detail);

}  // namespace mip6
