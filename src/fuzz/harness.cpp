#include "fuzz/harness.hpp"

#include <map>

#include "util/errors.hpp"

namespace mip6 {

std::string FuzzReport::str() const {
  std::string out = "cases=" + std::to_string(cases) +
                    " accepted=" + std::to_string(accepted) +
                    " rejected=" + std::to_string(rejected);
  for (std::size_t i = 0; i < by_reason.size(); ++i) {
    if (by_reason[i] == 0) continue;
    out += " ";
    out += parse_reason_name(static_cast<ParseReason>(i));
    out += "=";
    out += std::to_string(by_reason[i]);
  }
  return out;
}

FuzzReport fuzz_decoder(FuzzProto proto, std::uint64_t seed,
                        std::size_t cases) {
  std::vector<FuzzFrame> seeds = seed_frames(proto);
  if (seeds.empty()) {
    throw LogicError("no seed frames for fuzz protocol " +
                     std::string(fuzz_proto_name(proto)));
  }
  // Unmutated seeds must decode cleanly: if a generator drifts from its
  // decoder the whole run would silently degenerate into noise-fuzzing.
  for (const FuzzFrame& f : seeds) {
    if (auto fail = drive_decoder(proto, f.octets)) {
      throw LogicError("seed frame '" + f.name + "' rejected: " +
                       fail->str());
    }
  }

  Rng rng(seed);
  FuzzReport report;
  for (std::size_t i = 0; i < cases; ++i) {
    const FuzzFrame& base = seeds[rng.uniform_int(seeds.size())];
    Bytes mutated = mutate_frame(base, rng);
    ++report.cases;
    std::optional<ParseFailure> fail = drive_decoder(proto, mutated);
    if (!fail) {
      ++report.accepted;
    } else {
      ++report.rejected;
      ++report.by_reason[static_cast<std::size_t>(fail->reason)];
    }
  }
  return report;
}

bool reject_counters_consistent(const CounterRegistry& counters,
                                std::string* detail) {
  // parse/<proto>/rejects vs sum over parse/<proto>/reject/<reason>.
  std::map<std::string, std::uint64_t> totals;
  std::map<std::string, std::uint64_t> sums;
  for (const auto& [name, value] : counters.snapshot()) {
    constexpr std::string_view kPrefix = "parse/";
    if (name.rfind(kPrefix, 0) != 0) continue;
    std::size_t proto_end = name.find('/', kPrefix.size());
    if (proto_end == std::string::npos) continue;
    std::string proto = name.substr(kPrefix.size(), proto_end - kPrefix.size());
    std::string_view rest = std::string_view(name).substr(proto_end + 1);
    if (rest == "rejects") {
      totals[proto] += value;
    } else if (rest.rfind("reject/", 0) == 0) {
      sums[proto] += value;
    }
  }
  for (const auto& [proto, total] : totals) {
    std::uint64_t sum = sums.count(proto) ? sums.at(proto) : 0;
    if (sum != total) {
      if (detail != nullptr) {
        *detail = "proto " + proto + ": rejects=" + std::to_string(total) +
                  " but reason cells sum to " + std::to_string(sum);
      }
      return false;
    }
  }
  for (const auto& [proto, sum] : sums) {
    if (!totals.count(proto)) {
      if (detail != nullptr) {
        *detail = "proto " + proto + ": reason cells present (" +
                  std::to_string(sum) + ") without a rejects total";
      }
      return false;
    }
  }
  return true;
}

}  // namespace mip6
