// Optional libFuzzer entry point (built only with -DMIP6_LIBFUZZER=ON and a
// clang toolchain; the deterministic ctest harness is the tier-1 path).
// The first input octet selects the decoder family; the rest is the frame.
//
//   cmake -B build-fuzz -DMIP6_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ -DMIP6_SANITIZE=address
//   ./build-fuzz/src/fuzz/mip6_libfuzzer tests/fuzz/corpus/
#include <cstddef>
#include <cstdint>

#include "fuzz/corpus.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  mip6::FuzzProto proto =
      static_cast<mip6::FuzzProto>(data[0] % mip6::kFuzzProtoCount);
  (void)mip6::drive_decoder(proto, mip6::BytesView(data + 1, size - 1));
  return 0;
}
