// Per-protocol seed frames and decode drivers for the fuzz harness.
//
// A seed frame is a *valid* wire image produced by the real serializers
// (checksums included), so mutations explore the boundary between accept and
// reject instead of drowning in trivially-bad input. A decode driver runs
// one frame through the same try_* decoder chain the production receive path
// uses and reports the accept/reject classification.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "fuzz/mutator.hpp"
#include "ipv6/address.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

/// The decoder families the fuzzer drives.
enum class FuzzProto : std::uint8_t {
  kDatagram = 0,  // try_parse_datagram: header + ext-header chain
  kIcmpv6,        // Icmpv6Message::try_parse -> MldMessage::try_from_icmpv6
  kPim,           // try_parse_pim -> per-type body parser
  kUdp,           // UdpDatagram::try_parse
  kRipng,         // try_parse_ripng_response
  kBindingUpdate, // BindingUpdateOption -> MulticastGroupListSubOption
  kHpim,          // try_parse_hpim -> per-type body parser
};
inline constexpr std::size_t kFuzzProtoCount = 7;

std::string_view fuzz_proto_name(FuzzProto p);

/// Valid seed frames for one protocol (with length-field offsets marked).
std::vector<FuzzFrame> seed_frames(FuzzProto p);

/// Decodes `frame` exactly as the receive path would. Returns std::nullopt
/// on accept, or the taxonomy failure on reject. Never throws.
std::optional<ParseFailure> drive_decoder(FuzzProto p, BytesView frame);

/// Source/destination the checksummed seed frames are computed against; the
/// drivers must verify with the same pair.
const Address& fuzz_src();
const Address& fuzz_dst();
const Address& fuzz_group();

/// Inverse of util/buffer's to_hex for the committed corpus files; skips
/// whitespace so hand-edited files stay readable.
Bytes from_hex(std::string_view hex);

}  // namespace mip6
