#include "fuzz/corpus.hpp"

#include "ipv6/datagram.hpp"
#include "ipv6/icmpv6.hpp"
#include "ipv6/ripng.hpp"
#include "ipv6/udp.hpp"
#include "hpimdm/messages.hpp"
#include "mipv6/messages.hpp"
#include "mld/messages.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

Bytes text_payload(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

FuzzFrame frame(std::string name, Bytes octets,
                std::vector<std::size_t> length_offsets = {}) {
  return FuzzFrame{std::move(name), std::move(octets),
                   std::move(length_offsets)};
}

std::vector<FuzzFrame> datagram_frames() {
  std::vector<FuzzFrame> out;
  // Plain UDP unicast datagram. Offsets 4-5: IPv6 Payload Length.
  {
    DatagramSpec spec;
    spec.src = fuzz_src();
    spec.dst = fuzz_dst();
    spec.protocol = proto::kUdp;
    UdpDatagram udp;
    udp.src_port = 1024;
    udp.dst_port = 521;
    udp.payload = text_payload("hostile-wire");
    spec.payload = udp.serialize(spec.src, spec.dst);
    out.push_back(frame("udp-datagram", build_datagram(spec), {4, 5}));
  }
  // Mobility signaling: BU with group list + Home Address option, carried
  // in a destination-options header. Offset 41: ext-header length octet.
  {
    BindingUpdateOption bu;
    bu.ack_requested = true;
    bu.home_registration = true;
    bu.sequence = 7;
    bu.lifetime_s = 256;
    MulticastGroupListSubOption mgl;
    mgl.groups = {fuzz_group()};
    bu.sub_options.push_back(mgl.encode());
    DatagramSpec spec;
    spec.src = fuzz_src();
    spec.dst = fuzz_dst();
    spec.dest_options.push_back(bu.encode());
    spec.dest_options.push_back(HomeAddressOption{fuzz_src()}.encode());
    spec.protocol = proto::kNoNext;
    out.push_back(frame("bu-datagram", build_datagram(spec), {4, 5, 41}));
  }
  // Multicast MLD Report datagram.
  {
    MldMessage rep;
    rep.type = MldType::kReport;
    rep.group = fuzz_group();
    DatagramSpec spec;
    spec.src = fuzz_src();
    spec.dst = fuzz_group();
    spec.hop_limit = 1;
    spec.protocol = proto::kIcmpv6;
    spec.payload = rep.to_icmpv6().serialize(spec.src, spec.dst);
    out.push_back(frame("mld-datagram", build_datagram(spec), {4, 5}));
  }
  return out;
}

std::vector<FuzzFrame> icmpv6_frames() {
  std::vector<FuzzFrame> out;
  auto serialize = [](MldType type, const Address& group,
                      std::uint16_t delay) {
    MldMessage m;
    m.type = type;
    m.group = group;
    m.max_response_delay_ms = delay;
    return m.to_icmpv6().serialize(fuzz_src(), fuzz_dst());
  };
  out.push_back(frame("mld-general-query",
                      serialize(MldType::kQuery, Address(), 10000)));
  out.push_back(frame("mld-group-query",
                      serialize(MldType::kQuery, fuzz_group(), 1000)));
  out.push_back(frame("mld-report", serialize(MldType::kReport, fuzz_group(), 0)));
  out.push_back(frame("mld-done", serialize(MldType::kDone, fuzz_group(), 0)));
  return out;
}

std::vector<FuzzFrame> pim_frames() {
  std::vector<FuzzFrame> out;
  auto wire = [](PimType t, const Bytes& body) {
    return serialize_pim(t, body, fuzz_src(), fuzz_dst());
  };
  PimHello hello;
  hello.holdtime = 105;
  out.push_back(frame("pim-hello", wire(PimType::kHello, hello.body())));

  PimJoinPrune jp = PimJoinPrune::join(fuzz_src(), fuzz_src(), fuzz_group());
  jp.holdtime = 210;
  jp.groups[0].pruned_sources.push_back(fuzz_dst());
  PimJoinPrune::GroupEntry second;
  second.group = fuzz_group();
  second.joined_sources = {fuzz_src(), fuzz_dst()};
  jp.groups.push_back(second);
  // PIM header is 4 octets; offset 23 = group count, 46-49 = first group's
  // joined/pruned source counts (the classic amplification-lie targets).
  out.push_back(frame("pim-join-prune", wire(PimType::kJoinPrune, jp.body()),
                      {23, 46, 47, 48, 49}));
  out.push_back(
      frame("pim-graft", wire(PimType::kGraft, jp.body()), {23, 46, 47, 48, 49}));

  PimAssert assert_msg;
  assert_msg.group = fuzz_group();
  assert_msg.source = fuzz_src();
  assert_msg.metric_preference = 10;
  assert_msg.metric = 3;
  out.push_back(frame("pim-assert", wire(PimType::kAssert, assert_msg.body())));

  PimStateRefresh sr;
  sr.group = fuzz_group();
  sr.source = fuzz_src();
  sr.originator = fuzz_dst();
  sr.metric_preference = 10;
  sr.metric = 3;
  sr.ttl = 16;
  sr.interval_s = 60;
  out.push_back(
      frame("pim-state-refresh", wire(PimType::kStateRefresh, sr.body())));
  return out;
}

std::vector<FuzzFrame> hpim_frames() {
  std::vector<FuzzFrame> out;
  auto wire = [](HpimType t, const Bytes& body) {
    return serialize_hpim(t, body, fuzz_src(), fuzz_dst());
  };
  HpimHello hello;
  hello.holdtime = 105;
  hello.generation_id = 0xdecade01;
  out.push_back(frame("hpim-hello", wire(HpimType::kHello, hello.body())));

  HpimAck ack;
  ack.seq = 12;
  out.push_back(frame("hpim-ack", wire(HpimType::kAck, ack.body())));

  HpimInterest interest;
  interest.seq = 3;
  interest.source = fuzz_src();
  interest.group = fuzz_group();
  interest.interested = true;
  out.push_back(
      frame("hpim-interest", wire(HpimType::kInterest, interest.body())));

  HpimSync sync;
  sync.seq = 4;
  sync.more = true;
  sync.entries.push_back({fuzz_src(), fuzz_group(), true});
  sync.entries.push_back({fuzz_dst(), fuzz_group(), false});
  // Header is 4 octets; offsets 9-10 = the entry-count field (the
  // amplification-lie target the O(1) count check guards).
  out.push_back(frame("hpim-sync", wire(HpimType::kSync, sync.body()),
                      {9, 10}));

  HpimAssert assert_msg;
  assert_msg.group = fuzz_group();
  assert_msg.source = fuzz_src();
  assert_msg.metric_preference = 101;
  assert_msg.metric = 3;
  out.push_back(
      frame("hpim-assert", wire(HpimType::kAssert, assert_msg.body())));
  return out;
}

std::vector<FuzzFrame> udp_frames() {
  std::vector<FuzzFrame> out;
  UdpDatagram udp;
  udp.src_port = 49152;
  udp.dst_port = 521;
  udp.payload = text_payload("ripng-ish payload");
  // Offsets 4-5: UDP Length field.
  out.push_back(
      frame("udp-basic", udp.serialize(fuzz_src(), fuzz_dst()), {4, 5}));
  UdpDatagram empty;
  empty.src_port = 1;
  empty.dst_port = 2;
  out.push_back(
      frame("udp-empty", empty.serialize(fuzz_src(), fuzz_dst()), {4, 5}));
  return out;
}

std::vector<FuzzFrame> ripng_frames() {
  std::vector<FuzzFrame> out;
  std::vector<RipngRte> rtes;
  rtes.push_back(RipngRte{Prefix::parse("2001:db8:1::/64"), 1});
  rtes.push_back(RipngRte{Prefix::parse("2001:db8:2::/64"), 2});
  rtes.push_back(RipngRte{Prefix::parse("::/0"), 16});
  // Per-RTE prefix length octets sit at 4 + 20k + 18.
  out.push_back(
      frame("ripng-response", ripng_response_payload(rtes), {22, 42, 62}));
  return out;
}

std::vector<FuzzFrame> bu_frames() {
  std::vector<FuzzFrame> out;
  BindingUpdateOption plain;
  plain.ack_requested = true;
  plain.home_registration = true;
  plain.sequence = 1;
  plain.lifetime_s = 256;
  out.push_back(frame("bu-plain", plain.encode().data));

  BindingUpdateOption with_groups = plain;
  with_groups.sequence = 2;
  MulticastGroupListSubOption mgl;
  mgl.groups = {fuzz_group(), Address::parse("ff1e::42")};
  with_groups.sub_options.push_back(mgl.encode());
  // Offset 9: the group-list sub-option's length octet (8-octet fixed part,
  // then type at 8, length at 9).
  out.push_back(frame("bu-group-list", with_groups.encode().data, {9}));

  BindingUpdateOption dereg;
  dereg.home_registration = true;
  dereg.sequence = 3;
  dereg.lifetime_s = 0;
  MulticastGroupListSubOption none;
  dereg.sub_options.push_back(none.encode());
  out.push_back(frame("bu-zero-groups", dereg.encode().data, {9}));
  return out;
}

}  // namespace

std::string_view fuzz_proto_name(FuzzProto p) {
  switch (p) {
    case FuzzProto::kDatagram: return "datagram";
    case FuzzProto::kIcmpv6: return "icmpv6";
    case FuzzProto::kPim: return "pim";
    case FuzzProto::kUdp: return "udp";
    case FuzzProto::kRipng: return "ripng";
    case FuzzProto::kBindingUpdate: return "binding-update";
    case FuzzProto::kHpim: return "hpim";
  }
  return "unknown";
}

const Address& fuzz_src() {
  static const Address a = Address::parse("2001:db8:f::1");
  return a;
}

const Address& fuzz_dst() {
  static const Address a = Address::parse("2001:db8:f::2");
  return a;
}

const Address& fuzz_group() {
  static const Address a = Address::parse("ff1e::beef");
  return a;
}

std::vector<FuzzFrame> seed_frames(FuzzProto p) {
  switch (p) {
    case FuzzProto::kDatagram: return datagram_frames();
    case FuzzProto::kIcmpv6: return icmpv6_frames();
    case FuzzProto::kPim: return pim_frames();
    case FuzzProto::kUdp: return udp_frames();
    case FuzzProto::kRipng: return ripng_frames();
    case FuzzProto::kBindingUpdate: return bu_frames();
    case FuzzProto::kHpim: return hpim_frames();
  }
  return {};
}

std::optional<ParseFailure> drive_decoder(FuzzProto p, BytesView frame) {
  switch (p) {
    case FuzzProto::kDatagram: {
      ParseResult<ParsedDatagram> r = try_parse_datagram(frame);
      if (!r.ok()) return r.failure();
      return std::nullopt;
    }
    case FuzzProto::kIcmpv6: {
      ParseResult<Icmpv6Message> r =
          Icmpv6Message::try_parse(frame, fuzz_src(), fuzz_dst());
      if (!r.ok()) return r.failure();
      const Icmpv6Message& msg = r.value();
      if (msg.type == icmpv6::kMldQuery || msg.type == icmpv6::kMldReport ||
          msg.type == icmpv6::kMldDone) {
        ParseResult<MldMessage> m = MldMessage::try_from_icmpv6(msg);
        if (!m.ok()) return m.failure();
      }
      return std::nullopt;
    }
    case FuzzProto::kPim: {
      ParseResult<PimHeader> r = try_parse_pim(frame, fuzz_src(), fuzz_dst());
      if (!r.ok()) return r.failure();
      const PimHeader& h = r.value();
      switch (h.type) {
        case PimType::kHello: {
          ParseResult<PimHello> m = PimHello::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case PimType::kJoinPrune:
        case PimType::kGraft:
        case PimType::kGraftAck: {
          ParseResult<PimJoinPrune> m = PimJoinPrune::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case PimType::kAssert: {
          ParseResult<PimAssert> m = PimAssert::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case PimType::kStateRefresh: {
          ParseResult<PimStateRefresh> m = PimStateRefresh::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        default:
          return ParseFailure{ParseReason::kBadType, "unknown PIM type"};
      }
      return std::nullopt;
    }
    case FuzzProto::kUdp: {
      ParseResult<UdpDatagram> r =
          UdpDatagram::try_parse(frame, fuzz_src(), fuzz_dst());
      if (!r.ok()) return r.failure();
      return std::nullopt;
    }
    case FuzzProto::kRipng: {
      ParseResult<std::vector<RipngRte>> r = try_parse_ripng_response(frame);
      if (!r.ok()) return r.failure();
      return std::nullopt;
    }
    case FuzzProto::kBindingUpdate: {
      DestOption o;
      o.type = opt::kBindingUpdate;
      o.data = Bytes(frame.begin(), frame.end());
      ParseResult<BindingUpdateOption> r = BindingUpdateOption::try_decode(o);
      if (!r.ok()) return r.failure();
      for (const BuSubOption& s : r.value().sub_options) {
        if (s.type != subopt::kMulticastGroupList) continue;
        ParseResult<MulticastGroupListSubOption> m =
            MulticastGroupListSubOption::try_decode(s);
        if (!m.ok()) return m.failure();
      }
      return std::nullopt;
    }
    case FuzzProto::kHpim: {
      ParseResult<HpimHeader> r = try_parse_hpim(frame, fuzz_src(), fuzz_dst());
      if (!r.ok()) return r.failure();
      const HpimHeader& h = r.value();
      switch (h.type) {
        case HpimType::kHello: {
          ParseResult<HpimHello> m = HpimHello::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case HpimType::kAck: {
          ParseResult<HpimAck> m = HpimAck::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case HpimType::kInterest: {
          ParseResult<HpimInterest> m = HpimInterest::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case HpimType::kSync: {
          ParseResult<HpimSync> m = HpimSync::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
        case HpimType::kAssert: {
          ParseResult<HpimAssert> m = HpimAssert::try_parse(h.body);
          if (!m.ok()) return m.failure();
          break;
        }
      }
      return std::nullopt;
    }
  }
  return ParseFailure{ParseReason::kBadType, "unknown fuzz protocol"};
}

Bytes from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    int n = nibble(c);
    if (n < 0) continue;  // allow whitespace
    if (hi < 0) {
      hi = n;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | n));
      hi = -1;
    }
  }
  return out;
}

}  // namespace mip6
