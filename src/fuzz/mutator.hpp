// Deterministic structure-aware frame mutator.
//
// Every mutation is a pure function of (seed frame, Rng state), so a fuzz
// run is reproducible from its seed alone: failures can be replayed
// byte-exact by re-running the same seed, and the committed corpus under
// tests/fuzz/corpus/ pins the interesting boundary shapes forever.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "util/buffer.hpp"

namespace mip6 {

/// A valid wire frame plus the structural hints the mutator exploits.
struct FuzzFrame {
  std::string name;
  Bytes octets;
  /// Offsets of length / count fields inside `octets`. The "length-field
  /// lie" mutation targets exactly these, which is what separates a
  /// structure-aware fuzzer from random bit noise: an attacker forging a
  /// count field is the realistic hostile input.
  std::vector<std::size_t> length_offsets;
};

/// The individual mutation operators, exposed for tests.
enum class MutationOp : std::uint8_t {
  kTruncate = 0,   // cut the frame short at a random point
  kExtend,         // append random trailing octets
  kSplice,         // overwrite a random range with random octets
  kLengthLie,      // set a known length/count field to a boundary value
  kBoundary,       // set one octet to a boundary value (0x00/0x7f/0x80/0xff)
  kBitFlip,        // flip 1..8 random bits
};
inline constexpr std::size_t kMutationOpCount = 6;

/// Applies one randomly chosen operator in place.
void apply_mutation(Bytes& frame, const std::vector<std::size_t>& length_offsets,
                    Rng& rng);

/// Produces a mutated copy of `seed` with 1..3 stacked operators.
Bytes mutate_frame(const FuzzFrame& seed, Rng& rng);

}  // namespace mip6
