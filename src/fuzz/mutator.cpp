#include "fuzz/mutator.hpp"

#include <algorithm>

namespace mip6 {
namespace {

constexpr std::uint8_t kBoundaryValues[] = {0x00, 0x01, 0x7f, 0x80, 0xff};

std::uint8_t boundary_value(Rng& rng) {
  return kBoundaryValues[rng.uniform_int(sizeof(kBoundaryValues))];
}

}  // namespace

void apply_mutation(Bytes& frame,
                    const std::vector<std::size_t>& length_offsets, Rng& rng) {
  MutationOp op = static_cast<MutationOp>(rng.uniform_int(kMutationOpCount));
  // Length lies need a surviving length offset; everything except kExtend
  // needs at least one octet to chew on. Fall back to kExtend so every call
  // mutates *something* (a no-op case would silently shrink coverage).
  if (op == MutationOp::kLengthLie) {
    bool usable = std::any_of(length_offsets.begin(), length_offsets.end(),
                              [&](std::size_t o) { return o < frame.size(); });
    if (!usable) op = MutationOp::kExtend;
  }
  if (frame.empty() && op != MutationOp::kExtend) op = MutationOp::kExtend;

  switch (op) {
    case MutationOp::kTruncate:
      frame.resize(rng.uniform_int(frame.size()));
      break;
    case MutationOp::kExtend: {
      std::size_t n = 1 + rng.uniform_int(32);
      for (std::size_t i = 0; i < n; ++i) {
        frame.push_back(static_cast<std::uint8_t>(rng.uniform_int(256)));
      }
      break;
    }
    case MutationOp::kSplice: {
      std::size_t start = rng.uniform_int(frame.size());
      std::size_t len = 1 + rng.uniform_int(frame.size() - start);
      for (std::size_t i = start; i < start + len; ++i) {
        frame[i] = static_cast<std::uint8_t>(rng.uniform_int(256));
      }
      break;
    }
    case MutationOp::kLengthLie: {
      std::vector<std::size_t> usable;
      for (std::size_t o : length_offsets) {
        if (o < frame.size()) usable.push_back(o);
      }
      std::size_t target = usable[rng.uniform_int(usable.size())];
      frame[target] = rng.bernoulli(0.5)
                          ? boundary_value(rng)
                          : static_cast<std::uint8_t>(rng.uniform_int(256));
      break;
    }
    case MutationOp::kBoundary:
      frame[rng.uniform_int(frame.size())] = boundary_value(rng);
      break;
    case MutationOp::kBitFlip: {
      std::size_t flips = 1 + rng.uniform_int(8);
      for (std::size_t i = 0; i < flips; ++i) {
        std::size_t bit = rng.uniform_int(frame.size() * 8);
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
  }
}

Bytes mutate_frame(const FuzzFrame& seed, Rng& rng) {
  Bytes out = seed.octets;
  std::size_t ops = 1 + rng.uniform_int(3);
  for (std::size_t i = 0; i < ops; ++i) {
    apply_mutation(out, seed.length_offsets, rng);
  }
  return out;
}

}  // namespace mip6
