// PIM-DM protocol timer configuration (draft-ietf-pim-v2-dm-03, the version
// the paper cites). Defaults are the draft/paper values: (S,G) data timeout
// 210 s (paper §3.1), Prune Delay Time 3 s (paper §4.3.1), etc.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace mip6 {

struct PimDmConfig {
  /// Hello period / holdtime for neighbor liveness.
  Time hello_period = Time::sec(30);
  Time hello_holdtime = Time::sec(105);
  /// (S,G) entry lifetime for a silent source ("data timeout", default 210 s;
  /// restarted when the router forwards a datagram for the entry).
  Time data_timeout = Time::sec(210);
  /// How long a received Prune keeps an interface pruned (holdtime field).
  Time prune_hold_time = Time::sec(210);
  /// T_PruneDel: LAN prune delay — the window in which another downstream
  /// router may send a Join to override the prune.
  Time prune_delay = Time::sec(3);
  /// Join override is scheduled uniformly in [0, join_override_window];
  /// must be below prune_delay.
  Time join_override_window = Time::ms(2500);
  /// Graft retransmission period until a Graft-Ack arrives.
  Time graft_retry_period = Time::sec(3);
  /// Assert state lifetime at the losing router.
  Time assert_time = Time::sec(180);
  /// Minimum spacing of repeated Asserts / re-Prunes for one (S,G,iface).
  Time assert_rate_limit = Time::sec(3);
  /// Metric preference advertised in Asserts (administrative distance of
  /// the unicast protocol feeding the RPF checks).
  std::uint32_t metric_preference = 101;

  /// State Refresh extension (adopted by later PIM-DM drafts / RFC 3973,
  /// after the version the paper analyzed): the first-hop router
  /// periodically floods a control message down the broadcast tree so
  /// prune state is refreshed in place instead of expiring into a periodic
  /// data re-flood. Off by default to match the paper's draft-03 baseline;
  /// the ABL3 bench quantifies what it buys.
  bool state_refresh = false;
  Time state_refresh_interval = Time::sec(60);

  /// Bitmap MFC entries + (S,G) flow cache on the data path (see
  /// docs/PERF.md). Off = the pre-cache per-packet oiflist walk, kept for
  /// A/B regression runs; every same-seed trace must be byte-identical
  /// either way.
  bool mfc = true;
  /// Fail-fast width budget for the dense interface index table (clamped
  /// to IfSet::kBits): enabling more interfaces than this throws.
  std::size_t mfc_max_ifaces = 256;
};

}  // namespace mip6
