// PIM Dense Mode router engine (draft-ietf-pim-v2-dm-03 semantics).
//
// Broadcast-and-prune: the first datagram of a source creates an (S,G)
// entry whose outgoing list is every PIM interface with neighbors plus every
// interface with MLD listeners; routers with nothing downstream prune
// upstream (after which the upstream interface stays pruned for the prune
// holdtime, subject to a 3 s LAN prune delay during which another downstream
// router can send an overriding Join); new listeners trigger Grafts (reliable
// via Graft-Ack); duplicate forwarders on a LAN are resolved by Asserts; an
// (S,G) entry for a silent source expires after the 210 s data timeout.
//
// The paper's mobile-sender pathologies fall out of these rules: a moved
// sender's new care-of address creates a brand-new flooded tree, its stale
// packets on the new link hit forwarding outgoing interfaces and trigger
// Asserts, and the old tree lingers until the data timeout.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ipv6/stack.hpp"
#include "mld/router.hpp"
#include "net/mfc.hpp"
#include "pimdm/config.hpp"
#include "pimdm/dense_engine.hpp"
#include "pimdm/messages.hpp"
#include "sim/timer.hpp"

namespace mip6 {

class PimDmRouter : public DenseModeEngine {
 public:
  PimDmRouter(Ipv6Stack& stack, MldRouter& mld, PimDmConfig config);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "pimdm"; }
  /// Re-enables PIM on every configured interface that is currently
  /// attached (cold boot after a restart).
  void start() override;
  /// Crash semantics: shutdown(), keeping the configured-interface set.
  void reset() override { shutdown(); }
  /// Teardown: shutdown() plus releasing the stack hooks (multicast
  /// forwarder + PIM protocol handler) this router installed.
  void stop() override;

  /// Enables PIM on an interface: Hello emission + neighbor tracking.
  /// Remembered for start() after a crash/restart cycle.
  void enable_iface(IfaceId iface) override;

  /// Crash support: drops every (S,G) entry, every neighbor, all timers and
  /// all local-receiver pins — the router forgets everything it learned.
  /// Re-enable interfaces (enable_iface) to bring the protocol back up.
  void shutdown();
  /// The interfaces PIM is currently enabled on (for restart wiring).
  std::vector<IfaceId> enabled_ifaces() const override;

  /// Marks this router node itself as a receiver for `group` (the home
  /// agent "joins on behalf of" mobile nodes this way): the router will not
  /// prune itself off the (S,G) trees of the group even with an empty
  /// outgoing list. Reference-counted per caller tag.
  void add_local_receiver(const Address& group) override;
  void remove_local_receiver(const Address& group) override;
  bool is_local_receiver(const Address& group) const override;

  // --- Introspection for tests, metrics and benches ---------------------
  // SgKey comes from DenseModeEngine; PimDmRouter::SgKey stays valid at
  // every historical call site via inheritance.
  enum class DownstreamState { kForwarding, kPrunePending, kPruned };

  std::size_t entry_count() const override { return entries_.size(); }
  std::size_t mfc_entries() const override { return mfc_.size(); }
  /// Keys of every live (S,G) entry (auditor walks these).
  std::vector<SgKey> sg_keys() const override;
  bool has_entry(const Address& src, const Address& group) const override;
  /// True if this router pruned itself off the (S,G) tree upstream.
  bool upstream_pruned(const Address& src,
                       const Address& group) const override;
  /// The upstream RPF neighbor (unspecified when first-hop router).
  Address rpf_neighbor_of(const Address& src,
                          const Address& group) const override;
  /// True if this router lost the Assert election on `iface`.
  bool assert_loser(const Address& src, const Address& group,
                    IfaceId iface) const override;
  /// Interfaces the entry currently forwards onto (the "oif list").
  std::vector<IfaceId> outgoing(const Address& src,
                                const Address& group) const override;
  IfaceId incoming(const Address& src, const Address& group) const override;
  DownstreamState downstream_state(const Address& src, const Address& group,
                                   IfaceId iface) const;
  /// Engine-neutral form of downstream_state(): true iff kPruned.
  bool downstream_pruned(const Address& src, const Address& group,
                         IfaceId iface) const override;
  std::vector<Address> neighbors(IfaceId iface) const override;
  const PimDmConfig& config() const { return config_; }

 private:
  struct Downstream {
    DownstreamState state = DownstreamState::kForwarding;
    std::unique_ptr<Timer> prune_pending_timer;  // LAN prune delay
    std::unique_ptr<Timer> prune_expiry_timer;   // prune holdtime
    bool assert_loser = false;
    std::unique_ptr<Timer> assert_timer;
    Time last_assert_tx = Time::never();
    /// Rate limiter for prunes sent in response to non-RPF data arrivals.
    Time last_nonrpf_prune_tx = Time::never();
  };
  struct SgEntry {
    Address source;
    Address group;
    IfaceId incoming = 0;
    Address rpf_neighbor;  // unspecified when we are the first-hop router
    std::uint32_t rpf_metric = 0;
    // Best assert heard on the incoming interface so far; the winner of
    // the election becomes the RPF neighbor (order-independent).
    std::uint32_t assert_winner_pref = 0;
    std::uint32_t assert_winner_metric = 0;
    Address assert_winner_addr;
    std::map<IfaceId, std::unique_ptr<Downstream>> downstream;
    bool upstream_pruned = false;  // we pruned ourselves off upstream
    Time last_prune_tx = Time::never();
    bool graft_pending = false;
    std::unique_ptr<Timer> graft_retry_timer;
    std::unique_ptr<Timer> entry_timer;  // data timeout
    std::unique_ptr<Timer> join_override_timer;
    /// The upstream neighbor named by the prune we are overriding (may
    /// differ from rpf_neighbor when our RPF information is stale).
    Address join_override_target;
    /// Periodic State Refresh origination (first-hop routers only).
    std::unique_ptr<Timer> state_refresh_timer;
  };
  struct IfaceState {
    std::unique_ptr<Timer> hello_timer;
    // neighbor address -> liveness timer
    std::map<Address, std::unique_ptr<Timer>> neighbors;
  };

  // Entry points.
  void on_multicast_data(const ParsedDatagram& d, const Packet& pkt,
                         IfaceId iface);
  void on_pim_message(const ParsedDatagram& d, IfaceId iface);
  void on_hello(const PimHello& hello, const Address& from, IfaceId iface);
  void on_join_prune(const PimJoinPrune& jp, const Address& from,
                     IfaceId iface);
  void on_graft(const PimJoinPrune& graft, const Address& from,
                IfaceId iface);
  void on_graft_ack(const PimJoinPrune& ack, IfaceId iface);
  void on_assert(const PimAssert& a, const Address& from, IfaceId iface);
  void on_state_refresh(const PimStateRefresh& sr, IfaceId iface);
  void on_mld_change(IfaceId iface, const Address& group, bool present);

  // State machinery.
  SgEntry* find_entry(const Address& src, const Address& group);
  const SgEntry* find_entry(const Address& src, const Address& group) const;
  SgEntry* create_entry(const Address& src, const Address& group);
  void delete_entry(const SgKey& key);
  std::vector<IfaceId> oiflist(const SgEntry& e) const;
  /// The oiflist() membership predicate for one downstream interface.
  bool oif_active(const SgEntry& e, IfaceId iface, const Downstream& d) const;
  /// Allocation-free "is this interface in oiflist(e)?".
  bool in_oiflist(const SgEntry& e, IfaceId iface) const;
  bool wants_traffic(const SgEntry& e) const;
  void check_upstream(SgEntry& e);
  /// Variant taking the already-computed wants_traffic() result so the
  /// data path never evaluates the oif set twice for one packet.
  void check_upstream(SgEntry& e, bool wants);

  // MFC layer (config_.mfc): dense interface indices, precomputed oif
  // bitmaps and the (S,G) flow cache the data path consults first.
  static FlowKey flow_key(const Address& src, const Address& group);
  /// Registers `iface` in the mif table; a renumbering insertion flushes
  /// the whole cache (bitmaps built under the old numbering are garbage).
  Mifi mif_of(IfaceId iface);
  /// Re-resolves the per-RPF-iface hit/miss cells after a mif-table
  /// change (cold path: string work happens here, never per packet).
  void rebuild_mfc_cells();
  /// Recomputes e's bitmap and installs it; nullptr when the entry is not
  /// cacheable (empty oif set and no local receiver: that path stays
  /// per-packet because it carries the rate-limited self-prune).
  MfcEntry* refill_mfc(SgEntry& e);
  void invalidate_mfc(const SgEntry& e);
  void invalidate_mfc(const SgKey& key);

  // Message emission.
  void send_hello(IfaceId iface);
  void send_prune_upstream(SgEntry& e);
  void send_graft_upstream(SgEntry& e);
  void send_join_override(SgEntry& e, const Address& upstream);
  void send_assert(SgEntry& e, IfaceId iface);
  void send_graft_ack(const PimJoinPrune& graft, const Address& to,
                      IfaceId iface);
  void originate_state_refresh(SgEntry& e);
  void forward_state_refresh(SgEntry& e, const PimStateRefresh& sr);
  void emit(IfaceId iface, PimType type, BytesView body, const Address& dst);

  Downstream& downstream(SgEntry& e, IfaceId iface);
  bool pim_enabled(IfaceId iface) const { return ifaces_.contains(iface); }
  bool has_neighbors(IfaceId iface) const;
  void count(std::string_view name, std::uint64_t delta = 1);
  Time now() const { return stack_->network().now(); }
  Trace& trace() const { return stack_->network().trace(); }
  /// Lazy protocol-event trace; `detail_fn` only runs when a sink is
  /// installed, so this is free in benches.
  template <typename DetailFn>
  void trace_event(const char* event, DetailFn&& detail_fn) const {
    trace().emit(now(), component_, event, std::forward<DetailFn>(detail_fn));
  }

  Ipv6Stack* stack_;
  MldRouter* mld_;
  PimDmConfig config_;
  std::string component_;  // "pimdm/<node>", cached for trace records
  /// Cell for the per-fan-out "pimdm/data-fwd" counter, resolved once.
  CounterCell c_data_fwd_;
  /// Flow-cache hit/miss cells, resolved once (hot path, no string work).
  CounterCell c_mfc_hit_;
  CounterCell c_mfc_miss_;
  /// Per-RPF-interface hit/miss cells ("pimdm/mfc-hit.if<id>"), index =
  /// mifi. Rebuilt by mif_of() whenever the mif table renumbers, so the
  /// hot path never does string work.
  std::vector<CounterCell> c_mfc_shard_hit_;
  std::vector<CounterCell> c_mfc_shard_miss_;
  /// Dense interface indices + per-RPF-iface (S,G) flow cache bank.
  MifTable mifs_;
  ShardedFlowCache mfc_;
  /// Every interface enable_iface() was ever called for (restart wiring).
  std::set<IfaceId> configured_;
  std::map<IfaceId, IfaceState> ifaces_;
  std::map<SgKey, std::unique_ptr<SgEntry>> entries_;
  std::map<Address, int> local_receivers_;
};

}  // namespace mip6
