// Engine-neutral interface over a dense-mode multicast routing engine.
//
// Two engines implement it: PimDmRouter (soft-state flood-and-prune,
// draft-ietf-pim-v2-dm-03) and HpimDmRouter (hard-state reliable sync,
// arXiv 2002.06635). Everything engine-agnostic — the World wiring, the
// home agent's membership backend, the Auditor's invariant checks, metrics
// and benches — talks to this interface so a ScenarioSpec can swap engines
// without touching the rest of the simulation.
//
// The data path is NOT behind these virtuals: each engine installs its own
// multicast-forwarder hook directly on the Ipv6Stack, so the engine
// abstraction adds zero cost per forwarded packet (bench_scale parity).
#pragma once

#include <cstddef>
#include <vector>

#include "ipv6/address.hpp"
#include "net/interface.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class DenseModeEngine : public ProtocolModule {
 public:
  /// Key of one (S,G) forwarding entry. Shared by both engines so auditor
  /// maps and bench tables can mix keys from different routers.
  struct SgKey {
    Address source;
    Address group;
    friend auto operator<=>(const SgKey&, const SgKey&) = default;
  };

  // --- Lifecycle beyond ProtocolModule -----------------------------------
  /// Enables the engine on an interface (hello emission, neighbor
  /// tracking). Remembered for start() after a crash/restart cycle.
  virtual void enable_iface(IfaceId iface) = 0;
  /// The interfaces the engine is currently enabled on.
  virtual std::vector<IfaceId> enabled_ifaces() const = 0;

  // --- Local receivers (home agent "joins on behalf of" mobile nodes) ----
  virtual void add_local_receiver(const Address& group) = 0;
  virtual void remove_local_receiver(const Address& group) = 0;
  virtual bool is_local_receiver(const Address& group) const = 0;

  // --- Introspection for the auditor, metrics and benches ----------------
  virtual std::size_t entry_count() const = 0;
  /// Occupied (S,G) flow-cache slots, stale entries included — the chaos
  /// watchdogs compare this against a fault-free oracle to catch leaks.
  virtual std::size_t mfc_entries() const = 0;
  /// Keys of every live (S,G) entry (auditor walks these).
  virtual std::vector<SgKey> sg_keys() const = 0;
  virtual bool has_entry(const Address& src, const Address& group) const = 0;
  /// True if this router took itself off the (S,G) tree upstream (pruned
  /// in PIM-DM; declared not-interested in HPIM-DM).
  virtual bool upstream_pruned(const Address& src,
                               const Address& group) const = 0;
  /// The upstream RPF neighbor (unspecified when first-hop router).
  virtual Address rpf_neighbor_of(const Address& src,
                                  const Address& group) const = 0;
  /// True if this router lost the Assert election on `iface`.
  virtual bool assert_loser(const Address& src, const Address& group,
                            IfaceId iface) const = 0;
  /// Interfaces the entry currently forwards onto (the "oif list").
  virtual std::vector<IfaceId> outgoing(const Address& src,
                                        const Address& group) const = 0;
  virtual IfaceId incoming(const Address& src, const Address& group) const = 0;
  /// True when the engine has positively concluded no downstream router on
  /// `iface` wants (S,G) traffic — a pruned oif in PIM-DM, an all-neighbors-
  /// declared-uninterested oif in HPIM-DM. The auditor's prune-coherence
  /// check keys off this.
  virtual bool downstream_pruned(const Address& src, const Address& group,
                                 IfaceId iface) const = 0;
  virtual std::vector<Address> neighbors(IfaceId iface) const = 0;
};

}  // namespace mip6
