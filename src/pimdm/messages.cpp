#include "pimdm/messages.hpp"

#include "ipv6/header.hpp"
#include "ipv6/icmpv6.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kFamilyIpv6 = 2;
constexpr std::uint8_t kEncodingNative = 0;
constexpr std::uint8_t kPimVersion = 2;

// Hello option types (draft §4.2).
constexpr std::uint16_t kHelloOptHoldtime = 1;

}  // namespace

Bytes serialize_pim(PimType type, BytesView body, const Address& src,
                    const Address& dst) {
  BufferWriter w(4 + body.size());
  w.u8(static_cast<std::uint8_t>((kPimVersion << 4) |
                                 static_cast<std::uint8_t>(type)));
  w.u8(0);   // reserved
  w.u16(0);  // checksum placeholder
  w.raw(body);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kPim, w.bytes());
  w.patch_u16(2, ck);
  return std::move(w).take();
}

PimHeader parse_pim(BytesView payload, const Address& src,
                    const Address& dst) {
  if (payload.size() < 4) throw ParseError("PIM message too short");
  if (pseudo_header_checksum(src, dst,
                             static_cast<std::uint32_t>(payload.size()),
                             proto::kPim, payload) != 0) {
    throw ParseError("PIM checksum mismatch");
  }
  BufferReader r(payload);
  std::uint8_t vt = r.u8();
  if ((vt >> 4) != kPimVersion) throw ParseError("PIM version is not 2");
  r.skip(3);  // reserved + checksum
  PimHeader h;
  h.type = static_cast<PimType>(vt & 0x0f);
  h.body = r.raw(r.remaining());
  return h;
}

// --- Encoded addresses -------------------------------------------------------

void write_encoded_unicast(BufferWriter& w, const Address& a) {
  w.u8(kFamilyIpv6);
  w.u8(kEncodingNative);
  a.write(w);
}

Address read_encoded_unicast(BufferReader& r) {
  if (r.u8() != kFamilyIpv6) throw ParseError("encoded-unicast: not IPv6");
  if (r.u8() != kEncodingNative) {
    throw ParseError("encoded-unicast: unknown encoding");
  }
  return Address::read(r);
}

void write_encoded_group(BufferWriter& w, const Address& g) {
  w.u8(kFamilyIpv6);
  w.u8(kEncodingNative);
  w.u8(0);    // reserved
  w.u8(128);  // mask length
  g.write(w);
}

Address read_encoded_group(BufferReader& r) {
  if (r.u8() != kFamilyIpv6) throw ParseError("encoded-group: not IPv6");
  if (r.u8() != kEncodingNative) {
    throw ParseError("encoded-group: unknown encoding");
  }
  r.skip(1);  // reserved
  if (r.u8() != 128) throw ParseError("encoded-group: partial masks unsupported");
  return Address::read(r);
}

void write_encoded_source(BufferWriter& w, const Address& s,
                          std::uint8_t flags) {
  w.u8(kFamilyIpv6);
  w.u8(kEncodingNative);
  w.u8(flags);
  w.u8(128);  // mask length
  s.write(w);
}

Address read_encoded_source(BufferReader& r) {
  if (r.u8() != kFamilyIpv6) throw ParseError("encoded-source: not IPv6");
  if (r.u8() != kEncodingNative) {
    throw ParseError("encoded-source: unknown encoding");
  }
  r.skip(1);  // flags
  if (r.u8() != 128) {
    throw ParseError("encoded-source: partial masks unsupported");
  }
  return Address::read(r);
}

// --- Hello -------------------------------------------------------------------

Bytes PimHello::body() const {
  BufferWriter w(8);
  w.u16(kHelloOptHoldtime);
  w.u16(2);  // option length
  w.u16(holdtime);
  return std::move(w).take();
}

PimHello PimHello::parse(BytesView body) {
  BufferReader r(body);
  PimHello h;
  bool have_holdtime = false;
  while (r.remaining() >= 4) {
    std::uint16_t type = r.u16();
    std::uint16_t len = r.u16();
    BufferReader opt(r.view(len));
    if (type == kHelloOptHoldtime) {
      h.holdtime = opt.u16();
      have_holdtime = true;
    }
    // Unknown options are skipped.
  }
  if (!r.empty()) throw ParseError("PIM Hello trailing octets");
  if (!have_holdtime) throw ParseError("PIM Hello without holdtime option");
  return h;
}

// --- Join/Prune ----------------------------------------------------------------

Bytes PimJoinPrune::body() const {
  BufferWriter w(64);
  write_encoded_unicast(w, upstream_neighbor);
  w.u8(0);  // reserved
  if (groups.size() > 255) throw LogicError("too many groups in Join/Prune");
  w.u8(static_cast<std::uint8_t>(groups.size()));
  w.u16(holdtime);
  for (const auto& g : groups) {
    write_encoded_group(w, g.group);
    w.u16(static_cast<std::uint16_t>(g.joined_sources.size()));
    w.u16(static_cast<std::uint16_t>(g.pruned_sources.size()));
    for (const auto& s : g.joined_sources) write_encoded_source(w, s);
    for (const auto& s : g.pruned_sources) write_encoded_source(w, s);
  }
  return std::move(w).take();
}

PimJoinPrune PimJoinPrune::parse(BytesView body) {
  BufferReader r(body);
  PimJoinPrune m;
  m.upstream_neighbor = read_encoded_unicast(r);
  r.skip(1);  // reserved
  std::uint8_t ngroups = r.u8();
  m.holdtime = r.u16();
  for (std::uint8_t i = 0; i < ngroups; ++i) {
    GroupEntry g;
    g.group = read_encoded_group(r);
    std::uint16_t njoin = r.u16();
    std::uint16_t nprune = r.u16();
    for (std::uint16_t k = 0; k < njoin; ++k) {
      g.joined_sources.push_back(read_encoded_source(r));
    }
    for (std::uint16_t k = 0; k < nprune; ++k) {
      g.pruned_sources.push_back(read_encoded_source(r));
    }
    m.groups.push_back(std::move(g));
  }
  r.expect_end("PIM Join/Prune");
  return m;
}

PimJoinPrune PimJoinPrune::join(const Address& upstream, const Address& src,
                                const Address& group) {
  PimJoinPrune m;
  m.upstream_neighbor = upstream;
  m.groups.push_back(GroupEntry{group, {src}, {}});
  return m;
}

PimJoinPrune PimJoinPrune::prune(const Address& upstream, const Address& src,
                                 const Address& group,
                                 std::uint16_t holdtime) {
  PimJoinPrune m;
  m.upstream_neighbor = upstream;
  m.holdtime = holdtime;
  m.groups.push_back(GroupEntry{group, {}, {src}});
  return m;
}

// --- State Refresh --------------------------------------------------------------

Bytes PimStateRefresh::body() const {
  BufferWriter w(64);
  write_encoded_group(w, group);
  write_encoded_unicast(w, source);
  write_encoded_unicast(w, originator);
  w.u32(metric_preference & 0x7fffffff);
  w.u32(metric);
  w.u8(128);  // mask length
  w.u8(ttl);
  w.u8(prune_indicator ? 0x80 : 0x00);  // P | N | O | reserved
  w.u8(interval_s);
  return std::move(w).take();
}

PimStateRefresh PimStateRefresh::parse(BytesView body) {
  BufferReader r(body);
  PimStateRefresh m;
  m.group = read_encoded_group(r);
  m.source = read_encoded_unicast(r);
  m.originator = read_encoded_unicast(r);
  m.metric_preference = r.u32() & 0x7fffffff;
  m.metric = r.u32();
  if (r.u8() != 128) {
    throw ParseError("state-refresh: partial masks unsupported");
  }
  m.ttl = r.u8();
  m.prune_indicator = (r.u8() & 0x80) != 0;
  m.interval_s = r.u8();
  r.expect_end("PIM State Refresh");
  return m;
}

// --- Assert --------------------------------------------------------------------

Bytes PimAssert::body() const {
  BufferWriter w(48);
  write_encoded_group(w, group);
  write_encoded_unicast(w, source);
  w.u32(metric_preference & 0x7fffffff);  // R bit always 0 in dense mode
  w.u32(metric);
  return std::move(w).take();
}

PimAssert PimAssert::parse(BytesView body) {
  BufferReader r(body);
  PimAssert a;
  a.group = read_encoded_group(r);
  a.source = read_encoded_unicast(r);
  a.metric_preference = r.u32() & 0x7fffffff;
  a.metric = r.u32();
  r.expect_end("PIM Assert");
  return a;
}

}  // namespace mip6
