#include "pimdm/messages.hpp"

#include "ipv6/header.hpp"
#include "ipv6/icmpv6.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kFamilyIpv6 = 2;
constexpr std::uint8_t kEncodingNative = 0;
constexpr std::uint8_t kPimVersion = 2;

// Hello option types (draft §4.2).
constexpr std::uint16_t kHelloOptHoldtime = 1;

}  // namespace

Bytes serialize_pim(PimType type, BytesView body, const Address& src,
                    const Address& dst) {
  BufferWriter w(4 + body.size());
  w.u8(static_cast<std::uint8_t>((kPimVersion << 4) |
                                 static_cast<std::uint8_t>(type)));
  w.u8(0);   // reserved
  w.u16(0);  // checksum placeholder
  w.raw(body);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kPim, w.bytes());
  w.patch_u16(2, ck);
  return std::move(w).take();
}

ParseResult<PimHeader> try_parse_pim(BytesView payload, const Address& src,
                                     const Address& dst) {
  if (payload.size() < 4) {
    return ParseFailure{ParseReason::kTruncated, "PIM message too short"};
  }
  if (pseudo_header_checksum(src, dst,
                             static_cast<std::uint32_t>(payload.size()),
                             proto::kPim, payload) != 0) {
    return ParseFailure{ParseReason::kBadChecksum, "PIM checksum"};
  }
  WireCursor c(payload);
  std::uint8_t vt = c.u8();
  if ((vt >> 4) != kPimVersion) {
    return ParseFailure{ParseReason::kBadType, "PIM version is not 2"};
  }
  c.skip(3);  // reserved + checksum
  PimHeader h;
  h.type = static_cast<PimType>(vt & 0x0f);
  h.body = c.raw(c.remaining());
  return h;
}

PimHeader parse_pim(BytesView payload, const Address& src,
                    const Address& dst) {
  return try_parse_pim(payload, src, dst).take_or_throw();
}

// --- Encoded addresses -------------------------------------------------------

void write_encoded_unicast(BufferWriter& w, const Address& a) {
  w.u8(kFamilyIpv6);
  w.u8(kEncodingNative);
  a.write(w);
}

Address read_encoded_unicast(BufferReader& r) {
  if (r.u8() != kFamilyIpv6) throw ParseError("encoded-unicast: not IPv6");
  if (r.u8() != kEncodingNative) {
    throw ParseError("encoded-unicast: unknown encoding");
  }
  return Address::read(r);
}

ParseResult<Address> try_read_encoded_unicast(WireCursor& c) {
  std::uint8_t family = c.u8();
  std::uint8_t encoding = c.u8();
  Address a = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "encoded-unicast address"};
  }
  if (family != kFamilyIpv6) {
    return ParseFailure{ParseReason::kBadType, "encoded-unicast: not IPv6"};
  }
  if (encoding != kEncodingNative) {
    return ParseFailure{ParseReason::kBadType,
                        "encoded-unicast: unknown encoding"};
  }
  return a;
}

void write_encoded_group(BufferWriter& w, const Address& g) {
  w.u8(kFamilyIpv6);
  w.u8(kEncodingNative);
  w.u8(0);    // reserved
  w.u8(128);  // mask length
  g.write(w);
}

Address read_encoded_group(BufferReader& r) {
  if (r.u8() != kFamilyIpv6) throw ParseError("encoded-group: not IPv6");
  if (r.u8() != kEncodingNative) {
    throw ParseError("encoded-group: unknown encoding");
  }
  r.skip(1);  // reserved
  if (r.u8() != 128) throw ParseError("encoded-group: partial masks unsupported");
  return Address::read(r);
}

ParseResult<Address> try_read_encoded_group(WireCursor& c) {
  std::uint8_t family = c.u8();
  std::uint8_t encoding = c.u8();
  c.skip(1);  // reserved
  std::uint8_t mask = c.u8();
  Address a = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "encoded-group address"};
  }
  if (family != kFamilyIpv6) {
    return ParseFailure{ParseReason::kBadType, "encoded-group: not IPv6"};
  }
  if (encoding != kEncodingNative) {
    return ParseFailure{ParseReason::kBadType,
                        "encoded-group: unknown encoding"};
  }
  if (mask != 128) {
    return ParseFailure{ParseReason::kSemantic,
                        "encoded-group: partial masks unsupported"};
  }
  return a;
}

void write_encoded_source(BufferWriter& w, const Address& s,
                          std::uint8_t flags) {
  w.u8(kFamilyIpv6);
  w.u8(kEncodingNative);
  w.u8(flags);
  w.u8(128);  // mask length
  s.write(w);
}

Address read_encoded_source(BufferReader& r) {
  if (r.u8() != kFamilyIpv6) throw ParseError("encoded-source: not IPv6");
  if (r.u8() != kEncodingNative) {
    throw ParseError("encoded-source: unknown encoding");
  }
  r.skip(1);  // flags
  if (r.u8() != 128) {
    throw ParseError("encoded-source: partial masks unsupported");
  }
  return Address::read(r);
}

ParseResult<Address> try_read_encoded_source(WireCursor& c) {
  std::uint8_t family = c.u8();
  std::uint8_t encoding = c.u8();
  c.skip(1);  // flags
  std::uint8_t mask = c.u8();
  Address a = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "encoded-source address"};
  }
  if (family != kFamilyIpv6) {
    return ParseFailure{ParseReason::kBadType, "encoded-source: not IPv6"};
  }
  if (encoding != kEncodingNative) {
    return ParseFailure{ParseReason::kBadType,
                        "encoded-source: unknown encoding"};
  }
  if (mask != 128) {
    return ParseFailure{ParseReason::kSemantic,
                        "encoded-source: partial masks unsupported"};
  }
  return a;
}

// --- Hello -------------------------------------------------------------------

Bytes PimHello::body() const {
  BufferWriter w(8);
  w.u16(kHelloOptHoldtime);
  w.u16(2);  // option length
  w.u16(holdtime);
  return std::move(w).take();
}

ParseResult<PimHello> PimHello::try_parse(BytesView body) {
  WireCursor c(body);
  PimHello h;
  bool have_holdtime = false;
  while (c.remaining() >= 4) {
    std::uint16_t type = c.u16();
    std::uint16_t len = c.u16();
    BytesView opt_view = c.view(len);
    if (c.failed()) {
      return ParseFailure{ParseReason::kTruncated,
                          "PIM Hello option exceeds body"};
    }
    if (type == kHelloOptHoldtime) {
      WireCursor opt(opt_view);
      h.holdtime = opt.u16();
      if (opt.failed()) {
        return ParseFailure{ParseReason::kBadLength,
                            "PIM Hello holdtime option too short"};
      }
      have_holdtime = true;
    }
    // Unknown options are skipped.
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kTruncated,
                        "PIM Hello option header fragment"};
  }
  if (!have_holdtime) {
    return ParseFailure{ParseReason::kSemantic,
                        "PIM Hello without holdtime option"};
  }
  return h;
}

PimHello PimHello::parse(BytesView body) {
  return try_parse(body).take_or_throw();
}

// --- Join/Prune ----------------------------------------------------------------

Bytes PimJoinPrune::body() const {
  BufferWriter w(64);
  write_encoded_unicast(w, upstream_neighbor);
  w.u8(0);  // reserved
  if (groups.size() > 255) throw LogicError("too many groups in Join/Prune");
  w.u8(static_cast<std::uint8_t>(groups.size()));
  w.u16(holdtime);
  for (const auto& g : groups) {
    write_encoded_group(w, g.group);
    w.u16(static_cast<std::uint16_t>(g.joined_sources.size()));
    w.u16(static_cast<std::uint16_t>(g.pruned_sources.size()));
    for (const auto& s : g.joined_sources) write_encoded_source(w, s);
    for (const auto& s : g.pruned_sources) write_encoded_source(w, s);
  }
  return std::move(w).take();
}

ParseResult<PimJoinPrune> PimJoinPrune::try_parse(BytesView body) {
  // Each encoded source is 20 octets; a count field promising more sources
  // than the body holds is rejected before any per-element work, so a
  // 65535-source lie costs O(1), not O(n) allocations.
  constexpr std::size_t kEncodedSourceSize = 20;
  WireCursor c(body);
  PimJoinPrune m;
  ParseResult<Address> upstream = try_read_encoded_unicast(c);
  if (!upstream.ok()) return upstream.failure();
  m.upstream_neighbor = upstream.value();
  c.skip(1);  // reserved
  std::uint8_t ngroups = c.u8();
  m.holdtime = c.u16();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "PIM Join/Prune header"};
  }
  if (ngroups > bound::kMaxPimGroupRecords) {
    return ParseFailure{ParseReason::kBoundExceeded,
                        "PIM Join/Prune group records"};
  }
  for (std::uint8_t i = 0; i < ngroups; ++i) {
    GroupEntry g;
    ParseResult<Address> group = try_read_encoded_group(c);
    if (!group.ok()) return group.failure();
    g.group = group.value();
    std::uint16_t njoin = c.u16();
    std::uint16_t nprune = c.u16();
    if (c.failed()) {
      return ParseFailure{ParseReason::kTruncated,
                          "PIM Join/Prune source counts"};
    }
    std::size_t nsources = std::size_t{njoin} + nprune;
    if (nsources > bound::kMaxPimSourcesPerGroup) {
      return ParseFailure{ParseReason::kBoundExceeded,
                          "PIM Join/Prune sources in one group record"};
    }
    if (nsources * kEncodedSourceSize > c.remaining()) {
      return ParseFailure{ParseReason::kTruncated,
                          "PIM Join/Prune source count exceeds body"};
    }
    for (std::uint16_t k = 0; k < njoin; ++k) {
      ParseResult<Address> s = try_read_encoded_source(c);
      if (!s.ok()) return s.failure();
      g.joined_sources.push_back(s.value());
    }
    for (std::uint16_t k = 0; k < nprune; ++k) {
      ParseResult<Address> s = try_read_encoded_source(c);
      if (!s.ok()) return s.failure();
      g.pruned_sources.push_back(s.value());
    }
    m.groups.push_back(std::move(g));
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after PIM Join/Prune"};
  }
  return m;
}

PimJoinPrune PimJoinPrune::parse(BytesView body) {
  return try_parse(body).take_or_throw();
}

PimJoinPrune PimJoinPrune::join(const Address& upstream, const Address& src,
                                const Address& group) {
  PimJoinPrune m;
  m.upstream_neighbor = upstream;
  m.groups.push_back(GroupEntry{group, {src}, {}});
  return m;
}

PimJoinPrune PimJoinPrune::prune(const Address& upstream, const Address& src,
                                 const Address& group,
                                 std::uint16_t holdtime) {
  PimJoinPrune m;
  m.upstream_neighbor = upstream;
  m.holdtime = holdtime;
  m.groups.push_back(GroupEntry{group, {}, {src}});
  return m;
}

// --- State Refresh --------------------------------------------------------------

Bytes PimStateRefresh::body() const {
  BufferWriter w(64);
  write_encoded_group(w, group);
  write_encoded_unicast(w, source);
  write_encoded_unicast(w, originator);
  w.u32(metric_preference & 0x7fffffff);
  w.u32(metric);
  w.u8(128);  // mask length
  w.u8(ttl);
  w.u8(prune_indicator ? 0x80 : 0x00);  // P | N | O | reserved
  w.u8(interval_s);
  return std::move(w).take();
}

ParseResult<PimStateRefresh> PimStateRefresh::try_parse(BytesView body) {
  WireCursor c(body);
  PimStateRefresh m;
  ParseResult<Address> group = try_read_encoded_group(c);
  if (!group.ok()) return group.failure();
  m.group = group.value();
  ParseResult<Address> source = try_read_encoded_unicast(c);
  if (!source.ok()) return source.failure();
  m.source = source.value();
  ParseResult<Address> originator = try_read_encoded_unicast(c);
  if (!originator.ok()) return originator.failure();
  m.originator = originator.value();
  m.metric_preference = c.u32() & 0x7fffffff;
  m.metric = c.u32();
  std::uint8_t mask = c.u8();
  m.ttl = c.u8();
  m.prune_indicator = (c.u8() & 0x80) != 0;
  m.interval_s = c.u8();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "PIM State Refresh body"};
  }
  if (mask != 128) {
    return ParseFailure{ParseReason::kSemantic,
                        "state-refresh: partial masks unsupported"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after PIM State Refresh"};
  }
  return m;
}

PimStateRefresh PimStateRefresh::parse(BytesView body) {
  return try_parse(body).take_or_throw();
}

// --- Assert --------------------------------------------------------------------

Bytes PimAssert::body() const {
  BufferWriter w(48);
  write_encoded_group(w, group);
  write_encoded_unicast(w, source);
  w.u32(metric_preference & 0x7fffffff);  // R bit always 0 in dense mode
  w.u32(metric);
  return std::move(w).take();
}

ParseResult<PimAssert> PimAssert::try_parse(BytesView body) {
  WireCursor c(body);
  PimAssert a;
  ParseResult<Address> group = try_read_encoded_group(c);
  if (!group.ok()) return group.failure();
  a.group = group.value();
  ParseResult<Address> source = try_read_encoded_unicast(c);
  if (!source.ok()) return source.failure();
  a.source = source.value();
  a.metric_preference = c.u32() & 0x7fffffff;
  a.metric = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "PIM Assert body"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after PIM Assert"};
  }
  return a;
}

PimAssert PimAssert::parse(BytesView body) {
  return try_parse(body).take_or_throw();
}

}  // namespace mip6
