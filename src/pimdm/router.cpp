#include "pimdm/router.hpp"

#include <algorithm>

#include "net/wire_stats.hpp"

namespace mip6 {

PimDmRouter::PimDmRouter(Ipv6Stack& stack, MldRouter& mld, PimDmConfig config)
    : stack_(&stack), mld_(&mld), config_(config),
      component_("pimdm/" + stack.node().name()),
      c_data_fwd_(stack.network().counters().cell("pimdm/data-fwd")),
      c_mfc_hit_(stack.network().counters().cell("pimdm/mfc-hit")),
      c_mfc_miss_(stack.network().counters().cell("pimdm/mfc-miss")),
      mifs_(config_.mfc_max_ifaces) {
  stack.set_mcast_forwarder(
      [this](const ParsedDatagram& d, const Packet& pkt, IfaceId iface) {
        on_multicast_data(d, pkt, iface);
      });
  stack.set_proto_handler(
      proto::kPim,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_pim_message(d, iface);
      });
  mld.set_group_callback(
      [this](IfaceId iface, const Address& group, bool present) {
        on_mld_change(iface, group, present);
      });
}

void PimDmRouter::start() {
  for (const auto& ifp : stack_->node().interfaces()) {
    if (ifp->attached() && configured_.contains(ifp->id())) {
      enable_iface(ifp->id());
    }
  }
}

void PimDmRouter::stop() {
  shutdown();
  stack_->clear_mcast_forwarder();
  stack_->clear_proto_handler(proto::kPim);
  mld_->set_group_callback(nullptr);
}

void PimDmRouter::enable_iface(IfaceId iface) {
  configured_.insert(iface);
  if (config_.mfc) mif_of(iface);  // fail-fast on width overflow
  auto [it, fresh] = ifaces_.try_emplace(iface);
  if (!fresh) return;
  it->second.hello_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface] {
        send_hello(iface);
        ifaces_.at(iface).hello_timer->arm(config_.hello_period);
      }, stack_->node().domain());
  // First hello immediately (triggered hello on interface up).
  it->second.hello_timer->arm(Time::zero());
}

void PimDmRouter::shutdown() {
  // unique_ptr destruction cancels every timer (hello, neighbor liveness,
  // prune, assert, graft-retry, entry, state-refresh).
  entries_.clear();
  ifaces_.clear();
  local_receivers_.clear();
  mfc_.clear();  // entry pointers just dangled
  count("pimdm/shutdown");
}

std::vector<IfaceId> PimDmRouter::enabled_ifaces() const {
  std::vector<IfaceId> out;
  for (const auto& [iface, st] : ifaces_) out.push_back(iface);
  return out;
}

void PimDmRouter::add_local_receiver(const Address& group) {
  int& refs = local_receivers_[group];
  ++refs;
  if (refs > 1) return;
  // Existing pruned entries for this group must be re-grafted.
  for (auto& [key, e] : entries_) {
    if (key.group != group) continue;
    invalidate_mfc(*e);
    check_upstream(*e);
  }
}

void PimDmRouter::remove_local_receiver(const Address& group) {
  auto it = local_receivers_.find(group);
  if (it == local_receivers_.end()) return;
  if (--it->second <= 0) {
    local_receivers_.erase(it);
    for (auto& [key, e] : entries_) {
      if (key.group != group) continue;
      invalidate_mfc(*e);
      check_upstream(*e);
    }
  }
}

bool PimDmRouter::is_local_receiver(const Address& group) const {
  return local_receivers_.contains(group);
}

// ---------------------------------------------------------------------------
// Introspection

bool PimDmRouter::has_entry(const Address& src, const Address& group) const {
  return entries_.contains(SgKey{src, group});
}

std::vector<PimDmRouter::SgKey> PimDmRouter::sg_keys() const {
  std::vector<SgKey> out;
  for (const auto& [key, e] : entries_) out.push_back(key);
  return out;
}

bool PimDmRouter::upstream_pruned(const Address& src,
                                  const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  return e != nullptr && e->upstream_pruned;
}

Address PimDmRouter::rpf_neighbor_of(const Address& src,
                                     const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) throw LogicError("no such (S,G) entry");
  return e->rpf_neighbor;
}

bool PimDmRouter::assert_loser(const Address& src, const Address& group,
                               IfaceId iface) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) return false;
  auto it = e->downstream.find(iface);
  return it != e->downstream.end() && it->second->assert_loser;
}

std::vector<IfaceId> PimDmRouter::outgoing(const Address& src,
                                           const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) return {};
  return oiflist(*e);
}

IfaceId PimDmRouter::incoming(const Address& src, const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) throw LogicError("no such (S,G) entry");
  return e->incoming;
}

PimDmRouter::DownstreamState PimDmRouter::downstream_state(
    const Address& src, const Address& group, IfaceId iface) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) throw LogicError("no such (S,G) entry");
  auto it = e->downstream.find(iface);
  if (it == e->downstream.end()) return DownstreamState::kForwarding;
  return it->second->state;
}

bool PimDmRouter::downstream_pruned(const Address& src, const Address& group,
                                    IfaceId iface) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) return false;
  auto it = e->downstream.find(iface);
  return it != e->downstream.end() &&
         it->second->state == DownstreamState::kPruned;
}

std::vector<Address> PimDmRouter::neighbors(IfaceId iface) const {
  std::vector<Address> out;
  auto it = ifaces_.find(iface);
  if (it != ifaces_.end()) {
    for (const auto& [addr, timer] : it->second.neighbors) out.push_back(addr);
  }
  return out;
}

bool PimDmRouter::has_neighbors(IfaceId iface) const {
  auto it = ifaces_.find(iface);
  return it != ifaces_.end() && !it->second.neighbors.empty();
}

// ---------------------------------------------------------------------------
// Entry management

PimDmRouter::SgEntry* PimDmRouter::find_entry(const Address& src,
                                              const Address& group) {
  auto it = entries_.find(SgKey{src, group});
  return it == entries_.end() ? nullptr : it->second.get();
}

const PimDmRouter::SgEntry* PimDmRouter::find_entry(
    const Address& src, const Address& group) const {
  auto it = entries_.find(SgKey{src, group});
  return it == entries_.end() ? nullptr : it->second.get();
}

PimDmRouter::SgEntry* PimDmRouter::create_entry(const Address& src,
                                                const Address& group) {
  const Route* route = stack_->rib().lookup(src);
  if (route == nullptr) {
    count("pimdm/rpf-fail");
    return nullptr;
  }
  auto e = std::make_unique<SgEntry>();
  e->source = src;
  e->group = group;
  e->incoming = route->out_iface;
  e->rpf_neighbor = route->next_hop;  // unspecified when source is on-link
  e->rpf_metric = route->metric;
  e->assert_winner_pref = config_.metric_preference;
  e->assert_winner_metric = route->metric;
  SgKey key{src, group};
  e->entry_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, key] { delete_entry(key); }, stack_->node().domain());
  e->entry_timer->arm(config_.data_timeout);
  e->graft_retry_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, key] {
        SgEntry* entry = find_entry(key.source, key.group);
        if (entry != nullptr && entry->graft_pending) {
          count("pimdm/graft-retry");
          send_graft_upstream(*entry);
        }
      }, stack_->node().domain());
  e->join_override_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, key] {
        SgEntry* entry = find_entry(key.source, key.group);
        if (entry != nullptr && wants_traffic(*entry)) {
          // Name the router the observed prune was addressed to: a Join
          // only overrides a prune if it targets the same upstream.
          const Address& target = entry->join_override_target.is_unspecified()
                                      ? entry->rpf_neighbor
                                      : entry->join_override_target;
          send_join_override(*entry, target);
        }
      }, stack_->node().domain());
  // Dense mode: initially forward onto every PIM interface (except the
  // incoming one). Interfaces without PIM neighbors contribute to the oif
  // list only via MLD listeners — see oiflist().
  for (const auto& [iface, st] : ifaces_) {
    if (iface == e->incoming) continue;
    e->downstream.emplace(iface, std::make_unique<Downstream>());
  }
  if (config_.state_refresh && route->on_link()) {
    // We are a first-hop router for this source: originate refresh waves.
    e->state_refresh_timer = std::make_unique<Timer>(
        stack_->scheduler(), [this, key] {
          SgEntry* entry = find_entry(key.source, key.group);
          if (entry == nullptr) return;
          originate_state_refresh(*entry);
          entry->state_refresh_timer->arm(config_.state_refresh_interval);
        }, stack_->node().domain());
    e->state_refresh_timer->arm(config_.state_refresh_interval);
  }
  SgEntry* raw = e.get();
  entries_.emplace(key, std::move(e));
  count("pimdm/sg-created");
  trace_event("sg-created", [&] {
    return "src=" + src.str() + " group=" + group.str() + " iif=" +
           std::to_string(raw->incoming);
  });
  return raw;
}

void PimDmRouter::delete_entry(const SgKey& key) {
  invalidate_mfc(key);  // before erase: the cached state pointer dies here
  if (entries_.erase(key) > 0) {
    count("pimdm/sg-expired");
    trace_event("sg-expired", [&] {
      return "src=" + key.source.str() + " group=" + key.group.str();
    });
  }
}

PimDmRouter::Downstream& PimDmRouter::downstream(SgEntry& e, IfaceId iface) {
  auto it = e.downstream.find(iface);
  if (it == e.downstream.end()) {
    it = e.downstream.emplace(iface, std::make_unique<Downstream>()).first;
    // A freshly materialized record can join the oif set (it starts in
    // kForwarding, the dense-mode default).
    invalidate_mfc(e);
  }
  return *it->second;
}

bool PimDmRouter::oif_active(const SgEntry& e, IfaceId iface,
                             const Downstream& d) const {
  if (iface == e.incoming) return false;
  if (d.assert_loser) return false;
  // Members always get traffic; otherwise forward only where PIM
  // neighbors exist and have not pruned.
  return mld_->has_listeners(iface, e.group) ||
         ((d.state != DownstreamState::kPruned) && has_neighbors(iface));
}

std::vector<IfaceId> PimDmRouter::oiflist(const SgEntry& e) const {
  std::vector<IfaceId> out;
  for (const auto& [iface, d] : e.downstream) {
    if (oif_active(e, iface, *d)) out.push_back(iface);
  }
  return out;
}

bool PimDmRouter::in_oiflist(const SgEntry& e, IfaceId iface) const {
  auto it = e.downstream.find(iface);
  return it != e.downstream.end() && oif_active(e, iface, *it->second);
}

bool PimDmRouter::wants_traffic(const SgEntry& e) const {
  if (is_local_receiver(e.group)) return true;
  for (const auto& [iface, d] : e.downstream) {
    if (oif_active(e, iface, *d)) return true;
  }
  return false;
}

void PimDmRouter::check_upstream(SgEntry& e) {
  check_upstream(e, wants_traffic(e));
}

void PimDmRouter::check_upstream(SgEntry& e, bool wants) {
  if (e.rpf_neighbor.is_unspecified()) return;  // we are the first hop
  if (wants) {
    if (e.upstream_pruned) send_graft_upstream(e);
  } else {
    if (!e.upstream_pruned) send_prune_upstream(e);
  }
}

// ---------------------------------------------------------------------------
// MFC layer

FlowKey PimDmRouter::flow_key(const Address& src, const Address& group) {
  return FlowKey{{src.high64(), src.low64(), group.high64(), group.low64()}};
}

Mifi PimDmRouter::mif_of(IfaceId iface) {
  Mifi m = mifs_.lookup(iface);
  if (m != kNoMif) return m;
  m = mifs_.add(iface);
  // The insertion renumbered every later index: bitmaps built under the
  // old numbering would transmit out the wrong interfaces, and the
  // per-mifi counter cells point at the wrong interface's counters.
  mfc_.invalidate_all();
  rebuild_mfc_cells();
  return m;
}

void PimDmRouter::rebuild_mfc_cells() {
  c_mfc_shard_hit_.clear();
  c_mfc_shard_miss_.clear();
  auto& reg = stack_->network().counters();
  for (Mifi m = 0; m < mifs_.size(); ++m) {
    const std::string suffix = ".if" + std::to_string(mifs_.iface(m));
    c_mfc_shard_hit_.push_back(reg.cell("pimdm/mfc-hit" + suffix));
    c_mfc_shard_miss_.push_back(reg.cell("pimdm/mfc-miss" + suffix));
  }
}

MfcEntry* PimDmRouter::refill_mfc(SgEntry& e) {
  // Two passes: register every candidate interface first (registration can
  // renumber and flush the cache), then build the bitmap under the final
  // numbering. The RPF interface is registered too — it selects the
  // cache sub-table the fast path will probe on arrival.
  for (const auto& [iface, d] : e.downstream) (void)mif_of(iface);
  (void)mif_of(e.incoming);
  IfSet set;
  std::uint16_t n = 0;
  for (const auto& [iface, d] : e.downstream) {
    if (!oif_active(e, iface, *d)) continue;
    set.set(mifs_.lookup(iface));
    ++n;
  }
  bool local = is_local_receiver(e.group);
  if (n == 0 && !local) {
    // Not cacheable: this state carries the rate-limited upstream
    // self-prune, which must keep running per packet.
    invalidate_mfc(e);
    return nullptr;
  }
  MfcEntry& m = mfc_.insert(flow_key(e.source, e.group),
                            mifs_.lookup(e.incoming));
  m.iif = e.incoming;
  m.oif_count = n;
  m.local_receiver = local;
  m.oifs = set;
  m.state = &e;
  return &m;
}

void PimDmRouter::invalidate_mfc(const SgEntry& e) {
  mfc_.invalidate(flow_key(e.source, e.group));
}

void PimDmRouter::invalidate_mfc(const SgKey& key) {
  mfc_.invalidate(flow_key(key.source, key.group));
}

// ---------------------------------------------------------------------------
// Data plane

void PimDmRouter::on_multicast_data(const ParsedDatagram& d, const Packet& pkt,
                                    IfaceId iface) {
  // PIM control traffic also arrives here (it is multicast to ff02::d), but
  // link-scope groups are filtered before the forwarder hook; only routable
  // group data reaches this point.
  const Address& src = d.hdr.src;
  const Address& group = d.hdr.dst;
  if (src.is_multicast() || src.is_unspecified()) return;

  if (config_.mfc) {
    // Fast path: a fresh flow-cache entry holds the whole forwarding
    // decision; the state machines below are only consulted on a miss.
    // The arrival interface's mifi selects the cache sub-table, so
    // wrong-interface arrivals miss and fall through (assert / non-RPF
    // prune handling is control-plane work, same as before sharding).
    const Mifi rpf = mifs_.lookup(iface);
    MfcEntry* m = rpf != kNoMif ? mfc_.find(flow_key(src, group), rpf)
                                : nullptr;
    if (m != nullptr && iface == m->iif) {
      c_mfc_hit_.add();
      c_mfc_shard_hit_[rpf].add();
      auto* e = static_cast<SgEntry*>(m->state);
      e->entry_timer->arm(config_.data_timeout);
      c_data_fwd_.add(stack_->forward_out_many(pkt, m->oifs, mifs_));
      return;
    }
    c_mfc_miss_.add();
    if (rpf != kNoMif) c_mfc_shard_miss_[rpf].add();
  }

  SgEntry* e = find_entry(src, group);
  if (e == nullptr) {
    e = create_entry(src, group);
    if (e == nullptr) return;
  }

  if (iface != e->incoming) {
    // RPF change handling: with a live routing protocol the unicast route
    // toward S can move after the entry was created. If the RIB now says
    // this interface *is* the RPF interface, update the entry instead of
    // treating good data as misrouted.
    const Route* route = stack_->rib().lookup(src);
    if (route != nullptr && route->out_iface == iface) {
      e->incoming = route->out_iface;
      e->rpf_neighbor = route->next_hop;
      e->rpf_metric = route->metric;
      e->assert_winner_pref = config_.metric_preference;
      e->assert_winner_metric = route->metric;
      e->assert_winner_addr = Address();
      e->downstream.erase(iface);  // the new incoming iface is not an oif
      invalidate_mfc(*e);          // cached iif/bitmap are both stale now
      count("pimdm/rpf-updated");
    }
  }

  if (iface != e->incoming) {
    // Arrived on an outgoing interface: if we actively forward on it (the
    // interface is in the oif list), this is the Assert trigger (duplicate
    // forwarder — or, in the paper's mobile-sender case, a moved sender
    // emitting with a stale source onto a tree link). Otherwise we are a
    // non-RPF bystander: tell the forwarder(s) on this link to prune —
    // without this, loops in the topology keep branches alive forever
    // (any router that still legitimately needs the link overrides with a
    // Join, and MLD members keep it in the forwarder's oif list anyway).
    if (in_oiflist(*e, iface)) {
      send_assert(*e, iface);
    } else {
      Downstream& ds = downstream(*e, iface);
      // Assert losers stay silent: the elected forwarder serves this LAN
      // and pruning it would fight the election outcome.
      if (!ds.assert_loser &&
          (ds.last_nonrpf_prune_tx.is_never() ||
           now() - ds.last_nonrpf_prune_tx >= config_.assert_rate_limit)) {
        ds.last_nonrpf_prune_tx = now();
        auto holdtime =
            static_cast<std::uint16_t>(config_.prune_hold_time.to_seconds());
        for (const Address& nbr : neighbors(iface)) {
          PimJoinPrune m =
              PimJoinPrune::prune(nbr, e->source, e->group, holdtime);
          emit(iface, PimType::kJoinPrune, m.body(),
               Address::all_pim_routers());
          count("pimdm/tx/nonrpf-prune");
        }
      }
    }
    count("pimdm/rx-wrong-iface");
    return;
  }

  e->entry_timer->arm(config_.data_timeout);
  if (config_.mfc) {
    // Miss path: recompute the bitmap once, install it, forward. The next
    // packet of this flow hits the cache until a control-plane transition
    // invalidates it.
    if (MfcEntry* m = refill_mfc(*e)) {
      c_data_fwd_.add(stack_->forward_out_many(pkt, m->oifs, mifs_));
      return;
    }
    // Nothing downstream: prune ourselves off the tree (rate-limited; on a
    // LAN the upstream may keep transmitting because a sibling overrode).
    // Deliberately uncached so the rate limiter keeps seeing every packet.
    if (!e->rpf_neighbor.is_unspecified() &&
        (e->last_prune_tx.is_never() ||
         now() - e->last_prune_tx >= config_.prune_hold_time)) {
      send_prune_upstream(*e);
    }
    return;
  }
  std::vector<IfaceId> oifs = oiflist(*e);
  if (oifs.empty() && !is_local_receiver(e->group)) {
    if (!e->rpf_neighbor.is_unspecified() &&
        (e->last_prune_tx.is_never() ||
         now() - e->last_prune_tx >= config_.prune_hold_time)) {
      send_prune_upstream(*e);
    }
    return;
  }
  // One hop-limit-decremented buffer shared by every replica; see
  // Ipv6Stack::forward_out_many.
  c_data_fwd_.add(stack_->forward_out_many(pkt, oifs));
}

// ---------------------------------------------------------------------------
// Control plane

void PimDmRouter::on_pim_message(const ParsedDatagram& d, IfaceId iface) {
  if (!pim_enabled(iface)) return;
  auto reject = [&](const ParseFailure& f) {
    count("pimdm/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "pimdm", f);
  };
  ParseResult<PimHeader> hdr = try_parse_pim(d.payload, d.hdr.src, d.hdr.dst);
  if (!hdr.ok()) {
    reject(hdr.failure());
    return;
  }
  PimHeader h = std::move(hdr).value();
  switch (h.type) {
    case PimType::kHello: {
      ParseResult<PimHello> m = PimHello::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_hello(m.value(), d.hdr.src, iface);
      break;
    }
    case PimType::kJoinPrune: {
      ParseResult<PimJoinPrune> m = PimJoinPrune::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_join_prune(m.value(), d.hdr.src, iface);
      break;
    }
    case PimType::kGraft: {
      ParseResult<PimJoinPrune> m = PimJoinPrune::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_graft(m.value(), d.hdr.src, iface);
      break;
    }
    case PimType::kGraftAck: {
      ParseResult<PimJoinPrune> m = PimJoinPrune::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_graft_ack(m.value(), iface);
      break;
    }
    case PimType::kAssert: {
      ParseResult<PimAssert> m = PimAssert::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_assert(m.value(), d.hdr.src, iface);
      break;
    }
    case PimType::kStateRefresh: {
      ParseResult<PimStateRefresh> m = PimStateRefresh::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_state_refresh(m.value(), iface);
      break;
    }
    default:
      // Unknown PIM message type: taxonomy says bad-type, not a crash.
      reject(ParseFailure{ParseReason::kBadType, "unknown PIM message type"});
      break;
  }
}

void PimDmRouter::on_hello(const PimHello& hello, const Address& from,
                           IfaceId iface) {
  IfaceState& st = ifaces_.at(iface);
  auto it = st.neighbors.find(from);
  if (it == st.neighbors.end()) {
    auto timer = std::make_unique<Timer>(
        stack_->scheduler(), [this, iface, from] {
          ifaces_.at(iface).neighbors.erase(from);
          // has_neighbors() feeds every entry's oif set on this iface.
          mfc_.invalidate_all();
          count("pimdm/neighbor-expired");
          trace_event("neighbor-expired", [&] {
            return "iface=" + std::to_string(iface) + " nbr=" + from.str();
          });
        }, stack_->node().domain());
    timer->arm(Time::sec(hello.holdtime));
    st.neighbors.emplace(from, std::move(timer));
    mfc_.invalidate_all();  // a new neighbor turns interfaces forwarding
    count("pimdm/neighbor-up");
    trace_event("neighbor-up", [&] {
      return "iface=" + std::to_string(iface) + " nbr=" + from.str();
    });
    // Triggered hello so the new neighbor learns us quickly.
    send_hello(iface);
  } else {
    it->second->arm(Time::sec(hello.holdtime));
  }
}

void PimDmRouter::on_join_prune(const PimJoinPrune& jp, const Address& from,
                                IfaceId iface) {
  (void)from;  // the message's upstream_neighbor field drives everything
  bool to_me = stack_->owns_address(jp.upstream_neighbor);
  for (const auto& g : jp.groups) {
    for (const auto& src : g.pruned_sources) {
      SgEntry* e = find_entry(src, g.group);
      if (e == nullptr) continue;
      if (to_me) {
        // We are the upstream: begin the LAN prune delay; an overriding
        // Join within T_PruneDel cancels it.
        Downstream& d = downstream(*e, iface);
        if (d.state == DownstreamState::kPruned) {
          // Refreshed prune (e.g. triggered by a State Refresh wave):
          // re-arm the holdtime in place, no re-flood in between.
          if (d.prune_expiry_timer) {
            Time hold = Time::sec(jp.holdtime);
            if (hold > config_.prune_hold_time || jp.holdtime == 0) {
              hold = config_.prune_hold_time;
            }
            d.prune_expiry_timer->arm(hold);
            count("pimdm/prune-refreshed");
          }
        } else if (d.state == DownstreamState::kForwarding) {
          d.state = DownstreamState::kPrunePending;
          SgKey key{src, g.group};
          std::uint16_t holdtime = jp.holdtime;
          if (!d.prune_pending_timer) {
            d.prune_pending_timer = std::make_unique<Timer>(
                stack_->scheduler(), [this, key, iface, holdtime] {
                  SgEntry* entry = find_entry(key.source, key.group);
                  if (entry == nullptr) return;
                  Downstream& dd = downstream(*entry, iface);
                  if (dd.state != DownstreamState::kPrunePending) return;
                  dd.state = DownstreamState::kPruned;
                  invalidate_mfc(key);
                  count("pimdm/iface-pruned");
                  trace_event("iface-pruned", [&] {
                    return "src=" + key.source.str() + " group=" +
                           key.group.str() + " iface=" + std::to_string(iface);
                  });
                  // Prune Echo (RFC 3973 §4.4.2): on a LAN with several
                  // neighbors, repeat the prune naming ourselves so a
                  // downstream router whose overriding Join was lost gets
                  // a second chance to object.
                  if (neighbors(iface).size() > 1) {
                    std::uint16_t echo_hold = holdtime;
                    PimJoinPrune echo = PimJoinPrune::prune(
                        stack_->link_local_address(iface), key.source,
                        key.group, echo_hold);
                    emit(iface, PimType::kJoinPrune, echo.body(),
                         Address::all_pim_routers());
                    count("pimdm/tx/prune-echo");
                  }
                  Time hold = Time::sec(holdtime);
                  if (hold > config_.prune_hold_time ||
                      holdtime == 0) {
                    hold = config_.prune_hold_time;
                  }
                  if (!dd.prune_expiry_timer) {
                    dd.prune_expiry_timer = std::make_unique<Timer>(
                        stack_->scheduler(), [this, key, iface] {
                          SgEntry* en = find_entry(key.source, key.group);
                          if (en == nullptr) return;
                          Downstream& x = downstream(*en, iface);
                          if (x.state == DownstreamState::kPruned) {
                            x.state = DownstreamState::kForwarding;
                            invalidate_mfc(key);
                            count("pimdm/prune-expired");
                            // Downstream interest is presumed again; if we
                            // had pruned ourselves upstream meanwhile, we
                            // must graft back or the branch stays dark.
                            check_upstream(*en);
                          }
                        }, stack_->node().domain());
                  }
                  dd.prune_expiry_timer->arm(hold);
                  check_upstream(*entry);
                }, stack_->node().domain());
          }
          d.prune_pending_timer->arm(config_.prune_delay);
        }
      } else if (iface == e->incoming && wants_traffic(*e)) {
        // A prune crossed our upstream LAN — from a sibling, or a Prune
        // Echo from the forwarder itself; either way, if we still need the
        // traffic, override with a Join after a random delay below the
        // prune delay. The Join must name the pruned upstream.
        e->join_override_target = jp.upstream_neighbor;
        if (!e->join_override_timer->running()) {
          Time delay = Time::ns(static_cast<std::int64_t>(
              stack_->network().rng().uniform() *
              static_cast<double>(config_.join_override_window.nanos())));
          e->join_override_timer->arm(delay);
        }
      }
    }
    for (const auto& src : g.joined_sources) {
      SgEntry* e = find_entry(src, g.group);
      if (e == nullptr) continue;
      if (to_me) {
        // Join override received: cancel a pending prune on that iface.
        Downstream& d = downstream(*e, iface);
        if (d.state == DownstreamState::kPrunePending) {
          d.prune_pending_timer->cancel();
          d.state = DownstreamState::kForwarding;
          invalidate_mfc(*e);
          count("pimdm/prune-overridden");
          trace_event("prune-overridden", [&] {
            return "src=" + src.str() + " group=" + g.group.str() +
                   " iface=" + std::to_string(iface);
          });
        } else if (d.state == DownstreamState::kPruned) {
          if (d.prune_expiry_timer) d.prune_expiry_timer->cancel();
          d.state = DownstreamState::kForwarding;
          invalidate_mfc(*e);
        }
      } else if (iface == e->incoming) {
        // Someone else already sent the override; suppress ours.
        e->join_override_timer->cancel();
      }
    }
  }
}

void PimDmRouter::on_graft(const PimJoinPrune& graft, const Address& from,
                           IfaceId iface) {
  if (!stack_->owns_address(graft.upstream_neighbor)) return;
  for (const auto& g : graft.groups) {
    for (const auto& src : g.joined_sources) {
      SgEntry* e = find_entry(src, g.group);
      if (e == nullptr) {
        // Graft for an entry we never created (e.g. it already timed out):
        // recreate state so forwarding resumes with the next datagram.
        e = create_entry(src, g.group);
        if (e == nullptr) continue;
      }
      Downstream& d = downstream(*e, iface);
      if (d.prune_pending_timer) d.prune_pending_timer->cancel();
      if (d.prune_expiry_timer) d.prune_expiry_timer->cancel();
      d.state = DownstreamState::kForwarding;
      invalidate_mfc(*e);
      count("pimdm/graft-processed");
      check_upstream(*e);  // cascade the graft upstream if we had pruned
    }
  }
  send_graft_ack(graft, from, iface);
}

void PimDmRouter::on_graft_ack(const PimJoinPrune& ack, IfaceId iface) {
  (void)iface;
  for (const auto& g : ack.groups) {
    for (const auto& src : g.joined_sources) {
      SgEntry* e = find_entry(src, g.group);
      if (e == nullptr) continue;
      e->graft_pending = false;
      e->graft_retry_timer->cancel();
    }
  }
}

void PimDmRouter::on_assert(const PimAssert& a, const Address& from,
                            IfaceId iface) {
  SgEntry* e = find_entry(a.source, a.group);
  if (e == nullptr) return;
  count("pimdm/rx-assert");

  if (iface == e->incoming) {
    // Downstream observer: the assert *winner* becomes our RPF neighbor
    // (draft: "downstream routers ... store the elected forwarder for
    // later protocol actions"). Track the best (preference, metric,
    // address) tuple seen so the outcome is independent of arrival order.
    bool better;
    if (a.metric_preference != e->assert_winner_pref) {
      better = a.metric_preference < e->assert_winner_pref;
    } else if (a.metric != e->assert_winner_metric) {
      better = a.metric < e->assert_winner_metric;
    } else {
      better = e->assert_winner_addr.is_unspecified() ||
               from > e->assert_winner_addr;
    }
    if (better) {
      e->assert_winner_pref = a.metric_preference;
      e->assert_winner_metric = a.metric;
      e->assert_winner_addr = from;
      e->rpf_neighbor = from;
    }
    return;
  }

  auto it = e->downstream.find(iface);
  if (it == e->downstream.end()) return;
  Downstream& d = *it->second;
  if (d.state != DownstreamState::kForwarding || d.assert_loser) return;

  // Compare (preference, metric, address); lower tuple wins on pref/metric,
  // higher address wins ties.
  Address my_addr = stack_->link_local_address(iface);
  bool they_win;
  if (a.metric_preference != config_.metric_preference) {
    they_win = a.metric_preference < config_.metric_preference;
  } else if (a.metric != e->rpf_metric) {
    they_win = a.metric < e->rpf_metric;
  } else {
    they_win = from > my_addr;
  }
  if (they_win) {
    d.assert_loser = true;
    invalidate_mfc(*e);
    count("pimdm/assert-lost");
    trace_event("assert-lost", [&] {
      return "src=" + e->source.str() + " group=" + e->group.str() +
             " iface=" + std::to_string(iface) + " winner=" + from.str();
    });
    SgKey key{a.source, a.group};
    if (!d.assert_timer) {
      d.assert_timer = std::make_unique<Timer>(
          stack_->scheduler(), [this, key, iface] {
            SgEntry* en = find_entry(key.source, key.group);
            if (en == nullptr) return;
            auto dit = en->downstream.find(iface);
            if (dit != en->downstream.end()) {
              dit->second->assert_loser = false;
              invalidate_mfc(key);
            }
          }, stack_->node().domain());
    }
    d.assert_timer->arm(config_.assert_time);
    // A loser that doesn't consume from this LAN itself (it is not its RPF
    // interface) prunes toward the winner; routers that do depend on the
    // LAN answer with an overriding Join, so this only clears truly
    // unneeded branches (RFC 3973 assert-loser prune behaviour).
    if (!mld_->has_listeners(iface, e->group)) {
      auto holdtime =
          static_cast<std::uint16_t>(config_.prune_hold_time.to_seconds());
      PimJoinPrune m = PimJoinPrune::prune(from, e->source, e->group,
                                           holdtime);
      emit(iface, PimType::kJoinPrune, m.body(), Address::all_pim_routers());
      count("pimdm/tx/assert-loser-prune");
    }
    check_upstream(*e);
  } else {
    send_assert(*e, iface);  // defend our role as forwarder
  }
}

void PimDmRouter::on_mld_change(IfaceId iface, const Address& group,
                                bool present) {
  for (auto& [key, e] : entries_) {
    if (key.group != group) continue;
    if (present) {
      if (iface != e->incoming) downstream(*e, iface);  // materialize state
    }
    invalidate_mfc(*e);
    check_upstream(*e);
  }
  (void)iface;
}

void PimDmRouter::on_state_refresh(const PimStateRefresh& sr, IfaceId iface) {
  if (!config_.state_refresh) return;
  count("pimdm/rx/state-refresh");
  SgEntry* e = find_entry(sr.source, sr.group);
  if (e == nullptr) {
    e = create_entry(sr.source, sr.group);
    if (e == nullptr) return;
  }
  if (iface != e->incoming) {
    // Refresh wave on a non-RPF interface: we are a bystander that pruned
    // this link earlier (or should). Re-advertise the prune so the
    // forwarder's prune state is refreshed in place instead of expiring
    // into a re-flood (RFC 3973 Prune-Indicator handling).
    if (!in_oiflist(*e, iface)) {
      Downstream& d = downstream(*e, iface);
      if (!d.assert_loser) {
        d.last_nonrpf_prune_tx = now();
        auto holdtime =
            static_cast<std::uint16_t>(config_.prune_hold_time.to_seconds());
        for (const Address& nbr : neighbors(iface)) {
          PimJoinPrune m =
              PimJoinPrune::prune(nbr, e->source, e->group, holdtime);
          emit(iface, PimType::kJoinPrune, m.body(),
               Address::all_pim_routers());
          count("pimdm/tx/nonrpf-prune");
        }
      }
    }
    return;
  }
  // The wave attests that the source is alive: refresh the (S,G) entry.
  e->entry_timer->arm(config_.data_timeout);
  // A router that pruned itself off re-advertises its prune so the
  // upstream holdtime is refreshed instead of expiring into a re-flood.
  if (e->upstream_pruned && !e->rpf_neighbor.is_unspecified()) {
    send_prune_upstream(*e);
  }
  forward_state_refresh(*e, sr);
}

void PimDmRouter::originate_state_refresh(SgEntry& e) {
  PimStateRefresh sr;
  sr.group = e.group;
  sr.source = e.source;
  sr.metric_preference = config_.metric_preference;
  sr.metric = e.rpf_metric;
  sr.ttl = 16;
  sr.interval_s = static_cast<std::uint8_t>(
      config_.state_refresh_interval.to_seconds());
  // Originators need a global address for the originator field; fall back
  // to link-local if the incoming interface has no global.
  sr.originator = stack_->has_global_address(e.incoming)
                      ? stack_->global_address(e.incoming)
                      : stack_->link_local_address(e.incoming);
  count("pimdm/tx/state-refresh-originated");
  trace_event("tx-state-refresh", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() +
           " originator=" + sr.originator.str();
  });
  forward_state_refresh(e, sr);
}

void PimDmRouter::forward_state_refresh(SgEntry& e,
                                        const PimStateRefresh& sr) {
  if (sr.ttl <= 1) return;
  for (auto& [iface, d] : e.downstream) {
    if (iface == e.incoming) continue;
    if (!has_neighbors(iface)) continue;
    PimStateRefresh out = sr;
    out.ttl = static_cast<std::uint8_t>(sr.ttl - 1);
    out.prune_indicator = (d->state == DownstreamState::kPruned);
    emit(iface, PimType::kStateRefresh, out.body(),
         Address::all_pim_routers());
    count("pimdm/tx/state-refresh");
  }
}

// ---------------------------------------------------------------------------
// Emission

void PimDmRouter::emit(IfaceId iface, PimType type, BytesView body,
                       const Address& dst) {
  DatagramSpec spec;
  spec.src = stack_->link_local_address(iface);
  spec.dst = dst;
  spec.hop_limit = 1;
  spec.protocol = proto::kPim;
  spec.payload = serialize_pim(type, body, spec.src, spec.dst);
  std::size_t wire = Ipv6Header::kSize + spec.payload.size();
  stack_->send_on_iface(iface, spec);
  stack_->network().counters().add("pimdm/tx-bytes", wire);
}

void PimDmRouter::send_hello(IfaceId iface) {
  PimHello hello;
  hello.holdtime =
      static_cast<std::uint16_t>(config_.hello_holdtime.to_seconds());
  emit(iface, PimType::kHello, hello.body(), Address::all_pim_routers());
  count("pimdm/tx/hello");
  trace_event("tx-hello",
              [&] { return "iface=" + std::to_string(iface); });
}

void PimDmRouter::send_prune_upstream(SgEntry& e) {
  if (e.rpf_neighbor.is_unspecified()) return;
  auto holdtime =
      static_cast<std::uint16_t>(config_.prune_hold_time.to_seconds());
  PimJoinPrune m =
      PimJoinPrune::prune(e.rpf_neighbor, e.source, e.group, holdtime);
  emit(e.incoming, PimType::kJoinPrune, m.body(), Address::all_pim_routers());
  e.upstream_pruned = true;
  e.last_prune_tx = now();
  count("pimdm/tx/prune");
  trace_event("tx-prune", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() +
           " upstream=" + e.rpf_neighbor.str();
  });
}

void PimDmRouter::send_graft_upstream(SgEntry& e) {
  if (e.rpf_neighbor.is_unspecified()) return;
  PimJoinPrune m = PimJoinPrune::join(e.rpf_neighbor, e.source, e.group);
  // Grafts are unicast to the upstream neighbor.
  emit(e.incoming, PimType::kGraft, m.body(), e.rpf_neighbor);
  e.upstream_pruned = false;
  e.graft_pending = true;
  e.graft_retry_timer->arm(config_.graft_retry_period);
  count("pimdm/tx/graft");
  trace_event("tx-graft", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() +
           " upstream=" + e.rpf_neighbor.str();
  });
}

void PimDmRouter::send_join_override(SgEntry& e, const Address& upstream) {
  PimJoinPrune m = PimJoinPrune::join(upstream, e.source, e.group);
  emit(e.incoming, PimType::kJoinPrune, m.body(), Address::all_pim_routers());
  count("pimdm/tx/join-override");
  trace_event("tx-join-override", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() +
           " upstream=" + upstream.str();
  });
}

void PimDmRouter::send_assert(SgEntry& e, IfaceId iface) {
  Downstream& d = downstream(e, iface);
  if (!d.last_assert_tx.is_never() &&
      now() - d.last_assert_tx < config_.assert_rate_limit) {
    return;
  }
  d.last_assert_tx = now();
  PimAssert a;
  a.group = e.group;
  a.source = e.source;
  a.metric_preference = config_.metric_preference;
  a.metric = e.rpf_metric;
  emit(iface, PimType::kAssert, a.body(), Address::all_pim_routers());
  count("pimdm/tx/assert");
  trace_event("tx-assert", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() + " iface=" +
           std::to_string(iface);
  });
}

void PimDmRouter::send_graft_ack(const PimJoinPrune& graft, const Address& to,
                                 IfaceId iface) {
  PimJoinPrune ack = graft;
  emit(iface, PimType::kGraftAck, ack.body(), to);
  count("pimdm/tx/graft-ack");
  trace_event("tx-graft-ack", [&] {
    return "to=" + to.str() + " iface=" + std::to_string(iface);
  });
}

void PimDmRouter::count(std::string_view name, std::uint64_t delta) {
  stack_->network().counters().add(name, delta);
}

}  // namespace mip6
