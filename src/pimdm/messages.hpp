// PIM version 2 message wire formats (draft-ietf-pim-v2-dm-03 §4):
// common header, encoded address formats, Hello, Join/Prune (also used for
// Graft and Graft-Ack, which share its body), and Assert.
#pragma once

#include <cstdint>
#include <vector>

#include "ipv6/address.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

enum class PimType : std::uint8_t {
  kHello = 0,
  kJoinPrune = 3,
  kAssert = 5,
  kGraft = 6,
  kGraftAck = 7,
  kStateRefresh = 9,
};

/// Serializes the 4-octet PIM header + body with the IPv6 pseudo-header
/// checksum, ready to be the payload of a proto-103 datagram.
Bytes serialize_pim(PimType type, BytesView body, const Address& src,
                    const Address& dst);

struct PimHeader {
  PimType type;
  Bytes body;
};
/// No-throw parse + checksum verification of a PIM payload.
ParseResult<PimHeader> try_parse_pim(BytesView payload, const Address& src,
                                     const Address& dst);
/// Throwing wrapper over try_parse_pim for legacy call sites.
PimHeader parse_pim(BytesView payload, const Address& src, const Address& dst);

// --- Encoded address blocks (family 2 = IPv6, encoding 0) -----------------

void write_encoded_unicast(BufferWriter& w, const Address& a);
Address read_encoded_unicast(BufferReader& r);
ParseResult<Address> try_read_encoded_unicast(WireCursor& c);
void write_encoded_group(BufferWriter& w, const Address& g);
Address read_encoded_group(BufferReader& r);
ParseResult<Address> try_read_encoded_group(WireCursor& c);
void write_encoded_source(BufferWriter& w, const Address& s,
                          std::uint8_t flags = 0x4 /* S bit */);
Address read_encoded_source(BufferReader& r);
ParseResult<Address> try_read_encoded_source(WireCursor& c);

// --- Hello -----------------------------------------------------------------

struct PimHello {
  std::uint16_t holdtime = 105;

  Bytes body() const;
  static ParseResult<PimHello> try_parse(BytesView body);
  static PimHello parse(BytesView body);
};

// --- Join/Prune (and Graft / Graft-Ack, same body) ---------------------------

struct PimJoinPrune {
  /// The router on the shared link this message is directed at.
  Address upstream_neighbor;
  std::uint16_t holdtime = 0;  // seconds; applies to prunes
  struct GroupEntry {
    Address group;
    std::vector<Address> joined_sources;
    std::vector<Address> pruned_sources;
  };
  std::vector<GroupEntry> groups;

  Bytes body() const;
  /// No-throw parse; bounds group records and per-group source counts.
  static ParseResult<PimJoinPrune> try_parse(BytesView body);
  static PimJoinPrune parse(BytesView body);

  /// Single-source convenience constructors.
  static PimJoinPrune join(const Address& upstream, const Address& src,
                           const Address& group);
  static PimJoinPrune prune(const Address& upstream, const Address& src,
                            const Address& group, std::uint16_t holdtime);
};

// --- State Refresh (RFC 3973 §4.5.1 layout, subset) -------------------------

struct PimStateRefresh {
  Address group;
  Address source;
  /// First-hop router that originated this refresh wave.
  Address originator;
  std::uint32_t metric_preference = 0;
  std::uint32_t metric = 0;
  /// Remaining propagation budget; decremented per hop.
  std::uint8_t ttl = 16;
  /// Set when the refresh travelled out a pruned interface.
  bool prune_indicator = false;
  /// Originator's refresh period in seconds.
  std::uint8_t interval_s = 60;

  Bytes body() const;
  static ParseResult<PimStateRefresh> try_parse(BytesView body);
  static PimStateRefresh parse(BytesView body);
};

// --- Assert ------------------------------------------------------------------

struct PimAssert {
  Address group;
  Address source;
  std::uint32_t metric_preference = 0;  // high bit = RPT (always 0 in DM)
  std::uint32_t metric = 0;

  Bytes body() const;
  static ParseResult<PimAssert> try_parse(BytesView body);
  static PimAssert parse(BytesView body);
};

}  // namespace mip6
