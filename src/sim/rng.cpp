#include "sim/rng.hpp"

#include <cmath>

namespace mip6 {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection-free-enough bounded draw; bias negligible for the
  // n values used here, but do a rejection loop anyway for exactness.
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::uniform() {
  // 53 random bits -> [0,1)
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t x = base ^ (0x632be59bd9b4e019ULL * (index + 1));
  return splitmix64(x);
}

}  // namespace mip6
