#include "sim/trace.hpp"

#include <cstdio>

namespace mip6 {

std::string TraceRecord::str() const {
  return at.str() + " [" + component + "] " + event +
         (detail.empty() ? "" : (" " + detail));
}

Trace::Sink Trace::recorder(std::vector<TraceRecord>& out) {
  return [&out](const TraceRecord& r) { out.push_back(r); };
}

Trace::Sink Trace::stderr_printer() {
  return [](const TraceRecord& r) {
    std::fprintf(stderr, "%s\n", r.str().c_str());
  };
}

void Trace::enable_shards(std::size_t shards) {
  buffers_.assign(shards, {});
  sharded_ = true;
}

void Trace::disable_shards() {
  if (!sharded_) return;
  merge_shards();
  buffers_.clear();
  sharded_ = false;
}

void Trace::merge_shards() const {
  if (!sink_) {
    for (auto& b : buffers_) b.clear();
    return;
  }
  // Each buffer is already in canonical order (a shard executes its events
  // in key order), so a k-way head merge reproduces the global order.
  std::vector<std::size_t> pos(buffers_.size(), 0);
  for (;;) {
    const Tagged* best = nullptr;
    std::size_t best_b = 0;
    for (std::size_t b = 0; b < buffers_.size(); ++b) {
      if (pos[b] >= buffers_[b].size()) continue;
      const Tagged& cand = buffers_[b][pos[b]];
      if (best == nullptr || cand.key < best->key ||
          (!(best->key < cand.key) && cand.emit < best->emit)) {
        best = &cand;
        best_b = b;
      }
    }
    if (best == nullptr) break;
    sink_(best->rec);
    ++pos[best_b];
  }
  for (auto& b : buffers_) b.clear();
}

}  // namespace mip6
