#include "sim/trace.hpp"

#include <cstdio>

namespace mip6 {

std::string TraceRecord::str() const {
  return at.str() + " [" + component + "] " + event +
         (detail.empty() ? "" : (" " + detail));
}

Trace::Sink Trace::recorder(std::vector<TraceRecord>& out) {
  return [&out](const TraceRecord& r) { out.push_back(r); };
}

Trace::Sink Trace::stderr_printer() {
  return [](const TraceRecord& r) {
    std::fprintf(stderr, "%s\n", r.str().c_str());
  };
}

}  // namespace mip6
