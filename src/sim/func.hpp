// Move-only type-erased void() callable for scheduler events.
//
// std::function's inline buffer (16 bytes on libstdc++) is smaller than the
// closures the hot path schedules — a link-delivery event captures a Link
// pointer, an interface id and a 32-byte Packet — so routing every event
// through std::function heap-allocates once per scheduled event. SchedFn
// widens the inline buffer to kInlineSize so those closures (and everything
// smaller) are stored in place; larger callables still fall back to the
// heap. tests/sim/alloc_guard_test.cpp pins the no-allocation property.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mip6 {

class SchedFn {
 public:
  /// Sized for the largest hot-path closure: Link delivery at
  /// (this, IfaceId, Packet) = 48 bytes.
  static constexpr std::size_t kInlineSize = 48;

  SchedFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SchedFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SchedFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SchedFn(SchedFn&& other) noexcept { move_from(other); }
  SchedFn& operator=(SchedFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SchedFn(const SchedFn&) = delete;
  SchedFn& operator=(const SchedFn&) = delete;
  ~SchedFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(heap_ != nullptr ? heap_ : buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Moves src's target into dst (which must be empty) and destroys src's.
    void (*relocate)(SchedFn& dst, SchedFn& src) noexcept;
    void (*destroy)(SchedFn& self) noexcept;
  };

  template <typename Fn>
  static void invoke_target(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void inline_relocate(SchedFn& dst, SchedFn& src) noexcept {
    Fn* from = reinterpret_cast<Fn*>(src.buf_);
    ::new (static_cast<void*>(dst.buf_)) Fn(std::move(*from));
    from->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(SchedFn& self) noexcept {
    reinterpret_cast<Fn*>(self.buf_)->~Fn();
  }
  static void heap_relocate(SchedFn& dst, SchedFn& src) noexcept {
    dst.heap_ = src.heap_;
    src.heap_ = nullptr;
  }
  template <typename Fn>
  static void heap_destroy(SchedFn& self) noexcept {
    delete static_cast<Fn*>(self.heap_);
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {&invoke_target<Fn>, &inline_relocate<Fn>,
                                     &inline_destroy<Fn>};

  template <typename Fn>
  static constexpr Ops kHeapOps = {&invoke_target<Fn>, &heap_relocate,
                                   &heap_destroy<Fn>};

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }
  void move_from(SchedFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(*this, other);
      other.ops_ = nullptr;
      other.heap_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize] = {};
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace mip6
