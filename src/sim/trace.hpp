// Structured simulation trace.
//
// Components emit (time, component, event, detail) records. Sinks are
// pluggable: tests install a recording sink and assert on protocol behaviour
// (e.g. "Router E sent GRAFT at t"), examples install a stderr printer, and
// benches leave tracing disabled (the null sink costs one branch per emit).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mip6 {

struct TraceRecord {
  Time at;
  std::string component;  // e.g. "pimdm/RouterE"
  std::string event;      // e.g. "tx-graft"
  std::string detail;     // free-form, human-readable

  std::string str() const;
};

class Trace {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  /// No sink installed: emits are dropped.
  Trace() = default;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }
  bool enabled() const { return static_cast<bool>(sink_); }

  void emit(Time at, std::string component, std::string event,
            std::string detail) const {
    if (sink_) sink_({at, std::move(component), std::move(event),
                      std::move(detail)});
  }

  /// Sink that appends to a vector (owned by the caller).
  static Sink recorder(std::vector<TraceRecord>& out);
  /// Sink that prints one line per record to stderr.
  static Sink stderr_printer();

 private:
  Sink sink_;
};

}  // namespace mip6
