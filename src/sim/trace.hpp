// Structured simulation trace.
//
// Components emit (time, component, event, detail) records. Sinks are
// pluggable: tests install a recording sink and assert on protocol behaviour
// (e.g. "Router E sent GRAFT at t"), examples install a stderr printer, and
// benches leave tracing disabled.
//
// Disabled tracing must be free: hot paths (packet forwarding, timer
// expiries) emit too. Use the lazy overload — the detail string is built by
// a callable that only runs when a sink is installed — or guard expensive
// argument construction with enabled(). The eager std::string overload
// builds its arguments at the call site even when dropped; keep it off hot
// paths. tests/sim/alloc_guard_test.cpp asserts the disabled emit path
// performs zero allocations.
// Sharded operation: records emitted from a worker shard are appended to
// that shard's buffer tagged with the executing event's canonical key (plus
// a per-shard emit counter for multi-emit events), then k-way merged into
// the user sink at window barriers. Per-shard buffers are filled in
// execution order — which within a shard IS canonical order — so the merge
// reproduces the serial emission sequence byte for byte. Records emitted
// from serial/structural contexts go straight to the sink.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mip6 {

struct TraceRecord {
  Time at;
  std::string component;  // e.g. "pimdm/RouterE"
  std::string event;      // e.g. "tx-graft"
  std::string detail;     // free-form, human-readable

  std::string str() const;
};

class Trace {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  /// No sink installed: emits are dropped.
  Trace() = default;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }
  bool enabled() const { return static_cast<bool>(sink_); }

  /// Eager emit: arguments are materialized by the caller even when no sink
  /// is installed. Fine for tests and cold paths; use the lazy overload (or
  /// an enabled() guard) anywhere per-event cost matters.
  void emit(Time at, std::string component, std::string event,
            std::string detail) const {
    if (sink_) deliver({at, std::move(component), std::move(event),
                        std::move(detail)});
  }

  /// Lazy emit for hot paths: `detail_fn` is only invoked — and the record's
  /// strings only constructed — when a sink is installed. With tracing
  /// disabled this costs one branch and allocates nothing.
  template <typename DetailFn>
    requires std::is_invocable_r_v<std::string, DetailFn&>
  void emit(Time at, std::string_view component, std::string_view event,
            DetailFn&& detail_fn) const {
    if (!sink_) return;
    deliver({at, std::string(component), std::string(event),
             std::forward<DetailFn>(detail_fn)()});
  }

  /// Lazy emit with no detail payload.
  void emit(Time at, std::string_view component, std::string_view event) const {
    if (!sink_) return;
    deliver({at, std::string(component), std::string(event), std::string()});
  }

  /// Sink that appends to a vector (owned by the caller).
  static Sink recorder(std::vector<TraceRecord>& out);
  /// Sink that prints one line per record to stderr.
  static Sink stderr_printer();

  // --- Sharded operation -------------------------------------------------
  /// Allocates one buffer per shard; worker-context emits divert there.
  void enable_shards(std::size_t shards);
  /// Merges outstanding records and drops the buffers.
  void disable_shards();
  /// K-way merges the shard buffers into the sink in canonical event order.
  /// Controller-side, called at every window barrier.
  void merge_shards() const;
  bool sharded() const { return sharded_; }

 private:
  struct Tagged {
    EventKey key;
    std::uint64_t emit;
    TraceRecord rec;
  };

  void deliver(TraceRecord&& rec) const {
    if (sharded_) {
      const int s = Scheduler::current_shard_slot();
      if (s >= 0) {
        const EventKey* k = Scheduler::current_key();
        buffers_[static_cast<std::size_t>(s)].push_back(
            Tagged{k != nullptr ? *k : EventKey{}, Scheduler::next_emit_seq(),
                   std::move(rec)});
        return;
      }
    }
    sink_(rec);
  }

  Sink sink_;
  mutable std::vector<std::vector<Tagged>> buffers_;
  bool sharded_ = false;
};

}  // namespace mip6
