// Discrete-event scheduler.
//
// Events are (time, sequence, callback); sequence numbers break same-time
// ties in insertion order, which makes runs fully deterministic.
// Cancellation is O(1) by invalidating a shared handle state; cancelled
// events are skipped when they surface at the top of the heap AND reclaimed
// in bulk by threshold-based compaction: once more than half the heap (and
// at least kCompactMin entries) is cancelled, the heap is rebuilt without
// them. Without compaction, timer-heavy workloads — every Timer::arm()
// cancels the previous expiry — grow the heap with dead entries faster than
// pops drain them.
//
// Allocation discipline: handle states are recycled through a free list, so
// the steady-state rearm cycle (arm → cancel → arm ...) performs no heap
// allocation. tests/sim/alloc_guard_test.cpp enforces this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/func.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/errors.hpp"

namespace mip6 {

/// Cancellable handle to a scheduled event. Copyable; all copies refer to the
/// same event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not yet run. Safe to call repeatedly or on
  /// an inert/expired handle.
  void cancel();
  /// True if the event is still scheduled (not run, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool executed = false;
    /// Count of cancelled-but-still-heaped events, shared with the owning
    /// scheduler (shared so a handle outliving the scheduler stays safe).
    std::shared_ptr<std::uint64_t> cancelled_in_heap;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  /// SchedFn stores closures up to 48 bytes without heap allocation.
  EventHandle schedule_at(Time at, SchedFn fn);
  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventHandle schedule_in(Time delay, SchedFn fn);

  /// Runs events until the queue is empty or `until` is reached; events at
  /// exactly `until` are executed. Returns the number of events executed.
  std::uint64_t run_until(Time until);
  /// Runs to queue exhaustion.
  std::uint64_t run();

  /// Heap entries, including not-yet-reclaimed cancelled events (bounded by
  /// compaction at ~2x the live count).
  std::size_t pending_events() const { return heap_.size(); }
  /// Event payload slots currently allocated (high-water mark of pending).
  std::size_t event_slots() const { return slots_.size(); }
  /// Entries scheduled and not yet executed or cancelled.
  std::size_t live_events() const { return heap_.size() - cancelled(); }
  /// Cancelled entries still occupying heap slots.
  std::size_t cancelled_events() const { return cancelled(); }
  std::uint64_t executed_events() const { return executed_; }
  /// Times the heap was rebuilt to shed cancelled entries.
  std::uint64_t compactions() const { return compactions_; }

  /// Cancelled fraction above which (and entry count kCompactMin above
  /// which) the heap is compacted.
  static constexpr std::size_t kCompactMin = 64;

 private:
  /// Event payloads live in slots_ and never move; the binary heap orders
  /// trivially-copyable 24-byte entries, so push_heap/pop_heap sifts are
  /// plain memcpys instead of type-erased closure relocations (which
  /// dominated the profile when the heap held whole events).
  struct Event {
    SchedFn fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::uint64_t cancelled() const {
    return cancelled_in_heap_ ? *cancelled_in_heap_ : 0;
  }
  std::shared_ptr<EventHandle::State> make_state();
  /// Returns a finished (executed or cancelled-and-popped) state to the free
  /// list. A state some handle still references — a Timer keeps its handle
  /// until the next arm() — parks in deferred_ and is swept back into the
  /// pool by make_state() once the last handle lets go.
  void recycle(std::shared_ptr<EventHandle::State>&& state);
  void sweep_deferred();
  void maybe_compact();

  std::uint32_t acquire_slot(SchedFn&& fn,
                             std::shared_ptr<EventHandle::State> state);
  void release_slot(std::uint32_t slot);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  std::vector<HeapEntry> heap_;  // binary heap ordered by Later
  std::vector<Event> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::shared_ptr<std::uint64_t> cancelled_in_heap_;
  std::vector<std::shared_ptr<EventHandle::State>> state_pool_;
  std::vector<std::shared_ptr<EventHandle::State>> deferred_;
};

}  // namespace mip6
