// Discrete-event scheduler with conservative parallel (sharded) execution.
//
// Ordering contract. Every event is ordered by a *canonical key*
//   (at, ptime, pdomain, pseq)
// where `at` is the execution time and the remaining fields are the event's
// provenance: the simulation time of the schedule call, the *domain* that
// made it, and that domain's own schedule counter. A domain is one logical
// process — node N is domain N+1, and domain 0 (kWorldDomain) is the
// world/structural context (topology construction, chaos engine, mobility
// itineraries, cross-node probes). Because a domain always executes
// sequentially, its schedule calls — and therefore every canonical key —
// are identical no matter how the domains are divided among shards. That is
// the whole determinism story: a serial run and an 8-thread run execute the
// same events in the same canonical order and are byte-identical.
//
// Sharded execution (configure_shards) partitions domains into per-shard
// sub-queues, each an independent indirect-heap scheduler over its own slot
// arena. Shards advance in lockstep time windows no longer than the
// configured lookahead (the minimum link propagation delay): within one
// window no cross-shard event can affect another shard, so shards run on
// worker threads without synchronization. An event scheduled for a domain
// on another shard (a packet crossing a cut link) is staged in a per-edge
// outbox and merged into the target heap at the window barrier — its
// canonical key was fixed at schedule time, so it lands exactly where a
// serial run would have put it. Events executed by domain 0 are
// *structural*: they may mutate cross-shard state (move a host, crash a
// router, recompute routes), so the controller runs them with every shard
// quiesced, interleaved with same-instant shard events in canonical order.
// Structural events may only be scheduled from the world context (build
// time or another structural event) or through a structurally-bound Timer.
//
// Cancellation is O(1) by invalidating a shared handle state; cancelled
// events are skipped when they surface at the top of a heap AND reclaimed
// in bulk by threshold-based compaction. Handle states are recycled through
// a per-shard free list, so the steady-state rearm cycle performs no heap
// allocation (tests/sim/alloc_guard_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/func.hpp"
#include "sim/time.hpp"
#include "util/errors.hpp"

namespace mip6 {

/// Logical-process id: 0 is the world/structural context, node N is N+1.
using Domain = std::uint32_t;
inline constexpr Domain kWorldDomain = 0;

/// Canonical event key; see the file comment. Strictly totally ordered
/// (pseq is unique per pdomain), which makes every heap pop deterministic.
struct EventKey {
  Time at;
  Time ptime;          // simulation time of the schedule call
  Domain pdomain = 0;  // domain whose context made the schedule call
  std::uint64_t pseq = 0;  // that domain's schedule-call counter

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.ptime != b.ptime) return a.ptime < b.ptime;
    if (a.pdomain != b.pdomain) {
      // At equal provenance time the structural context sorts LAST: it only
      // runs at quiesce points, i.e. causally after the shard events of that
      // same instant. (Concretely: a host transmits a frame at t from its
      // own event, then structural code called after run_until(t) transmits
      // another — wire FIFO demands the host's frame arrives first even
      // though both deliveries carry ptime == t.)
      const Domain ra = a.pdomain == kWorldDomain ? ~Domain{0} : a.pdomain;
      const Domain rb = b.pdomain == kWorldDomain ? ~Domain{0} : b.pdomain;
      return ra < rb;
    }
    return a.pseq < b.pseq;
  }
};

/// Cancellable handle to a scheduled event. Copyable; all copies refer to the
/// same event. A default-constructed handle is inert. Cross-shard staged
/// events are not cancellable (Link deliveries never cancel).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not yet run. Safe to call repeatedly or on
  /// an inert/expired handle.
  void cancel();
  /// True if the event is still scheduled (not run, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool executed = false;
    /// Count of cancelled-but-still-heaped events, shared with the owning
    /// sub-queue (shared so a handle outliving the scheduler stays safe).
    std::shared_ptr<std::uint64_t> cancelled_in_heap;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Simulation time of the calling context: the executing shard's clock
  /// from inside an event, the controller clock otherwise.
  Time now() const;

  /// Registers a new domain (one per node); returns its id.
  Domain add_domain();
  std::size_t domain_count() const { return domain_seq_.size(); }
  /// Domain of the event being executed by the calling context
  /// (kWorldDomain outside event execution, or under an ambient scope).
  Domain current_domain() const;
  /// Domain new Timers bind to: current_domain(), or the innermost ambient
  /// scope pushed by DomainScope during construction phases.
  Domain binding_domain() const;

  /// Schedules `fn` to run at absolute time `at` (must be >= now()), in the
  /// context of `exec` (defaults to the scheduling domain). SchedFn stores
  /// closures up to 48 bytes without heap allocation.
  EventHandle schedule_at(Time at, SchedFn fn);
  EventHandle schedule_at(Time at, SchedFn fn, Domain exec);
  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventHandle schedule_in(Time delay, SchedFn fn);
  EventHandle schedule_in(Time delay, SchedFn fn, Domain exec);

  /// Runs events until the queues are empty or `until` is reached; events
  /// at exactly `until` are executed. Returns the number executed.
  std::uint64_t run_until(Time until);
  /// Runs to queue exhaustion.
  std::uint64_t run();

  // --- Sharded execution -------------------------------------------------

  /// Partitions domains into `shards` per-thread sub-queues and starts the
  /// worker pool. `domain_shard[d]` names the shard of domain d; domain 0
  /// (and every domain mapped to kStructuralShard) executes structurally.
  /// `lookahead` is the synchronization window (the minimum propagation
  /// delay of any link); must be > 0. Already-scheduled events migrate to
  /// their shard's sub-queue. Call only while quiesced (not from an event).
  static constexpr std::uint32_t kStructuralShard = 0xffffffff;
  void configure_shards(std::vector<std::uint32_t> domain_shard,
                        std::uint32_t shards, Time lookahead);
  /// Back to single-queue serial execution (events migrate back).
  void configure_serial();
  std::uint32_t shards() const { return shard_count_; }
  bool sharded() const { return shard_count_ > 1; }
  /// Shard of the calling worker thread, or -1 (serial, controller or
  /// structural context). Used to route trace/counter/pool accesses.
  static int current_shard_slot();
  /// Canonical key of the event being executed by this thread (null outside
  /// event execution). Valid only during the event's execution.
  static const EventKey* current_key();
  /// Monotone per-shard emit counter for deterministic trace merging.
  static std::uint64_t next_emit_seq();

  /// Hook run by the controller at every window barrier and before every
  /// structural instant, with all shards quiesced. The Network uses it to
  /// merge per-shard trace buffers into the user sink in canonical order.
  using BarrierHook = std::function<void()>;
  void set_barrier_hook(BarrierHook hook) { barrier_hook_ = std::move(hook); }

  /// Windows executed by the sharded controller (0 when serial).
  std::uint64_t windows() const { return windows_; }
  /// Structural instants serialized by the controller.
  std::uint64_t structural_instants() const { return structural_instants_; }

  // --- Introspection -----------------------------------------------------
  /// Heap entries, including not-yet-reclaimed cancelled events (bounded by
  /// compaction at ~2x the live count).
  std::size_t pending_events() const;
  /// Event payload slots currently allocated (high-water mark of pending).
  std::size_t event_slots() const;
  /// Entries scheduled and not yet executed or cancelled.
  std::size_t live_events() const;
  /// Cancelled entries still occupying heap slots.
  std::size_t cancelled_events() const;
  std::uint64_t executed_events() const;
  /// Times a heap was rebuilt to shed cancelled entries.
  std::uint64_t compactions() const;

  /// Cancelled fraction above which (and entry count kCompactMin above
  /// which) a sub-queue is compacted.
  static constexpr std::size_t kCompactMin = 64;

 private:
  friend class DomainScope;

  /// Event payloads live in slots_ and never move; the binary heap orders
  /// trivially-copyable 32-byte entries, so push_heap/pop_heap sifts are
  /// plain memcpys instead of type-erased closure relocations.
  struct Event {
    SchedFn fn;
    std::shared_ptr<EventHandle::State> state;
    Domain exec = kWorldDomain;
  };
  struct HeapEntry {
    EventKey key;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return b.key < a.key;
    }
  };
  /// A cross-shard event staged in the sender's outbox until the barrier.
  struct Staged {
    EventKey key;
    Domain exec;
    SchedFn fn;
  };

  struct SubQueue {
    std::vector<HeapEntry> heap;  // binary heap ordered by Later
    std::vector<Event> slots;
    std::vector<std::uint32_t> free_slots;
    std::shared_ptr<std::uint64_t> cancelled_in_heap;
    std::vector<std::shared_ptr<EventHandle::State>> state_pool;
    std::vector<std::shared_ptr<EventHandle::State>> deferred;
    /// One outbox per target shard (staged cross-shard events).
    std::vector<std::vector<Staged>> outbox;
    Time now = Time::zero();
    std::uint64_t executed = 0;
    std::uint64_t compactions = 0;
    std::uint64_t emit_seq = 0;

    std::uint64_t cancelled() const {
      return cancelled_in_heap ? *cancelled_in_heap : 0;
    }
    /// Key of the earliest live entry, or at == never() when empty.
    EventKey min_key();
    void push(const EventKey& key, SchedFn&& fn, Domain exec,
              std::shared_ptr<EventHandle::State> state);
    std::uint32_t acquire_slot(SchedFn&& fn,
                               std::shared_ptr<EventHandle::State> state,
                               Domain exec);
    void release_slot(std::uint32_t slot);
    std::shared_ptr<EventHandle::State> make_state();
    void recycle(std::shared_ptr<EventHandle::State>&& state);
    void sweep_deferred();
    void maybe_compact();
  };

  /// Per-thread execution context (what current_shard_slot()/now() read).
  struct ExecCtx {
    Scheduler* sched = nullptr;
    SubQueue* sub = nullptr;
    int shard = -1;  // -1: serial/controller/structural
    Domain domain = kWorldDomain;
    const EventKey* key = nullptr;
  };
  static thread_local ExecCtx tls_;

  SubQueue& sub_of_domain(Domain d) {
    std::uint32_t s = d < domain_sub_.size() ? domain_sub_[d] : 0;
    return *subs_[s];
  }
  EventHandle schedule_impl(Time at, SchedFn&& fn, Domain exec,
                            bool cancellable);
  /// Executes one popped entry on `sub` with the exec context set up.
  void execute_entry(SubQueue& sub, int shard, const HeapEntry& entry,
                     std::uint64_t& count);
  /// Pops and runs sub's events with key.at < end (worker-side).
  std::uint64_t run_shard_before(SubQueue& sub, int shard, Time end);
  /// Runs every due event at exactly `ts`, across all sub-queues, in
  /// canonical order, on the controller thread (structural instants).
  std::uint64_t run_instant(Time ts);
  void drain_outboxes();
  std::uint64_t run_serial(Time until);
  std::uint64_t run_parallel(Time until);
  void migrate_all_to(const std::vector<std::uint32_t>& new_map,
                      std::uint32_t new_count);
  void start_workers();
  void stop_workers();
  void worker_main(std::uint32_t shard);

  // Domains. domain_seq_ cells are only bumped by the context that owns the
  // domain (its shard, or the quiesced controller), so no synchronization
  // is needed.
  std::vector<std::uint64_t> domain_seq_;  // per-domain schedule counters
  std::vector<std::uint32_t> domain_sub_;  // domain -> sub-queue index
  std::vector<Domain> ambient_;            // DomainScope stack (build time)

  std::vector<std::unique_ptr<SubQueue>> subs_;  // [0..shard_count_) +
                                                 // structural sub last
  std::uint32_t shard_count_ = 1;
  std::uint32_t structural_sub_ = 0;  // == shard sub 0 in serial mode
  Time lookahead_ = Time::zero();
  Time now_ = Time::zero();  // controller clock (max of finished windows)
  BarrierHook barrier_hook_;
  std::uint64_t windows_ = 0;
  std::uint64_t structural_instants_ = 0;

  // Worker pool (sharded mode only). The controller publishes a command
  // generation + window end; workers run their shard and report done.
  struct WorkerCmd {
    std::atomic<std::uint64_t> gen{0};
    std::atomic<std::int64_t> end_ns{0};
    std::atomic<bool> quit{false};
    std::atomic<std::uint32_t> done{0};
    std::atomic<std::uint64_t> executed{0};
  };
  std::unique_ptr<WorkerCmd> cmd_;
  std::vector<std::thread> workers_;
};

/// RAII ambient-domain scope: Timers constructed (and events scheduled)
/// inside the scope bind to `d` instead of the world domain. NodeRuntime
/// wraps module construction with the node's domain so every protocol timer
/// executes on its node's shard.
class DomainScope {
 public:
  DomainScope(Scheduler& sched, Domain d) : sched_(&sched) {
    sched_->ambient_.push_back(d);
  }
  ~DomainScope() { sched_->ambient_.pop_back(); }
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  Scheduler* sched_;
};

}  // namespace mip6
