// Discrete-event scheduler.
//
// Events are (time, sequence, callback); sequence numbers break same-time
// ties in insertion order, which makes runs fully deterministic. Cancellation
// is O(1) by invalidating a shared handle state; cancelled events are skipped
// (and their storage reclaimed) when they reach the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/errors.hpp"

namespace mip6 {

/// Cancellable handle to a scheduled event. Copyable; all copies refer to the
/// same event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not yet run. Safe to call repeatedly or on
  /// an inert/expired handle.
  void cancel();
  /// True if the event is still scheduled (not run, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool executed = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(Time at, std::function<void()> fn);
  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventHandle schedule_in(Time delay, std::function<void()> fn);

  /// Runs events until the queue is empty or `until` is reached; events at
  /// exactly `until` are executed. Returns the number of events executed.
  std::uint64_t run_until(Time until);
  /// Runs to queue exhaustion.
  std::uint64_t run();

  std::size_t pending_events() const;
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mip6
