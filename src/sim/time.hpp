// Simulation time: signed 64-bit integer nanoseconds.
//
// Integer time makes event ordering exact and runs bit-reproducible across
// platforms; at nanosecond resolution the range covers ~292 years, far more
// than any scenario here (MLD/PIM timers are tens to hundreds of seconds).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mip6 {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ns(std::int64_t v) { return Time(v); }
  static constexpr Time us(std::int64_t v) { return Time(v * 1'000); }
  static constexpr Time ms(std::int64_t v) { return Time(v * 1'000'000); }
  static constexpr Time sec(std::int64_t v) { return Time(v * 1'000'000'000); }
  static constexpr Time minutes(std::int64_t v) { return sec(v * 60); }
  /// From floating seconds; rounds to nearest nanosecond.
  static Time seconds(double v);
  static constexpr Time zero() { return Time(0); }
  /// Sentinel "never": larger than any schedulable time.
  static constexpr Time never() { return Time(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr bool is_never() const { return ns_ == INT64_MAX; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time(a.ns_ * k); }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  Time& operator+=(Time b) { ns_ += b.ns_; return *this; }
  Time& operator-=(Time b) { ns_ -= b.ns_; return *this; }

  friend constexpr auto operator<=>(Time, Time) = default;

  /// "12.345678901s" — full precision, for traces and test expectations.
  std::string str() const;

 private:
  constexpr explicit Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace mip6
