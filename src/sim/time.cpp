#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace mip6 {

Time Time::seconds(double v) {
  return Time::ns(static_cast<std::int64_t>(std::llround(v * 1e9)));
}

std::string Time::str() const {
  if (is_never()) return "never";
  char buf[48];
  std::int64_t s = ns_ / 1'000'000'000;
  std::int64_t frac = ns_ % 1'000'000'000;
  if (frac < 0) {  // normalize for negative times
    s -= 1;
    frac += 1'000'000'000;
  }
  std::snprintf(buf, sizeof buf, "%lld.%09llds", static_cast<long long>(s),
                static_cast<long long>(frac));
  return buf;
}

}  // namespace mip6
