// Deterministic per-run random number generator.
//
// xoshiro256** seeded via SplitMix64, as recommended for reproducible
// simulation: fast, high quality, and trivially split into independent
// streams (one per replication) by re-seeding with a derived seed.
#pragma once

#include <cstdint>

namespace mip6 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  /// Uniform in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  bool bernoulli(double p);

  /// Derives an independent substream seed (for replication k of a sweep).
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

 private:
  std::uint64_t s_[4];
};

}  // namespace mip6
