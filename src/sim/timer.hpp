// Restartable protocol timer.
//
// Every MLD/PIM/MIPv6 timer in the paper (query interval, listener interval,
// prune delay, data timeout, binding lifetime...) is a Timer: arm it with a
// duration, re-arming cancels the previous expiry, expiry invokes a fixed
// callback. The callback is set once at construction, which mirrors how
// protocol specs describe timers ("when the timer expires, do X").
//
// A Timer is bound to a domain. Prefer passing it explicitly: protocol
// state (and its timers) is routinely created both from the owning node's
// own packet events and from structural entry points (initial subscribe,
// module restart after a crash), and only an explicit binding puts the
// expiry on the node's shard in both cases. Without the argument the
// binding is captured from the scheduler's context at construction
// (NodeRuntime wraps module construction in a DomainScope, so ctor-created
// timers land on their node). bind_domain() rebinds after the fact —
// kWorldDomain for expiries that mutate cross-shard state and must run
// structurally (e.g. MobileNode attachment completion).
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "sim/scheduler.hpp"

namespace mip6 {

class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> on_expire,
        std::optional<Domain> bind = std::nullopt)
      : sched_(&sched),
        domain_(bind ? *bind : sched.binding_domain()),
        on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  /// Rebinds the expiry's execution domain (kWorldDomain = structural).
  void bind_domain(Domain d) { domain_ = d; }
  Domain domain() const { return domain_; }

  /// (Re)arms to fire `delay` from now.
  void arm(Time delay) {
    cancel();
    expiry_ = sched_->now() + delay;
    handle_ = sched_->schedule_in(
        delay,
        [this] {
          expiry_ = Time::never();
          // Invoke through a copy: expiry handlers routinely destroy the
          // state that owns this Timer (listener entries, (S,G) entries,
          // neighbor records erase themselves), and destroying a
          // std::function during its own invocation is undefined behaviour.
          auto fn = on_expire_;
          fn();
        },
        domain_);
  }

  /// Arms only if not already running (used for "set if not set" semantics).
  void arm_if_idle(Time delay) {
    if (!running()) arm(delay);
  }

  /// Re-arms only if the new expiry would be earlier than the current one.
  void arm_to_earlier(Time delay) {
    Time candidate = sched_->now() + delay;
    if (!running() || candidate < expiry_) arm(delay);
  }

  void cancel() {
    handle_.cancel();
    expiry_ = Time::never();
  }

  bool running() const { return handle_.pending(); }
  /// Absolute expiry time, or Time::never() when idle.
  Time expiry() const { return running() ? expiry_ : Time::never(); }
  /// Time remaining until expiry; never() when idle.
  Time remaining() const {
    return running() ? expiry_ - sched_->now() : Time::never();
  }

 private:
  Scheduler* sched_;
  Domain domain_;
  std::function<void()> on_expire_;
  EventHandle handle_;
  Time expiry_ = Time::never();
};

}  // namespace mip6
