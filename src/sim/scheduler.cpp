#include "sim/scheduler.hpp"

namespace mip6 {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->executed;
}

EventHandle Scheduler::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) {
    throw LogicError("schedule_at into the past: " + at.str() + " < " +
                     now_.str());
  }
  if (at.is_never()) {
    throw LogicError("schedule_at(never)");
  }
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{at, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle Scheduler::schedule_in(Time delay, std::function<void()> fn) {
  if (delay < Time::zero()) {
    throw LogicError("schedule_in negative delay: " + delay.str());
  }
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) continue;
    now_ = ev.at;
    ev.state->executed = true;
    ev.fn();
    ++n;
    ++executed_;
  }
  // run() passes never() as the horizon; leave now_ at the last event then.
  if (!until.is_never() && now_ < until) now_ = until;
  return n;
}

std::uint64_t Scheduler::run() { return run_until(Time::never()); }

std::size_t Scheduler::pending_events() const { return queue_.size(); }

}  // namespace mip6
