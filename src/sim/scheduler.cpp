#include "sim/scheduler.hpp"

#include <algorithm>

namespace mip6 {
namespace {

// Free-list cap: enough to absorb every live timer in a large topology
// without letting a transient spike pin memory forever.
constexpr std::size_t kStatePoolMax = 1024;

}  // namespace

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->executed) return;
  state_->cancelled = true;
  if (state_->cancelled_in_heap) ++*state_->cancelled_in_heap;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->executed;
}

std::shared_ptr<EventHandle::State> Scheduler::make_state() {
  if (!cancelled_in_heap_) {
    cancelled_in_heap_ = std::make_shared<std::uint64_t>(0);
  }
  if (state_pool_.empty()) sweep_deferred();
  if (!state_pool_.empty()) {
    auto state = std::move(state_pool_.back());
    state_pool_.pop_back();
    return state;
  }
  auto state = std::make_shared<EventHandle::State>();
  state->cancelled_in_heap = cancelled_in_heap_;
  return state;
}

void Scheduler::recycle(std::shared_ptr<EventHandle::State>&& state) {
  // Only reclaim once every handle has let go; a surviving handle keeps its
  // (executed or cancelled) state so pending() stays truthful. Park such
  // states in deferred_ — the common case is a Timer that drops its handle
  // on the next arm(), at which point sweep_deferred() reclaims it.
  if (!state) return;
  if (state.use_count() != 1) {
    if (deferred_.size() < kStatePoolMax) deferred_.push_back(std::move(state));
    return;
  }
  if (state_pool_.size() >= kStatePoolMax) return;
  state->cancelled = false;
  state->executed = false;
  state_pool_.push_back(std::move(state));
}

void Scheduler::sweep_deferred() {
  // Bounded sweep: reclamation keeps pace with the one-deferral-per-pop
  // inflow without turning make_state() into an O(deferred) scan.
  constexpr std::size_t kSweepMax = 8;
  std::size_t scanned = 0;
  for (std::size_t i = deferred_.size();
       i-- > 0 && scanned < kSweepMax; ++scanned) {
    if (deferred_[i].use_count() != 1) continue;
    auto state = std::move(deferred_[i]);
    deferred_[i] = std::move(deferred_.back());
    deferred_.pop_back();
    if (state_pool_.size() >= kStatePoolMax) continue;
    state->cancelled = false;
    state->executed = false;
    state_pool_.push_back(std::move(state));
  }
}

std::uint32_t Scheduler::acquire_slot(
    SchedFn&& fn, std::shared_ptr<EventHandle::State> state) {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].fn = std::move(fn);
    slots_[slot].state = std::move(state);
    return slot;
  }
  slots_.push_back(Event{std::move(fn), std::move(state)});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) {
  slots_[slot].fn = SchedFn();
  recycle(std::move(slots_[slot].state));
  free_slots_.push_back(slot);
}

void Scheduler::maybe_compact() {
  const std::uint64_t dead = cancelled();
  if (dead < kCompactMin || dead * 2 < heap_.size()) return;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (slots_[heap_[i].slot].state->cancelled) {
      release_slot(heap_[i].slot);
      continue;
    }
    heap_[keep] = heap_[i];
    ++keep;
  }
  heap_.resize(keep);
  *cancelled_in_heap_ = 0;
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  ++compactions_;
}

EventHandle Scheduler::schedule_at(Time at, SchedFn fn) {
  if (at < now_) {
    throw LogicError("schedule_at into the past: " + at.str() + " < " +
                     now_.str());
  }
  if (at.is_never()) {
    throw LogicError("schedule_at(never)");
  }
  maybe_compact();
  auto state = make_state();
  std::uint32_t slot = acquire_slot(std::move(fn), state);
  heap_.push_back(HeapEntry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(std::move(state));
}

EventHandle Scheduler::schedule_in(Time delay, SchedFn fn) {
  if (delay < Time::zero()) {
    throw LogicError("schedule_in negative delay: " + delay.str());
  }
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().at <= until) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    HeapEntry entry = heap_.back();
    heap_.pop_back();
    Event& ev = slots_[entry.slot];
    if (ev.state->cancelled) {
      --*cancelled_in_heap_;
      release_slot(entry.slot);
      continue;
    }
    now_ = entry.at;
    ev.state->executed = true;
    // Move the callback out and free the slot before invoking: the callback
    // may schedule (growing slots_, invalidating `ev`) and can even reuse
    // this very slot.
    SchedFn fn = std::move(ev.fn);
    release_slot(entry.slot);
    fn();
    ++n;
    ++executed_;
  }
  // run() passes never() as the horizon; leave now_ at the last event then.
  if (!until.is_never() && now_ < until) now_ = until;
  return n;
}

std::uint64_t Scheduler::run() { return run_until(Time::never()); }

}  // namespace mip6
