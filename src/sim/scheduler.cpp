#include "sim/scheduler.hpp"

#include <algorithm>

namespace mip6 {
namespace {

// Free-list cap: enough to absorb every live timer in a large topology
// without letting a transient spike pin memory forever.
constexpr std::size_t kStatePoolMax = 1024;

// Spins before a waiter falls back to atomic wait/yield. Windows are tens of
// microseconds of real work, so the barrier almost always resolves in the
// spin phase; the fallback only matters between run_until calls.
constexpr int kSpinBudget = 1 << 14;

// When threads outnumber cores, spinning is pure waste: the thread being
// waited on cannot run while the waiter burns its timeslice. Go straight
// to the futex in that case.
inline int spin_budget(std::uint32_t shard_count) {
  const unsigned cores = std::thread::hardware_concurrency();
  return (cores != 0 && cores < shard_count) ? 1 : kSpinBudget;
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

thread_local Scheduler::ExecCtx Scheduler::tls_;

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->executed) return;
  state_->cancelled = true;
  if (state_->cancelled_in_heap) ++*state_->cancelled_in_heap;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->executed;
}

Scheduler::Scheduler() {
  domain_seq_.push_back(0);  // kWorldDomain
  domain_sub_.push_back(0);
  subs_.push_back(std::make_unique<SubQueue>());
  subs_[0]->cancelled_in_heap = std::make_shared<std::uint64_t>(0);
}

Scheduler::~Scheduler() { stop_workers(); }

Time Scheduler::now() const {
  if (tls_.sched == this && tls_.sub != nullptr) return tls_.sub->now;
  return now_;
}

Domain Scheduler::add_domain() {
  auto d = static_cast<Domain>(domain_seq_.size());
  domain_seq_.push_back(0);
  // New domains run serially (sub 0) until configure_shards assigns them.
  domain_sub_.push_back(shard_count_ > 1 ? structural_sub_ : 0);
  return d;
}

Domain Scheduler::current_domain() const {
  if (tls_.sched == this && tls_.key != nullptr) return tls_.domain;
  if (!ambient_.empty()) return ambient_.back();
  return kWorldDomain;
}

Domain Scheduler::binding_domain() const {
  // An explicit ambient scope (module construction) wins over event context.
  if (!ambient_.empty()) return ambient_.back();
  if (tls_.sched == this && tls_.key != nullptr) return tls_.domain;
  return kWorldDomain;
}

int Scheduler::current_shard_slot() { return tls_.shard; }

const EventKey* Scheduler::current_key() { return tls_.key; }

std::uint64_t Scheduler::next_emit_seq() {
  return tls_.sub != nullptr ? tls_.sub->emit_seq++ : 0;
}

// --- SubQueue ---------------------------------------------------------------

EventKey Scheduler::SubQueue::min_key() {
  // Shed cancelled entries from the top so the controller's window planning
  // never keys off a dead event.
  while (!heap.empty()) {
    const HeapEntry& top = heap.front();
    Event& ev = slots[top.slot];
    if (ev.state == nullptr || !ev.state->cancelled) return top.key;
    std::pop_heap(heap.begin(), heap.end(), Later{});
    --*cancelled_in_heap;
    release_slot(heap.back().slot);
    heap.pop_back();
  }
  return EventKey{Time::never(), Time::never(), 0, 0};
}

void Scheduler::SubQueue::push(const EventKey& key, SchedFn&& fn, Domain exec,
                               std::shared_ptr<EventHandle::State> state) {
  std::uint32_t slot = acquire_slot(std::move(fn), std::move(state), exec);
  heap.push_back(HeapEntry{key, slot});
  std::push_heap(heap.begin(), heap.end(), Later{});
}

std::uint32_t Scheduler::SubQueue::acquire_slot(
    SchedFn&& fn, std::shared_ptr<EventHandle::State> state, Domain exec) {
  if (!free_slots.empty()) {
    std::uint32_t slot = free_slots.back();
    free_slots.pop_back();
    slots[slot].fn = std::move(fn);
    slots[slot].state = std::move(state);
    slots[slot].exec = exec;
    return slot;
  }
  slots.push_back(Event{std::move(fn), std::move(state), exec});
  return static_cast<std::uint32_t>(slots.size() - 1);
}

void Scheduler::SubQueue::release_slot(std::uint32_t slot) {
  slots[slot].fn = SchedFn();
  recycle(std::move(slots[slot].state));
  free_slots.push_back(slot);
}

std::shared_ptr<EventHandle::State> Scheduler::SubQueue::make_state() {
  if (state_pool.empty()) sweep_deferred();
  if (!state_pool.empty()) {
    auto state = std::move(state_pool.back());
    state_pool.pop_back();
    return state;
  }
  auto state = std::make_shared<EventHandle::State>();
  state->cancelled_in_heap = cancelled_in_heap;
  return state;
}

void Scheduler::SubQueue::recycle(std::shared_ptr<EventHandle::State>&& state) {
  // Only reclaim once every handle has let go; a surviving handle keeps its
  // (executed or cancelled) state so pending() stays truthful. Park such
  // states in deferred — the common case is a Timer that drops its handle
  // on the next arm(), at which point sweep_deferred() reclaims it.
  if (!state) return;
  if (state.use_count() != 1) {
    if (deferred.size() < kStatePoolMax) deferred.push_back(std::move(state));
    return;
  }
  if (state_pool.size() >= kStatePoolMax) return;
  state->cancelled = false;
  state->executed = false;
  state->cancelled_in_heap = cancelled_in_heap;
  state_pool.push_back(std::move(state));
}

void Scheduler::SubQueue::sweep_deferred() {
  // Bounded sweep: reclamation keeps pace with the one-deferral-per-pop
  // inflow without turning make_state() into an O(deferred) scan.
  constexpr std::size_t kSweepMax = 8;
  std::size_t scanned = 0;
  for (std::size_t i = deferred.size(); i-- > 0 && scanned < kSweepMax;
       ++scanned) {
    if (deferred[i].use_count() != 1) continue;
    auto state = std::move(deferred[i]);
    deferred[i] = std::move(deferred.back());
    deferred.pop_back();
    if (state_pool.size() >= kStatePoolMax) continue;
    state->cancelled = false;
    state->executed = false;
    state->cancelled_in_heap = cancelled_in_heap;
    state_pool.push_back(std::move(state));
  }
}

void Scheduler::SubQueue::maybe_compact() {
  const std::uint64_t dead = cancelled();
  if (dead < Scheduler::kCompactMin || dead * 2 < heap.size()) return;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < heap.size(); ++i) {
    Event& ev = slots[heap[i].slot];
    if (ev.state != nullptr && ev.state->cancelled) {
      release_slot(heap[i].slot);
      continue;
    }
    heap[keep] = heap[i];
    ++keep;
  }
  heap.resize(keep);
  *cancelled_in_heap = 0;
  std::make_heap(heap.begin(), heap.end(), Later{});
  ++compactions;
}

// --- Scheduling -------------------------------------------------------------

EventHandle Scheduler::schedule_impl(Time at, SchedFn&& fn, Domain exec,
                                     bool cancellable) {
  const Time pnow = now();
  if (at < pnow) {
    throw LogicError("schedule_at into the past: " + at.str() + " < " +
                     pnow.str());
  }
  if (at.is_never()) {
    throw LogicError("schedule_at(never)");
  }
  const Domain pd = (tls_.sched == this && tls_.key != nullptr)
                        ? tls_.domain
                        : (!ambient_.empty() ? ambient_.back() : kWorldDomain);
  const EventKey key{at, pnow, pd, ++domain_seq_[pd]};
  const std::uint32_t target =
      exec < domain_sub_.size() ? domain_sub_[exec] : structural_sub_;
  SubQueue& target_sub = *subs_[target];

  if (tls_.sched == this && tls_.shard >= 0 && &target_sub != tls_.sub) {
    // Cross-shard from inside a window: stage in the sender's outbox; the
    // controller merges it into the target heap at the barrier. The
    // lookahead guarantee is what makes the barrier late enough.
    if (target == structural_sub_) {
      throw LogicError("structural event scheduled from a shard context "
                       "(domain " + std::to_string(pd) + " at " + pnow.str() +
                       " scheduling exec domain " + std::to_string(exec) +
                       " for " + at.str() + ")");
    }
    if (at < pnow + lookahead_) {
      throw LogicError("cross-shard event inside the lookahead window: " +
                       at.str() + " < " + (pnow + lookahead_).str());
    }
    tls_.sub->outbox[target].push_back(Staged{key, exec, std::move(fn)});
    return EventHandle();  // staged events are not cancellable
  }

  target_sub.maybe_compact();
  std::shared_ptr<EventHandle::State> state;
  if (cancellable) state = target_sub.make_state();
  EventHandle handle(state);
  target_sub.push(key, std::move(fn), exec, std::move(state));
  return handle;
}

EventHandle Scheduler::schedule_at(Time at, SchedFn fn) {
  const Domain exec = (tls_.sched == this && tls_.key != nullptr)
                          ? tls_.domain
                          : (!ambient_.empty() ? ambient_.back() : kWorldDomain);
  return schedule_impl(at, std::move(fn), exec, /*cancellable=*/true);
}

EventHandle Scheduler::schedule_at(Time at, SchedFn fn, Domain exec) {
  return schedule_impl(at, std::move(fn), exec, /*cancellable=*/true);
}

EventHandle Scheduler::schedule_in(Time delay, SchedFn fn) {
  if (delay < Time::zero()) {
    throw LogicError("schedule_in negative delay: " + delay.str());
  }
  return schedule_at(now() + delay, std::move(fn));
}

EventHandle Scheduler::schedule_in(Time delay, SchedFn fn, Domain exec) {
  if (delay < Time::zero()) {
    throw LogicError("schedule_in negative delay: " + delay.str());
  }
  return schedule_impl(now() + delay, std::move(fn), exec,
                       /*cancellable=*/true);
}

// --- Execution --------------------------------------------------------------

void Scheduler::execute_entry(SubQueue& sub, int shard, const HeapEntry& entry,
                              std::uint64_t& count) {
  Event& ev = sub.slots[entry.slot];
  if (ev.state != nullptr && ev.state->cancelled) {
    --*sub.cancelled_in_heap;
    sub.release_slot(entry.slot);
    return;
  }
  sub.now = entry.key.at;
  tls_.domain = ev.exec;
  tls_.key = &entry.key;
  tls_.shard = shard;
  tls_.sub = &sub;
  if (ev.state != nullptr) ev.state->executed = true;
  // Move the callback out and free the slot before invoking: the callback
  // may schedule (growing slots, invalidating `ev`) and can even reuse
  // this very slot.
  SchedFn fn = std::move(ev.fn);
  sub.release_slot(entry.slot);
  fn();
  tls_.key = nullptr;
  ++count;
  ++sub.executed;
}

std::uint64_t Scheduler::run_serial(Time until) {
  SubQueue& sub = *subs_[0];
  ExecCtx saved = tls_;
  tls_ = ExecCtx{this, &sub, -1, kWorldDomain, nullptr};
  std::uint64_t n = 0;
  while (!sub.heap.empty() && sub.heap.front().key.at <= until) {
    std::pop_heap(sub.heap.begin(), sub.heap.end(), Later{});
    HeapEntry entry = sub.heap.back();
    sub.heap.pop_back();
    execute_entry(sub, -1, entry, n);
    tls_.sub = &sub;  // execute_entry leaves it set; keep for clarity
  }
  tls_ = saved;
  // run() passes never() as the horizon; leave now at the last event then.
  if (!until.is_never() && sub.now < until) sub.now = until;
  now_ = sub.now;
  return n;
}

std::uint64_t Scheduler::run_shard_before(SubQueue& sub, int shard, Time end) {
  ExecCtx saved = tls_;
  tls_ = ExecCtx{this, &sub, shard, kWorldDomain, nullptr};
  std::uint64_t n = 0;
  while (!sub.heap.empty() && sub.heap.front().key.at < end) {
    std::pop_heap(sub.heap.begin(), sub.heap.end(), Later{});
    HeapEntry entry = sub.heap.back();
    sub.heap.pop_back();
    execute_entry(sub, shard, entry, n);
  }
  tls_ = saved;
  return n;
}

std::uint64_t Scheduler::run_instant(Time ts) {
  // Serialized instant: every due event at exactly `ts`, across all shards
  // and the structural queue, in canonical order, on this thread. Shards are
  // quiesced, so structural events may mutate cross-shard state (moves,
  // crashes, route recomputes) and same-instant shard events interleave with
  // them exactly as a serial run would.
  ExecCtx saved = tls_;
  // execute_entry fills sub/key/shard/domain per event, but now()/provenance
  // also require tls_.sched to recognize this scheduler — without it every
  // schedule made by an instant's handlers reads the stale global clock and
  // collapses to world provenance (events land keyed near t=0 mid-run).
  tls_ = ExecCtx{this, nullptr, -1, kWorldDomain, nullptr};
  std::uint64_t n = 0;
  for (;;) {
    SubQueue* best = nullptr;
    EventKey best_key{Time::never(), Time::never(), 0, 0};
    for (auto& sub : subs_) {
      EventKey k = sub->min_key();
      if (k.at.is_never()) continue;
      if (best == nullptr || k < best_key) {
        best = sub.get();
        best_key = k;
      }
    }
    if (best == nullptr || best_key.at != ts) break;
    std::pop_heap(best->heap.begin(), best->heap.end(), Later{});
    HeapEntry entry = best->heap.back();
    best->heap.pop_back();
    // shard = -1: trace/counter writes go straight to the merged stores.
    execute_entry(*best, -1, entry, n);
    tls_.key = nullptr;
  }
  tls_ = saved;
  return n;
}

void Scheduler::drain_outboxes() {
  for (auto& src : subs_) {
    for (std::size_t dst = 0; dst < src->outbox.size(); ++dst) {
      auto& staged = src->outbox[dst];
      if (staged.empty()) continue;
      SubQueue& target = *subs_[dst];
      for (auto& s : staged) {
        target.push(s.key, std::move(s.fn), s.exec, nullptr);
      }
      staged.clear();
    }
  }
}

std::uint64_t Scheduler::run_parallel(Time until) {
  std::uint64_t n = 0;
  SubQueue& structural = *subs_[structural_sub_];
  for (;;) {
    EventKey gmin{Time::never(), Time::never(), 0, 0};
    for (auto& sub : subs_) {
      EventKey k = sub->min_key();
      if (!k.at.is_never() && (gmin.at.is_never() || k < gmin)) gmin = k;
    }
    if (gmin.at.is_never() || gmin.at > until) break;
    const Time ts = structural.min_key().at;
    if (ts == gmin.at) {
      // The next event anywhere shares its instant with a structural event:
      // run the whole instant single-threaded in canonical order.
      n += run_instant(ts);
      ++structural_instants_;
      if (barrier_hook_) barrier_hook_();
      continue;
    }
    Time wend = gmin.at + lookahead_;  // exclusive window end
    if (ts < wend) wend = ts;
    // run_until is inclusive of `until`, so the last window ends just past it.
    if (!until.is_never() && until + Time::ns(1) < wend) {
      wend = until + Time::ns(1);
    }
    // Dispatch the window: workers run shards 1..S-1, we run shard 0.
    cmd_->executed.store(0, std::memory_order_relaxed);
    cmd_->done.store(0, std::memory_order_relaxed);
    cmd_->end_ns.store(wend.nanos(), std::memory_order_relaxed);
    cmd_->gen.fetch_add(1, std::memory_order_release);
    cmd_->gen.notify_all();
    n += run_shard_before(*subs_[0], 0, wend);
    const std::uint32_t others = shard_count_ - 1;
    const int budget = spin_budget(shard_count_);
    int spins = 0;
    std::uint32_t d;
    while ((d = cmd_->done.load(std::memory_order_acquire)) < others) {
      if (++spins < budget) {
        cpu_relax();
      } else {
        cmd_->done.wait(d, std::memory_order_acquire);
      }
    }
    n += cmd_->executed.load(std::memory_order_relaxed);
    ++windows_;
    drain_outboxes();
    if (barrier_hook_) barrier_hook_();
  }
  Time end = until;
  if (until.is_never()) {
    end = Time::zero();
    for (auto& sub : subs_) end = std::max(end, sub->now);
  }
  for (auto& sub : subs_) {
    if (sub->now < end) sub->now = end;
  }
  now_ = end;
  return n;
}

std::uint64_t Scheduler::run_until(Time until) {
  if (sharded()) return run_parallel(until);
  return run_serial(until);
}

std::uint64_t Scheduler::run() { return run_until(Time::never()); }

// --- Sharding ---------------------------------------------------------------

void Scheduler::migrate_all_to(const std::vector<std::uint32_t>& new_map,
                               std::uint32_t new_count) {
  const std::size_t total = static_cast<std::size_t>(new_count) + 1;
  std::vector<std::unique_ptr<SubQueue>> fresh;
  fresh.reserve(total);
  Time cur = now_;
  for (auto& sub : subs_) cur = std::max(cur, sub->now);
  for (std::size_t i = 0; i < total; ++i) {
    auto sub = std::make_unique<SubQueue>();
    sub->cancelled_in_heap = std::make_shared<std::uint64_t>(0);
    sub->now = cur;
    sub->outbox.resize(total);
    fresh.push_back(std::move(sub));
  }
  std::uint64_t executed = 0;
  std::uint64_t compactions = 0;
  for (auto& old : subs_) {
    executed += old->executed;
    compactions += old->compactions;
    for (const HeapEntry& entry : old->heap) {
      Event& ev = old->slots[entry.slot];
      if (ev.state != nullptr && ev.state->cancelled) {
        ev.state->cancelled_in_heap.reset();
        continue;  // dead: drop instead of migrating
      }
      const std::uint32_t dst =
          ev.exec < new_map.size() ? new_map[ev.exec] : new_count;
      SubQueue& target = *fresh[dst];
      if (ev.state != nullptr) {
        ev.state->cancelled_in_heap = target.cancelled_in_heap;
      }
      target.heap.push_back(
          HeapEntry{entry.key,
                    target.acquire_slot(std::move(ev.fn), std::move(ev.state),
                                        ev.exec)});
    }
  }
  for (auto& sub : fresh) {
    std::make_heap(sub->heap.begin(), sub->heap.end(), Later{});
  }
  fresh[0]->executed = executed;
  fresh[0]->compactions = compactions;
  subs_ = std::move(fresh);
  now_ = cur;
}

void Scheduler::configure_shards(std::vector<std::uint32_t> domain_shard,
                                 std::uint32_t shards, Time lookahead) {
  if (tls_.sched == this && tls_.key != nullptr) {
    throw LogicError("configure_shards from inside an event");
  }
  if (shards <= 1) {
    configure_serial();
    return;
  }
  if (lookahead <= Time::zero()) {
    throw LogicError("configure_shards needs a positive lookahead");
  }
  stop_workers();
  domain_shard.resize(domain_seq_.size(), kStructuralShard);
  std::vector<std::uint32_t> new_map(domain_seq_.size(), shards);
  for (std::size_t d = 1; d < domain_shard.size(); ++d) {
    if (domain_shard[d] != kStructuralShard) {
      if (domain_shard[d] >= shards) {
        throw LogicError("configure_shards: shard index out of range");
      }
      new_map[d] = domain_shard[d];
    }
  }
  new_map[kWorldDomain] = shards;  // structural sub is the last one
  migrate_all_to(new_map, shards);
  domain_sub_ = std::move(new_map);
  shard_count_ = shards;
  structural_sub_ = shards;
  lookahead_ = lookahead;
  start_workers();
}

void Scheduler::configure_serial() {
  if (tls_.sched == this && tls_.key != nullptr) {
    throw LogicError("configure_serial from inside an event");
  }
  stop_workers();
  if (shard_count_ == 1 && subs_.size() == 1) return;
  // With new_count 0 there is exactly one sub: shard 0 == structural.
  std::vector<std::uint32_t> new_map(domain_seq_.size(), 0);
  migrate_all_to(new_map, 0);
  subs_[0]->outbox.clear();
  domain_sub_.assign(domain_seq_.size(), 0);
  shard_count_ = 1;
  structural_sub_ = 0;
  lookahead_ = Time::zero();
}

void Scheduler::start_workers() {
  cmd_ = std::make_unique<WorkerCmd>();
  workers_.reserve(shard_count_ - 1);
  for (std::uint32_t s = 1; s < shard_count_; ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

void Scheduler::stop_workers() {
  if (!cmd_) return;
  cmd_->quit.store(true, std::memory_order_release);
  cmd_->gen.fetch_add(1, std::memory_order_release);
  cmd_->gen.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  cmd_.reset();
}

void Scheduler::worker_main(std::uint32_t shard) {
  std::uint64_t last_gen = 0;
  const int budget = spin_budget(shard_count_);
  for (;;) {
    std::uint64_t gen;
    int spins = 0;
    while ((gen = cmd_->gen.load(std::memory_order_acquire)) == last_gen) {
      if (++spins < budget) {
        cpu_relax();
      } else {
        cmd_->gen.wait(last_gen, std::memory_order_acquire);
      }
    }
    last_gen = gen;
    if (cmd_->quit.load(std::memory_order_acquire)) return;
    const Time end = Time::ns(cmd_->end_ns.load(std::memory_order_relaxed));
    const std::uint64_t n = run_shard_before(*subs_[shard], shard, end);
    cmd_->executed.fetch_add(n, std::memory_order_relaxed);
    cmd_->done.fetch_add(1, std::memory_order_release);
    cmd_->done.notify_all();
  }
}

// --- Introspection ----------------------------------------------------------

std::size_t Scheduler::pending_events() const {
  std::size_t n = 0;
  for (auto& sub : subs_) n += sub->heap.size();
  return n;
}

std::size_t Scheduler::event_slots() const {
  std::size_t n = 0;
  for (auto& sub : subs_) n += sub->slots.size();
  return n;
}

std::size_t Scheduler::live_events() const {
  std::size_t n = 0;
  for (auto& sub : subs_) n += sub->heap.size() - sub->cancelled();
  return n;
}

std::size_t Scheduler::cancelled_events() const {
  std::size_t n = 0;
  for (auto& sub : subs_) n += sub->cancelled();
  return n;
}

std::uint64_t Scheduler::executed_events() const {
  std::uint64_t n = 0;
  for (auto& sub : subs_) n += sub->executed;
  return n;
}

std::uint64_t Scheduler::compactions() const {
  std::uint64_t n = 0;
  for (auto& sub : subs_) n += sub->compactions;
  return n;
}

}  // namespace mip6
