#include "sim/timer.hpp"

// Header-only today; translation unit kept so the target owns the header and
// future out-of-line additions don't touch the build graph.
