// HPIM-DM router engine (arXiv 2002.06635 semantics, adapted to this
// simulator): a hard-state redesign of dense-mode multicast.
//
// Where PIM-DM periodically re-floods and re-prunes (soft state that decays
// and must be refreshed), HPIM-DM keeps explicit per-neighbor interest
// state and synchronizes it reliably:
//
//   * Every Interest ("I do/don't want (S,G) through you") and Sync message
//     is sequence-numbered per neighbor, acknowledged, and retransmitted
//     with exponential backoff until acked — control state cannot be lost
//     to a dropped frame.
//   * When a neighbor (re)appears — first hello, or a hello carrying a new
//     generation id after a reboot — the full relevant tree state is
//     re-synchronized immediately in one acknowledged Sync exchange instead
//     of waiting out a flood-and-prune cycle. Sync transmissions are storm
//     damped (at most one per neighbor per sync_min_interval).
//   * A neighbor silent past holdtime (or whose retransmit queue overflows)
//     is declared failed: its interest state is dropped and interest is
//     recomputed, degrading gracefully instead of blackholing.
//
// Crash semantics differ deliberately from PIM-DM: on_crash() keeps the
// (S,G) entries, the recorded downstream interest and the leaf (MLD)
// groups — that is the hard state — and only discards the live channel
// machinery (timers, sequence numbers, unacked queues). After on_restart()
// the router forwards again on the first arriving datagram, while its new
// generation id makes every neighbor re-sync so residual divergence heals.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hpimdm/config.hpp"
#include "hpimdm/messages.hpp"
#include "ipv6/stack.hpp"
#include "mld/router.hpp"
#include "net/mfc.hpp"
#include "pimdm/dense_engine.hpp"
#include "sim/timer.hpp"

namespace mip6 {

class HpimDmRouter : public DenseModeEngine {
 public:
  HpimDmRouter(Ipv6Stack& stack, MldRouter& mld, HpimDmConfig config);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "hpimdm"; }
  /// Re-enables HPIM on every configured interface that is currently
  /// attached (cold boot after a restart).
  void start() override;
  /// Deliberate reset: full shutdown, hard state included.
  void reset() override { shutdown(); }
  /// Teardown: shutdown() plus releasing the stack hooks.
  void stop() override;
  /// Crash: drop channels, timers and local-receiver pins but KEEP (S,G)
  /// entries, downstream interest and leaf groups (the hard state).
  void on_crash() override;
  /// Restart: new generation id, cold-start the interfaces, re-arm entry
  /// lifetimes, and reconcile surviving leaf state against MLD after a
  /// grace period.
  void on_restart() override;

  // --- DenseModeEngine ----------------------------------------------------
  void enable_iface(IfaceId iface) override;
  std::vector<IfaceId> enabled_ifaces() const override;
  void add_local_receiver(const Address& group) override;
  void remove_local_receiver(const Address& group) override;
  bool is_local_receiver(const Address& group) const override;

  std::size_t entry_count() const override { return entries_.size(); }
  std::size_t mfc_entries() const override { return mfc_.size(); }
  /// Unacked control messages queued across every neighbor channel. A
  /// healthy channel drains to zero after convergence; the chaos-search
  /// retx-backlog watchdog samples this.
  std::size_t retransmit_backlog() const;
  std::vector<SgKey> sg_keys() const override;
  bool has_entry(const Address& src, const Address& group) const override;
  bool upstream_pruned(const Address& src,
                       const Address& group) const override;
  Address rpf_neighbor_of(const Address& src,
                          const Address& group) const override;
  bool assert_loser(const Address& src, const Address& group,
                    IfaceId iface) const override;
  std::vector<IfaceId> outgoing(const Address& src,
                                const Address& group) const override;
  IfaceId incoming(const Address& src, const Address& group) const override;
  bool downstream_pruned(const Address& src, const Address& group,
                         IfaceId iface) const override;
  std::vector<Address> neighbors(IfaceId iface) const override;

  /// Full shutdown including hard state (used by reset()/stop()).
  void shutdown();
  const HpimDmConfig& config() const { return config_; }

 private:
  /// One sequenced, unacked message awaiting its cumulative ack.
  struct Pending {
    std::uint32_t seq = 0;
    HpimType type = HpimType::kInterest;
    Bytes body;  // serialized body, seq included — retransmitted verbatim
  };
  /// Reliable control channel to one neighbor on one interface.
  struct NeighborChannel {
    std::uint32_t generation_id = 0;
    /// False for channels adopted from a sequenced message before any
    /// hello: the first hello then just records the generation id instead
    /// of being mistaken for a reboot.
    bool generation_known = false;
    std::unique_ptr<Timer> liveness;
    // Sender side.
    std::uint32_t tx_seq = 0;  // last assigned
    std::deque<Pending> pending;
    std::unique_ptr<Timer> retx_timer;
    Time rto = Time::zero();
    // Receiver side.
    std::uint32_t rx_expected = 1;
    // Sync storm damping.
    Time last_sync_tx = Time::never();
    std::unique_ptr<Timer> sync_timer;
    bool sync_pending = false;
  };
  struct IfaceState {
    std::unique_ptr<Timer> hello_timer;
    std::map<Address, NeighborChannel> neighbors;
  };
  struct Downstream {
    /// Per-neighbor declared interest. A neighbor with no record is
    /// *unknown* and keeps the interface forwarding (dense-mode default).
    std::map<Address, bool> declared;
    bool assert_loser = false;
    std::unique_ptr<Timer> assert_timer;
    Time last_assert_tx = Time::never();
    /// Rate limiter for not-interested declarations triggered by data
    /// arriving on a non-RPF interface.
    Time last_nonrpf_tx = Time::never();
  };
  struct SgEntry {
    Address source;
    Address group;
    IfaceId incoming = 0;
    Address rpf_neighbor;  // unspecified when we are the first-hop router
    std::uint32_t rpf_metric = 0;
    std::uint32_t assert_winner_pref = 0;
    std::uint32_t assert_winner_metric = 0;
    Address assert_winner_addr;
    std::map<IfaceId, std::unique_ptr<Downstream>> downstream;
    /// Last interest declared to the upstream neighbor; absent until the
    /// first declaration (and again after crash/upstream loss, forcing a
    /// re-declaration once a channel exists).
    std::optional<bool> my_interest;
    std::unique_ptr<Timer> entry_timer;  // data timeout
  };

  // Entry points.
  void on_multicast_data(const ParsedDatagram& d, const Packet& pkt,
                         IfaceId iface);
  void on_hpim_message(const ParsedDatagram& d, IfaceId iface);
  void on_hello(const HpimHello& hello, const Address& from, IfaceId iface);
  void on_ack(const HpimAck& ack, const Address& from, IfaceId iface);
  void on_interest(const HpimInterest& m, const Address& from, IfaceId iface);
  void on_sync(const HpimSync& m, const Address& from, IfaceId iface);
  void on_assert(const HpimAssert& a, const Address& from, IfaceId iface);
  void on_mld_change(IfaceId iface, const Address& group, bool present);

  // Entry management.
  SgEntry* find_entry(const Address& src, const Address& group);
  const SgEntry* find_entry(const Address& src, const Address& group) const;
  SgEntry* create_entry(const Address& src, const Address& group);
  void delete_entry(const SgKey& key);
  Downstream& downstream(SgEntry& e, IfaceId iface);
  std::vector<IfaceId> oiflist(const SgEntry& e) const;
  /// The oiflist() membership predicate for one downstream interface.
  bool oif_active(const SgEntry& e, IfaceId iface, const Downstream& d) const;
  /// Allocation-free "is this interface in oiflist(e)?".
  bool in_oiflist(const SgEntry& e, IfaceId iface) const;
  bool wants_traffic(const SgEntry& e) const;
  /// Declares interest upstream iff the wanted state flipped (or was never
  /// declared). The hard-state replacement for prune/graft/join-override.
  void recompute_interest(SgEntry& e);
  /// Variant taking the already-computed wants_traffic() result so the
  /// data path never evaluates the oif set twice for one packet.
  void recompute_interest(SgEntry& e, bool wants);

  // MFC layer (config_.mfc): dense interface indices, precomputed oif
  // bitmaps and the (S,G) flow cache the data path consults first.
  static FlowKey flow_key(const Address& src, const Address& group);
  /// Registers `iface` in the mif table; a renumbering insertion flushes
  /// the whole cache (bitmaps built under the old numbering are garbage).
  Mifi mif_of(IfaceId iface);
  /// Re-resolves the per-RPF-iface hit/miss cells after a mif-table
  /// change (cold path: string work happens here, never per packet).
  void rebuild_mfc_cells();
  /// Recomputes e's bitmap and installs it; nullptr when the entry is not
  /// cacheable (empty oif set and no local receiver: that path stays
  /// per-packet because it carries the reliable no-interest declaration).
  MfcEntry* refill_mfc(SgEntry& e);
  void invalidate_mfc(const SgEntry& e);
  void invalidate_mfc(const SgKey& key);
  void apply_interest(const Address& from, IfaceId iface, const Address& src,
                      const Address& group, bool interested);

  // Neighbor channel machinery.
  NeighborChannel* channel(IfaceId iface, const Address& nbr);
  NeighborChannel& ensure_channel(IfaceId iface, const Address& nbr,
                                  std::uint16_t holdtime_s,
                                  std::uint32_t generation_id,
                                  bool generation_known);
  /// The channel Interest for `e` travels on; exact rpf_neighbor match,
  /// falling back to a lone neighbor on the incoming interface.
  NeighborChannel* upstream_channel(SgEntry& e, Address* nbr_out);
  void neighbor_failed(IfaceId iface, const Address& nbr, const char* why);
  /// True when the sequenced message is in order (advances rx_expected and
  /// acks); duplicates/gaps are re-acked at the last in-order point.
  bool accept_sequenced(IfaceId iface, const Address& from, std::uint32_t seq);
  void send_reliable(IfaceId iface, const Address& nbr, HpimType type,
                     Bytes body_with_seq, std::uint32_t seq);
  std::uint32_t next_seq(IfaceId iface, const Address& nbr);
  void schedule_sync(IfaceId iface, const Address& nbr);
  void send_sync(IfaceId iface, const Address& nbr);

  // Message emission.
  void send_hello(IfaceId iface);
  void send_ack(IfaceId iface, const Address& to, std::uint32_t seq);
  void send_interest(SgEntry& e, bool interested);
  void send_uninterest_nonrpf(SgEntry& e, IfaceId iface);
  void send_assert(SgEntry& e, IfaceId iface);
  void emit(IfaceId iface, HpimType type, BytesView body, const Address& dst);
  /// Control source address: global preferred (it is what unicast routes —
  /// and therefore rpf_neighbor — name), link-local fallback.
  Address source_address(IfaceId iface) const;

  bool hpim_enabled(IfaceId iface) const { return ifaces_.contains(iface); }
  bool has_neighbors(IfaceId iface) const;
  std::uint32_t fresh_generation_id();
  void reconcile_leaf_groups();
  void count(std::string_view name, std::uint64_t delta = 1);
  Time now() const { return stack_->network().now(); }
  Trace& trace() const { return stack_->network().trace(); }
  template <typename DetailFn>
  void trace_event(const char* event, DetailFn&& detail_fn) const {
    trace().emit(now(), component_, event, std::forward<DetailFn>(detail_fn));
  }

  Ipv6Stack* stack_;
  MldRouter* mld_;
  HpimDmConfig config_;
  std::string component_;  // "hpimdm/<node>", cached for trace records
  /// Cell for the per-fan-out "hpimdm/data-fwd" counter, resolved once.
  CounterCell c_data_fwd_;
  /// Flow-cache hit/miss cells, resolved once (hot path, no string work).
  CounterCell c_mfc_hit_;
  CounterCell c_mfc_miss_;
  /// Per-RPF-interface hit/miss cells ("hpimdm/mfc-hit.if<id>"), index =
  /// mifi. Rebuilt by mif_of() whenever the mif table renumbers, so the
  /// hot path never does string work.
  std::vector<CounterCell> c_mfc_shard_hit_;
  std::vector<CounterCell> c_mfc_shard_miss_;
  /// Dense interface indices + per-RPF-iface (S,G) flow cache bank.
  MifTable mifs_;
  ShardedFlowCache mfc_;
  std::uint32_t generation_id_ = 0;
  /// Every interface enable_iface() was ever called for (restart wiring).
  std::set<IfaceId> configured_;
  std::map<IfaceId, IfaceState> ifaces_;
  std::map<SgKey, std::unique_ptr<SgEntry>> entries_;
  /// Hard-state mirror of MLD listener state; survives crashes where the
  /// MLD module's own soft state is lost, and is reconciled against live
  /// MLD reports leaf_reconcile_delay after a restart.
  std::map<IfaceId, std::set<Address>> leaf_groups_;
  std::unique_ptr<Timer> leaf_reconcile_timer_;
  std::map<Address, int> local_receivers_;
};

}  // namespace mip6
