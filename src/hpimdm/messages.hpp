// HPIM-DM message wire formats (arXiv 2002.06635, adapted).
//
// HPIM-DM shares PIM's IP protocol number (103) and 4-octet common header
// but stamps version 3 in the version nibble, so a frame from the other
// engine is rejected at the header with a named kBadType reason instead of
// being half-parsed: a PIM-DM router sees "PIM version is not 2", an
// HPIM-DM router sees "HPIM version is not 3".
//
// Control reliability lives in the message layer: every Interest and Sync
// carries a per-neighbor sequence number and is retransmitted until the
// matching cumulative Ack arrives. Hello and Assert are unsequenced
// (periodic / data-driven, loss-tolerant by design).
#pragma once

#include <cstdint>
#include <vector>

#include "ipv6/address.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

enum class HpimType : std::uint8_t {
  kHello = 0,
  kAck = 1,
  kInterest = 2,
  kSync = 3,
  kAssert = 4,
};

/// Serializes the 4-octet HPIM header (version 3) + body with the IPv6
/// pseudo-header checksum, ready to be the payload of a proto-103 datagram.
Bytes serialize_hpim(HpimType type, BytesView body, const Address& src,
                     const Address& dst);

struct HpimHeader {
  HpimType type;
  Bytes body;
};
/// No-throw parse + checksum verification of an HPIM payload. Rejects
/// version-2 (PIM-DM) frames with kBadType "HPIM version is not 3".
ParseResult<HpimHeader> try_parse_hpim(BytesView payload, const Address& src,
                                       const Address& dst);

// --- Hello -----------------------------------------------------------------

struct HpimHello {
  std::uint16_t holdtime = 105;  // seconds
  /// Random per-incarnation id; a change signals the neighbor rebooted and
  /// its reliable channel must be resynchronized.
  std::uint32_t generation_id = 0;

  Bytes body() const;
  static ParseResult<HpimHello> try_parse(BytesView body);
};

// --- Ack -------------------------------------------------------------------

struct HpimAck {
  /// Cumulative: acknowledges every sequenced message with seq <= this.
  std::uint32_t seq = 0;

  Bytes body() const;
  static ParseResult<HpimAck> try_parse(BytesView body);
};

// --- Interest (reliable, sequenced) ---------------------------------------

/// One router telling one upstream neighbor whether it wants (S,G)
/// traffic. Replaces PIM-DM's Prune / Graft / Join-override triangle with a
/// single acknowledged declaration.
struct HpimInterest {
  std::uint32_t seq = 0;
  Address source;
  Address group;
  bool interested = false;

  Bytes body() const;
  static ParseResult<HpimInterest> try_parse(BytesView body);
};

// --- Sync (reliable, sequenced) -------------------------------------------

/// Bulk tree-state synchronization sent on neighbor up/recovery: every
/// (S,G) this router routes through that neighbor, with its current
/// interest, in one (fragmented) acknowledged exchange — instead of waiting
/// for the next flood-and-prune cycle.
struct HpimSync {
  struct Entry {
    Address source;
    Address group;
    bool interested = false;
  };
  std::uint32_t seq = 0;
  /// Set when further fragments of the same sync follow.
  bool more = false;
  std::vector<Entry> entries;

  Bytes body() const;
  /// No-throw parse; entry count is bounded (bound::kMaxHpimSyncEntries)
  /// and a count lie is rejected in O(1) before per-entry work.
  static ParseResult<HpimSync> try_parse(BytesView body);
};

// --- Assert ----------------------------------------------------------------

/// Same layout and election tuple as PIM-DM's Assert (metric preference,
/// metric, higher address wins ties); duplicate-forwarder resolution is
/// unchanged across engines.
struct HpimAssert {
  Address group;
  Address source;
  std::uint32_t metric_preference = 0;
  std::uint32_t metric = 0;

  Bytes body() const;
  static ParseResult<HpimAssert> try_parse(BytesView body);
};

}  // namespace mip6
