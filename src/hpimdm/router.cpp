#include "hpimdm/router.hpp"

#include <algorithm>

#include "net/wire_stats.hpp"

namespace mip6 {

HpimDmRouter::HpimDmRouter(Ipv6Stack& stack, MldRouter& mld,
                           HpimDmConfig config)
    : stack_(&stack), mld_(&mld), config_(config),
      component_("hpimdm/" + stack.node().name()),
      c_data_fwd_(stack.network().counters().cell("hpimdm/data-fwd")),
      c_mfc_hit_(stack.network().counters().cell("hpimdm/mfc-hit")),
      c_mfc_miss_(stack.network().counters().cell("hpimdm/mfc-miss")),
      mifs_(config_.mfc_max_ifaces) {
  generation_id_ = fresh_generation_id();
  leaf_reconcile_timer_ = std::make_unique<Timer>(
      stack.scheduler(), [this] { reconcile_leaf_groups(); }, stack.node().domain());
  stack.set_mcast_forwarder(
      [this](const ParsedDatagram& d, const Packet& pkt, IfaceId iface) {
        on_multicast_data(d, pkt, iface);
      });
  stack.set_proto_handler(
      proto::kPim,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_hpim_message(d, iface);
      });
  mld.set_group_callback(
      [this](IfaceId iface, const Address& group, bool present) {
        on_mld_change(iface, group, present);
      });
}

void HpimDmRouter::start() {
  for (const auto& ifp : stack_->node().interfaces()) {
    if (ifp->attached() && configured_.contains(ifp->id())) {
      enable_iface(ifp->id());
    }
  }
}

void HpimDmRouter::stop() {
  shutdown();
  stack_->clear_mcast_forwarder();
  stack_->clear_proto_handler(proto::kPim);
  mld_->set_group_callback(nullptr);
}

void HpimDmRouter::shutdown() {
  mfc_.clear();  // entry pointers just dangled
  entries_.clear();
  ifaces_.clear();
  leaf_groups_.clear();
  leaf_reconcile_timer_->cancel();
  local_receivers_.clear();
  count("hpimdm/shutdown");
}

void HpimDmRouter::on_crash() {
  // The whole point of the hard-state engine: (S,G) entries, recorded
  // downstream interest and leaf groups survive; only the live channel
  // machinery (timers, sequence state, unacked queues) dies with us.
  // The flow cache is derived state over the neighbor set we are about to
  // drop — flush it; the first post-restart datagram refills it.
  mfc_.invalidate_all();
  ifaces_.clear();
  leaf_reconcile_timer_->cancel();
  for (auto& [key, e] : entries_) {
    e->entry_timer->cancel();
    e->my_interest.reset();  // re-declare once channels are back
    for (auto& [iface, d] : e->downstream) {
      if (d->assert_timer) d->assert_timer->cancel();
      d->assert_loser = false;
      d->last_assert_tx = Time::never();
      d->last_nonrpf_tx = Time::never();
    }
  }
  // Home-agent local-receiver pins are soft state owned by the HA module;
  // it re-registers them as bindings refresh (keeping them would double
  // the refcounts on re-registration).
  local_receivers_.clear();
  count("hpimdm/crash");
}

void HpimDmRouter::on_restart() {
  // New incarnation: neighbors spot the generation change in our first
  // hello and re-sync their interest toward us reliably.
  generation_id_ = fresh_generation_id();
  start();
  for (auto& [key, e] : entries_) {
    e->entry_timer->arm(config_.data_timeout);
  }
  // The surviving leaf groups keep their interfaces forwarding through the
  // outage; once listeners had time to re-report to MLD, drop the ones
  // that did not come back.
  leaf_reconcile_timer_->arm(config_.leaf_reconcile_delay);
  count("hpimdm/restart");
  trace_event("restart", [&] {
    return "entries=" + std::to_string(entries_.size());
  });
}

void HpimDmRouter::enable_iface(IfaceId iface) {
  if (config_.mfc) mif_of(iface);  // fail-fast on width overflow
  configured_.insert(iface);
  auto [it, fresh] = ifaces_.try_emplace(iface);
  if (!fresh) return;
  it->second.hello_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface] {
        send_hello(iface);
        ifaces_.at(iface).hello_timer->arm(config_.hello_period);
      }, stack_->node().domain());
  // First hello immediately (triggered hello on interface up).
  it->second.hello_timer->arm(Time::zero());
}

std::vector<IfaceId> HpimDmRouter::enabled_ifaces() const {
  std::vector<IfaceId> out;
  for (const auto& [iface, st] : ifaces_) out.push_back(iface);
  return out;
}

std::size_t HpimDmRouter::retransmit_backlog() const {
  std::size_t total = 0;
  for (const auto& [iface, st] : ifaces_) {
    for (const auto& [nbr, ch] : st.neighbors) total += ch.pending.size();
  }
  return total;
}

void HpimDmRouter::add_local_receiver(const Address& group) {
  int& refs = local_receivers_[group];
  ++refs;
  if (refs > 1) return;
  for (auto& [key, e] : entries_) {
    if (key.group != group) continue;
    invalidate_mfc(*e);
    recompute_interest(*e);
  }
}

void HpimDmRouter::remove_local_receiver(const Address& group) {
  auto it = local_receivers_.find(group);
  if (it == local_receivers_.end()) return;
  if (--it->second <= 0) {
    local_receivers_.erase(it);
    for (auto& [key, e] : entries_) {
      if (key.group != group) continue;
      invalidate_mfc(*e);
      recompute_interest(*e);
    }
  }
}

bool HpimDmRouter::is_local_receiver(const Address& group) const {
  return local_receivers_.contains(group);
}

// ---------------------------------------------------------------------------
// Introspection

bool HpimDmRouter::has_entry(const Address& src, const Address& group) const {
  return entries_.contains(SgKey{src, group});
}

std::vector<HpimDmRouter::SgKey> HpimDmRouter::sg_keys() const {
  std::vector<SgKey> out;
  for (const auto& [key, e] : entries_) out.push_back(key);
  return out;
}

bool HpimDmRouter::upstream_pruned(const Address& src,
                                   const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  return e != nullptr && e->my_interest.has_value() && !*e->my_interest;
}

Address HpimDmRouter::rpf_neighbor_of(const Address& src,
                                      const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) throw LogicError("no such (S,G) entry");
  return e->rpf_neighbor;
}

bool HpimDmRouter::assert_loser(const Address& src, const Address& group,
                                IfaceId iface) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) return false;
  auto it = e->downstream.find(iface);
  return it != e->downstream.end() && it->second->assert_loser;
}

std::vector<IfaceId> HpimDmRouter::outgoing(const Address& src,
                                            const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) return {};
  return oiflist(*e);
}

IfaceId HpimDmRouter::incoming(const Address& src, const Address& group) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) throw LogicError("no such (S,G) entry");
  return e->incoming;
}

bool HpimDmRouter::downstream_pruned(const Address& src, const Address& group,
                                     IfaceId iface) const {
  const SgEntry* e = find_entry(src, group);
  if (e == nullptr) return false;
  if (iface == e->incoming) return false;
  auto lit = leaf_groups_.find(iface);
  if (lit != leaf_groups_.end() && lit->second.contains(group)) return false;
  auto it = e->downstream.find(iface);
  if (it == e->downstream.end()) return false;
  const Downstream& d = *it->second;
  if (d.assert_loser) return false;  // suppressed by election, not interest
  // Positively pruned only when every live neighbor has declared no
  // interest; one unknown neighbor keeps the dense-mode default.
  auto ifit = ifaces_.find(iface);
  if (ifit == ifaces_.end() || ifit->second.neighbors.empty()) return false;
  for (const auto& [nbr, ch] : ifit->second.neighbors) {
    auto dit = d.declared.find(nbr);
    if (dit == d.declared.end() || dit->second) return false;
  }
  return true;
}

std::vector<Address> HpimDmRouter::neighbors(IfaceId iface) const {
  std::vector<Address> out;
  auto it = ifaces_.find(iface);
  if (it != ifaces_.end()) {
    for (const auto& [addr, ch] : it->second.neighbors) out.push_back(addr);
  }
  return out;
}

bool HpimDmRouter::has_neighbors(IfaceId iface) const {
  auto it = ifaces_.find(iface);
  return it != ifaces_.end() && !it->second.neighbors.empty();
}

// ---------------------------------------------------------------------------
// Entry management

HpimDmRouter::SgEntry* HpimDmRouter::find_entry(const Address& src,
                                                const Address& group) {
  auto it = entries_.find(SgKey{src, group});
  return it == entries_.end() ? nullptr : it->second.get();
}

const HpimDmRouter::SgEntry* HpimDmRouter::find_entry(
    const Address& src, const Address& group) const {
  auto it = entries_.find(SgKey{src, group});
  return it == entries_.end() ? nullptr : it->second.get();
}

HpimDmRouter::SgEntry* HpimDmRouter::create_entry(const Address& src,
                                                  const Address& group) {
  const Route* route = stack_->rib().lookup(src);
  if (route == nullptr) {
    count("hpimdm/rpf-fail");
    return nullptr;
  }
  auto e = std::make_unique<SgEntry>();
  e->source = src;
  e->group = group;
  e->incoming = route->out_iface;
  e->rpf_neighbor = route->next_hop;  // unspecified when source is on-link
  e->rpf_metric = route->metric;
  e->assert_winner_pref = config_.metric_preference;
  e->assert_winner_metric = route->metric;
  SgKey key{src, group};
  e->entry_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, key] { delete_entry(key); }, stack_->node().domain());
  e->entry_timer->arm(config_.data_timeout);
  // Dense-mode default: every enabled interface except the incoming one is
  // a potential oif until its neighbors declare otherwise.
  for (const auto& [iface, st] : ifaces_) {
    if (iface == e->incoming) continue;
    e->downstream.emplace(iface, std::make_unique<Downstream>());
  }
  SgEntry* raw = e.get();
  entries_.emplace(key, std::move(e));
  count("hpimdm/sg-created");
  trace_event("sg-created", [&] {
    return "src=" + src.str() + " group=" + group.str() + " iif=" +
           std::to_string(raw->incoming);
  });
  return raw;
}

void HpimDmRouter::delete_entry(const SgKey& key) {
  invalidate_mfc(key);  // before erase: the cached state pointer dies here
  if (entries_.erase(key) > 0) {
    count("hpimdm/sg-expired");
    trace_event("sg-expired", [&] {
      return "src=" + key.source.str() + " group=" + key.group.str();
    });
  }
}

HpimDmRouter::Downstream& HpimDmRouter::downstream(SgEntry& e, IfaceId iface) {
  auto it = e.downstream.find(iface);
  if (it == e.downstream.end()) {
    it = e.downstream.emplace(iface, std::make_unique<Downstream>()).first;
    // A freshly materialized record can join the oif set (dense-mode
    // default: forwarding while its neighbors are unknown).
    invalidate_mfc(e);
  }
  return *it->second;
}

bool HpimDmRouter::oif_active(const SgEntry& e, IfaceId iface,
                              const Downstream& d) const {
  if (iface == e.incoming) return false;
  if (d.assert_loser) return false;
  auto lit = leaf_groups_.find(iface);
  if (lit != leaf_groups_.end() && lit->second.contains(e.group)) return true;
  // A neighbor that never declared is unknown and keeps the interface
  // forwarding; positively uninterested neighbors do not.
  auto ifit = ifaces_.find(iface);
  if (ifit == ifaces_.end()) return false;
  for (const auto& [nbr, ch] : ifit->second.neighbors) {
    auto dit = d.declared.find(nbr);
    if (dit == d.declared.end() || dit->second) return true;
  }
  return false;
}

std::vector<IfaceId> HpimDmRouter::oiflist(const SgEntry& e) const {
  std::vector<IfaceId> out;
  for (const auto& [iface, d] : e.downstream) {
    if (oif_active(e, iface, *d)) out.push_back(iface);
  }
  return out;
}

bool HpimDmRouter::in_oiflist(const SgEntry& e, IfaceId iface) const {
  auto it = e.downstream.find(iface);
  return it != e.downstream.end() && oif_active(e, iface, *it->second);
}

bool HpimDmRouter::wants_traffic(const SgEntry& e) const {
  if (is_local_receiver(e.group)) return true;
  for (const auto& [iface, d] : e.downstream) {
    if (oif_active(e, iface, *d)) return true;
  }
  return false;
}

void HpimDmRouter::recompute_interest(SgEntry& e) {
  if (e.rpf_neighbor.is_unspecified()) return;  // we are the first hop
  recompute_interest(e, wants_traffic(e));
}

void HpimDmRouter::recompute_interest(SgEntry& e, bool wants) {
  if (e.rpf_neighbor.is_unspecified()) return;  // we are the first hop
  if (e.my_interest.has_value() && *e.my_interest == wants) return;
  send_interest(e, wants);
}

void HpimDmRouter::apply_interest(const Address& from, IfaceId iface,
                                  const Address& src, const Address& group,
                                  bool interested) {
  SgEntry* e = find_entry(src, group);
  if (e == nullptr) {
    e = create_entry(src, group);
    if (e == nullptr) return;
  }
  if (iface == e->incoming) return;  // upstream neighbors have no say here
  Downstream& d = downstream(*e, iface);
  auto [it, fresh] = d.declared.try_emplace(from, interested);
  if (!fresh) {
    if (it->second == interested) return;
    it->second = interested;
  }
  invalidate_mfc(*e);
  trace_event("interest-recorded", [&] {
    return "src=" + src.str() + " group=" + group.str() + " nbr=" +
           from.str() + " interested=" + (interested ? "1" : "0");
  });
  recompute_interest(*e);
}

// ---------------------------------------------------------------------------
// MFC layer

FlowKey HpimDmRouter::flow_key(const Address& src, const Address& group) {
  return FlowKey{{src.high64(), src.low64(), group.high64(), group.low64()}};
}

Mifi HpimDmRouter::mif_of(IfaceId iface) {
  Mifi m = mifs_.lookup(iface);
  if (m != kNoMif) return m;
  m = mifs_.add(iface);
  // Insertion keeps the table sorted by IfaceId, renumbering later
  // interfaces: every cached bitmap is now in the wrong basis, and the
  // per-mifi counter cells point at the wrong interface's counters.
  mfc_.invalidate_all();
  rebuild_mfc_cells();
  return m;
}

void HpimDmRouter::rebuild_mfc_cells() {
  c_mfc_shard_hit_.clear();
  c_mfc_shard_miss_.clear();
  auto& reg = stack_->network().counters();
  for (Mifi m = 0; m < mifs_.size(); ++m) {
    const std::string suffix = ".if" + std::to_string(mifs_.iface(m));
    c_mfc_shard_hit_.push_back(reg.cell("hpimdm/mfc-hit" + suffix));
    c_mfc_shard_miss_.push_back(reg.cell("hpimdm/mfc-miss" + suffix));
  }
}

MfcEntry* HpimDmRouter::refill_mfc(SgEntry& e) {
  // Two passes: registering an interface can renumber the mif table (and
  // flush the cache), so register everything before building the bitmap.
  // The RPF interface is registered too — it selects the cache sub-table
  // the fast path will probe on arrival.
  for (const auto& [iface, d] : e.downstream) mif_of(iface);
  mif_of(e.incoming);
  IfSet set;
  std::uint16_t n = 0;
  for (const auto& [iface, d] : e.downstream) {
    if (!oif_active(e, iface, *d)) continue;
    set.set(mifs_.lookup(iface));
    ++n;
  }
  bool local = is_local_receiver(e.group);
  if (n == 0 && !local) {
    // Not cacheable: this path re-declares no-interest upstream and must
    // keep seeing every datagram.
    invalidate_mfc(e);
    return nullptr;
  }
  MfcEntry& m = mfc_.insert(flow_key(e.source, e.group),
                            mifs_.lookup(e.incoming));
  m.iif = e.incoming;
  m.oif_count = n;
  m.local_receiver = local;
  m.oifs = set;
  m.state = &e;
  return &m;
}

void HpimDmRouter::invalidate_mfc(const SgEntry& e) {
  mfc_.invalidate(flow_key(e.source, e.group));
}

void HpimDmRouter::invalidate_mfc(const SgKey& key) {
  mfc_.invalidate(flow_key(key.source, key.group));
}

// ---------------------------------------------------------------------------
// Data plane

void HpimDmRouter::on_multicast_data(const ParsedDatagram& d,
                                     const Packet& pkt, IfaceId iface) {
  const Address& src = d.hdr.src;
  const Address& group = d.hdr.dst;
  if (src.is_multicast() || src.is_unspecified()) return;

  if (config_.mfc) {
    // The arrival interface's mifi selects the cache sub-table, so
    // wrong-interface arrivals miss and fall through to the slow path,
    // same as before sharding.
    const Mifi rpf = mifs_.lookup(iface);
    MfcEntry* m = rpf != kNoMif ? mfc_.find(flow_key(src, group), rpf)
                                : nullptr;
    if (m != nullptr && iface == m->iif) {
      c_mfc_hit_.add();
      c_mfc_shard_hit_[rpf].add();
      auto* entry = static_cast<SgEntry*>(m->state);
      entry->entry_timer->arm(config_.data_timeout);
      c_data_fwd_.add(stack_->forward_out_many(pkt, m->oifs, mifs_));
      return;
    }
    c_mfc_miss_.add();
    if (rpf != kNoMif) c_mfc_shard_miss_[rpf].add();
  }

  SgEntry* e = find_entry(src, group);
  if (e == nullptr) {
    e = create_entry(src, group);
    if (e == nullptr) return;
  }

  if (iface != e->incoming) {
    // RPF re-anchor: the unicast route toward S can move (mobility, link
    // repair, or a post-restart RIB rebuild). If the RIB now names this
    // interface, follow it — and re-declare interest to the new upstream.
    const Route* route = stack_->rib().lookup(src);
    if (route != nullptr && route->out_iface == iface) {
      e->incoming = route->out_iface;
      e->rpf_neighbor = route->next_hop;
      e->rpf_metric = route->metric;
      e->assert_winner_pref = config_.metric_preference;
      e->assert_winner_metric = route->metric;
      e->assert_winner_addr = Address();
      e->downstream.erase(iface);
      e->my_interest.reset();
      invalidate_mfc(*e);  // cached iif/bitmap are both stale now
      count("hpimdm/rpf-updated");
      recompute_interest(*e);
    }
  }

  if (iface != e->incoming) {
    if (in_oiflist(*e, iface)) {
      // Duplicate forwarder on this LAN: resolve by Assert, as in PIM-DM.
      send_assert(*e, iface);
    } else {
      // Non-RPF bystander: declare no-interest to the forwarders on this
      // link so they drop it from their oif lists. Reliable, so once acked
      // this self-quenches; the rate limit only spaces the initial burst.
      send_uninterest_nonrpf(*e, iface);
    }
    count("hpimdm/rx-wrong-iface");
    return;
  }

  e->entry_timer->arm(config_.data_timeout);
  if (config_.mfc) {
    if (MfcEntry* m = refill_mfc(*e)) {
      c_data_fwd_.add(stack_->forward_out_many(pkt, m->oifs, mifs_));
      return;
    }
    // Nothing downstream: tell the upstream once, reliably.
    recompute_interest(*e, false);
    return;
  }
  std::vector<IfaceId> oifs = oiflist(*e);
  if (oifs.empty() && !is_local_receiver(e->group)) {
    // Nothing downstream: tell the upstream once, reliably.
    recompute_interest(*e, false);
    return;
  }
  c_data_fwd_.add(stack_->forward_out_many(pkt, oifs));
}

// ---------------------------------------------------------------------------
// Control plane

void HpimDmRouter::on_hpim_message(const ParsedDatagram& d, IfaceId iface) {
  if (!hpim_enabled(iface)) return;
  auto reject = [&](const ParseFailure& f) {
    count("hpimdm/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "hpimdm", f);
  };
  ParseResult<HpimHeader> hdr =
      try_parse_hpim(d.payload, d.hdr.src, d.hdr.dst);
  if (!hdr.ok()) {
    reject(hdr.failure());
    return;
  }
  HpimHeader h = std::move(hdr).value();
  switch (h.type) {
    case HpimType::kHello: {
      ParseResult<HpimHello> m = HpimHello::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_hello(m.value(), d.hdr.src, iface);
      break;
    }
    case HpimType::kAck: {
      ParseResult<HpimAck> m = HpimAck::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_ack(m.value(), d.hdr.src, iface);
      break;
    }
    case HpimType::kInterest: {
      ParseResult<HpimInterest> m = HpimInterest::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_interest(m.value(), d.hdr.src, iface);
      break;
    }
    case HpimType::kSync: {
      ParseResult<HpimSync> m = HpimSync::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_sync(m.value(), d.hdr.src, iface);
      break;
    }
    case HpimType::kAssert: {
      ParseResult<HpimAssert> m = HpimAssert::try_parse(h.body);
      if (!m.ok()) return reject(m.failure());
      on_assert(m.value(), d.hdr.src, iface);
      break;
    }
  }
}

void HpimDmRouter::on_hello(const HpimHello& hello, const Address& from,
                            IfaceId iface) {
  auto it = ifaces_.at(iface).neighbors.find(from);
  if (it == ifaces_.at(iface).neighbors.end()) {
    ensure_channel(iface, from, hello.holdtime, hello.generation_id,
                   /*generation_known=*/true);
    return;
  }
  NeighborChannel& ch = it->second;
  ch.liveness->arm(Time::sec(hello.holdtime));
  if (!ch.generation_known) {
    // Channel adopted from a sequenced message before any hello: this is
    // the first word on the neighbor's incarnation, not a reboot.
    ch.generation_id = hello.generation_id;
    ch.generation_known = true;
    return;
  }
  if (ch.generation_id != hello.generation_id) {
    // The neighbor rebooted: its receive expectations are gone. Reset the
    // channel's sequence machinery but KEEP every interest it declared —
    // that is hard state and keeps forwarding alive through the outage —
    // then re-sync our own interest toward it.
    ch.generation_id = hello.generation_id;
    ch.tx_seq = 0;
    ch.rx_expected = 1;
    ch.pending.clear();
    ch.retx_timer->cancel();
    ch.rto = config_.ack_timeout;
    count("hpimdm/neighbor-resync");
    trace_event("neighbor-resync", [&] {
      return "iface=" + std::to_string(iface) + " nbr=" + from.str();
    });
    send_hello(iface);  // triggered: the rebooted side relearns us fast
    schedule_sync(iface, from);
  }
}

HpimDmRouter::NeighborChannel* HpimDmRouter::channel(IfaceId iface,
                                                     const Address& nbr) {
  auto it = ifaces_.find(iface);
  if (it == ifaces_.end()) return nullptr;
  auto nit = it->second.neighbors.find(nbr);
  return nit == it->second.neighbors.end() ? nullptr : &nit->second;
}

HpimDmRouter::NeighborChannel& HpimDmRouter::ensure_channel(
    IfaceId iface, const Address& nbr, std::uint16_t holdtime_s,
    std::uint32_t generation_id, bool generation_known) {
  IfaceState& st = ifaces_.at(iface);
  auto it = st.neighbors.find(nbr);
  if (it != st.neighbors.end()) return it->second;

  NeighborChannel ch;
  ch.generation_id = generation_id;
  ch.generation_known = generation_known;
  ch.rto = config_.ack_timeout;
  ch.liveness = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface, nbr] {
        neighbor_failed(iface, nbr, "holdtime expired");
      }, stack_->node().domain());
  ch.liveness->arm(Time::sec(holdtime_s));
  ch.retx_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface, nbr] {
        NeighborChannel* c = channel(iface, nbr);
        if (c == nullptr || c->pending.empty()) return;
        for (const Pending& p : c->pending) {
          emit(iface, p.type, p.body, nbr);
        }
        count("hpimdm/retx", c->pending.size());
        Time next = c->rto + c->rto;  // exponential backoff
        c->rto = next < config_.ack_timeout_max ? next
                                                : config_.ack_timeout_max;
        c->retx_timer->arm(c->rto);
      }, stack_->node().domain());
  ch.sync_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface, nbr] {
        NeighborChannel* c = channel(iface, nbr);
        if (c != nullptr && c->sync_pending) send_sync(iface, nbr);
      }, stack_->node().domain());
  it = st.neighbors.emplace(nbr, std::move(ch)).first;
  mfc_.invalidate_all();  // a new (unknown-interest) neighbor turns
                          // interfaces forwarding
  count("hpimdm/neighbor-up");
  trace_event("neighbor-up", [&] {
    return "iface=" + std::to_string(iface) + " nbr=" + nbr.str();
  });
  // Triggered hello so the new neighbor learns us (and our generation id)
  // quickly, then reliably sync the tree state routed through it.
  send_hello(iface);
  schedule_sync(iface, nbr);
  return it->second;
}

void HpimDmRouter::neighbor_failed(IfaceId iface, const Address& nbr,
                                   const char* why) {
  auto it = ifaces_.find(iface);
  if (it == ifaces_.end()) return;
  if (it->second.neighbors.erase(nbr) == 0) return;
  mfc_.invalidate_all();  // the neighbor set feeds every entry's oif set
                          // on this iface
  count("hpimdm/neighbor-expired");
  trace_event("neighbor-expired", [&, why] {
    return "iface=" + std::to_string(iface) + " nbr=" + nbr.str() + " (" +
           why + ")";
  });
  // Graceful degradation: drop everything the neighbor declared and let
  // interest recomputation settle the trees without it.
  for (auto& [key, e] : entries_) {
    auto dit = e->downstream.find(iface);
    if (dit != e->downstream.end() &&
        dit->second->declared.erase(nbr) > 0) {
      recompute_interest(*e);
    }
    if (e->incoming == iface && e->rpf_neighbor == nbr) {
      // Upstream gone: undeclared until a replacement (assert winner or
      // RPF re-anchor) shows up.
      e->my_interest.reset();
    }
  }
}

bool HpimDmRouter::accept_sequenced(IfaceId iface, const Address& from,
                                    std::uint32_t seq) {
  // A sequenced message from a neighbor we have no channel for (its hello
  // lost or not yet seen): adopt it, it is evidently alive. The next hello
  // corrects holdtime and generation id.
  NeighborChannel& ch = ensure_channel(iface, from, config_.hello_holdtime_s,
                                       0, /*generation_known=*/false);
  if (seq == ch.rx_expected) {
    ++ch.rx_expected;
    send_ack(iface, from, seq);
    return true;
  }
  // Duplicate or gap: re-ack the last in-order point so the sender's
  // cumulative ack state converges; go-back-N retransmission fills gaps.
  send_ack(iface, from, ch.rx_expected - 1);
  count(seq < ch.rx_expected ? "hpimdm/rx-duplicate" : "hpimdm/rx-gap");
  return false;
}

void HpimDmRouter::on_ack(const HpimAck& ack, const Address& from,
                          IfaceId iface) {
  NeighborChannel* ch = channel(iface, from);
  if (ch == nullptr) return;
  bool progressed = false;
  while (!ch->pending.empty() && ch->pending.front().seq <= ack.seq) {
    ch->pending.pop_front();
    progressed = true;
  }
  if (!progressed) return;
  ch->rto = config_.ack_timeout;
  if (ch->pending.empty()) {
    ch->retx_timer->cancel();
  } else {
    ch->retx_timer->arm(ch->rto);
  }
}

void HpimDmRouter::on_interest(const HpimInterest& m, const Address& from,
                               IfaceId iface) {
  if (!accept_sequenced(iface, from, m.seq)) return;
  count("hpimdm/rx/interest");
  apply_interest(from, iface, m.source, m.group, m.interested);
}

void HpimDmRouter::on_sync(const HpimSync& m, const Address& from,
                           IfaceId iface) {
  if (!accept_sequenced(iface, from, m.seq)) return;
  count("hpimdm/rx/sync");
  for (const HpimSync::Entry& se : m.entries) {
    apply_interest(from, iface, se.source, se.group, se.interested);
  }
}

void HpimDmRouter::on_assert(const HpimAssert& a, const Address& from,
                             IfaceId iface) {
  SgEntry* e = find_entry(a.source, a.group);
  if (e == nullptr) return;
  count("hpimdm/rx-assert");

  if (iface == e->incoming) {
    // Downstream observer: the assert winner becomes our RPF neighbor —
    // and our interest must be re-declared to the new upstream.
    bool better;
    if (a.metric_preference != e->assert_winner_pref) {
      better = a.metric_preference < e->assert_winner_pref;
    } else if (a.metric != e->assert_winner_metric) {
      better = a.metric < e->assert_winner_metric;
    } else {
      better = e->assert_winner_addr.is_unspecified() ||
               from > e->assert_winner_addr;
    }
    if (better && e->rpf_neighbor != from) {
      e->assert_winner_pref = a.metric_preference;
      e->assert_winner_metric = a.metric;
      e->assert_winner_addr = from;
      e->rpf_neighbor = from;
      e->my_interest.reset();
      recompute_interest(*e);
    }
    return;
  }

  auto it = e->downstream.find(iface);
  if (it == e->downstream.end()) return;
  Downstream& d = *it->second;
  if (d.assert_loser) return;
  Address my_addr = source_address(iface);
  bool they_win;
  if (a.metric_preference != config_.metric_preference) {
    they_win = a.metric_preference < config_.metric_preference;
  } else if (a.metric != e->rpf_metric) {
    they_win = a.metric < e->rpf_metric;
  } else {
    they_win = from > my_addr;
  }
  if (they_win) {
    d.assert_loser = true;
    invalidate_mfc(*e);
    count("hpimdm/assert-lost");
    trace_event("assert-lost", [&] {
      return "src=" + e->source.str() + " group=" + e->group.str() +
             " iface=" + std::to_string(iface) + " winner=" + from.str();
    });
    SgKey key{a.source, a.group};
    if (!d.assert_timer) {
      d.assert_timer = std::make_unique<Timer>(
          stack_->scheduler(), [this, key, iface] {
            SgEntry* en = find_entry(key.source, key.group);
            if (en == nullptr) return;
            auto dit = en->downstream.find(iface);
            if (dit != en->downstream.end()) {
              dit->second->assert_loser = false;
              invalidate_mfc(key);
            }
          }, stack_->node().domain());
    }
    d.assert_timer->arm(config_.assert_time);
    recompute_interest(*e);
  } else {
    send_assert(*e, iface);  // defend our role as forwarder
  }
}

void HpimDmRouter::on_mld_change(IfaceId iface, const Address& group,
                                 bool present) {
  if (present) {
    leaf_groups_[iface].insert(group);
  } else {
    auto it = leaf_groups_.find(iface);
    if (it != leaf_groups_.end()) {
      it->second.erase(group);
      if (it->second.empty()) leaf_groups_.erase(it);
    }
  }
  for (auto& [key, e] : entries_) {
    if (key.group != group) continue;
    if (present && iface != e->incoming) downstream(*e, iface);
    invalidate_mfc(*e);
    recompute_interest(*e);
  }
}

void HpimDmRouter::reconcile_leaf_groups() {
  std::vector<std::pair<IfaceId, Address>> stale;
  for (const auto& [iface, groups] : leaf_groups_) {
    for (const Address& g : groups) {
      if (!mld_->has_listeners(iface, g)) stale.emplace_back(iface, g);
    }
  }
  for (const auto& [iface, g] : stale) {
    count("hpimdm/leaf-reconciled");
    on_mld_change(iface, g, false);
  }
}

// ---------------------------------------------------------------------------
// Reliable channel senders

std::uint32_t HpimDmRouter::next_seq(IfaceId iface, const Address& nbr) {
  NeighborChannel* ch = channel(iface, nbr);
  if (ch == nullptr) throw LogicError("next_seq without a channel");
  return ++ch->tx_seq;
}

void HpimDmRouter::send_reliable(IfaceId iface, const Address& nbr,
                                 HpimType type, Bytes body_with_seq,
                                 std::uint32_t seq) {
  NeighborChannel* ch = channel(iface, nbr);
  if (ch == nullptr) return;
  if (ch->pending.size() >= config_.max_retransmit_queue) {
    // The neighbor is not acking: bounded queue, same consequence as a
    // holdtime expiry.
    count("hpimdm/channel-overflow");
    neighbor_failed(iface, nbr, "retransmit queue overflow");
    return;
  }
  ch->pending.push_back(Pending{seq, type, body_with_seq});
  emit(iface, type, body_with_seq, nbr);
  if (!ch->retx_timer->running()) {
    ch->rto = config_.ack_timeout;
    ch->retx_timer->arm(ch->rto);
  }
}

HpimDmRouter::NeighborChannel* HpimDmRouter::upstream_channel(
    SgEntry& e, Address* nbr_out) {
  auto it = ifaces_.find(e.incoming);
  if (it == ifaces_.end()) return nullptr;
  auto nit = it->second.neighbors.find(e.rpf_neighbor);
  if (nit != it->second.neighbors.end()) {
    if (nbr_out != nullptr) *nbr_out = nit->first;
    return &nit->second;
  }
  // The RPF neighbor's hello has not arrived (or names another of its
  // addresses): with exactly one neighbor on the incoming interface it can
  // only be that one. Otherwise stay silent — sync-on-neighbor-up heals
  // the miss once the channel exists.
  if (it->second.neighbors.size() == 1) {
    auto& only = *it->second.neighbors.begin();
    if (nbr_out != nullptr) *nbr_out = only.first;
    return &only.second;
  }
  return nullptr;
}

void HpimDmRouter::schedule_sync(IfaceId iface, const Address& nbr) {
  NeighborChannel* ch = channel(iface, nbr);
  if (ch == nullptr) return;
  ch->sync_pending = true;
  Time since = ch->last_sync_tx.is_never() ? Time::never()
                                           : now() - ch->last_sync_tx;
  if (since.is_never() || since >= config_.sync_min_interval) {
    send_sync(iface, nbr);
  } else if (!ch->sync_timer->running()) {
    // Storm damping: coalesce triggers into one deferred transmission.
    ch->sync_timer->arm(config_.sync_min_interval - since);
    count("hpimdm/sync-damped");
  }
}

void HpimDmRouter::send_sync(IfaceId iface, const Address& nbr) {
  NeighborChannel* ch = channel(iface, nbr);
  if (ch == nullptr) return;
  ch->sync_pending = false;
  ch->sync_timer->cancel();
  ch->last_sync_tx = now();

  // Everything we route through this neighbor, with our current interest.
  // Interest toward a non-RPF neighbor is deliberately NOT synced: it
  // would keep a sibling's oif alive and duplicate traffic.
  std::vector<HpimSync::Entry> entries;
  for (auto& [key, e] : entries_) {
    if (e->incoming != iface) continue;
    Address up;
    if (upstream_channel(*e, &up) != channel(iface, nbr) || up != nbr) {
      continue;
    }
    bool wants = wants_traffic(*e);
    e->my_interest = wants;
    entries.push_back(HpimSync::Entry{e->source, e->group, wants});
  }
  if (entries.empty()) return;

  for (std::size_t off = 0; off < entries.size();
       off += config_.sync_fragment_entries) {
    HpimSync frag;
    std::size_t end =
        std::min(off + config_.sync_fragment_entries, entries.size());
    frag.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(off),
                        entries.begin() + static_cast<std::ptrdiff_t>(end));
    frag.more = end < entries.size();
    frag.seq = next_seq(iface, nbr);
    send_reliable(iface, nbr, HpimType::kSync, frag.body(), frag.seq);
    count("hpimdm/tx/sync");
  }
  trace_event("tx-sync", [&] {
    return "iface=" + std::to_string(iface) + " nbr=" + nbr.str() +
           " entries=" + std::to_string(entries.size());
  });
}

// ---------------------------------------------------------------------------
// Emission

Address HpimDmRouter::source_address(IfaceId iface) const {
  return stack_->has_global_address(iface) ? stack_->global_address(iface)
                                           : stack_->link_local_address(iface);
}

void HpimDmRouter::emit(IfaceId iface, HpimType type, BytesView body,
                        const Address& dst) {
  DatagramSpec spec;
  spec.src = source_address(iface);
  spec.dst = dst;
  spec.hop_limit = 1;
  spec.protocol = proto::kPim;
  spec.payload = serialize_hpim(type, body, spec.src, spec.dst);
  std::size_t wire = Ipv6Header::kSize + spec.payload.size();
  stack_->send_on_iface(iface, spec);
  stack_->network().counters().add("hpimdm/tx-bytes", wire);
}

void HpimDmRouter::send_hello(IfaceId iface) {
  HpimHello hello;
  hello.holdtime = config_.hello_holdtime_s;
  hello.generation_id = generation_id_;
  emit(iface, HpimType::kHello, hello.body(), Address::all_pim_routers());
  count("hpimdm/tx/hello");
  trace_event("tx-hello", [&] { return "iface=" + std::to_string(iface); });
}

void HpimDmRouter::send_ack(IfaceId iface, const Address& to,
                            std::uint32_t seq) {
  HpimAck ack;
  ack.seq = seq;
  emit(iface, HpimType::kAck, ack.body(), to);
  count("hpimdm/tx/ack");
}

void HpimDmRouter::send_interest(SgEntry& e, bool interested) {
  Address nbr;
  NeighborChannel* ch = upstream_channel(e, &nbr);
  if (ch == nullptr) return;  // healed by sync once the channel exists
  HpimInterest m;
  m.source = e.source;
  m.group = e.group;
  m.interested = interested;
  m.seq = ++ch->tx_seq;
  e.my_interest = interested;
  send_reliable(e.incoming, nbr, HpimType::kInterest, m.body(), m.seq);
  count("hpimdm/tx/interest");
  trace_event("tx-interest", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() +
           " upstream=" + nbr.str() + " interested=" +
           (interested ? "1" : "0");
  });
}

void HpimDmRouter::send_uninterest_nonrpf(SgEntry& e, IfaceId iface) {
  Downstream& d = downstream(e, iface);
  if (d.assert_loser) return;  // the elected forwarder serves this LAN
  if (!d.last_nonrpf_tx.is_never() &&
      now() - d.last_nonrpf_tx < config_.assert_rate_limit) {
    return;
  }
  d.last_nonrpf_tx = now();
  for (const Address& nbr : neighbors(iface)) {
    NeighborChannel* ch = channel(iface, nbr);
    if (ch == nullptr) continue;
    HpimInterest m;
    m.source = e.source;
    m.group = e.group;
    m.interested = false;
    m.seq = ++ch->tx_seq;
    send_reliable(iface, nbr, HpimType::kInterest, m.body(), m.seq);
    count("hpimdm/tx/nonrpf-uninterest");
  }
}

void HpimDmRouter::send_assert(SgEntry& e, IfaceId iface) {
  Downstream& d = downstream(e, iface);
  if (!d.last_assert_tx.is_never() &&
      now() - d.last_assert_tx < config_.assert_rate_limit) {
    return;
  }
  d.last_assert_tx = now();
  HpimAssert a;
  a.group = e.group;
  a.source = e.source;
  a.metric_preference = config_.metric_preference;
  a.metric = e.rpf_metric;
  emit(iface, HpimType::kAssert, a.body(), Address::all_pim_routers());
  count("hpimdm/tx/assert");
  trace_event("tx-assert", [&] {
    return "src=" + e.source.str() + " group=" + e.group.str() + " iface=" +
           std::to_string(iface);
  });
}

std::uint32_t HpimDmRouter::fresh_generation_id() {
  // Drawn from the per-network deterministic RNG: same seed, same ids,
  // byte-identical traces.
  return static_cast<std::uint32_t>(stack_->network().rng().next_u64());
}

void HpimDmRouter::count(std::string_view name, std::uint64_t delta) {
  stack_->network().counters().add(name, delta);
}

}  // namespace mip6
