#include "hpimdm/messages.hpp"

#include "ipv6/header.hpp"
#include "ipv6/icmpv6.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kHpimVersion = 3;
/// Encoded-unicast (18) + encoded-group (20) + interested flag (1).
constexpr std::size_t kSyncEntrySize = 39;

}  // namespace

Bytes serialize_hpim(HpimType type, BytesView body, const Address& src,
                     const Address& dst) {
  BufferWriter w(4 + body.size());
  w.u8(static_cast<std::uint8_t>((kHpimVersion << 4) |
                                 static_cast<std::uint8_t>(type)));
  w.u8(0);   // reserved
  w.u16(0);  // checksum placeholder
  w.raw(body);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kPim, w.bytes());
  w.patch_u16(2, ck);
  return std::move(w).take();
}

ParseResult<HpimHeader> try_parse_hpim(BytesView payload, const Address& src,
                                       const Address& dst) {
  if (payload.size() < 4) {
    return ParseFailure{ParseReason::kTruncated, "HPIM message too short"};
  }
  if (pseudo_header_checksum(src, dst,
                             static_cast<std::uint32_t>(payload.size()),
                             proto::kPim, payload) != 0) {
    return ParseFailure{ParseReason::kBadChecksum, "HPIM checksum"};
  }
  WireCursor c(payload);
  std::uint8_t vt = c.u8();
  if ((vt >> 4) != kHpimVersion) {
    return ParseFailure{ParseReason::kBadType, "HPIM version is not 3"};
  }
  std::uint8_t type = vt & 0x0f;
  if (type > static_cast<std::uint8_t>(HpimType::kAssert)) {
    return ParseFailure{ParseReason::kBadType, "unknown HPIM message type"};
  }
  c.skip(3);  // reserved + checksum
  HpimHeader h;
  h.type = static_cast<HpimType>(type);
  h.body = c.raw(c.remaining());
  return h;
}

// --- Hello -------------------------------------------------------------------

Bytes HpimHello::body() const {
  BufferWriter w(6);
  w.u16(holdtime);
  w.u32(generation_id);
  return std::move(w).take();
}

ParseResult<HpimHello> HpimHello::try_parse(BytesView body) {
  WireCursor c(body);
  HpimHello h;
  h.holdtime = c.u16();
  h.generation_id = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "HPIM Hello body"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after HPIM Hello"};
  }
  return h;
}

// --- Ack ---------------------------------------------------------------------

Bytes HpimAck::body() const {
  BufferWriter w(4);
  w.u32(seq);
  return std::move(w).take();
}

ParseResult<HpimAck> HpimAck::try_parse(BytesView body) {
  WireCursor c(body);
  HpimAck a;
  a.seq = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "HPIM Ack body"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after HPIM Ack"};
  }
  return a;
}

// --- Interest ----------------------------------------------------------------

Bytes HpimInterest::body() const {
  BufferWriter w(48);
  w.u32(seq);
  write_encoded_unicast(w, source);
  write_encoded_group(w, group);
  w.u8(interested ? 1 : 0);
  return std::move(w).take();
}

ParseResult<HpimInterest> HpimInterest::try_parse(BytesView body) {
  WireCursor c(body);
  HpimInterest m;
  m.seq = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "HPIM Interest sequence"};
  }
  ParseResult<Address> source = try_read_encoded_unicast(c);
  if (!source.ok()) return source.failure();
  m.source = source.value();
  ParseResult<Address> group = try_read_encoded_group(c);
  if (!group.ok()) return group.failure();
  m.group = group.value();
  std::uint8_t flag = c.u8();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "HPIM Interest flag"};
  }
  if (flag > 1) {
    return ParseFailure{ParseReason::kSemantic,
                        "HPIM Interest flag is not 0 or 1"};
  }
  m.interested = flag == 1;
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after HPIM Interest"};
  }
  return m;
}

// --- Sync --------------------------------------------------------------------

Bytes HpimSync::body() const {
  BufferWriter w(8 + entries.size() * kSyncEntrySize);
  w.u32(seq);
  w.u8(more ? 1 : 0);
  if (entries.size() > bound::kMaxHpimSyncEntries) {
    throw LogicError("too many entries in one HPIM Sync fragment");
  }
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const Entry& e : entries) {
    write_encoded_unicast(w, e.source);
    write_encoded_group(w, e.group);
    w.u8(e.interested ? 1 : 0);
  }
  return std::move(w).take();
}

ParseResult<HpimSync> HpimSync::try_parse(BytesView body) {
  WireCursor c(body);
  HpimSync m;
  m.seq = c.u32();
  std::uint8_t more = c.u8();
  std::uint16_t count = c.u16();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "HPIM Sync header"};
  }
  if (more > 1) {
    return ParseFailure{ParseReason::kSemantic,
                        "HPIM Sync more-flag is not 0 or 1"};
  }
  m.more = more == 1;
  if (count > bound::kMaxHpimSyncEntries) {
    return ParseFailure{ParseReason::kBoundExceeded, "HPIM Sync entries"};
  }
  // O(1) count-lie rejection before any per-entry work.
  if (std::size_t{count} * kSyncEntrySize > c.remaining()) {
    return ParseFailure{ParseReason::kTruncated,
                        "HPIM Sync entry count exceeds body"};
  }
  for (std::uint16_t i = 0; i < count; ++i) {
    Entry e;
    ParseResult<Address> source = try_read_encoded_unicast(c);
    if (!source.ok()) return source.failure();
    e.source = source.value();
    ParseResult<Address> group = try_read_encoded_group(c);
    if (!group.ok()) return group.failure();
    e.group = group.value();
    std::uint8_t flag = c.u8();
    if (c.failed()) {
      return ParseFailure{ParseReason::kTruncated, "HPIM Sync entry flag"};
    }
    if (flag > 1) {
      return ParseFailure{ParseReason::kSemantic,
                          "HPIM Sync entry flag is not 0 or 1"};
    }
    e.interested = flag == 1;
    m.entries.push_back(e);
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after HPIM Sync"};
  }
  return m;
}

// --- Assert ------------------------------------------------------------------

Bytes HpimAssert::body() const {
  BufferWriter w(48);
  write_encoded_group(w, group);
  write_encoded_unicast(w, source);
  w.u32(metric_preference & 0x7fffffff);
  w.u32(metric);
  return std::move(w).take();
}

ParseResult<HpimAssert> HpimAssert::try_parse(BytesView body) {
  WireCursor c(body);
  HpimAssert a;
  ParseResult<Address> group = try_read_encoded_group(c);
  if (!group.ok()) return group.failure();
  a.group = group.value();
  ParseResult<Address> source = try_read_encoded_unicast(c);
  if (!source.ok()) return source.failure();
  a.source = source.value();
  a.metric_preference = c.u32() & 0x7fffffff;
  a.metric = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "HPIM Assert body"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after HPIM Assert"};
  }
  return a;
}

}  // namespace mip6
