// Tunables for the HPIM-DM hard-state engine. Timer defaults mirror the
// PIM-DM ones where a knob has a direct counterpart (hello, data timeout,
// assert) so A/B runs differ by mechanism, not by calendar.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace mip6 {

struct HpimDmConfig {
  // --- Neighbor discovery ------------------------------------------------
  Time hello_period = Time::sec(30);
  std::uint16_t hello_holdtime_s = 105;

  // --- (S,G) entry lifetime ----------------------------------------------
  /// Entry for a silent source expires (same calendar as PIM-DM).
  Time data_timeout = Time::sec(210);

  // --- Reliable control channel -------------------------------------------
  /// Initial retransmit timeout for unacked sequenced messages.
  Time ack_timeout = Time::ms(200);
  /// Exponential backoff cap for the retransmit timeout.
  Time ack_timeout_max = Time::sec(5);
  /// Unacked sequenced messages queued per neighbor before the channel is
  /// declared failed (same consequence as a holdtime expiry).
  std::size_t max_retransmit_queue = 64;

  // --- Tree-state sync ------------------------------------------------------
  /// Storm damping: at most one Sync transmission per neighbor per this
  /// interval; triggers inside the window coalesce into one deferred send.
  Time sync_min_interval = Time::sec(1);
  /// (S,G) entries per Sync fragment (wire bound is
  /// bound::kMaxHpimSyncEntries).
  std::size_t sync_fragment_entries = 100;

  // --- Assert (same election as PIM-DM) ------------------------------------
  Time assert_time = Time::sec(180);
  /// Minimum spacing of asserts / not-interested declarations triggered by
  /// data arrival on the wrong interface.
  Time assert_rate_limit = Time::sec(3);
  std::uint32_t metric_preference = 101;

  // --- Crash recovery -------------------------------------------------------
  /// After a restart the surviving leaf-group state is reconciled against
  /// live MLD state once this grace period elapses: groups MLD no longer
  /// reports are dropped. Long enough for listeners to re-report.
  Time leaf_reconcile_delay = Time::sec(25);

  // --- Data-plane MFC ------------------------------------------------------
  /// Bitmap MFC entries + (S,G) flow cache on the data path (see
  /// docs/PERF.md). Off = the pre-cache per-packet oiflist walk, kept for
  /// A/B regression runs; every same-seed trace must be byte-identical
  /// either way.
  bool mfc = true;
  /// Fail-fast width budget for the dense interface index table (clamped
  /// to IfSet::kBits): enabling more interfaces than this throws.
  std::size_t mfc_max_ifaces = 256;
};

}  // namespace mip6
