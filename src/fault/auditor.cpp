#include "fault/auditor.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace mip6 {

namespace {

std::string sg_str(const DenseModeEngine::SgKey& key) {
  return "(" + key.source.str() + "," + key.group.str() + ")";
}

}  // namespace

std::string AuditReport::str() const {
  std::string out = "audit @" + at.str() + ": ";
  if (ok()) return out + "OK";
  out += std::to_string(violations.size()) + " violation(s)\n";
  for (const auto& v : violations) {
    out += "  [" + v.check + "] " + v.detail + "\n";
  }
  return out;
}

Auditor::Auditor(World& world, AuditorConfig config)
    : world_(&world), config_(config), last_sample_(world.now()) {}

AuditReport Auditor::run() {
  AuditReport r;
  r.at = world_->now();
  if (config_.check_oif_iif) check_oif_iif(r);
  if (config_.check_forwarding_loops) check_forwarding_loops(r);
  if (config_.check_binding_coherence) check_binding_coherence(r);
  if (config_.quiesced) {
    if (config_.check_duplicate_forwarders) check_duplicate_forwarders(r);
    if (config_.check_prune_coherence) check_prune_coherence(r);
    if (config_.check_mld_coverage) check_mld_coverage(r);
  }
  r.windows = windows_;
  world_->net().counters().add("audit/runs");
  world_->net().counters().add("audit/violations", r.violations.size());
  return r;
}

void Auditor::sample_windows() {
  Time now = world_->now();
  double dt = (now - last_sample_).to_seconds();
  last_sample_ = now;
  if (dt <= 0.0) return;
  for (const auto& key : all_sg_keys()) {
    if (group_blackholed(key)) windows_[key].blackhole_s += dt;
    if (group_duplicating(key)) windows_[key].duplication_s += dt;
  }
}

void Auditor::arm_window_sampler(Time period) {
  // The callback is fixed at Timer construction, so a new period means a
  // fresh timer.
  sampler_ = std::make_unique<Timer>(world_->scheduler(), [this, period] {
    sample_windows();
    sampler_->arm(period);
  }, kWorldDomain);
  sampler_->arm(period);
}

const Link* Auditor::link_of(const Node& node, IfaceId iface) {
  const Interface& i = node.iface_by_id(iface);
  return i.attached() ? i.link() : nullptr;
}

bool Auditor::is_router_address_on(const NodeRuntime& router,
                                   const Link& link, const Address& addr) {
  for (const auto& iface : router.node->interfaces()) {
    if (!iface->attached() || iface->link() != &link) continue;
    if (router.stack->has_global_address(iface->id()) &&
        router.stack->global_address(iface->id()) == addr) {
      return true;
    }
    if (router.stack->has_link_local(iface->id()) &&
        router.stack->link_local_address(iface->id()) == addr) {
      return true;
    }
  }
  return false;
}

std::vector<DenseModeEngine::SgKey> Auditor::all_sg_keys() const {
  std::set<DenseModeEngine::SgKey> keys;
  for (const auto& r : world_->routers()) {
    if (!r->node->up() || r->dense == nullptr) continue;
    for (const auto& key : r->dense->sg_keys()) keys.insert(key);
  }
  return {keys.begin(), keys.end()};
}

bool Auditor::group_blackholed(const DenseModeEngine::SgKey& key) const {
  // Which links can (S,G) traffic currently reach? Seed with the first-hop
  // links (an up router holding the entry with no RPF neighbor is directly
  // attached to the source), then propagate through each up router's
  // incoming -> outgoing interfaces until a fixpoint.
  std::set<LinkId> reachable;
  for (const auto& env : world_->routers()) {
    if (!env->node->up() || env->dense == nullptr ||
        !env->dense->has_entry(key.source, key.group)) {
      continue;
    }
    if (!env->dense->rpf_neighbor_of(key.source, key.group).is_unspecified()) {
      continue;
    }
    const Link* l =
        link_of(*env->node, env->dense->incoming(key.source, key.group));
    if (l != nullptr && l->up()) reachable.insert(l->id());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& env : world_->routers()) {
      if (!env->node->up() || env->dense == nullptr ||
          !env->dense->has_entry(key.source, key.group)) {
        continue;
      }
      const Link* in =
          link_of(*env->node, env->dense->incoming(key.source, key.group));
      if (in == nullptr || !in->up() || !reachable.contains(in->id())) {
        continue;
      }
      for (IfaceId oif : env->dense->outgoing(key.source, key.group)) {
        const Link* l = link_of(*env->node, oif);
        if (l != nullptr && l->up() && reachable.insert(l->id()).second) {
          changed = true;
        }
      }
    }
  }
  // A subscribed-and-joined, up, at-home host on an up link outside the
  // reachable set is starved. (Away hosts receive through the HA tunnel,
  // which link reachability does not model — skipped.)
  for (const auto& h : world_->hosts()) {
    if (!h->node->up() || h->mn->away_from_home()) continue;
    if (!h->mn->subscriptions().contains(key.group)) continue;
    IfaceId iface = h->iface();
    if (!h->mld_host->joined(iface, key.group)) continue;
    const Link* l = link_of(*h->node, iface);
    if (l == nullptr || !l->up()) continue;
    if (!reachable.contains(l->id())) return true;
  }
  return false;
}

bool Auditor::group_duplicating(const DenseModeEngine::SgKey& key) const {
  std::map<LinkId, int> forwarders;
  for (const auto& env : world_->routers()) {
    if (!env->node->up() || env->dense == nullptr ||
        !env->dense->has_entry(key.source, key.group)) {
      continue;
    }
    for (IfaceId oif : env->dense->outgoing(key.source, key.group)) {
      if (const Link* l = link_of(*env->node, oif)) {
        if (l->up() && ++forwarders[l->id()] > 1) return true;
      }
    }
  }
  return false;
}

void Auditor::check_oif_iif(AuditReport& r) const {
  for (const auto& env : world_->routers()) {
    if (!env->node->up() || env->dense == nullptr) continue;
    for (const auto& key : env->dense->sg_keys()) {
      IfaceId iif = env->dense->incoming(key.source, key.group);
      auto oifs = env->dense->outgoing(key.source, key.group);
      if (std::find(oifs.begin(), oifs.end(), iif) != oifs.end()) {
        r.violations.push_back(
            {"oif-contains-iif",
             env->node->name() + " " + sg_str(key) + " forwards onto its own "
             "incoming interface " + std::to_string(iif)});
      }
    }
  }
}

void Auditor::check_forwarding_loops(AuditReport& r) const {
  // Per (S,G): router X reaches router Y if X forwards onto a link Y's
  // incoming interface sits on. A cycle in that graph means a datagram
  // could circulate until its hop limit expires.
  const auto& routers = world_->routers();
  for (const auto& key : all_sg_keys()) {
    std::vector<std::set<LinkId>> out_links(routers.size());
    std::vector<const Link*> in_link(routers.size(), nullptr);
    for (std::size_t i = 0; i < routers.size(); ++i) {
      const NodeRuntime& env = *routers[i];
      if (!env.node->up() || env.dense == nullptr ||
          !env.dense->has_entry(key.source, key.group)) {
        continue;
      }
      in_link[i] =
          link_of(*env.node, env.dense->incoming(key.source, key.group));
      for (IfaceId oif : env.dense->outgoing(key.source, key.group)) {
        if (const Link* l = link_of(*env.node, oif)) {
          if (l->up()) out_links[i].insert(l->id());
        }
      }
    }
    std::vector<std::vector<std::size_t>> adj(routers.size());
    for (std::size_t i = 0; i < routers.size(); ++i) {
      for (std::size_t j = 0; j < routers.size(); ++j) {
        if (i == j || in_link[j] == nullptr) continue;
        if (out_links[i].contains(in_link[j]->id())) adj[i].push_back(j);
      }
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<int> color(routers.size(), 0);
    auto dfs = [&](auto&& self, std::size_t v) -> bool {
      color[v] = 1;
      for (std::size_t w : adj[v]) {
        if (color[w] == 1) return true;
        if (color[w] == 0 && self(self, w)) return true;
      }
      color[v] = 2;
      return false;
    };
    for (std::size_t i = 0; i < routers.size(); ++i) {
      if (color[i] == 0 && dfs(dfs, i)) {
        r.violations.push_back(
            {"forwarding-loop",
             sg_str(key) + " oif sets form a cycle through " +
                 routers[i]->node->name()});
        break;
      }
    }
  }
}

void Auditor::check_binding_coherence(AuditReport& r) const {
  for (const auto& env : world_->routers()) {
    if (!env->node->up() || env->ha == nullptr) continue;
    for (const BindingCache::Entry* e : env->ha->cache().entries()) {
      for (const auto& h : world_->hosts()) {
        if (!(h->mn->home_address() == e->home)) continue;
        if (h->node->up() && h->mn->binding_acked() &&
            h->mn->away_from_home() && !(e->care_of == h->mn->care_of())) {
          r.violations.push_back(
              {"binding-care-of-mismatch",
               env->node->name() + " binds " + e->home.str() + " -> " +
                   e->care_of.str() + " but " + h->node->name() +
                   " is at " + h->mn->care_of().str()});
        }
      }
    }
  }
  if (!config_.quiesced) return;
  // Inverse direction: an MN that believes it is registered must actually
  // have a binding at its home agent. (Quiesced-only: an HA outage leaves
  // the MN convinced until its next refresh — that window is the expected
  // transient the recovery metrics measure.)
  for (const auto& h : world_->hosts()) {
    if (!h->node->up() || !h->mn->binding_acked() ||
        !h->mn->away_from_home()) {
      continue;
    }
    bool found = false;
    for (const auto& env : world_->routers()) {
      if (env->ha != nullptr &&
          env->ha->cache().find(h->mn->home_address()) != nullptr) {
        found = true;
        break;
      }
    }
    if (!found) {
      r.violations.push_back(
          {"binding-missing",
           h->node->name() + " believes it is registered for " +
               h->mn->home_address().str() + " but no home agent has a "
               "binding"});
    }
  }
}

void Auditor::check_duplicate_forwarders(AuditReport& r) const {
  for (const auto& key : all_sg_keys()) {
    std::map<LinkId, std::vector<std::string>> forwarders;
    for (const auto& env : world_->routers()) {
      if (!env->node->up() || env->dense == nullptr ||
          !env->dense->has_entry(key.source, key.group)) {
        continue;
      }
      for (IfaceId oif : env->dense->outgoing(key.source, key.group)) {
        if (const Link* l = link_of(*env->node, oif)) {
          forwarders[l->id()].push_back(env->node->name());
        }
      }
    }
    for (const auto& [link_id, names] : forwarders) {
      if (names.size() <= 1) continue;
      std::string who = names[0];
      for (std::size_t i = 1; i < names.size(); ++i) who += "+" + names[i];
      r.violations.push_back(
          {"duplicate-forwarders",
           sg_str(key) + " on " + world_->net().link(link_id).name() +
               " forwarded by " + who + " (assert unresolved)"});
    }
  }
}

void Auditor::check_prune_coherence(AuditReport& r) const {
  for (const auto& up : world_->routers()) {
    if (!up->node->up() || up->dense == nullptr) continue;
    for (const auto& key : up->dense->sg_keys()) {
      for (IfaceId oif_iface : up->dense->enabled_ifaces()) {
        if (!up->dense->downstream_pruned(key.source, key.group, oif_iface)) {
          continue;
        }
        const Link* l = link_of(*up->node, oif_iface);
        if (l == nullptr || !l->up()) continue;
        for (const auto& down : world_->routers()) {
          if (down.get() == up.get() || !down->node->up() ||
              down->dense == nullptr ||
              !down->dense->has_entry(key.source, key.group)) {
            continue;
          }
          const Link* in = link_of(
              *down->node, down->dense->incoming(key.source, key.group));
          if (in != l) continue;
          Address rpf = down->dense->rpf_neighbor_of(key.source, key.group);
          if (!is_router_address_on(*up, *l, rpf)) continue;
          bool wants = !down->dense->outgoing(key.source, key.group).empty() ||
                       down->dense->is_local_receiver(key.group);
          if (wants && !down->dense->upstream_pruned(key.source, key.group)) {
            r.violations.push_back(
                {"prune-starvation",
                 down->node->name() + " wants " + sg_str(key) + " via " +
                     up->node->name() + " on " + l->name() +
                     " but that link is pruned"});
          }
        }
      }
    }
  }
}

void Auditor::check_mld_coverage(AuditReport& r) const {
  for (const auto& h : world_->hosts()) {
    if (!h->node->up()) continue;
    IfaceId iface = h->iface();
    const Link* l = link_of(*h->node, iface);
    if (l == nullptr || !l->up()) continue;
    for (const Address& g : h->mn->subscriptions()) {
      if (!h->mld_host->joined(iface, g)) continue;  // strategy reports elsewhere
      bool covered = false;
      for (const auto& env : world_->routers()) {
        if (!env->node->up() || env->mld == nullptr) continue;
        for (const auto& ri : env->node->interfaces()) {
          if (ri->attached() && ri->link() == l &&
              env->mld->has_listeners(ri->id(), g)) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
      if (!covered) {
        r.violations.push_back(
            {"mld-listener-missing",
             h->node->name() + " is joined to " + g.str() + " on " +
                 l->name() + " but no up router tracks a listener there"});
      }
    }
  }
}

}  // namespace mip6
