#include "fault/chaos.hpp"

#include "util/errors.hpp"

namespace mip6 {

ChaosEngine::ChaosEngine(World& world, FaultPlan plan, ChaosConfig config)
    : world_(&world), plan_(std::move(plan)), config_(config) {}

void ChaosEngine::arm() {
  if (armed_) throw LogicError("ChaosEngine::arm called twice");
  armed_ = true;
  for (const FaultEvent& e : plan_.sorted()) {
    world_->scheduler().schedule_at(e.at, [this, e] { apply(e); });
  }
}

void ChaosEngine::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kLinkDown:
      world_->net().link_by_name(e.target).set_up(false);
      recompute_if_oracle();
      break;
    case FaultKind::kLinkUp:
      world_->net().link_by_name(e.target).set_up(true);
      recompute_if_oracle();
      break;
    case FaultKind::kLinkDegrade:
      world_->net().link_by_name(e.target).set_impairment(e.impairment);
      break;
    case FaultKind::kLinkRestore:
      world_->net().link_by_name(e.target).clear_impairments();
      break;
    case FaultKind::kRouterCrash:
      apply_crash(world_->router_by_name(e.target));
      break;
    case FaultKind::kRouterRestart:
      apply_restart(world_->router_by_name(e.target));
      break;
    case FaultKind::kHostCrash:
      apply_crash(world_->host_by_name(e.target));
      break;
    case FaultKind::kHostRestart:
      apply_restart(world_->host_by_name(e.target));
      break;
    case FaultKind::kHaOutage: {
      HomeAgent* ha = world_->router_by_name(e.target).find<HomeAgent>();
      if (ha == nullptr) {
        throw LogicError("ha-outage targets " + e.target +
                         " which has no home-agent module");
      }
      ha->set_enabled(false);
      ha->clear_bindings();
      break;
    }
    case FaultKind::kHaRestore: {
      HomeAgent* ha = world_->router_by_name(e.target).find<HomeAgent>();
      if (ha == nullptr) {
        throw LogicError("ha-restore targets " + e.target +
                         " which has no home-agent module");
      }
      ha->set_enabled(true);
      break;
    }
  }
  executed_.push_back(e.str());
  applied_.push_back(e);
  count(std::string("chaos/") + fault_kind_name(e.kind));
  if (config_.audit_after_each_event) {
    Auditor auditor(*world_, config_.audit);
    audits_.push_back(auditor.run());
  }
}

void ChaosEngine::apply_crash(NodeRuntime& rt) {
  if (!rt.node->up()) return;
  // Power-off: interfaces detach (a crash sends nothing — any goodbye a
  // module would emit is dropped at the detached interface), then every
  // module's on_crash() wipes its soft state in reverse construction
  // order. Application-level subscriptions survive (the app still wants
  // its groups at restart).
  rt.node->crash();
  if (rt.is_router()) recompute_if_oracle();
}

void ChaosEngine::apply_restart(NodeRuntime& rt) {
  if (rt.node->up()) return;
  // Cold boot: interfaces re-attach, then every module's on_restart() runs
  // in construction order. Routers re-enable their protocols on every
  // configured attached interface and learn everything again (Hellos,
  // queries, flood-and-prune, RIPng updates); a host's re-attachment fires
  // the link-change handler — movement detection, SLAAC care-of address,
  // Binding Update, strategy re-join — the ordinary "arrived on a link"
  // path, which is exactly what a rebooted mobile node does.
  rt.node->restart();
  if (rt.is_router()) recompute_if_oracle();
}

void ChaosEngine::recompute_if_oracle() {
  if (!config_.recompute_oracle) return;
  if (world_->config().unicast != UnicastRouting::kGlobalOracle) return;
  world_->routing().recompute();
}

std::string ChaosEngine::trace_str() const {
  std::string out;
  for (const std::string& line : executed_) out += line + "\n";
  return out;
}

bool ChaosEngine::all_audits_ok() const {
  for (const AuditReport& r : audits_) {
    if (!r.ok()) return false;
  }
  return true;
}

std::vector<ChaosEngine::Recovery> ChaosEngine::recoveries(
    const GroupReceiverApp& app) const {
  std::vector<Recovery> out;
  for (const FaultEvent& e : applied_) {
    if (!is_disruption(e.kind)) continue;
    out.push_back({e, app.first_rx_at_or_after(e.at)});
  }
  return out;
}

void ChaosEngine::record_recoveries(const GroupReceiverApp& app) {
  for (const Recovery& rec : recoveries(app)) {
    if (auto rt = rec.recovery_time()) {
      count("chaos/recovered");
      world_->net().counters().add("chaos/recovery-total-ns",
                                   static_cast<std::uint64_t>(rt->nanos()));
    } else {
      count("chaos/unrecovered");
    }
  }
}

void ChaosEngine::count(std::string_view name) {
  world_->net().counters().add(name);
}

}  // namespace mip6
