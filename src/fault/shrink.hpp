// Delta-debugging minimizer for failing FaultPlans.
//
// Given a plan that provokes a violation (as judged by a caller-supplied
// predicate — typically "re-run the world and check the same violation
// class fires"), shrink_plan() first runs ddmin over whole fault/repair
// *units* (a disruption plus the repair that closes it travels as one —
// dropping a crash but keeping its restart would change semantics, not
// shrink them), then coarsens the survivors event by event: snap times to
// a round granularity, shorten outages toward a minimum, simplify degrade
// impairments. Every candidate is accepted only if the predicate still
// fails, so the result is a locally minimal reproducer. The predicate
// budget is bounded; shrinking is best-effort within it.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "fault/plan.hpp"
#include "sim/time.hpp"

namespace mip6 {

/// A disruption and the repair that closes it (matched by target and
/// repair_kind_of; earliest unclaimed repair wins). Unpaired events —
/// a repair with no prior disruption, a disruption left open — travel as
/// single-event units so ddmin can still drop them.
struct FaultUnit {
  FaultEvent fault;
  std::optional<FaultEvent> repair;
};

/// Groups a plan's events into units. Order follows the disruptions'
/// activation order; pure repairs sort by their own time.
std::vector<FaultUnit> pair_units(const FaultPlan& plan);

/// Flattens units back into a plan (fault before its repair, units in
/// order).
FaultPlan units_to_plan(const std::vector<FaultUnit>& units);

struct ShrinkConfig {
  /// Hard cap on predicate evaluations (world re-runs). ddmin gets first
  /// claim; whatever remains goes to coarsening.
  std::size_t max_runs = 200;
  /// Times are snapped to multiples of this during coarsening.
  Time granularity = Time::ms(500);
  /// Outages are never shortened below this.
  Time min_outage = Time::ms(500);
};

struct ShrinkStats {
  std::size_t runs = 0;            // predicate evaluations spent
  std::size_t initial_units = 0;
  std::size_t final_units = 0;
  std::size_t coarsened_events = 0;  // events whose time/duration changed
};

/// Minimizes `plan` under `still_fails`. The predicate must be true for
/// the input plan (LogicError otherwise — shrinking a passing plan is a
/// caller bug, and ddmin's invariant needs a failing baseline).
FaultPlan shrink_plan(const FaultPlan& plan,
                      const std::function<bool(const FaultPlan&)>& still_fails,
                      const ShrinkConfig& cfg = {},
                      ShrinkStats* stats = nullptr);

}  // namespace mip6
