// Chaos engine: applies a FaultPlan to a live World.
//
// arm() schedules every plan event on the world's scheduler; as simulation
// time passes, links go down and come back, nodes crash (protocol soft
// state — PIM (S,G) entries, MLD listeners, binding caches, RIBs — is
// wiped) and restart (re-autoconfiguration and real protocol
// re-convergence), and home agents black-hole. After each disruptive event
// the engine can run the Auditor (structural checks by default, which are
// safe mid-transient) and it appends the event to an executed trace — the
// artifact the reproducibility contract is stated over: two runs of the
// same seeded (world, plan) produce identical traces, identical audit
// outcomes and identical recovery metrics.
//
// Recovery time per disruptive event — fault to first re-delivered packet
// at a receiver app — is computed by recoveries() and recorded under
// "chaos/" counters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/traffic.hpp"
#include "core/world.hpp"
#include "fault/auditor.hpp"
#include "fault/plan.hpp"

namespace mip6 {

struct ChaosConfig {
  /// Run the auditor right after each event is applied.
  bool audit_after_each_event = true;
  /// Auditor settings for those runs; keep `quiesced` false here — the
  /// instant after a crash is the definition of a transient.
  AuditorConfig audit;
  /// Recompute the GlobalRouting oracle after topology-changing events
  /// (ignored under UnicastRouting::kRipng, which converges on its own).
  bool recompute_oracle = true;
};

class ChaosEngine {
 public:
  ChaosEngine(World& world, FaultPlan plan, ChaosConfig config = {});

  /// Schedules every plan event on the world's scheduler. Call once,
  /// before (or during) the run.
  void arm();

  /// Applies one event immediately (also used internally by arm()).
  void apply(const FaultEvent& e);

  /// Executed events in application order, one string each.
  const std::vector<std::string>& executed() const { return executed_; }
  std::string trace_str() const;

  /// Audit reports collected after each event (empty if auditing is off).
  const std::vector<AuditReport>& audit_reports() const { return audits_; }
  bool all_audits_ok() const;

  const FaultPlan& plan() const { return plan_; }

  /// Recovery measurement: for each *disruptive* event (the fault half of
  /// a pair, not the repair half), the first packet the app received at or
  /// after the fault time. `recovered_at` empty = never recovered within
  /// the run.
  struct Recovery {
    FaultEvent event;
    std::optional<Time> recovered_at;
    std::optional<Time> recovery_time() const {
      if (!recovered_at) return std::nullopt;
      return *recovered_at - event.at;
    }
  };
  std::vector<Recovery> recoveries(const GroupReceiverApp& app) const;
  /// Records recoveries() into counters: "chaos/recovered",
  /// "chaos/unrecovered" and "chaos/recovery-total-ns".
  void record_recoveries(const GroupReceiverApp& app);

 private:
  /// Generic over the node's module set: Node::crash()/restart() drive the
  /// ProtocolModule lifecycle hooks; no engine is named here.
  void apply_crash(NodeRuntime& rt);
  void apply_restart(NodeRuntime& rt);
  void recompute_if_oracle();
  void count(std::string_view name);

  World* world_;
  FaultPlan plan_;
  ChaosConfig config_;
  std::vector<std::string> executed_;
  std::vector<FaultEvent> applied_;
  std::vector<AuditReport> audits_;
  bool armed_ = false;
};

}  // namespace mip6
