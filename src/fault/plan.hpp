// Deterministic fault schedules.
//
// A FaultPlan is an ordered list of fault events — link outages, link
// degradation windows (loss / corruption / jitter), node crashes and
// restarts, home-agent outages — with absolute activation times. Plans are
// plain data: building one has no side effects; the ChaosEngine applies it
// against a World. Plans can be hand-written through the builder interface
// or generated from a seed (FaultPlan::random), and a given (spec, seed)
// pair always yields the same plan, so chaos runs are bit-for-bit
// reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.hpp"
#include "sim/time.hpp"
#include "util/json.hpp"

namespace mip6 {

enum class FaultKind {
  kLinkDown,       // link carries nothing until kLinkUp
  kLinkUp,
  kLinkDegrade,    // apply a LinkImpairment (loss/corrupt/jitter)
  kLinkRestore,    // clear all impairments
  kRouterCrash,    // wipe protocol soft state + detach interfaces
  kRouterRestart,
  kHostCrash,
  kHostRestart,
  kHaOutage,       // home agent ignores traffic, bindings lost
  kHaRestore,
};

const char* fault_kind_name(FaultKind kind);
/// Inverse of fault_kind_name; nullopt for unknown names.
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// True for the fault half of a fault/repair pair (crash, down, degrade,
/// outage) — the events recovery is measured from.
bool is_disruption(FaultKind kind);

/// The repair kind that closes a disruption (link-down -> link-up, ...).
/// Calling it with a repair kind is a LogicError.
FaultKind repair_kind_of(FaultKind disruption);

struct FaultEvent {
  Time at;
  FaultKind kind = FaultKind::kLinkDown;
  /// Link name for link faults, node name for crashes, router name for HA
  /// outages.
  std::string target;
  /// Only meaningful for kLinkDegrade.
  LinkImpairment impairment;

  /// e.g. "12.000s link-down link3" — the unit of the reproducibility
  /// contract (same seed => identical event traces).
  std::string str() const;

  /// JSON object for the reproducer corpus. Times carry an authoritative
  /// nanosecond field ("at_ns") next to the human-readable "at_s", so a
  /// round trip is bit-exact (double seconds may be one ns off).
  Json to_json() const;
  /// Inverse of to_json; also accepts the ScenarioSpec fault schema
  /// (at_s / loss / corrupt / jitter_ms). Throws ParseError naming the
  /// offending field.
  static FaultEvent from_json(const Json& v);
};

/// Parameters for FaultPlan::random(). Targets are drawn only from the
/// names listed here, so a spec can scope chaos to part of a topology.
struct RandomPlanSpec {
  Time start = Time::sec(5);
  Time end = Time::sec(60);
  /// Number of disruptions; each contributes a fault and its paired
  /// recovery event (down+up, crash+restart, degrade+restore).
  int disruptions = 4;
  Time min_outage = Time::sec(1);
  Time max_outage = Time::sec(10);
  std::vector<std::string> links;
  std::vector<std::string> routers;
  std::vector<std::string> hosts;
  /// Routers whose home agent may be taken out.
  std::vector<std::string> home_agents;
  /// Impairment used for degradation windows on `links`.
  LinkImpairment degrade{0.2, 0.05, Time::ms(5)};
  bool allow_degrade = true;
};

class FaultPlan {
 public:
  // Builder sugar; all return *this for chaining.
  FaultPlan& link_down(Time at, const std::string& link);
  FaultPlan& link_up(Time at, const std::string& link);
  FaultPlan& degrade(Time at, const std::string& link, LinkImpairment imp);
  FaultPlan& restore(Time at, const std::string& link);
  FaultPlan& router_crash(Time at, const std::string& router);
  FaultPlan& router_restart(Time at, const std::string& router);
  FaultPlan& host_crash(Time at, const std::string& host);
  FaultPlan& host_restart(Time at, const std::string& host);
  FaultPlan& ha_outage(Time at, const std::string& router);
  FaultPlan& ha_restore(Time at, const std::string& router);
  FaultPlan& add(FaultEvent e);

  /// Events in activation order (stable for equal times: insertion order).
  std::vector<FaultEvent> sorted() const;
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// One line per event, activation order.
  std::string str() const;

  /// JSON array of events (insertion order); inverse is from_json.
  Json to_json() const;
  static FaultPlan from_json(const Json& arr);

  /// Seed-deterministic plan: `disruptions` fault/recovery pairs drawn
  /// uniformly over the spec's targets and the [start, end] window. Uses
  /// its own Rng(seed) — independent of any Network RNG, so the plan is a
  /// pure function of (spec, seed).
  ///
  /// Overlap semantics: no two disruption windows on the same *target name*
  /// ever overlap — a target whose previous fault/repair pair is still open
  /// is ineligible until its repair time (touching windows, repair.at ==
  /// next fault.at, are allowed). A draw that lands on a busy target is
  /// redrawn (bounded retries); when the window is so saturated that no
  /// placement can be found the disruption is dropped, so a plan may carry
  /// fewer than `disruptions` pairs rather than an overlapping schedule
  /// with undefined repair ordering (crash-of-crashed, down-of-down).
  static FaultPlan random(const RandomPlanSpec& spec, std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mip6
