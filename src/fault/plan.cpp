#include "fault/plan.hpp"

#include <algorithm>

#include "sim/rng.hpp"
#include "util/errors.hpp"

namespace mip6 {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kLinkRestore: return "link-restore";
    case FaultKind::kRouterCrash: return "router-crash";
    case FaultKind::kRouterRestart: return "router-restart";
    case FaultKind::kHostCrash: return "host-crash";
    case FaultKind::kHostRestart: return "host-restart";
    case FaultKind::kHaOutage: return "ha-outage";
    case FaultKind::kHaRestore: return "ha-restore";
  }
  return "?";
}

bool is_disruption(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkDegrade:
    case FaultKind::kRouterCrash:
    case FaultKind::kHostCrash:
    case FaultKind::kHaOutage:
      return true;
    case FaultKind::kLinkUp:
    case FaultKind::kLinkRestore:
    case FaultKind::kRouterRestart:
    case FaultKind::kHostRestart:
    case FaultKind::kHaRestore:
      return false;
  }
  return false;
}

std::string FaultEvent::str() const {
  std::string out = at.str() + " " + fault_kind_name(kind) + " " + target;
  if (kind == FaultKind::kLinkDegrade) {
    out += " loss=" + std::to_string(impairment.loss) +
           " corrupt=" + std::to_string(impairment.corrupt) +
           " jitter=" + impairment.jitter.str();
  }
  return out;
}

FaultPlan& FaultPlan::add(FaultEvent e) {
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_down(Time at, const std::string& link) {
  return add({at, FaultKind::kLinkDown, link, {}});
}
FaultPlan& FaultPlan::link_up(Time at, const std::string& link) {
  return add({at, FaultKind::kLinkUp, link, {}});
}
FaultPlan& FaultPlan::degrade(Time at, const std::string& link,
                              LinkImpairment imp) {
  return add({at, FaultKind::kLinkDegrade, link, imp});
}
FaultPlan& FaultPlan::restore(Time at, const std::string& link) {
  return add({at, FaultKind::kLinkRestore, link, {}});
}
FaultPlan& FaultPlan::router_crash(Time at, const std::string& router) {
  return add({at, FaultKind::kRouterCrash, router, {}});
}
FaultPlan& FaultPlan::router_restart(Time at, const std::string& router) {
  return add({at, FaultKind::kRouterRestart, router, {}});
}
FaultPlan& FaultPlan::host_crash(Time at, const std::string& host) {
  return add({at, FaultKind::kHostCrash, host, {}});
}
FaultPlan& FaultPlan::host_restart(Time at, const std::string& host) {
  return add({at, FaultKind::kHostRestart, host, {}});
}
FaultPlan& FaultPlan::ha_outage(Time at, const std::string& router) {
  return add({at, FaultKind::kHaOutage, router, {}});
}
FaultPlan& FaultPlan::ha_restore(Time at, const std::string& router) {
  return add({at, FaultKind::kHaRestore, router, {}});
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::string FaultPlan::str() const {
  std::string out;
  for (const FaultEvent& e : sorted()) out += e.str() + "\n";
  return out;
}

FaultPlan FaultPlan::random(const RandomPlanSpec& spec, std::uint64_t seed) {
  if (spec.links.empty() && spec.routers.empty() && spec.hosts.empty() &&
      spec.home_agents.empty()) {
    throw LogicError("FaultPlan::random: spec names no targets");
  }
  if (spec.end <= spec.start) {
    throw LogicError("FaultPlan::random: empty time window");
  }
  Rng rng(seed);
  FaultPlan plan;

  // A disruption draws a category first (uniform over *available*
  // categories), then a target within it — so adding hosts to the spec
  // never changes which link a given seed degrades.
  enum Category { kLink, kLinkDegradeCat, kRouter, kHost, kHa };
  std::vector<Category> cats;
  if (!spec.links.empty()) {
    cats.push_back(kLink);
    if (spec.allow_degrade) cats.push_back(kLinkDegradeCat);
  }
  if (!spec.routers.empty()) cats.push_back(kRouter);
  if (!spec.hosts.empty()) cats.push_back(kHost);
  if (!spec.home_agents.empty()) cats.push_back(kHa);

  auto pick = [&rng](const std::vector<std::string>& v) -> const std::string& {
    return v[rng.uniform_int(v.size())];
  };

  const std::int64_t window = spec.end.nanos() - spec.start.nanos();
  const std::int64_t outage_span =
      std::max<std::int64_t>(1, spec.max_outage.nanos() -
                                    spec.min_outage.nanos() + 1);
  for (int i = 0; i < spec.disruptions; ++i) {
    Category cat = cats[rng.uniform_int(cats.size())];
    Time begin = spec.start +
                 Time::ns(static_cast<std::int64_t>(
                     rng.uniform_int(static_cast<std::uint64_t>(window))));
    Time outage = spec.min_outage +
                  Time::ns(static_cast<std::int64_t>(rng.uniform_int(
                      static_cast<std::uint64_t>(outage_span))));
    Time finish = std::min(begin + outage, spec.end);
    switch (cat) {
      case kLink: {
        const std::string& t = pick(spec.links);
        plan.link_down(begin, t).link_up(finish, t);
        break;
      }
      case kLinkDegradeCat: {
        const std::string& t = pick(spec.links);
        plan.degrade(begin, t, spec.degrade).restore(finish, t);
        break;
      }
      case kRouter: {
        const std::string& t = pick(spec.routers);
        plan.router_crash(begin, t).router_restart(finish, t);
        break;
      }
      case kHost: {
        const std::string& t = pick(spec.hosts);
        plan.host_crash(begin, t).host_restart(finish, t);
        break;
      }
      case kHa: {
        const std::string& t = pick(spec.home_agents);
        plan.ha_outage(begin, t).ha_restore(finish, t);
        break;
      }
    }
  }
  return plan;
}

}  // namespace mip6
