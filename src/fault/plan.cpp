#include "fault/plan.hpp"

#include <algorithm>

#include "sim/rng.hpp"
#include "util/errors.hpp"

namespace mip6 {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kLinkRestore: return "link-restore";
    case FaultKind::kRouterCrash: return "router-crash";
    case FaultKind::kRouterRestart: return "router-restart";
    case FaultKind::kHostCrash: return "host-crash";
    case FaultKind::kHostRestart: return "host-restart";
    case FaultKind::kHaOutage: return "ha-outage";
    case FaultKind::kHaRestore: return "ha-restore";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kLinkDown,    FaultKind::kLinkUp,
      FaultKind::kLinkDegrade, FaultKind::kLinkRestore,
      FaultKind::kRouterCrash, FaultKind::kRouterRestart,
      FaultKind::kHostCrash,   FaultKind::kHostRestart,
      FaultKind::kHaOutage,    FaultKind::kHaRestore,
  };
  for (FaultKind k : kAll) {
    if (name == fault_kind_name(k)) return k;
  }
  return std::nullopt;
}

bool is_disruption(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkDegrade:
    case FaultKind::kRouterCrash:
    case FaultKind::kHostCrash:
    case FaultKind::kHaOutage:
      return true;
    case FaultKind::kLinkUp:
    case FaultKind::kLinkRestore:
    case FaultKind::kRouterRestart:
    case FaultKind::kHostRestart:
    case FaultKind::kHaRestore:
      return false;
  }
  return false;
}

FaultKind repair_kind_of(FaultKind disruption) {
  switch (disruption) {
    case FaultKind::kLinkDown: return FaultKind::kLinkUp;
    case FaultKind::kLinkDegrade: return FaultKind::kLinkRestore;
    case FaultKind::kRouterCrash: return FaultKind::kRouterRestart;
    case FaultKind::kHostCrash: return FaultKind::kHostRestart;
    case FaultKind::kHaOutage: return FaultKind::kHaRestore;
    case FaultKind::kLinkUp:
    case FaultKind::kLinkRestore:
    case FaultKind::kRouterRestart:
    case FaultKind::kHostRestart:
    case FaultKind::kHaRestore:
      break;
  }
  throw LogicError(std::string("repair_kind_of: ") +
                   fault_kind_name(disruption) + " is not a disruption");
}

std::string FaultEvent::str() const {
  std::string out = at.str() + " " + fault_kind_name(kind) + " " + target;
  if (kind == FaultKind::kLinkDegrade) {
    out += " loss=" + std::to_string(impairment.loss) +
           " corrupt=" + std::to_string(impairment.corrupt) +
           " jitter=" + impairment.jitter.str();
  }
  return out;
}

Json FaultEvent::to_json() const {
  Json o = Json::object();
  o.set("kind", fault_kind_name(kind));
  o.set("target", target);
  o.set("at_s", at.to_seconds());
  // Authoritative: Json numbers are doubles, exact for integers < 2^53 ns
  // (~104 days of sim time), so the ns round trip is lossless where at_s
  // alone could land one ns off.
  o.set("at_ns", at.nanos());
  if (kind == FaultKind::kLinkDegrade) {
    o.set("loss", impairment.loss);
    o.set("corrupt", impairment.corrupt);
    o.set("jitter_ms", static_cast<double>(impairment.jitter.nanos()) / 1e6);
  }
  return o;
}

FaultEvent FaultEvent::from_json(const Json& v) {
  if (!v.is_object()) throw ParseError("fault event: expected object");
  if (!v.contains("kind") || !v["kind"].is_string()) {
    throw ParseError("fault event: missing string field 'kind'");
  }
  FaultEvent e;
  const std::string& kind_name = v["kind"].as_string();
  auto kind = fault_kind_from_name(kind_name);
  if (!kind) throw ParseError("fault event: unknown kind '" + kind_name + "'");
  e.kind = *kind;
  if (!v.contains("target") || !v["target"].is_string()) {
    throw ParseError("fault event: missing string field 'target'");
  }
  e.target = v["target"].as_string();
  if (v.contains("at_ns")) {
    e.at = Time::ns(static_cast<std::int64_t>(v["at_ns"].as_number()));
  } else if (v.contains("at_s")) {
    e.at = Time::seconds(v["at_s"].as_number());
  } else {
    throw ParseError("fault event: missing field 'at_ns' (or 'at_s')");
  }
  if (e.kind == FaultKind::kLinkDegrade) {
    if (v.contains("loss")) e.impairment.loss = v["loss"].as_number();
    if (v.contains("corrupt")) e.impairment.corrupt = v["corrupt"].as_number();
    if (v.contains("jitter_ms")) {
      e.impairment.jitter =
          Time::ns(static_cast<std::int64_t>(v["jitter_ms"].as_number() * 1e6));
    }
  }
  return e;
}

FaultPlan& FaultPlan::add(FaultEvent e) {
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_down(Time at, const std::string& link) {
  return add({at, FaultKind::kLinkDown, link, {}});
}
FaultPlan& FaultPlan::link_up(Time at, const std::string& link) {
  return add({at, FaultKind::kLinkUp, link, {}});
}
FaultPlan& FaultPlan::degrade(Time at, const std::string& link,
                              LinkImpairment imp) {
  return add({at, FaultKind::kLinkDegrade, link, imp});
}
FaultPlan& FaultPlan::restore(Time at, const std::string& link) {
  return add({at, FaultKind::kLinkRestore, link, {}});
}
FaultPlan& FaultPlan::router_crash(Time at, const std::string& router) {
  return add({at, FaultKind::kRouterCrash, router, {}});
}
FaultPlan& FaultPlan::router_restart(Time at, const std::string& router) {
  return add({at, FaultKind::kRouterRestart, router, {}});
}
FaultPlan& FaultPlan::host_crash(Time at, const std::string& host) {
  return add({at, FaultKind::kHostCrash, host, {}});
}
FaultPlan& FaultPlan::host_restart(Time at, const std::string& host) {
  return add({at, FaultKind::kHostRestart, host, {}});
}
FaultPlan& FaultPlan::ha_outage(Time at, const std::string& router) {
  return add({at, FaultKind::kHaOutage, router, {}});
}
FaultPlan& FaultPlan::ha_restore(Time at, const std::string& router) {
  return add({at, FaultKind::kHaRestore, router, {}});
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::string FaultPlan::str() const {
  std::string out;
  for (const FaultEvent& e : sorted()) out += e.str() + "\n";
  return out;
}

Json FaultPlan::to_json() const {
  Json arr = Json::array();
  for (const FaultEvent& e : events_) arr.push_back(e.to_json());
  return arr;
}

FaultPlan FaultPlan::from_json(const Json& arr) {
  if (!arr.is_array()) throw ParseError("fault plan: expected array");
  FaultPlan plan;
  for (const Json& v : arr.items()) plan.add(FaultEvent::from_json(v));
  return plan;
}

FaultPlan FaultPlan::random(const RandomPlanSpec& spec, std::uint64_t seed) {
  if (spec.links.empty() && spec.routers.empty() && spec.hosts.empty() &&
      spec.home_agents.empty()) {
    throw LogicError("FaultPlan::random: spec names no targets");
  }
  if (spec.end <= spec.start) {
    throw LogicError("FaultPlan::random: empty time window");
  }
  Rng rng(seed);
  FaultPlan plan;

  // A disruption draws a category first (uniform over *available*
  // categories), then a target within it — so adding hosts to the spec
  // never changes which link a given seed degrades.
  enum Category { kLink, kLinkDegradeCat, kRouter, kHost, kHa };
  std::vector<Category> cats;
  if (!spec.links.empty()) {
    cats.push_back(kLink);
    if (spec.allow_degrade) cats.push_back(kLinkDegradeCat);
  }
  if (!spec.routers.empty()) cats.push_back(kRouter);
  if (!spec.hosts.empty()) cats.push_back(kHost);
  if (!spec.home_agents.empty()) cats.push_back(kHa);

  auto pick = [&rng](const std::vector<std::string>& v) -> const std::string& {
    return v[rng.uniform_int(v.size())];
  };

  const std::int64_t window = spec.end.nanos() - spec.start.nanos();
  const std::int64_t outage_span =
      std::max<std::int64_t>(1, spec.max_outage.nanos() -
                                    spec.min_outage.nanos() + 1);

  // Per-target disruption windows already placed, [begin, finish) ns. A new
  // window may touch an existing one (finish == other.begin) but never
  // overlap it — overlapping pairs on one target would interleave repairs
  // (crash-of-crashed, up-before-down) with undefined semantics.
  std::vector<std::pair<std::string, std::pair<std::int64_t, std::int64_t>>>
      placed;
  auto target_free = [&placed](const std::string& t, std::int64_t b,
                               std::int64_t f) {
    for (const auto& [name, w] : placed) {
      if (name == t && b < w.second && f > w.first) return false;
    }
    return true;
  };

  for (int i = 0; i < spec.disruptions; ++i) {
    // Bounded deterministic redraws: a draw landing inside an open window
    // on the same target is discarded and retried; a saturated schedule
    // drops the disruption rather than emit an overlapping pair.
    constexpr int kMaxRedraws = 64;
    for (int attempt = 0; attempt < kMaxRedraws; ++attempt) {
      Category cat = cats[rng.uniform_int(cats.size())];
      Time begin = spec.start +
                   Time::ns(static_cast<std::int64_t>(
                       rng.uniform_int(static_cast<std::uint64_t>(window))));
      Time outage = spec.min_outage +
                    Time::ns(static_cast<std::int64_t>(rng.uniform_int(
                        static_cast<std::uint64_t>(outage_span))));
      Time finish = std::min(begin + outage, spec.end);
      const std::string* t = nullptr;
      switch (cat) {
        case kLink:
        case kLinkDegradeCat: t = &pick(spec.links); break;
        case kRouter: t = &pick(spec.routers); break;
        case kHost: t = &pick(spec.hosts); break;
        case kHa: t = &pick(spec.home_agents); break;
      }
      if (!target_free(*t, begin.nanos(), finish.nanos())) continue;
      placed.push_back({*t, {begin.nanos(), finish.nanos()}});
      switch (cat) {
        case kLink: plan.link_down(begin, *t).link_up(finish, *t); break;
        case kLinkDegradeCat:
          plan.degrade(begin, *t, spec.degrade).restore(finish, *t);
          break;
        case kRouter:
          plan.router_crash(begin, *t).router_restart(finish, *t);
          break;
        case kHost:
          plan.host_crash(begin, *t).host_restart(finish, *t);
          break;
        case kHa: plan.ha_outage(begin, *t).ha_restore(finish, *t); break;
      }
      break;
    }
  }
  return plan;
}

}  // namespace mip6
