// Chaos search: seeded exploration of the fault-schedule space.
//
// The wire fuzzer (tests/fuzz) hunts decoder bugs; this module hunts
// *world-level* bugs — convergence failures, state leaks, starved
// receivers — by generating batches of randomized FaultPlans against a
// ScenarioSpec, running each world to a fixed horizon, and classifying the
// outcome with the invariant Auditor plus liveness watchdogs that compare
// the faulted world's end state against a fault-free oracle run:
//
//   audit                 any per-event or final quiesced Auditor violation
//   convergence-deadline  a blackhole/duplication window still growing
//                         `settle` seconds after the last repair
//   timer-leak            live scheduler events far above the oracle's
//   retx-backlog          HPIM-DM unacked control messages never drained
//   state-leak            more (S,G)/MFC/binding entries than the oracle
//                         after full repair and settle
//   never-recovered       a subscribed receiver that a disruption starved
//                         for the rest of the run
//
// Plan generation is biased toward the schedules hand-written tests miss:
// disruptions overlapping across targets, faults landing during another
// fault's recovery, and fault times coinciding with scripted mobility.
// Every failing plan is handed to the ddmin shrinker (fault/shrink.hpp)
// and emitted as a JSON reproducer replayable byte-exactly — the artifacts
// committed under tests/fault/corpus/. Everything here is a pure function
// of (spec, seed): same inputs, same plans, same traces, same verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fault/shrink.hpp"
#include "scenario/spec.hpp"
#include "sim/time.hpp"
#include "util/json.hpp"

namespace mip6 {

enum class ViolationClass {
  kAudit,
  kConvergenceDeadline,
  kTimerLeak,
  kRetxBacklog,
  kStateLeak,
  kNeverRecovered,
};

const char* violation_class_name(ViolationClass cls);
std::optional<ViolationClass> violation_class_from_name(std::string_view name);

struct ChaosViolation {
  ViolationClass cls;
  std::string detail;  // names the event/node/(S,G)/counter behind it
};

/// Watchdog thresholds for one chaos run.
struct ChaosRunOptions {
  /// Convergence budget: after the plan's last event the world gets this
  /// long to close every blackhole/duplication window, drain retransmit
  /// queues and shed leaked state. PIM-DM's MLD-relearn tail after a
  /// router restart is ~10 s with default timers, so keep this above that.
  Time settle = Time::sec(15);
  /// Window-metric sampling period (Auditor::arm_window_sampler).
  Time window_sample_period = Time::ms(250);
  /// Window growth after the deadline below this many seconds is forgiven
  /// (dense-mode re-floods cause sub-second duplication transients).
  double deadline_grace_s = 0.5;
  /// timer-leak fires when live events > oracle * factor + slack.
  double timer_leak_factor = 2.0;
  std::size_t timer_leak_slack = 64;
  /// retx-backlog fires when HPIM-DM unacked messages at the horizon
  /// exceed this.
  std::size_t retx_backlog_limit = 32;
  /// Run the Auditor's structural checks after each fault event.
  bool audit_each_event = true;
  /// Run a final quiesced audit at the horizon.
  bool final_quiesced_audit = true;
  /// Test-only bug injection: silently drop every plan event of this kind
  /// before arming (e.g. kLinkUp — the repair never happens), simulating a
  /// lost-repair defect so the shrinker acceptance test has a real
  /// violation to minimize.
  std::optional<FaultKind> skip_repair;
};

/// End-state of a fault-free run of (spec, seed) to the same horizon — the
/// baseline the leak watchdogs compare against.
struct WorldOracle {
  std::size_t live_events = 0;
  std::size_t sg_entries = 0;
  std::size_t mfc_entries = 0;
  std::size_t bindings = 0;
};

WorldOracle compute_world_oracle(const ScenarioSpec& spec, std::uint64_t seed,
                                 Time horizon);

/// The fixed horizon every run of (spec, settle) uses — fault-free oracle
/// included, so end-state comparisons are apples to apples.
Time chaos_horizon(const ScenarioSpec& spec, const ChaosRunOptions& opts);

struct ChaosRunResult {
  /// ChaosEngine executed trace, one line per applied event — the
  /// byte-exactness contract of corpus replay is over these lines.
  std::vector<std::string> trace;
  std::vector<ChaosViolation> violations;
  Time horizon;
  double delivered_total = 0.0;
  std::uint64_t executed_events = 0;

  bool violated() const { return !violations.empty(); }
  /// Sorted, deduplicated class names present in `violations`.
  std::vector<std::string> classes() const;
};

/// Runs `spec` with its fault plan replaced by `plan` and classifies the
/// outcome. `oracle` enables the leak watchdogs (pass null to skip them —
/// e.g. while shrinking, where re-deriving the oracle per candidate would
/// dominate the budget... it is computed once and reused instead).
ChaosRunResult run_fault_plan(const ScenarioSpec& spec, const FaultPlan& plan,
                              std::uint64_t seed,
                              const ChaosRunOptions& opts = {},
                              const WorldOracle* oracle = nullptr);

// --- Search ----------------------------------------------------------------

struct ChaosSearchConfig {
  /// Plans to explore. Each runs once per selected engine.
  std::size_t budget = 16;
  std::uint64_t seed = 1;
  int min_disruptions = 1;
  int max_disruptions = 4;
  Time earliest_fault = Time::sec(5);
  Time min_outage = Time::ms(500);
  Time max_outage = Time::sec(8);
  bool allow_degrade = true;
  /// Per-disruption probabilities of retiming toward interesting
  /// schedules (tried in this order; at most one applies per disruption).
  double mobility_bias = 0.3;  // start within ±2 s of a scripted move
  double recovery_bias = 0.3;  // start just after another pair's repair
  double overlap_bias = 0.3;   // start inside another pair's open window
  /// Also run every plan with the dense engine flipped (PIM-DM <-> HPIM-DM
  /// A/B) instead of only the spec's configured engine.
  bool both_engines = false;
  ChaosRunOptions run;
  /// Minimization of failing plans (shrink budget is per failing plan).
  bool shrink_failures = true;
  ShrinkConfig shrink;
};

struct ChaosSearchFinding {
  std::uint64_t plan_seed = 0;
  /// "spec" (the scenario's own engine), "pimdm" or "hpimdm".
  std::string engine;
  FaultPlan plan;
  FaultPlan shrunk;  // == plan when shrinking is off or exhausted
  std::vector<std::string> classes;
  std::vector<ChaosViolation> violations;
  ShrinkStats shrink_stats;
};

struct ChaosSearchResult {
  std::size_t explored = 0;   // worlds run (plans x engines)
  std::size_t violating = 0;  // runs with at least one violation
  std::size_t shrunk = 0;     // findings the shrinker reduced
  /// Violating runs per class name.
  std::map<std::string, std::size_t> class_counts;
  std::vector<ChaosSearchFinding> findings;
  /// Every generated (seed, plan) in exploration order — `chaos-search
  /// --pin` turns the first N into corpus entries.
  std::vector<std::pair<std::uint64_t, FaultPlan>> plans;
  /// Scheduler events executed across every explored world (shrink re-runs
  /// excluded) — the throughput denominator in the bench report.
  std::uint64_t executed_events = 0;
};

/// Seeded biased plan generator: FaultPlan::random over the spec's own
/// targets, then per-disruption retiming toward mobility/recovery/overlap
/// coincidence. Preserves the per-target no-overlap invariant (a retiming
/// that would break it is dropped). Pure function of (spec, cfg, seed).
FaultPlan biased_random_plan(const ScenarioSpec& spec,
                             const ChaosSearchConfig& cfg, std::uint64_t seed);

/// Explores `cfg.budget` plans (seed i = derive_seed(cfg.seed, i)), runs
/// each against the selected engines, shrinks failures. Deterministic.
ChaosSearchResult chaos_search(const ScenarioSpec& spec,
                               const ChaosSearchConfig& cfg);

/// Rewrites `spec` to force one dense engine everywhere. `engine` is
/// "spec" (no-op), "pimdm" or "hpimdm"; anything else throws LogicError.
void apply_engine(ScenarioSpec& spec, const std::string& engine);

// --- Reproducer corpus -----------------------------------------------------

/// One committed corpus entry: everything needed to re-run a (scenario,
/// engine, seed, plan) tuple and check it still behaves identically —
/// violation classes AND the byte-exact chaos trace.
struct ChaosReproducer {
  static constexpr const char* kSchema = "mip6-chaos-repro-v1";

  /// Scenario file name, resolved against a caller-supplied directory.
  std::string scenario;
  std::string engine = "spec";
  std::uint64_t seed = 1;
  double settle_s = 15.0;
  FaultPlan plan;
  /// Expected outcome recorded at capture time.
  std::vector<std::string> classes;  // sorted violation class names
  std::vector<std::string> trace;    // ChaosEngine executed lines

  Json to_json() const;
  static ChaosReproducer from_json(const Json& doc);
  static ChaosReproducer load_file(const std::string& path);
};

/// Replays `r` against `spec` (already loaded from r.scenario and engine-
/// rewritten by the caller or not — this applies r.engine itself).
/// The reproducer's settle overrides opts.settle. When `oracle` is null
/// the fault-free baseline is derived on the spot so the oracle-relative
/// watchdogs (state-leak, timer-leak) classify exactly as at capture;
/// pass an oracle only to reuse one across many replays of one tuple.
ChaosRunResult replay_reproducer(const ScenarioSpec& spec,
                                 const ChaosReproducer& r,
                                 const ChaosRunOptions& opts = {},
                                 const WorldOracle* oracle = nullptr);

}  // namespace mip6
