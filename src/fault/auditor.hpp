// Whole-world invariant checker.
//
// The Auditor walks every protocol engine in a World and cross-checks state
// *between* nodes — properties no single engine can verify about itself.
// It speaks to routers through the engine-neutral DenseModeEngine interface,
// so the same checks audit PIM-DM and HPIM-DM worlds alike:
//
//  structural (safe at any instant, even mid-transient):
//   * an (S,G) entry never forwards onto its own incoming interface
//   * the union of all routers' (S,G) oif sets forms no forwarding loop
//   * a home-agent binding for an acknowledged, away-from-home mobile node
//     names that node's actual care-of address
//
//  quiesced-only (valid once the protocols have converged — duplicate
//  forwarders and pruned-but-wanted links are *expected* transients of
//  dense-mode flood-and-prune):
//   * at most one forwarder per (S,G) per link (assert coherence)
//   * a downstream router that wants (S,G) traffic is not stuck behind an
//     upstream neighbor that holds the shared link pruned
//   * some MLD router tracks every live local subscription (listener state
//     is a superset of what up hosts are actually joined to)
//   * every acknowledged away binding exists in its home agent's cache
//
// Violations are returned (and counted under "audit/violations"), never
// thrown — tests assert on the report, chaos runs collect them.
//
// Window metrics: beyond point-in-time violations, the Auditor can
// time-integrate two user-visible failure modes per (S,G) —
//   * blackhole window: some up, at-home, subscribed-and-joined host sits on
//     a link the source's traffic cannot currently reach through the union
//     of all up routers' forwarding state
//   * duplication window: more than one up router forwards onto one link
// Call sample_windows() at interesting instants, or arm_window_sampler()
// for a periodic sweep; each sample charges the time since the previous one
// to every (S,G) whose predicate currently holds. run() snapshots the
// accumulated windows into the report.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "sim/timer.hpp"

namespace mip6 {

struct AuditorConfig {
  bool check_oif_iif = true;
  bool check_forwarding_loops = true;
  bool check_binding_coherence = true;
  /// Enables the quiesced-only checks below.
  bool quiesced = false;
  bool check_duplicate_forwarders = true;
  bool check_prune_coherence = true;
  bool check_mld_coverage = true;
};

struct AuditViolation {
  std::string check;   // e.g. "forwarding-loop"
  std::string detail;  // human-readable; names nodes/links/(S,G)
};

/// Time-integrated failure windows for one (S,G), in seconds.
struct SgWindows {
  double blackhole_s = 0.0;
  double duplication_s = 0.0;
};

struct AuditReport {
  Time at;
  std::vector<AuditViolation> violations;
  /// Accumulated windows per (S,G) — empty unless sample_windows() ran.
  std::map<DenseModeEngine::SgKey, SgWindows> windows;
  bool ok() const { return violations.empty(); }
  std::string str() const;
};

class Auditor {
 public:
  explicit Auditor(World& world, AuditorConfig config = {});

  /// Runs every enabled check and returns the findings. Also bumps the
  /// "audit/runs" and "audit/violations" counters on the world's network.
  AuditReport run();

  /// Charges (now - previous sample) to every (S,G) currently blackholed
  /// or duplicated. The first call after construction charges from the
  /// construction instant.
  void sample_windows();
  /// Samples every `period` from now on (re-arming replaces the period).
  void arm_window_sampler(Time period);
  /// Accumulated windows so far (also copied into each run() report).
  const std::map<DenseModeEngine::SgKey, SgWindows>& windows() const {
    return windows_;
  }

 private:
  void check_oif_iif(AuditReport& r) const;
  void check_forwarding_loops(AuditReport& r) const;
  void check_binding_coherence(AuditReport& r) const;
  void check_duplicate_forwarders(AuditReport& r) const;
  void check_prune_coherence(AuditReport& r) const;
  void check_mld_coverage(AuditReport& r) const;

  /// Instantaneous predicates behind the window metrics.
  bool group_blackholed(const DenseModeEngine::SgKey& key) const;
  bool group_duplicating(const DenseModeEngine::SgKey& key) const;

  /// Every (S,G) key present on any up router, deduplicated.
  std::vector<DenseModeEngine::SgKey> all_sg_keys() const;
  /// Link the interface is attached to, or nullptr.
  static const Link* link_of(const Node& node, IfaceId iface);
  /// True if `addr` is one of `router`'s addresses on `link`.
  static bool is_router_address_on(const NodeRuntime& router,
                                   const Link& link, const Address& addr);

  World* world_;
  AuditorConfig config_;
  std::map<DenseModeEngine::SgKey, SgWindows> windows_;
  Time last_sample_;
  std::unique_ptr<Timer> sampler_;
};

}  // namespace mip6
