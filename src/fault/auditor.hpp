// Whole-world invariant checker.
//
// The Auditor walks every protocol engine in a World and cross-checks state
// *between* nodes — properties no single engine can verify about itself:
//
//  structural (safe at any instant, even mid-transient):
//   * an (S,G) entry never forwards onto its own incoming interface
//   * the union of all routers' (S,G) oif sets forms no forwarding loop
//   * a home-agent binding for an acknowledged, away-from-home mobile node
//     names that node's actual care-of address
//
//  quiesced-only (valid once the protocols have converged — duplicate
//  forwarders and pruned-but-wanted links are *expected* transients of
//  dense-mode flood-and-prune):
//   * at most one forwarder per (S,G) per link (assert coherence)
//   * a downstream router that wants (S,G) traffic is not stuck behind an
//     upstream neighbor that holds the shared link pruned
//   * some MLD router tracks every live local subscription (listener state
//     is a superset of what up hosts are actually joined to)
//   * every acknowledged away binding exists in its home agent's cache
//
// Violations are returned (and counted under "audit/violations"), never
// thrown — tests assert on the report, chaos runs collect them.
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"

namespace mip6 {

struct AuditorConfig {
  bool check_oif_iif = true;
  bool check_forwarding_loops = true;
  bool check_binding_coherence = true;
  /// Enables the quiesced-only checks below.
  bool quiesced = false;
  bool check_duplicate_forwarders = true;
  bool check_prune_coherence = true;
  bool check_mld_coverage = true;
};

struct AuditViolation {
  std::string check;   // e.g. "forwarding-loop"
  std::string detail;  // human-readable; names nodes/links/(S,G)
};

struct AuditReport {
  Time at;
  std::vector<AuditViolation> violations;
  bool ok() const { return violations.empty(); }
  std::string str() const;
};

class Auditor {
 public:
  explicit Auditor(World& world, AuditorConfig config = {});

  /// Runs every enabled check and returns the findings. Also bumps the
  /// "audit/runs" and "audit/violations" counters on the world's network.
  AuditReport run();

 private:
  void check_oif_iif(AuditReport& r) const;
  void check_forwarding_loops(AuditReport& r) const;
  void check_binding_coherence(AuditReport& r) const;
  void check_duplicate_forwarders(AuditReport& r) const;
  void check_prune_coherence(AuditReport& r) const;
  void check_mld_coverage(AuditReport& r) const;

  /// Every (S,G) key present on any up router, deduplicated.
  std::vector<PimDmRouter::SgKey> all_sg_keys() const;
  /// Link the interface is attached to, or nullptr.
  static const Link* link_of(const Node& node, IfaceId iface);
  /// True if `addr` is one of `router`'s addresses on `link`.
  static bool is_router_address_on(const NodeRuntime& router,
                                   const Link& link, const Address& addr);

  World* world_;
  AuditorConfig config_;
};

}  // namespace mip6
