#include "fault/shrink.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace mip6 {

std::vector<FaultUnit> pair_units(const FaultPlan& plan) {
  std::vector<FaultEvent> events = plan.sorted();
  std::vector<bool> claimed(events.size(), false);
  std::vector<FaultUnit> units;
  // Disruptions first, in activation order, each claiming the earliest
  // unclaimed matching repair at or after it.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!is_disruption(events[i].kind)) continue;
    claimed[i] = true;
    FaultUnit u{events[i], std::nullopt};
    FaultKind want = repair_kind_of(events[i].kind);
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (claimed[j]) continue;
      if (events[j].kind == want && events[j].target == events[i].target) {
        claimed[j] = true;
        u.repair = events[j];
        break;
      }
    }
    units.push_back(std::move(u));
  }
  // Orphan repairs (no disruption before them) become single-event units.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (claimed[i]) continue;
    units.push_back({events[i], std::nullopt});
  }
  return units;
}

FaultPlan units_to_plan(const std::vector<FaultUnit>& units) {
  FaultPlan plan;
  for (const FaultUnit& u : units) {
    plan.add(u.fault);
    if (u.repair) plan.add(*u.repair);
  }
  return plan;
}

namespace {

class Budget {
 public:
  Budget(const std::function<bool(const FaultPlan&)>& pred,
         std::size_t max_runs, ShrinkStats* stats)
      : pred_(pred), max_runs_(max_runs), stats_(stats) {}

  bool exhausted() const { return runs_ >= max_runs_; }

  /// Evaluates the predicate (false when out of budget — an unevaluated
  /// candidate is treated as not-failing, i.e. rejected).
  bool fails(const std::vector<FaultUnit>& units) {
    if (exhausted()) return false;
    ++runs_;
    if (stats_ != nullptr) stats_->runs = runs_;
    return pred_(units_to_plan(units));
  }

 private:
  const std::function<bool(const FaultPlan&)>& pred_;
  std::size_t max_runs_;
  std::size_t runs_ = 0;
  ShrinkStats* stats_;
};

/// Classic ddmin over units: try removing chunks, halving chunk size until
/// single units; restart from coarse chunks after any successful removal.
std::vector<FaultUnit> ddmin(std::vector<FaultUnit> units, Budget& budget) {
  std::size_t chunk = (units.size() + 1) / 2;
  while (units.size() > 1 && chunk >= 1 && !budget.exhausted()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < units.size();) {
      std::size_t len = std::min(chunk, units.size() - start);
      std::vector<FaultUnit> candidate;
      candidate.reserve(units.size() - len);
      candidate.insert(candidate.end(), units.begin(),
                       units.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          units.begin() + static_cast<std::ptrdiff_t>(start + len),
          units.end());
      if (!candidate.empty() && budget.fails(candidate)) {
        units = std::move(candidate);
        removed_any = true;
        // Keep `start` — the next chunk slid into place.
      } else {
        start += len;
      }
      if (budget.exhausted()) break;
    }
    if (removed_any) {
      chunk = std::min(chunk, (units.size() + 1) / 2);
    } else if (chunk == 1) {
      break;
    } else {
      chunk = (chunk + 1) / 2;
    }
  }
  return units;
}

Time snap_down(Time t, Time gran) {
  std::int64_t g = gran.nanos();
  if (g <= 0) return t;
  return Time::ns((t.nanos() / g) * g);
}

Time snap_up(Time t, Time gran) {
  std::int64_t g = gran.nanos();
  if (g <= 0) return t;
  return Time::ns(((t.nanos() + g - 1) / g) * g);
}

/// Per-unit coarsening: each proposal is kept only if the plan still
/// fails. Proposals are tried unit by unit so a rejection rolls back just
/// that unit.
void coarsen(std::vector<FaultUnit>& units, Budget& budget,
             const ShrinkConfig& cfg, ShrinkStats* stats) {
  auto try_replace = [&](std::size_t i, const FaultUnit& proposal) {
    if (budget.exhausted()) return false;
    FaultUnit saved = units[i];
    units[i] = proposal;
    if (budget.fails(units)) {
      if (stats != nullptr) ++stats->coarsened_events;
      return true;
    }
    units[i] = saved;
    return false;
  };

  for (std::size_t i = 0; i < units.size() && !budget.exhausted(); ++i) {
    // Round the fault time down (repairs round up, preserving coverage of
    // the original window).
    {
      FaultUnit p = units[i];
      p.fault.at = snap_down(p.fault.at, cfg.granularity);
      if (p.repair) p.repair->at = snap_up(p.repair->at, cfg.granularity);
      if (p.fault.at != units[i].fault.at ||
          (p.repair && p.repair->at != units[i].repair->at)) {
        try_replace(i, p);
      }
    }
    // Shorten the outage to the floor.
    if (units[i].repair) {
      FaultUnit p = units[i];
      Time shortened = p.fault.at + cfg.min_outage;
      if (shortened < p.repair->at) {
        p.repair->at = shortened;
        try_replace(i, p);
      }
    }
    // Canonicalize degrade impairments: pure 50% loss beats a three-knob
    // soup when reading a reproducer.
    if (units[i].fault.kind == FaultKind::kLinkDegrade) {
      LinkImpairment canon{0.5, 0.0, Time::zero()};
      if (units[i].fault.impairment.loss != canon.loss ||
          units[i].fault.impairment.corrupt != canon.corrupt ||
          units[i].fault.impairment.jitter != canon.jitter) {
        FaultUnit p = units[i];
        p.fault.impairment = canon;
        try_replace(i, p);
      }
    }
  }
}

}  // namespace

FaultPlan shrink_plan(const FaultPlan& plan,
                      const std::function<bool(const FaultPlan&)>& still_fails,
                      const ShrinkConfig& cfg, ShrinkStats* stats) {
  std::vector<FaultUnit> units = pair_units(plan);
  if (stats != nullptr) {
    *stats = {};
    stats->initial_units = units.size();
  }
  Budget budget(still_fails, cfg.max_runs, stats);
  if (!budget.fails(units)) {
    throw LogicError("shrink_plan: input plan does not fail the predicate");
  }
  units = ddmin(std::move(units), budget);
  coarsen(units, budget, cfg, stats);
  if (stats != nullptr) stats->final_units = units.size();
  return units_to_plan(units);
}

}  // namespace mip6
