#include "fault/search.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "fault/auditor.hpp"
#include "scenario/compile.hpp"
#include "sim/rng.hpp"
#include "util/errors.hpp"

namespace mip6 {

const char* violation_class_name(ViolationClass cls) {
  switch (cls) {
    case ViolationClass::kAudit: return "audit";
    case ViolationClass::kConvergenceDeadline: return "convergence-deadline";
    case ViolationClass::kTimerLeak: return "timer-leak";
    case ViolationClass::kRetxBacklog: return "retx-backlog";
    case ViolationClass::kStateLeak: return "state-leak";
    case ViolationClass::kNeverRecovered: return "never-recovered";
  }
  return "?";
}

std::optional<ViolationClass> violation_class_from_name(std::string_view name) {
  static constexpr ViolationClass kAll[] = {
      ViolationClass::kAudit,       ViolationClass::kConvergenceDeadline,
      ViolationClass::kTimerLeak,   ViolationClass::kRetxBacklog,
      ViolationClass::kStateLeak,   ViolationClass::kNeverRecovered,
  };
  for (ViolationClass c : kAll) {
    if (name == violation_class_name(c)) return c;
  }
  return std::nullopt;
}

std::vector<std::string> ChaosRunResult::classes() const {
  std::set<std::string> s;
  for (const ChaosViolation& v : violations) {
    s.insert(violation_class_name(v.cls));
  }
  return {s.begin(), s.end()};
}

Time chaos_horizon(const ScenarioSpec& spec, const ChaosRunOptions& opts) {
  // Fixed per (spec, settle) — every plan, and the fault-free oracle, run
  // to the same instant so end-state comparisons are like for like. Plans
  // are generated inside [0, duration], leaving at least 2*settle of
  // repair-and-quiesce tail.
  return spec.duration + opts.settle + opts.settle;
}

namespace {

/// End-state totals of a live world (shared by oracle and faulted runs).
struct EndState {
  std::size_t live_events = 0;
  std::size_t sg_entries = 0;
  std::size_t mfc_entries = 0;
  std::size_t bindings = 0;
  std::size_t retx_backlog = 0;
};

EndState snapshot_end_state(const World& world) {
  EndState s;
  s.live_events = const_cast<World&>(world).scheduler().live_events();
  for (const auto& rt : world.routers()) {
    if (rt->dense != nullptr) {
      s.sg_entries += rt->dense->entry_count();
      s.mfc_entries += rt->dense->mfc_entries();
    }
    if (rt->hpim != nullptr) s.retx_backlog += rt->hpim->retransmit_backlog();
    if (rt->ha != nullptr) s.bindings += rt->ha->cache().size();
  }
  return s;
}

FaultPlan filter_plan(const FaultPlan& plan,
                      const std::optional<FaultKind>& skip) {
  if (!skip) return plan;
  FaultPlan out;
  for (const FaultEvent& e : plan.events()) {
    if (e.kind != *skip) out.add(e);
  }
  return out;
}

Time plan_last_event(const FaultPlan& plan) {
  Time last = Time::zero();
  for (const FaultEvent& e : plan.events()) last = std::max(last, e.at);
  return last;
}

std::string sg_str(const DenseModeEngine::SgKey& key) {
  return "(" + key.source.str() + "," + key.group.str() + ")";
}

}  // namespace

WorldOracle compute_world_oracle(const ScenarioSpec& spec, std::uint64_t seed,
                                 Time horizon) {
  ScenarioSpec s = spec;
  s.faults = FaultPlan{};
  s.fault_audit = false;
  CompiledScenario cs = compile_scenario(s, seed);
  cs.world->run_until(horizon);
  EndState end = snapshot_end_state(*cs.world);
  return {end.live_events, end.sg_entries, end.mfc_entries, end.bindings};
}

ChaosRunResult run_fault_plan(const ScenarioSpec& spec, const FaultPlan& plan,
                              std::uint64_t seed, const ChaosRunOptions& opts,
                              const WorldOracle* oracle) {
  ScenarioSpec s = spec;
  s.faults = filter_plan(plan, opts.skip_repair);
  s.fault_audit = opts.audit_each_event;

  ChaosRunResult result;
  result.horizon = chaos_horizon(spec, opts);
  // Convergence deadline: `settle` after the armed plan's last event (the
  // injected-bug path may have dropped the real last repair — then the
  // deadline moves up and the still-open window is caught sooner).
  Time deadline = std::min(plan_last_event(s.faults) + opts.settle,
                           result.horizon - opts.settle);
  if (deadline < Time::zero()) deadline = Time::zero();

  // The window auditor lives alongside the world; all point-in-time checks
  // stay off here — per-event audits come from the ChaosEngine, the final
  // quiesced audit runs separately below.
  std::unique_ptr<Auditor> windows;
  std::map<DenseModeEngine::SgKey, SgWindows> at_deadline;
  CompiledScenario cs = compile_scenario(s, seed, [&](World& w) {
    windows = std::make_unique<Auditor>(w, AuditorConfig{});
    windows->arm_window_sampler(opts.window_sample_period);
    w.scheduler().schedule_at(deadline, [&] {
      windows->sample_windows();
      at_deadline = windows->windows();
    });
  });

  cs.world->run_until(result.horizon);
  windows->sample_windows();

  if (cs.chaos != nullptr) {
    result.trace = cs.chaos->executed();
    for (const AuditReport& report : cs.chaos->audit_reports()) {
      for (const AuditViolation& v : report.violations) {
        result.violations.push_back(
            {ViolationClass::kAudit,
             report.at.str() + " " + v.check + ": " + v.detail});
      }
    }
  }

  if (opts.final_quiesced_audit) {
    AuditorConfig quiesced;
    quiesced.quiesced = true;
    Auditor final_audit(*cs.world, quiesced);
    for (const AuditViolation& v : final_audit.run().violations) {
      result.violations.push_back(
          {ViolationClass::kAudit, "final " + v.check + ": " + v.detail});
    }
  }

  // Liveness: any window still growing after the deadline means the
  // protocols never re-closed the failure the repairs should have fixed.
  for (const auto& [key, w] : windows->windows()) {
    SgWindows base;  // zero when the (S,G) had no window before the deadline
    auto it = at_deadline.find(key);
    if (it != at_deadline.end()) base = it->second;
    double bh = w.blackhole_s - base.blackhole_s;
    double dup = w.duplication_s - base.duplication_s;
    if (bh > opts.deadline_grace_s) {
      result.violations.push_back(
          {ViolationClass::kConvergenceDeadline,
           sg_str(key) + " blackholed " + std::to_string(bh) +
               "s past the deadline"});
    }
    if (dup > opts.deadline_grace_s) {
      result.violations.push_back(
          {ViolationClass::kConvergenceDeadline,
           sg_str(key) + " duplicating " + std::to_string(dup) +
               "s past the deadline"});
    }
  }

  EndState end = snapshot_end_state(*cs.world);
  if (end.retx_backlog > opts.retx_backlog_limit) {
    result.violations.push_back(
        {ViolationClass::kRetxBacklog,
         std::to_string(end.retx_backlog) + " unacked messages at horizon"});
  }
  if (oracle != nullptr) {
    const auto limit = static_cast<std::size_t>(
        static_cast<double>(oracle->live_events) * opts.timer_leak_factor +
        static_cast<double>(opts.timer_leak_slack));
    if (end.live_events > limit) {
      result.violations.push_back(
          {ViolationClass::kTimerLeak,
           std::to_string(end.live_events) + " live events vs oracle " +
               std::to_string(oracle->live_events)});
    }
    auto leak = [&](const char* what, std::size_t got, std::size_t want) {
      if (got > want) {
        result.violations.push_back(
            {ViolationClass::kStateLeak, std::string(what) + " " +
                                             std::to_string(got) +
                                             " vs oracle " +
                                             std::to_string(want)});
      }
    };
    leak("sg-entries", end.sg_entries, oracle->sg_entries);
    leak("mfc-entries", end.mfc_entries, oracle->mfc_entries);
    leak("bindings", end.bindings, oracle->bindings);
  }

  if (!spec.traffic.empty() && cs.chaos != nullptr) {
    for (const auto& recv : cs.receivers) {
      for (const auto& rec : cs.chaos->recoveries(*recv.app)) {
        if (!rec.recovered_at) {
          result.violations.push_back(
              {ViolationClass::kNeverRecovered,
               recv.host + " never recovered after " + rec.event.str()});
        }
      }
    }
  }

  for (const auto& recv : cs.receivers) {
    result.delivered_total += static_cast<double>(recv.app->unique_received());
  }
  result.executed_events = cs.world->scheduler().executed_events();
  return result;
}

// --- Plan generation -------------------------------------------------------

namespace {

RandomPlanSpec plan_spec_for(const ScenarioSpec& spec,
                             const ChaosSearchConfig& cfg, Rng& rng) {
  RandomPlanSpec ps;
  ps.start = cfg.earliest_fault;
  ps.end = spec.duration;
  ps.disruptions =
      cfg.min_disruptions +
      static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(
          cfg.max_disruptions - cfg.min_disruptions + 1)));
  ps.min_outage = cfg.min_outage;
  ps.max_outage = cfg.max_outage;
  ps.allow_degrade = cfg.allow_degrade;
  if (spec.random) {
    // Generated topologies name stubs/routers canonically; transit link
    // names depend on the topology RNG, so chaos sticks to stubs.
    for (std::size_t i = 0; i < spec.random->routers; ++i) {
      ps.links.push_back("Stub" + std::to_string(i));
      ps.routers.push_back("Router" + std::to_string(i));
    }
  } else {
    for (const ScenarioLink& l : spec.links) ps.links.push_back(l.name);
    for (const ScenarioRouter& r : spec.routers) {
      ps.routers.push_back(r.name);
      if (r.opts.with_ha) ps.home_agents.push_back(r.name);
    }
  }
  for (const ScenarioHost& h : spec.hosts) ps.hosts.push_back(h.name);
  return ps;
}

bool has_target_overlap(const std::vector<FaultUnit>& units) {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!units[i].repair) continue;
    for (std::size_t j = i + 1; j < units.size(); ++j) {
      if (!units[j].repair) continue;
      if (units[i].fault.target != units[j].fault.target) continue;
      if (units[i].fault.at < units[j].repair->at &&
          units[j].fault.at < units[i].repair->at) {
        return true;
      }
    }
  }
  return false;
}

/// Moves unit `i`'s window to start at `begin` (outage preserved, clamped
/// to `end`); reverted if the per-target no-overlap invariant would break.
void retime_unit(std::vector<FaultUnit>& units, std::size_t i, Time begin,
                 Time end) {
  if (!units[i].repair) return;
  if (begin < Time::zero()) begin = Time::zero();
  if (begin >= end) return;
  FaultUnit saved = units[i];
  Time outage = units[i].repair->at - units[i].fault.at;
  units[i].fault.at = begin;
  units[i].repair->at = std::min(begin + outage, end);
  if (has_target_overlap(units)) units[i] = saved;
}

}  // namespace

FaultPlan biased_random_plan(const ScenarioSpec& spec,
                             const ChaosSearchConfig& cfg,
                             std::uint64_t seed) {
  Rng rng(seed);
  RandomPlanSpec ps = plan_spec_for(spec, cfg, rng);
  // The base plan consumes an independent substream so bias rolls below
  // don't perturb which targets/windows a seed draws.
  FaultPlan base = FaultPlan::random(ps, Rng::derive_seed(seed, 1));
  std::vector<FaultUnit> units = pair_units(base);

  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!spec.moves.empty() && rng.bernoulli(cfg.mobility_bias)) {
      // Land the fault within ±2 s of a scripted handoff — the paper's
      // interesting races all live there.
      const ScenarioMove& mv =
          spec.moves[rng.uniform_int(spec.moves.size())];
      Time begin = mv.at + Time::ms(static_cast<std::int64_t>(
                               rng.uniform_int(4001)) - 2000);
      retime_unit(units, i, begin, ps.end);
      continue;
    }
    if (units.size() > 1 && rng.bernoulli(cfg.recovery_bias)) {
      // Fault-during-recovery: start just after another pair's repair,
      // while its protocols are still re-converging.
      std::size_t j = rng.uniform_int(units.size());
      if (j != i && units[j].repair) {
        Time begin = units[j].repair->at +
                     Time::ms(static_cast<std::int64_t>(
                         rng.uniform_int(1000)));
        retime_unit(units, i, begin, ps.end);
      }
      continue;
    }
    if (units.size() > 1 && rng.bernoulli(cfg.overlap_bias)) {
      // Overlapping disruptions on *different* targets (same-target
      // overlap stays forbidden — retime_unit enforces it).
      std::size_t j = rng.uniform_int(units.size());
      if (j != i && units[j].repair) {
        Time span = units[j].repair->at - units[j].fault.at;
        Time begin =
            units[j].fault.at +
            Time::ns(static_cast<std::int64_t>(rng.uniform_int(
                static_cast<std::uint64_t>(std::max<std::int64_t>(
                    1, span.nanos())))));
        retime_unit(units, i, begin, ps.end);
      }
    }
  }
  return units_to_plan(units);
}

void apply_engine(ScenarioSpec& spec, const std::string& engine) {
  if (engine == "spec") return;
  DenseEngineKind kind;
  if (engine == "pimdm") {
    kind = DenseEngineKind::kPimDm;
  } else if (engine == "hpimdm") {
    kind = DenseEngineKind::kHpimDm;
  } else {
    throw LogicError("apply_engine: unknown engine '" + engine +
                     "' (known: spec, pimdm, hpimdm)");
  }
  spec.config.dense_engine = kind;
  for (ScenarioRouter& r : spec.routers) {
    if (r.opts.engine) r.opts.engine = kind;
  }
}

ChaosSearchResult chaos_search(const ScenarioSpec& spec,
                               const ChaosSearchConfig& cfg) {
  ChaosSearchResult result;

  std::vector<std::string> engines;
  if (cfg.both_engines) {
    engines = {"pimdm", "hpimdm"};
  } else {
    engines = {"spec"};
  }

  // One oracle and one engine-rewritten spec per engine, reused across the
  // whole batch (and across every shrink re-run).
  Time horizon = chaos_horizon(spec, cfg.run);
  std::vector<ScenarioSpec> engine_specs;
  std::vector<WorldOracle> oracles;
  for (const std::string& engine : engines) {
    ScenarioSpec s = spec;
    apply_engine(s, engine);
    oracles.push_back(compute_world_oracle(s, s.seed, horizon));
    engine_specs.push_back(std::move(s));
  }

  for (std::size_t i = 0; i < cfg.budget; ++i) {
    std::uint64_t plan_seed = Rng::derive_seed(cfg.seed, i);
    FaultPlan plan = biased_random_plan(spec, cfg, plan_seed);
    result.plans.emplace_back(plan_seed, plan);
    if (plan.empty()) continue;

    for (std::size_t e = 0; e < engines.size(); ++e) {
      const ScenarioSpec& es = engine_specs[e];
      ChaosRunResult run =
          run_fault_plan(es, plan, es.seed, cfg.run, &oracles[e]);
      ++result.explored;
      result.executed_events += run.executed_events;
      if (!run.violated()) continue;

      ++result.violating;
      for (const std::string& cls : run.classes()) {
        ++result.class_counts[cls];
      }

      ChaosSearchFinding finding;
      finding.plan_seed = plan_seed;
      finding.engine = engines[e];
      finding.plan = plan;
      finding.shrunk = plan;
      finding.classes = run.classes();
      finding.violations = run.violations;

      if (cfg.shrink_failures) {
        // "Still fails" = any of the original classes fires again; a
        // shrink that morphs the failure into a different class is not a
        // smaller version of the same bug.
        const std::set<std::string> want(finding.classes.begin(),
                                         finding.classes.end());
        auto still_fails = [&](const FaultPlan& candidate) {
          ChaosRunResult rr =
              run_fault_plan(es, candidate, es.seed, cfg.run, &oracles[e]);
          for (const std::string& cls : rr.classes()) {
            if (want.contains(cls)) return true;
          }
          return false;
        };
        finding.shrunk = shrink_plan(finding.plan, still_fails, cfg.shrink,
                                     &finding.shrink_stats);
        if (finding.shrink_stats.final_units <
                finding.shrink_stats.initial_units ||
            finding.shrink_stats.coarsened_events > 0) {
          ++result.shrunk;
        }
      }
      result.findings.push_back(std::move(finding));
    }
  }
  return result;
}

// --- Reproducers -----------------------------------------------------------

Json ChaosReproducer::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("scenario", scenario);
  doc.set("engine", engine);
  doc.set("seed", seed);
  doc.set("settle_s", settle_s);
  doc.set("plan", plan.to_json());
  Json expected = Json::object();
  Json cls = Json::array();
  for (const std::string& c : classes) cls.push_back(c);
  expected.set("classes", std::move(cls));
  Json tr = Json::array();
  for (const std::string& line : trace) tr.push_back(line);
  expected.set("trace", std::move(tr));
  doc.set("expected", std::move(expected));
  return doc;
}

ChaosReproducer ChaosReproducer::from_json(const Json& doc) {
  if (!doc.is_object()) throw ParseError("reproducer: expected object");
  if (!doc.contains("schema") || !doc["schema"].is_string() ||
      doc["schema"].as_string() != kSchema) {
    throw ParseError(std::string("reproducer: schema must be '") + kSchema +
                     "'");
  }
  ChaosReproducer r;
  if (!doc.contains("scenario") || !doc["scenario"].is_string()) {
    throw ParseError("reproducer: missing string field 'scenario'");
  }
  r.scenario = doc["scenario"].as_string();
  if (doc.contains("engine")) r.engine = doc["engine"].as_string();
  if (r.engine != "spec" && r.engine != "pimdm" && r.engine != "hpimdm") {
    throw ParseError("reproducer: unknown engine '" + r.engine + "'");
  }
  if (!doc.contains("seed") || !doc["seed"].is_number()) {
    throw ParseError("reproducer: missing number field 'seed'");
  }
  r.seed = static_cast<std::uint64_t>(doc["seed"].as_number());
  if (doc.contains("settle_s")) r.settle_s = doc["settle_s"].as_number();
  if (!doc.contains("plan")) {
    throw ParseError("reproducer: missing field 'plan'");
  }
  r.plan = FaultPlan::from_json(doc["plan"]);
  if (doc.contains("expected")) {
    const Json& expected = doc["expected"];
    if (!expected.is_object()) {
      throw ParseError("reproducer: 'expected' must be an object");
    }
    if (expected.contains("classes")) {
      for (const Json& c : expected["classes"].items()) {
        if (!violation_class_from_name(c.as_string())) {
          throw ParseError("reproducer: unknown violation class '" +
                           c.as_string() + "'");
        }
        r.classes.push_back(c.as_string());
      }
    }
    if (expected.contains("trace")) {
      for (const Json& line : expected["trace"].items()) {
        r.trace.push_back(line.as_string());
      }
    }
  }
  return r;
}

ChaosReproducer ChaosReproducer::load_file(const std::string& path) {
  std::string text;
  {
    // Small files; read via the same idiom ScenarioSpec::load_file uses.
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw ParseError("reproducer: cannot open " + path);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  }
  try {
    return from_json(Json::parse(text));
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

ChaosRunResult replay_reproducer(const ScenarioSpec& spec,
                                 const ChaosReproducer& r,
                                 const ChaosRunOptions& opts,
                                 const WorldOracle* oracle) {
  ScenarioSpec s = spec;
  apply_engine(s, r.engine);
  ChaosRunOptions o = opts;
  o.settle = Time::seconds(r.settle_s);
  if (oracle != nullptr) return run_fault_plan(s, r.plan, r.seed, o, oracle);
  // No baseline supplied: derive it, or the oracle-relative classes
  // (state-leak, timer-leak) silently disappear from the verdict and a
  // replayed entry can never match a capture that had them.
  WorldOracle derived = compute_world_oracle(s, r.seed, chaos_horizon(s, o));
  return run_fault_plan(s, r.plan, r.seed, o, &derived);
}

}  // namespace mip6
