#include "net/wire_stats.hpp"

#include "net/network.hpp"

namespace mip6 {

void note_parse_reject(Network& net, std::string_view proto,
                       const ParseFailure& f) {
  std::string base = "parse/";
  base += proto;
  net.counters().add(base + "/rejects");
  net.counters().add(base + "/reject/" + parse_reason_name(f.reason));
  net.trace().emit(net.scheduler().now(), base, "parse-reject",
                   [&f] { return f.str(); });
}

}  // namespace mip6
