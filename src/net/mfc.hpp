// Compact multicast forwarding cache (MFC) primitives, modelled on the
// kernel mroute6 idiom: interfaces get small dense `mifi` indices, a
// per-(S,G) entry precomputes its outgoing set as a fixed-width bitmap, and
// a hash-keyed flow cache lets the data path forward without consulting the
// protocol state machines at all.
//
// Division of labour: this layer is pure bookkeeping — it never decides
// *what* the oif set is. The dense-mode engines (PIM-DM / HPIM-DM) compute
// bitmaps once per state change and install them here; every control-plane
// transition that can change an oif set invalidates the affected entries
// (or the whole cache). Stale entries are invisible to find(), so a missed
// refill only costs a slow-path packet, never a wrong forwarding decision —
// but a missed *invalidation* is a stale-cache blackhole, which is why the
// invalidation rules are regression-tested against the cache-off data plane
// (docs/PERF.md "MFC bitmaps and the (S,G) flow cache").
//
// Determinism contract: MifTable keeps its dense indices sorted by IfaceId
// (insertions renumber, legal because any insertion already forces a cache
// flush), so iterating a bitmap in mifi order transmits in ascending
// IfaceId order — byte-identical traces vs the pre-cache std::map walk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/interface.hpp"

namespace mip6 {

/// Dense per-router interface index ("mifi_t"): the bit position of an
/// interface in an IfSet.
using Mifi = std::uint16_t;
inline constexpr Mifi kNoMif = 0xffff;

/// Fixed-width interface bitmap (the kernel's `if_set` word array).
class IfSet {
 public:
  static constexpr std::size_t kBits = 256;
  static constexpr std::size_t kWords = kBits / 64;

  void set(Mifi i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void clear(Mifi i) { words_[i / 64] &= ~(std::uint64_t{1} << (i % 64)); }
  bool test(Mifi i) const {
    return (words_[i / 64] >> (i % 64)) & std::uint64_t{1};
  }
  bool empty() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }
  std::size_t count() const;
  void reset() { words_[0] = words_[1] = words_[2] = words_[3] = 0; }
  /// Raw word access for set-bit iteration (see forward_out_many).
  std::uint64_t word(std::size_t w) const { return words_[w]; }

 private:
  std::uint64_t words_[kWords] = {};
};

/// Dense interface index assignment, sorted by IfaceId. lookup() is a
/// binary search over a flat array (at most a handful of entries per
/// router); add() keeps the array sorted, renumbering later indices — the
/// caller must flush any bitmaps built under the old numbering, which
/// version() makes detectable.
class MifTable {
 public:
  /// `max_ifaces` is the fail-fast width budget: registering more
  /// interfaces than this (or than IfSet::kBits) throws LogicError rather
  /// than silently truncating the oif set.
  explicit MifTable(std::size_t max_ifaces = IfSet::kBits);

  /// Registers `iface` (idempotent); returns its mifi. Throws LogicError
  /// when the width budget is exhausted.
  Mifi add(IfaceId iface);
  /// kNoMif when the interface was never registered.
  Mifi lookup(IfaceId iface) const;
  IfaceId iface(Mifi m) const { return ifaces_[m]; }
  std::size_t size() const { return ifaces_.size(); }
  /// Bumped by every renumbering insertion.
  std::uint64_t version() const { return version_; }

 private:
  std::vector<IfaceId> ifaces_;  // sorted ascending; index == mifi
  std::size_t max_;
  std::uint64_t version_ = 0;
};

/// (S,G) cache key as raw 64-bit halves of the two addresses — keeps this
/// layer independent of the IPv6 address type above it.
struct FlowKey {
  std::uint64_t w[4] = {};

  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return a.w[0] == b.w[0] && a.w[1] == b.w[1] && a.w[2] == b.w[2] &&
           a.w[3] == b.w[3];
  }
};

/// One precomputed forwarding decision: everything the data path needs to
/// replicate a datagram without touching protocol state. `state` is the
/// owning engine's (S,G) entry (opaque here); it is only dereferenced on
/// fresh entries, and every path that can destroy an entry invalidates or
/// clears the cache first.
struct MfcEntry {
  FlowKey key;
  std::uint64_t epoch = 0;  // 0 = never valid; != cache epoch = stale
  IfaceId iif = 0;
  std::uint16_t oif_count = 0;
  bool local_receiver = false;
  IfSet oifs;
  void* state = nullptr;
};

/// Open-addressed (S,G) -> MfcEntry map with epoch invalidation: slots are
/// never erased, invalidate() zeroes one entry's epoch and
/// invalidate_all() bumps the cache epoch so every entry goes stale at
/// once. find() is allocation-free; insertion (slow path only) may grow
/// the table.
class FlowCache {
 public:
  explicit FlowCache(std::size_t initial_slots = 16);

  /// The fresh entry for `k`, or nullptr (absent or stale).
  MfcEntry* find(const FlowKey& k);
  /// Finds-or-creates the slot for `k` and marks it fresh; the caller
  /// overwrites the payload fields.
  MfcEntry& insert(const FlowKey& k);
  void invalidate(const FlowKey& k);
  void invalidate_all() { ++epoch_; }
  /// Drops every slot (entry pointers are about to dangle: engine
  /// shutdown/crash).
  void clear();
  /// Occupied slots, stale ones included.
  std::size_t size() const { return used_; }
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct Slot {
    MfcEntry entry;
    bool used = false;
  };

  static std::uint64_t hash(const FlowKey& k);
  Slot& probe(const FlowKey& k);
  void grow();

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
  std::uint64_t epoch_ = 1;  // entries start at epoch 0 = stale
};

/// Bank of FlowCaches selected by RPF interface (mifi). Flows arriving on
/// different upstream interfaces never share probe chains, so each
/// sub-table stays short even at 64k total entries, and nothing is shared
/// across topology shards in the parallel scheduler (each router's caches
/// were already private; splitting by RPF iface additionally keeps a hot
/// flow's probes out of every other upstream's slots).
///
/// The shard index is the *arrival* interface's mifi: the data path only
/// ever serves a flow from its RPF interface, so an entry inserted under
/// mifi(e.incoming) is found exactly by packets arriving on the RPF
/// interface — wrong-interface arrivals probe a different sub-table, miss,
/// and fall through to the control-plane slow path, same as before.
/// Invalidation by key sweeps every sub-table (rare path): an (S,G) whose
/// RPF interface moved may have a stale slot in the old shard.
class ShardedFlowCache {
 public:
  explicit ShardedFlowCache(std::size_t initial_slots = 16)
      : initial_slots_(initial_slots) {}

  /// The fresh entry for `k` in `rpf`'s sub-table, or nullptr.
  MfcEntry* find(const FlowKey& k, Mifi rpf) {
    if (rpf >= shards_.size()) return nullptr;
    return shards_[rpf].find(k);
  }
  /// Finds-or-creates the slot for `k` in `rpf`'s sub-table (growing the
  /// bank on first use of a new mifi) and marks it fresh.
  MfcEntry& insert(const FlowKey& k, Mifi rpf);
  void invalidate(const FlowKey& k) {
    for (auto& s : shards_) s.invalidate(k);
  }
  void invalidate_all() {
    for (auto& s : shards_) s.invalidate_all();
  }
  /// Drops every sub-table (entry pointers are about to dangle).
  void clear() { shards_.clear(); }
  /// Occupied slots across all sub-tables, stale ones included.
  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }
  /// Occupied slots in one sub-table (0 for a never-used mifi).
  std::size_t shard_size(Mifi rpf) const {
    return rpf < shards_.size() ? shards_[rpf].size() : 0;
  }

 private:
  std::vector<FlowCache> shards_;  // index = RPF mifi; grown on demand
  std::size_t initial_slots_;
};

}  // namespace mip6
