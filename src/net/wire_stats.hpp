// Reject accounting for the no-throw parse taxonomy (util/parse_result.hpp).
//
// Every receive path that rejects a wire input calls note_parse_reject()
// exactly once per rejected frame/element, which attributes the rejection to
// exactly one taxonomy counter:
//
//   parse/<proto>/rejects                  total rejects for the protocol
//   parse/<proto>/reject/<reason>          one cell per ParseReason
//
// and emits a "parse-reject" trace event carrying the failure detail. The
// fuzz harness (tests/fuzz) asserts the sum of the per-reason cells equals
// the total for every protocol.
#pragma once

#include <string_view>

#include "util/parse_result.hpp"

namespace mip6 {

class Network;

void note_parse_reject(Network& net, std::string_view proto,
                       const ParseFailure& f);

}  // namespace mip6
