#include "net/link.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "util/errors.hpp"

namespace mip6 {

void Link::do_attach(Interface& iface) {
  if (std::find(ifaces_.begin(), ifaces_.end(), &iface) != ifaces_.end()) {
    throw LogicError("interface attached twice to link " + name_);
  }
  ifaces_.push_back(&iface);
}

void Link::do_detach(Interface& iface) {
  auto it = std::find(ifaces_.begin(), ifaces_.end(), &iface);
  if (it == ifaces_.end()) {
    throw LogicError("detach of unattached interface from link " + name_);
  }
  ifaces_.erase(it);
}

void Link::transmit(const Interface& from, const Packet& pkt,
                    std::optional<IfaceId> l2_dst) {
  ++tx_packets_;
  tx_bytes_ += pkt.size();
  net_->notify_tx(*this, from, pkt);

  Time ser = Time::zero();
  if (bit_rate_bps_ > 0) {
    // bits / (bits per second) -> seconds; keep integer ns arithmetic.
    ser = Time::ns(static_cast<std::int64_t>(
        (static_cast<__int128>(pkt.size()) * 8 * 1'000'000'000) /
        bit_rate_bps_));
  }
  Time arrival_delay = ser + delay_;

  // Snapshot receivers by interface id; delivery is skipped if the receiver
  // has left the link in the meantime (it moved away mid-flight).
  for (Interface* to : ifaces_) {
    if (to == &from) continue;
    if (l2_dst && to->id() != *l2_dst) continue;
    IfaceId to_id = to->id();
    net_->scheduler().schedule_in(arrival_delay, [this, to_id, pkt] {
      for (Interface* candidate : ifaces_) {
        if (candidate->id() != to_id) continue;
        if (drop_ && drop_(pkt, *candidate)) return;
        candidate->deliver(pkt);
        return;
      }
    });
  }
}

Interface* Link::resolve(BytesView addr_octets, const Interface* asker) const {
  for (Interface* i : ifaces_) {
    if (i == asker) continue;
    if (i->answers_for(addr_octets)) return i;
  }
  return nullptr;
}

}  // namespace mip6
