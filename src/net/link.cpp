#include "net/link.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "util/errors.hpp"

namespace mip6 {

Link::Link(Network& net, LinkId id, std::string name, Time delay,
           std::uint64_t bit_rate_bps)
    : net_(&net), id_(id), name_(std::move(name)), delay_(delay),
      bit_rate_bps_(bit_rate_bps), counter_prefix_("link/" + name_ + "/") {
  auto& counters = net_->counters();
  c_tx_ = counters.cell(counter_prefix_ + "tx");
  c_tx_bytes_ = counters.cell(counter_prefix_ + "tx-bytes");
  c_rx_ = counters.cell(counter_prefix_ + "rx");
  c_dropped_ = counters.cell(counter_prefix_ + "dropped");
  c_corrupted_ = counters.cell(counter_prefix_ + "corrupted");
}

void Link::do_attach(Interface& iface) {
  if (std::find(ifaces_.begin(), ifaces_.end(), &iface) != ifaces_.end()) {
    throw LogicError("interface attached twice to link " + name_);
  }
  ifaces_.push_back(&iface);
}

void Link::do_detach(Interface& iface) {
  auto it = std::find(ifaces_.begin(), ifaces_.end(), &iface);
  if (it == ifaces_.end()) {
    throw LogicError("detach of unattached interface from link " + name_);
  }
  ifaces_.erase(it);
}

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  count(up ? "up" : "down");
}

void Link::count(const char* what, std::uint64_t delta) {
  net_->counters().add(counter_prefix_ + what, delta);
}

const LinkImpairment& Link::impairment_towards(IfaceId to) const {
  auto it = directional_impairments_.find(to);
  return it == directional_impairments_.end() ? impairment_ : it->second;
}

void Link::transmit(const Interface& from, const Packet& pkt,
                    std::optional<IfaceId> l2_dst) {
  if (!up_) {
    // Carrier lost: the frame never makes it onto the wire.
    c_dropped_.add();
    return;
  }
  c_tx_.add();
  c_tx_bytes_.add(pkt.size());
  net_->notify_tx(*this, from, pkt);

  Time ser = Time::zero();
  if (bit_rate_bps_ > 0) {
    // bits / (bits per second) -> seconds; keep integer ns arithmetic.
    ser = Time::ns(static_cast<std::int64_t>(
        (static_cast<__int128>(pkt.size()) * 8 * 1'000'000'000) /
        bit_rate_bps_));
  }
  Time arrival_delay = ser + delay_;

  // Snapshot receivers by interface id; delivery is skipped if the receiver
  // has left the link in the meantime (it moved away mid-flight).
  for (Interface* to : ifaces_) {
    if (to == &from) continue;
    if (l2_dst && to->id() != *l2_dst) continue;
    IfaceId to_id = to->id();
    Time extra = Time::zero();
    const LinkImpairment& imp = impairment_towards(to_id);
    if (imp.jitter > Time::zero()) {
      // Sampled at transmit time so the event order (and with it the whole
      // run) stays deterministic for a given seed.
      extra = Time::ns(static_cast<std::int64_t>(
          net_->rng().uniform_int(
              static_cast<std::uint64_t>(imp.jitter.nanos()) + 1)));
    }
    // The delivery executes in the receiving node's domain: under parallel
    // execution that is the receiver's shard, with the event staged across
    // the shard boundary when sender and receiver are partitioned apart.
    // The loss/corrupt draws below then come from the receiver's own rng
    // stream, independent of how other nodes' events interleave.
    net_->scheduler().schedule_in(
        arrival_delay + extra,
        [this, to_id, pkt] { deliver_one(to_id, pkt); },
        to->node().domain());
  }
}

void Link::deliver_one(IfaceId to_id, const Packet& pkt) {
  if (!up_) {
    // Link went down while the frame was in flight.
    c_dropped_.add();
    return;
  }
  for (Interface* candidate : ifaces_) {
    if (candidate->id() != to_id) continue;
    if (drop_ && drop_(pkt, *candidate)) {
      c_dropped_.add();
      return;
    }
    const LinkImpairment& imp = impairment_towards(to_id);
    if (imp.loss > 0.0 && net_->rng().bernoulli(imp.loss)) {
      c_dropped_.add();
      return;
    }
    if (imp.corrupt > 0.0 && net_->rng().bernoulli(imp.corrupt) &&
        pkt.size() > 0) {
      Bytes bytes = pkt.data();
      std::size_t idx = net_->rng().uniform_int(bytes.size());
      // Flip at least one bit (xor with a non-zero mask).
      bytes[idx] ^= static_cast<std::uint8_t>(
          1 + net_->rng().uniform_int(255));
      Packet corrupted = pkt;
      corrupted.set_data(std::move(bytes));
      c_corrupted_.add();
      c_rx_.add();
      candidate->deliver(corrupted);
      return;
    }
    c_rx_.add();
    candidate->deliver(pkt);
    return;
  }
}

Interface* Link::resolve(BytesView addr_octets, const Interface* asker) const {
  for (Interface* i : ifaces_) {
    if (i == asker) continue;
    if (i->answers_for(addr_octets)) return i;
  }
  return nullptr;
}

}  // namespace mip6
