#include "net/packet.hpp"

// Header-only today; TU anchors the target.
