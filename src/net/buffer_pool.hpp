// Recycling pool for packet byte buffers.
//
// Forwarding a datagram needs a mutated copy of its octets (hop-limit
// decrement), and with tens of routers relaying CBR streams that is the
// single biggest source of allocator traffic in a run. The pool keeps a
// bounded set of strong buffer references; a slot whose reference count has
// dropped back to 1 (every Packet that shared it is gone) is handed out
// again with its heap capacity intact, so the steady-state forwarding path
// does vector::assign into recycled storage instead of malloc/free per hop.
//
// Consumers receive shared_ptr<Bytes> but typically store it as a Packet's
// shared_ptr<const Bytes>: the pool keeps the only mutable handle, and it
// only mutates (clears) a buffer after proving no one else holds it. There
// is no custom deleter — slots are plain strong references — so pool
// lifetime is decoupled from buffer lifetime and destruction order between
// the pool, the scheduler, and in-flight packets cannot dangle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/buffer.hpp"

namespace mip6 {

class BufferPool {
 public:
  /// Upper bound on retained slots; beyond it checkout() falls back to plain
  /// allocation (the buffer is simply never recycled). Sized to absorb the
  /// in-flight packet population of the largest bench topologies.
  static constexpr std::size_t kMaxSlots = 256;

  /// Returns an empty buffer, reusing a retired slot's capacity when one is
  /// available.
  std::shared_ptr<Bytes> checkout() {
    const std::size_t n = slots_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      std::size_t i = cursor_;
      cursor_ = (cursor_ + 1 == n) ? 0 : cursor_ + 1;
      // Parallel mode: only reuse slots proven sole-owned at the last
      // window barrier. A relaxed use_count()==1 alone would not order the
      // remote shard's release before our reuse; the barrier does. A slot
      // safe at the barrier is sole-owned by this pool and can only be
      // handed out again by this shard's own thread.
      if (parallel_ && (i >= safe_.size() || safe_[i] == 0)) continue;
      if (slots_[i].use_count() == 1) {
        ++reused_;
        slots_[i]->clear();
        return slots_[i];
      }
    }
    ++fresh_;
    auto buf = std::make_shared<Bytes>();
    if (slots_.size() < kMaxSlots) {
      slots_.push_back(buf);
      if (parallel_) safe_.push_back(0);
    }
    return buf;
  }

  /// Enters/leaves barrier-gated reuse (one pool per shard under parallel
  /// execution; serial pools skip the safe-slot bookkeeping entirely).
  void set_parallel(bool on) {
    parallel_ = on;
    safe_.assign(on ? slots_.size() : 0, 0);
  }

  /// Controller-side, at every window barrier: records which slots are
  /// sole-owned right now. The barrier's synchronization makes any prior
  /// cross-shard release happen-before the next reuse.
  void mark_safe() {
    safe_.resize(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      safe_[i] = slots_[i].use_count() == 1 ? 1 : 0;
    }
  }

  /// Checkout pre-filled with a copy of `src` (the common forward-path use).
  std::shared_ptr<Bytes> checkout_copy(const Bytes& src) {
    auto buf = checkout();
    buf->assign(src.begin(), src.end());
    return buf;
  }

  std::size_t slots() const { return slots_.size(); }
  std::uint64_t reused() const { return reused_; }
  std::uint64_t fresh() const { return fresh_; }

 private:
  std::vector<std::shared_ptr<Bytes>> slots_;
  std::vector<std::uint8_t> safe_;  // parallel mode: barrier-proven sole-owned
  bool parallel_ = false;
  std::size_t cursor_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t fresh_ = 0;
};

}  // namespace mip6
