// A packet is the serialized octets of a complete IPv6 datagram plus
// simulator-side metadata (uid, creation time) that never appears "on the
// wire". Layers above parse/serialize the octets; the net layer only moves
// and counts them.
//
// The octets are held behind a shared immutable buffer, so copying a Packet
// — which delivery fan-out does once per receiver per hop — is a reference
// bump, not a byte copy. Anything that needs different octets (hop-limit
// decrement, corruption) installs a fresh buffer via set_data()/set_buffer();
// in-place mutation is impossible by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/time.hpp"
#include "util/buffer.hpp"

namespace mip6 {

class Packet {
 public:
  using Buffer = std::shared_ptr<const Bytes>;

  Packet() = default;
  Packet(Buffer data, std::uint64_t uid, Time created)
      : data_(std::move(data)), uid_(uid), created_(created) {}
  Packet(Bytes data, std::uint64_t uid, Time created)
      : Packet(std::make_shared<const Bytes>(std::move(data)), uid, created) {}

  const Bytes& data() const { return data_ ? *data_ : empty_bytes(); }
  BytesView view() const { return data(); }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  std::uint64_t uid() const { return uid_; }
  Time created() const { return created_; }

  /// The shared buffer itself (may be null for a default-constructed packet).
  const Buffer& buffer() const { return data_; }

  /// Replaces the octets, keeping the packet identity (uid, creation time).
  /// Used by forwarding to install the hop-limit-decremented copy.
  void set_data(Bytes data) {
    data_ = std::make_shared<const Bytes>(std::move(data));
  }
  void set_buffer(Buffer data) { data_ = std::move(data); }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  Buffer data_;
  std::uint64_t uid_ = 0;
  Time created_ = Time::zero();
};

}  // namespace mip6
