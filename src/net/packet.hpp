// A packet is the serialized octets of a complete IPv6 datagram plus
// simulator-side metadata (uid, creation time) that never appears "on the
// wire". Layers above parse/serialize the octets; the net layer only moves
// and counts them.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/buffer.hpp"

namespace mip6 {

class Packet {
 public:
  Packet() = default;
  Packet(Bytes data, std::uint64_t uid, Time created)
      : data_(std::move(data)), uid_(uid), created_(created) {}

  const Bytes& data() const { return data_; }
  BytesView view() const { return data_; }
  std::size_t size() const { return data_.size(); }
  std::uint64_t uid() const { return uid_; }
  Time created() const { return created_; }

  /// Replaces the octets (used by forwarding to decrement hop limit without
  /// reallocating the packet identity).
  void set_data(Bytes data) { data_ = std::move(data); }

 private:
  Bytes data_;
  std::uint64_t uid_ = 0;
  Time created_ = Time::zero();
};

}  // namespace mip6
