#include "net/mfc.hpp"

#include <algorithm>
#include <bit>

#include "util/errors.hpp"

namespace mip6 {

std::size_t IfSet::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

MifTable::MifTable(std::size_t max_ifaces)
    : max_(std::min(max_ifaces, IfSet::kBits)) {}

Mifi MifTable::add(IfaceId iface) {
  auto it = std::lower_bound(ifaces_.begin(), ifaces_.end(), iface);
  if (it != ifaces_.end() && *it == iface) {
    return static_cast<Mifi>(it - ifaces_.begin());
  }
  if (ifaces_.size() >= max_) {
    throw LogicError("MifTable: interface count exceeds configured width");
  }
  it = ifaces_.insert(it, iface);
  ++version_;
  return static_cast<Mifi>(it - ifaces_.begin());
}

Mifi MifTable::lookup(IfaceId iface) const {
  auto it = std::lower_bound(ifaces_.begin(), ifaces_.end(), iface);
  if (it == ifaces_.end() || *it != iface) return kNoMif;
  return static_cast<Mifi>(it - ifaces_.begin());
}

FlowCache::FlowCache(std::size_t initial_slots) {
  std::size_t n = 1;
  while (n < initial_slots) n <<= 1;
  slots_.resize(n);
}

std::uint64_t FlowCache::hash(const FlowKey& k) {
  // splitmix64-style mix over the four words; deterministic by design
  // (same seed, same probe order, byte-identical traces).
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t w : k.w) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
  }
  return h;
}

FlowCache::Slot& FlowCache::probe(const FlowKey& k) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash(k)) & mask;
  for (;;) {
    Slot& s = slots_[i];
    if (!s.used || s.entry.key == k) return s;
    i = (i + 1) & mask;
  }
}

MfcEntry* FlowCache::find(const FlowKey& k) {
  Slot& s = probe(k);
  if (!s.used || s.entry.epoch != epoch_) return nullptr;
  return &s.entry;
}

MfcEntry& FlowCache::insert(const FlowKey& k) {
  // Slots are never erased, so growth keyed on occupancy keeps probe
  // chains short even when most slots are stale.
  if ((used_ + 1) * 10 >= slots_.size() * 7) grow();
  Slot& s = probe(k);
  if (!s.used) {
    s.used = true;
    s.entry.key = k;
    ++used_;
  }
  s.entry.epoch = epoch_;
  return s.entry;
}

void FlowCache::invalidate(const FlowKey& k) {
  Slot& s = probe(k);
  if (s.used) s.entry.epoch = 0;
}

void FlowCache::clear() {
  for (Slot& s : slots_) s = Slot{};
  used_ = 0;
  ++epoch_;
}

MfcEntry& ShardedFlowCache::insert(const FlowKey& k, Mifi rpf) {
  if (rpf >= shards_.size()) {
    shards_.resize(static_cast<std::size_t>(rpf) + 1,
                   FlowCache(initial_slots_));
  }
  return shards_[rpf].insert(k);
}

std::size_t ShardedFlowCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.size();
  return n;
}

void FlowCache::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  used_ = 0;
  for (Slot& s : old) {
    if (!s.used) continue;
    Slot& dst = probe(s.entry.key);
    dst.used = true;
    dst.entry = s.entry;  // keeps the slot's own epoch (stale stays stale)
    ++used_;
  }
}

}  // namespace mip6
