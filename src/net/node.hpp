// A node: named container of interfaces. Whether the node behaves as a host,
// a router, a home agent or any combination is decided by the protocol
// engines instantiated on top of it.
//
// Fault injection: crash() powers the node off — every interface detaches
// (remembering its link) and registered crash hooks run so the protocol
// engines wipe their soft state; restart() re-attaches the interfaces and
// runs restart hooks so the engines re-initialize. Re-convergence after a
// restart is therefore real: addresses are re-autoconfigured, neighbors are
// re-learned, and multicast/binding state is rebuilt by the protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/interface.hpp"
#include "sim/scheduler.hpp"

namespace mip6 {

class Link;
class Network;

using NodeId = std::uint32_t;

class Node {
 public:
  Node(Network& net, NodeId id, std::string name)
      : net_(&net), id_(id), name_(std::move(name)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Network& network() const { return *net_; }
  /// The node's scheduler domain (logical process): node N is domain N+1,
  /// kWorldDomain 0 being the structural context.
  Domain domain() const { return id_ + 1; }

  /// Creates a new interface on this node. The interface id is unique across
  /// the whole network.
  Interface& add_interface();

  const std::vector<std::unique_ptr<Interface>>& interfaces() const {
    return ifaces_;
  }
  Interface& iface(std::size_t i) const { return *ifaces_.at(i); }
  std::size_t iface_count() const { return ifaces_.size(); }

  /// Interface with the given global id; throws if not on this node.
  Interface& iface_by_id(IfaceId id) const;

  // --- Crash / restart (fault injection) --------------------------------
  bool up() const { return up_; }
  /// Powers the node off: detaches every attached interface (links are
  /// remembered for restart()) and invokes the crash hooks. No-op if the
  /// node is already down.
  void crash();
  /// Powers the node back on: re-attaches each interface to the link it
  /// was on at crash time and invokes the restart hooks. No-op if up.
  void restart();
  /// Registered by protocol wiring (e.g. the scenario World): runs during
  /// crash(), after interfaces have detached — wipe soft state here.
  void add_crash_hook(std::function<void()> h) {
    crash_hooks_.push_back(std::move(h));
  }
  /// Runs during restart(), after interfaces have re-attached — re-enable
  /// protocol engines here.
  void add_restart_hook(std::function<void()> h) {
    restart_hooks_.push_back(std::move(h));
  }

 private:
  Network* net_;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<Interface>> ifaces_;
  bool up_ = true;
  std::vector<std::pair<Interface*, Link*>> links_at_crash_;
  std::vector<std::function<void()>> crash_hooks_;
  std::vector<std::function<void()>> restart_hooks_;
};

}  // namespace mip6
