// A node: named container of interfaces. Whether the node behaves as a host,
// a router, a home agent or any combination is decided by the protocol
// engines instantiated on top of it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/interface.hpp"

namespace mip6 {

class Network;

using NodeId = std::uint32_t;

class Node {
 public:
  Node(Network& net, NodeId id, std::string name)
      : net_(&net), id_(id), name_(std::move(name)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Network& network() const { return *net_; }

  /// Creates a new interface on this node. The interface id is unique across
  /// the whole network.
  Interface& add_interface();

  const std::vector<std::unique_ptr<Interface>>& interfaces() const {
    return ifaces_;
  }
  Interface& iface(std::size_t i) const { return *ifaces_.at(i); }
  std::size_t iface_count() const { return ifaces_.size(); }

  /// Interface with the given global id; throws if not on this node.
  Interface& iface_by_id(IfaceId id) const;

 private:
  Network* net_;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<Interface>> ifaces_;
};

}  // namespace mip6
