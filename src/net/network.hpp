// The simulation world: owns the scheduler, rng, trace, counters, all nodes
// and all links. One Network per replication; replications run in parallel
// on separate Network instances with derived seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "stats/counters.hpp"

namespace mip6 {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Scheduler& scheduler() { return sched_; }
  Rng& rng() { return rng_; }
  Trace& trace() { return trace_; }
  CounterRegistry& counters() { return counters_; }
  BufferPool& buffer_pool() { return buffer_pool_; }
  Time now() const { return sched_.now(); }

  Node& add_node(const std::string& name);
  Link& add_link(const std::string& name, Time delay = Time::us(10),
                 std::uint64_t bit_rate_bps = 0);

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  Node& node(NodeId id) const { return *nodes_.at(id); }
  Link& link(LinkId id) const { return *links_.at(id); }
  Node& node_by_name(const std::string& name) const;
  Link& link_by_name(const std::string& name) const;

  /// Fresh packet with a network-unique uid stamped at the current time.
  Packet make_packet(Bytes data);
  Packet make_packet(Packet::Buffer data);

  /// Observation hook invoked for every link transmission (after the link's
  /// own byte accounting). Core metrics classify traffic here.
  using TxHook = std::function<void(const Link&, const Interface& from,
                                    const Packet&)>;
  void add_tx_hook(TxHook hook) { tx_hooks_.push_back(std::move(hook)); }
  void notify_tx(const Link& link, const Interface& from, const Packet& pkt) {
    for (auto& h : tx_hooks_) h(link, from, pkt);
  }

  IfaceId next_iface_id() { return next_iface_id_++; }

 private:
  Scheduler sched_;
  Rng rng_;
  Trace trace_;
  CounterRegistry counters_;
  BufferPool buffer_pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<TxHook> tx_hooks_;
  std::uint64_t next_packet_uid_ = 1;
  IfaceId next_iface_id_ = 0;
};

}  // namespace mip6
