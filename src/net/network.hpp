// The simulation world: owns the scheduler, rng, trace, counters, all nodes
// and all links. One Network per replication; replications run in parallel
// on separate Network instances with derived seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "stats/counters.hpp"

namespace mip6 {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Scheduler& scheduler() { return sched_; }
  /// The calling context's random stream: node domains draw from their own
  /// xoshiro substream (derived from the world seed by domain id), the
  /// world/structural context from the legacy stream. Per-domain streams
  /// are what keep draws identical across thread counts — a domain's draw
  /// sequence depends only on its own event sequence, never on how other
  /// domains' events interleave with it.
  Rng& rng() {
    const Domain d = sched_.current_domain();
    return d == kWorldDomain ? rng_ : rng_streams_[d - 1];
  }
  Trace& trace() { return trace_; }
  CounterRegistry& counters() { return counters_; }
  /// The calling shard's buffer pool. The controller/structural context
  /// shares shard 0's pool — they run on the same thread.
  BufferPool& buffer_pool() {
    const int s = Scheduler::current_shard_slot();
    return s <= 0 ? buffer_pool_ : *extra_pools_[static_cast<std::size_t>(s) -
                                                 1];
  }
  Time now() const { return sched_.now(); }

  /// Partitions execution into per-thread shards (see Scheduler): installs
  /// per-shard counter overlays, trace buffers and buffer pools, the
  /// barrier merge hook, and hands the domain->shard map to the scheduler.
  /// `domain_shard` is indexed by domain; `lookahead` is the minimum link
  /// propagation delay. shards <= 1 restores serial execution.
  void enable_sharding(std::vector<std::uint32_t> domain_shard,
                       std::uint32_t shards, Time lookahead);
  void disable_sharding();

  Node& add_node(const std::string& name);
  Link& add_link(const std::string& name, Time delay = Time::us(10),
                 std::uint64_t bit_rate_bps = 0);

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  Node& node(NodeId id) const { return *nodes_.at(id); }
  Link& link(LinkId id) const { return *links_.at(id); }
  Node& node_by_name(const std::string& name) const;
  Link& link_by_name(const std::string& name) const;

  /// Fresh packet with a network-unique uid stamped at the current time.
  Packet make_packet(Bytes data);
  Packet make_packet(Packet::Buffer data);

  /// Observation hook invoked for every link transmission (after the link's
  /// own byte accounting). Core metrics classify traffic here.
  using TxHook = std::function<void(const Link&, const Interface& from,
                                    const Packet&)>;
  void add_tx_hook(TxHook hook) { tx_hooks_.push_back(std::move(hook)); }
  void notify_tx(const Link& link, const Interface& from, const Packet& pkt) {
    for (auto& h : tx_hooks_) h(link, from, pkt);
  }

  IfaceId next_iface_id() { return next_iface_id_++; }

 private:
  std::uint64_t next_uid();

  Scheduler sched_;
  std::uint64_t seed_;
  Rng rng_;
  /// One independent stream per node domain (index d-1), created with the
  /// node so the mapping never depends on execution order.
  std::vector<Rng> rng_streams_;
  Trace trace_;
  CounterRegistry counters_;
  BufferPool buffer_pool_;
  std::vector<std::unique_ptr<BufferPool>> extra_pools_;  // shards 1..S-1
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<TxHook> tx_hooks_;
  /// Per-domain uid counters: uids are unique network-wide (domain id in
  /// the top bits) and assigned by the packet-making domain alone, so they
  /// too are identical at any thread count.
  std::vector<std::uint64_t> next_packet_uid_;
  IfaceId next_iface_id_ = 0;
};

}  // namespace mip6
