// Multi-access link (LAN segment / "Link N" in the paper's Figure 1).
//
// A transmission by one attached interface is delivered to every other
// attached interface after serialization delay (size/bit-rate) plus
// propagation delay. Per-link byte counters feed the bandwidth-consumption
// metrics of Section 4.3; an optional drop function injects loss (used by
// the binding-lifetime ablation).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/interface.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mip6 {

class Network;

using LinkId = std::uint32_t;

class Link {
 public:
  /// Returns true if the packet should be dropped on delivery to `to`.
  using DropFn = std::function<bool(const Packet&, const Interface& to)>;

  Link(Network& net, LinkId id, std::string name, Time delay,
       std::uint64_t bit_rate_bps)
      : net_(&net), id_(id), name_(std::move(name)), delay_(delay),
        bit_rate_bps_(bit_rate_bps) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  LinkId id() const { return id_; }
  const std::string& name() const { return name_; }
  Time delay() const { return delay_; }

  /// Transmits from `from`. Without `l2_dst`: delivered to all other
  /// attached interfaces (broadcast/multicast frame). With `l2_dst`:
  /// delivered only to that interface (link-layer unicast).
  void transmit(const Interface& from, const Packet& pkt,
                std::optional<IfaceId> l2_dst = std::nullopt);

  /// Neighbor resolution on this link: the attached interface (other than
  /// `asker`) answering for `addr_octets`, or nullptr.
  Interface* resolve(BytesView addr_octets, const Interface* asker) const;

  const std::vector<Interface*>& attached() const { return ifaces_; }

  std::uint64_t tx_packets() const { return tx_packets_; }
  /// Octets placed onto the link (counted once per transmission, not per
  /// receiver — a LAN carries the frame once).
  std::uint64_t tx_bytes() const { return tx_bytes_; }

  void set_drop_fn(DropFn fn) { drop_ = std::move(fn); }

 private:
  friend class Interface;
  void do_attach(Interface& iface);
  void do_detach(Interface& iface);

  Network* net_;
  LinkId id_;
  std::string name_;
  Time delay_;
  std::uint64_t bit_rate_bps_;  // 0 = infinitely fast serialization
  std::vector<Interface*> ifaces_;
  DropFn drop_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
};

}  // namespace mip6
