// Multi-access link (LAN segment / "Link N" in the paper's Figure 1).
//
// A transmission by one attached interface is delivered to every other
// attached interface after serialization delay (size/bit-rate) plus
// propagation delay. Per-link byte counters feed the bandwidth-consumption
// metrics of Section 4.3; an optional drop function injects loss (used by
// the binding-lifetime ablation).
//
// Fault-injection surface (chaos engine): a link can be administratively
// down (transmissions and in-flight deliveries are dropped and counted) and
// can carry per-direction impairments — random loss, random single-byte
// corruption (the corrupted frame is still delivered, so every parser above
// must reject it), and bounded delay jitter. All randomness comes from the
// owning Network's RNG, so a seeded run is bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/interface.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "stats/counters.hpp"

namespace mip6 {

class Network;

using LinkId = std::uint32_t;

/// Degradation applied to deliveries (chaos engine "degrade" windows).
struct LinkImpairment {
  /// Probability a delivery is silently lost.
  double loss = 0.0;
  /// Probability a delivered frame has one random byte flipped.
  double corrupt = 0.0;
  /// Extra per-delivery delay, uniform in [0, jitter].
  Time jitter = Time::zero();

  bool any() const {
    return loss > 0.0 || corrupt > 0.0 || jitter > Time::zero();
  }
};

class Link {
 public:
  /// Returns true if the packet should be dropped on delivery to `to`.
  using DropFn = std::function<bool(const Packet&, const Interface& to)>;

  Link(Network& net, LinkId id, std::string name, Time delay,
       std::uint64_t bit_rate_bps);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  LinkId id() const { return id_; }
  const std::string& name() const { return name_; }
  Time delay() const { return delay_; }

  /// Transmits from `from`. Without `l2_dst`: delivered to all other
  /// attached interfaces (broadcast/multicast frame). With `l2_dst`:
  /// delivered only to that interface (link-layer unicast).
  void transmit(const Interface& from, const Packet& pkt,
                std::optional<IfaceId> l2_dst = std::nullopt);

  /// Neighbor resolution on this link: the attached interface (other than
  /// `asker`) answering for `addr_octets`, or nullptr.
  Interface* resolve(BytesView addr_octets, const Interface* asker) const;

  const std::vector<Interface*>& attached() const { return ifaces_; }

  // --- Administrative state (fault injection) ---------------------------
  bool up() const { return up_; }
  /// Takes the link down / brings it back up. While down, transmissions
  /// are dropped at the sender and frames already in flight are dropped on
  /// delivery (both counted under dropped()).
  void set_up(bool up);

  /// Applies `imp` to every delivery on this link (both directions).
  void set_impairment(LinkImpairment imp) { impairment_ = imp; }
  /// Applies `imp` only to deliveries *toward* interface `to`, overriding
  /// the link-wide impairment for that direction.
  void set_impairment_towards(IfaceId to, LinkImpairment imp) {
    directional_impairments_[to] = imp;
  }
  void clear_impairments() {
    impairment_ = LinkImpairment{};
    directional_impairments_.clear();
  }
  const LinkImpairment& impairment() const { return impairment_; }

  // --- Counters ---------------------------------------------------------
  // Backed by shard-safe registry cells (transmit and delivery run on the
  // endpoints' shards); reads merge outstanding shard overlays, so they are
  // for quiesced contexts (tests, metrics probes) — not packet events.
  std::uint64_t tx_packets() const { return c_tx_.value(); }
  /// Octets placed onto the link (counted once per transmission, not per
  /// receiver — a LAN carries the frame once).
  std::uint64_t tx_bytes() const { return c_tx_bytes_.value(); }
  /// Per-receiver deliveries that reached an interface's rx handler.
  std::uint64_t rx_packets() const { return c_rx_.value(); }
  /// Per-receiver deliveries lost: drop_fn hits, loss impairment, link-down
  /// drops (in-flight and at the sender).
  std::uint64_t dropped_packets() const { return c_dropped_.value(); }
  /// Deliveries that arrived with an injected byte flip.
  std::uint64_t corrupted_packets() const { return c_corrupted_.value(); }

  void set_drop_fn(DropFn fn) { drop_ = std::move(fn); }

 private:
  friend class Interface;
  void do_attach(Interface& iface);
  void do_detach(Interface& iface);

  const LinkImpairment& impairment_towards(IfaceId to) const;
  void deliver_one(IfaceId to_id, const Packet& pkt);
  void count(const char* what, std::uint64_t delta = 1);

  Network* net_;
  LinkId id_;
  std::string name_;
  Time delay_;
  std::uint64_t bit_rate_bps_;  // 0 = infinitely fast serialization
  std::vector<Interface*> ifaces_;
  DropFn drop_;
  bool up_ = true;
  LinkImpairment impairment_;
  std::map<IfaceId, LinkImpairment> directional_impairments_;
  std::string counter_prefix_;
  // Shard-routing cells for the per-transmission / per-delivery counters,
  // resolved once at construction. count() stays for the cold names.
  CounterCell c_tx_;
  CounterCell c_tx_bytes_;
  CounterCell c_rx_;
  CounterCell c_dropped_;
  CounterCell c_corrupted_;
};

}  // namespace mip6
