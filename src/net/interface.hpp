// A network interface: the attachment point of a node to a (multi-access)
// link. Interfaces can detach and re-attach at runtime — that is the entire
// mobility model at this layer; everything else (care-of addresses, binding
// updates) is built above it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/packet.hpp"

namespace mip6 {

class Link;
class Node;

using IfaceId = std::uint32_t;

class Interface {
 public:
  /// Called with each packet delivered to this interface by its link.
  using RxHandler = std::function<void(const Packet&)>;
  /// Called after attach/detach; the new link may be nullptr (detached).
  using LinkChangeHandler = std::function<void(Link*)>;

  Interface(IfaceId id, Node& node) : id_(id), node_(&node) {}
  Interface(const Interface&) = delete;
  Interface& operator=(const Interface&) = delete;

  IfaceId id() const { return id_; }
  Node& node() const { return *node_; }
  Link* link() const { return link_; }
  bool attached() const { return link_ != nullptr; }

  /// Attaches to `link` (detaching from any current link first).
  void attach(Link& link);
  void detach();

  /// Broadcast/multicast transmission: delivered to every other interface on
  /// the attached link. A packet sent while detached is silently dropped
  /// (the host radio is "out of coverage").
  void send(const Packet& pkt);

  /// Link-layer unicast: delivered only to the interface with id `l2_dst`
  /// (the outcome of neighbor resolution). Dropped if detached.
  void send_to(const Packet& pkt, IfaceId l2_dst);

  /// "Does this interface answer neighbor resolution for address X?" —
  /// installed by the L3 stack (address passed as its 16 raw octets so the
  /// net layer stays L3-agnostic); covers owned addresses and, on home
  /// agents, proxied (intercepted) home addresses — i.e. proxy Neighbor
  /// Discovery is modelled by its outcome.
  using AddressFilter = std::function<bool(BytesView)>;
  void set_address_filter(AddressFilter f) { addr_filter_ = std::move(f); }
  bool answers_for(BytesView addr) const {
    return addr_filter_ && addr_filter_(addr);
  }

  /// Delivery from the link (called by Link, not by users).
  void deliver(const Packet& pkt) const {
    if (rx_) rx_(pkt);
  }

  void set_rx_handler(RxHandler h) { rx_ = std::move(h); }
  void set_link_change_handler(LinkChangeHandler h) {
    on_link_change_ = std::move(h);
  }

  std::string name() const;

 private:
  IfaceId id_;
  Node* node_;
  Link* link_ = nullptr;
  RxHandler rx_;
  LinkChangeHandler on_link_change_;
  AddressFilter addr_filter_;
};

}  // namespace mip6
