#include "net/node.hpp"

#include "net/network.hpp"
#include "util/errors.hpp"

namespace mip6 {

Interface& Node::add_interface() {
  ifaces_.push_back(std::make_unique<Interface>(net_->next_iface_id(), *this));
  return *ifaces_.back();
}

Interface& Node::iface_by_id(IfaceId id) const {
  for (const auto& i : ifaces_) {
    if (i->id() == id) return *i;
  }
  throw LogicError("node " + name_ + " has no interface " +
                   std::to_string(id));
}

void Node::crash() {
  if (!up_) return;
  up_ = false;
  links_at_crash_.clear();
  for (const auto& i : ifaces_) {
    links_at_crash_.emplace_back(i.get(), i->link());
    if (i->attached()) i->detach();
  }
  net_->counters().add("node/" + name_ + "/crash");
  for (const auto& h : crash_hooks_) h();
}

void Node::restart() {
  if (up_) return;
  up_ = true;
  for (auto& [iface, link] : links_at_crash_) {
    if (link != nullptr) iface->attach(*link);
  }
  links_at_crash_.clear();
  net_->counters().add("node/" + name_ + "/restart");
  for (const auto& h : restart_hooks_) h();
}

}  // namespace mip6
