#include "net/node.hpp"

#include "net/network.hpp"
#include "util/errors.hpp"

namespace mip6 {

Interface& Node::add_interface() {
  ifaces_.push_back(std::make_unique<Interface>(net_->next_iface_id(), *this));
  return *ifaces_.back();
}

Interface& Node::iface_by_id(IfaceId id) const {
  for (const auto& i : ifaces_) {
    if (i->id() == id) return *i;
  }
  throw LogicError("node " + name_ + " has no interface " +
                   std::to_string(id));
}

}  // namespace mip6
