#include "net/network.hpp"

#include "util/errors.hpp"

namespace mip6 {

Network::Network(std::uint64_t seed) : rng_(seed) {}

Node& Network::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<Node>(
      *this, static_cast<NodeId>(nodes_.size()), name));
  return *nodes_.back();
}

Link& Network::add_link(const std::string& name, Time delay,
                        std::uint64_t bit_rate_bps) {
  links_.push_back(std::make_unique<Link>(
      *this, static_cast<LinkId>(links_.size()), name, delay, bit_rate_bps));
  return *links_.back();
}

Node& Network::node_by_name(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n->name() == name) return *n;
  }
  throw LogicError("no node named " + name);
}

Link& Network::link_by_name(const std::string& name) const {
  for (const auto& l : links_) {
    if (l->name() == name) return *l;
  }
  throw LogicError("no link named " + name);
}

Packet Network::make_packet(Bytes data) {
  return Packet(std::move(data), next_packet_uid_++, now());
}

Packet Network::make_packet(Packet::Buffer data) {
  return Packet(std::move(data), next_packet_uid_++, now());
}

}  // namespace mip6
