#include "net/network.hpp"

#include "util/errors.hpp"

namespace mip6 {

Network::Network(std::uint64_t seed) : seed_(seed), rng_(seed) {
  next_packet_uid_.push_back(0);  // kWorldDomain
}

Node& Network::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<Node>(
      *this, static_cast<NodeId>(nodes_.size()), name));
  // One scheduler domain per node, in lockstep with node ids (id + 1).
  const Domain d = sched_.add_domain();
  if (d != nodes_.back()->domain()) {
    throw LogicError("node/domain id mismatch");
  }
  rng_streams_.emplace_back(Rng::derive_seed(seed_, d));
  next_packet_uid_.push_back(0);
  return *nodes_.back();
}

Link& Network::add_link(const std::string& name, Time delay,
                        std::uint64_t bit_rate_bps) {
  links_.push_back(std::make_unique<Link>(
      *this, static_cast<LinkId>(links_.size()), name, delay, bit_rate_bps));
  return *links_.back();
}

Node& Network::node_by_name(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n->name() == name) return *n;
  }
  throw LogicError("no node named " + name);
}

Link& Network::link_by_name(const std::string& name) const {
  for (const auto& l : links_) {
    if (l->name() == name) return *l;
  }
  throw LogicError("no link named " + name);
}

Packet Network::make_packet(Bytes data) {
  return Packet(std::move(data), next_uid(), now());
}

Packet Network::make_packet(Packet::Buffer data) {
  return Packet(std::move(data), next_uid(), now());
}

std::uint64_t Network::next_uid() {
  // Domain id in the top bits, per-domain counter below: unique across the
  // network and independent of how domains interleave.
  const Domain d = sched_.current_domain();
  return (static_cast<std::uint64_t>(d) << 40) | ++next_packet_uid_[d];
}

void Network::enable_sharding(std::vector<std::uint32_t> domain_shard,
                              std::uint32_t shards, Time lookahead) {
  if (shards <= 1) {
    disable_sharding();
    return;
  }
  counters_.enable_shards(shards);
  trace_.enable_shards(shards);
  buffer_pool_.set_parallel(true);
  extra_pools_.clear();
  for (std::uint32_t s = 1; s < shards; ++s) {
    extra_pools_.push_back(std::make_unique<BufferPool>());
    extra_pools_.back()->set_parallel(true);
  }
  sched_.set_barrier_hook([this] {
    trace_.merge_shards();
    counters_.merge_shards();
    buffer_pool_.mark_safe();
    for (auto& p : extra_pools_) p->mark_safe();
  });
  sched_.configure_shards(std::move(domain_shard), shards, lookahead);
}

void Network::disable_sharding() {
  sched_.configure_serial();
  sched_.set_barrier_hook(nullptr);
  trace_.disable_shards();
  counters_.disable_shards();
  buffer_pool_.set_parallel(false);
  extra_pools_.clear();
}

}  // namespace mip6
