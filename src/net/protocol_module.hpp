// Uniform lifecycle for every protocol engine instantiated on a node.
//
// A NodeRuntime (core layer) owns an ordered set of ProtocolModules —
// IPv6 stack, dispatchers, MLD, PIM-DM, Mobile IPv6 engines — and drives
// them through one contract instead of special-casing each engine:
//
//   start()      bring the protocol up on the node's attached interfaces
//                (idempotent; used at construction and after restart)
//   stop()       deterministic teardown — cancel timers and unregister
//                every handler the module installed in lower layers, so a
//                World can be torn down and rebuilt within one process
//   reset()      wipe protocol soft state without power-cycling the node
//   on_crash()   crash semantics (default: reset()); invoked in reverse
//                construction order after the node's interfaces detached
//   on_restart() cold-boot semantics (default: start()); invoked in
//                construction order after the interfaces re-attached
//
// module_kind() names the engine ("pimdm", "mld", "ha", ...) — the same
// token the module uses to scope its counters and trace records — and is
// what scenario specs and generic fault/audit code look modules up by.
#pragma once

namespace mip6 {

class ProtocolModule {
 public:
  virtual ~ProtocolModule() = default;

  /// Short kind token, e.g. "pimdm". Doubles as the module's counter/trace
  /// scope prefix and the name scenario specs select modules by.
  virtual const char* module_kind() const = 0;

  virtual void start() {}
  virtual void stop() {}
  virtual void reset() {}
  virtual void on_crash() { reset(); }
  virtual void on_restart() { start(); }

 protected:
  ProtocolModule() = default;
  ProtocolModule(const ProtocolModule&) = delete;
  ProtocolModule& operator=(const ProtocolModule&) = delete;
};

}  // namespace mip6
