#include "net/interface.hpp"

#include "net/link.hpp"
#include "net/node.hpp"

namespace mip6 {

void Interface::attach(Link& link) {
  if (link_ == &link) return;
  if (link_ != nullptr) link_->do_detach(*this);
  link_ = &link;
  link.do_attach(*this);
  if (on_link_change_) on_link_change_(link_);
}

void Interface::detach() {
  if (link_ == nullptr) return;
  link_->do_detach(*this);
  link_ = nullptr;
  if (on_link_change_) on_link_change_(nullptr);
}

void Interface::send(const Packet& pkt) {
  if (link_ != nullptr) link_->transmit(*this, pkt);
}

void Interface::send_to(const Packet& pkt, IfaceId l2_dst) {
  if (link_ != nullptr) link_->transmit(*this, pkt, l2_dst);
}

std::string Interface::name() const {
  return node_->name() + "/if" + std::to_string(id_);
}

}  // namespace mip6
