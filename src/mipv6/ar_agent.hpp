// Access-router agent for the mcast-mobility delivery approach (Helmy).
//
// The MN's reachability is a dedicated multicast group G_mn. On arrival the
// MN sends an ArJoin to the link's access router; the agent injects MLD
// listener state for G_mn on that interface (via a real proxy-originated
// Report, so co-located queriers learn it too), which pulls the (HA, G_mn)
// dense-mode tree toward the new link. On handoff the MN sends an ArPrune
// to the *previous* access router, which retracts the listener immediately
// instead of waiting out T_MLI — handoff = join-new / prune-old, repaired
// entirely by ordinary multicast routing with no per-MN tunnel state.
//
// The injected listener ages out at T_MLI like any other; the MN refreshes
// its ArJoin, so an MN that silently vanishes costs at most the same stale
// window as a plain MLD listener.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "ipv6/stack.hpp"
#include "ipv6/udp_demux.hpp"
#include "mipv6/proxy_messages.hpp"
#include "mld/router.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class AccessRouterAgent : public ProtocolModule {
 public:
  AccessRouterAgent(Ipv6Stack& stack, UdpDemux& udp, MldRouter& mld);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "ar-agent"; }
  /// Crash semantics: forget the join table silently — the MLD listener
  /// state it fronts is wiped alongside by the router's own MLD crash.
  void on_crash() override { joins_.clear(); }
  void on_restart() override {}
  void stop() override;

  // --- Introspection ------------------------------------------------------
  std::size_t join_count() const { return joins_.size(); }
  bool joined_for(const Address& home) const { return joins_.contains(home); }

 private:
  struct Join {
    IfaceId iface;
    Address group;  // the MN's reachability group G_mn
  };

  void on_ctrl(const UdpDatagram& udp, const ParsedDatagram& d, IfaceId iface);
  /// Drops `home`'s join, retracting the MLD listener unless another MN
  /// still holds the same (iface, group).
  void release(const Address& home);
  bool shared_by_other(const Address& home, const Join& j) const;
  void count(std::string_view name);
  template <typename DetailFn>
  void trace_event(const char* event, DetailFn&& detail_fn) const {
    stack_->network().trace().emit(stack_->network().now(), component_, event,
                                   std::forward<DetailFn>(detail_fn));
  }

  Ipv6Stack* stack_;
  UdpDemux* udp_;
  MldRouter* mld_;
  std::string component_;  // "ar/<node>"
  std::map<Address, Join> joins_;  // keyed by home address
};

}  // namespace mip6
