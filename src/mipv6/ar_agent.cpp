#include "mipv6/ar_agent.hpp"

#include "net/wire_stats.hpp"

namespace mip6 {

AccessRouterAgent::AccessRouterAgent(Ipv6Stack& stack, UdpDemux& udp,
                                     MldRouter& mld)
    : stack_(&stack), udp_(&udp), mld_(&mld),
      component_("ar/" + stack.node().name()) {
  udp.bind(kArAgentPort,
           [this](const UdpDatagram& u, const ParsedDatagram& d,
                  IfaceId iface) { on_ctrl(u, d, iface); });
}

void AccessRouterAgent::stop() {
  joins_.clear();
  udp_->unbind(kArAgentPort);
}

void AccessRouterAgent::on_ctrl(const UdpDatagram& udp,
                                const ParsedDatagram& d, IfaceId iface) {
  (void)d;
  ParseResult<MobilityCtrlMessage> msg =
      MobilityCtrlMessage::try_parse(udp.payload);
  if (!msg.ok()) {
    count("ar/rx-drop/bad-ctrl");
    note_parse_reject(stack_->network(), "mipv6", msg.failure());
    return;
  }
  const MobilityCtrlMessage& m = msg.value();
  switch (m.kind) {
    case MobilityCtrlKind::kArJoin: {
      count("ar/rx/join");
      trace_event("join", [&] {
        return "home=" + m.home.str() + " gmn=" + m.care_of_or_group.str() +
               " iface=" + std::to_string(iface);
      });
      auto it = joins_.find(m.home);
      // The join binds to the interface the request arrived on — the link
      // the MN is actually attached to.
      if (it != joins_.end() &&
          (it->second.iface != iface ||
           !(it->second.group == m.care_of_or_group))) {
        release(m.home);
        it = joins_.end();
      }
      Join j{iface, m.care_of_or_group};
      joins_[m.home] = j;
      // Refresh even when already joined: keeps the injected T_MLI alive.
      mld_->inject_proxy_report(iface, j.group);
      return;
    }
    case MobilityCtrlKind::kArPrune: {
      count("ar/rx/prune");
      trace_event("prune", [&] {
        return "home=" + m.home.str() + " gmn=" + m.care_of_or_group.str();
      });
      release(m.home);
      return;
    }
    default:
      // Proxy register/deregister landed on the AR port — misdirected.
      count("ar/rx-drop/bad-kind");
      return;
  }
}

void AccessRouterAgent::release(const Address& home) {
  auto it = joins_.find(home);
  if (it == joins_.end()) return;
  Join j = it->second;
  joins_.erase(it);
  if (!shared_by_other(home, j)) {
    mld_->retract_proxy_listener(j.iface, j.group);
  }
}

bool AccessRouterAgent::shared_by_other(const Address& home,
                                        const Join& j) const {
  for (const auto& [h, other] : joins_) {
    if (!(h == home) && other.iface == j.iface && other.group == j.group) {
      return true;
    }
  }
  return false;
}

void AccessRouterAgent::count(std::string_view name) {
  stack_->network().counters().add(name);
}

}  // namespace mip6
