// Mobile IPv6 configuration (draft-ietf-mobileip-ipv6-10 subset).
#pragma once

#include "sim/time.hpp"

namespace mip6 {

struct Mipv6Config {
  /// Binding lifetime requested in Binding Updates. The paper quotes the
  /// draft default MAX_BINDACK_TIMEOUT = 256 s as the relevant lifetime.
  Time binding_lifetime = Time::sec(256);
  /// How long before expiry the mobile node refreshes its binding.
  Time bu_refresh_interval = Time::sec(128);
  /// Time between attaching to a new link and having a usable care-of
  /// address (movement detection + router discovery + address
  /// configuration). The paper treats this as an opaque delay during which
  /// outgoing datagrams still carry the stale source address.
  Time movement_detection_delay = Time::ms(100);
  /// Request a Binding Acknowledgement (A bit).
  bool request_ack = true;
  /// Retransmit an un-acknowledged BU after this long.
  Time bu_retransmit_interval = Time::sec(1);
  int bu_max_retransmits = 4;
};

}  // namespace mip6
