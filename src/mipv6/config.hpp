// Mobile IPv6 configuration (draft-ietf-mobileip-ipv6-10 subset).
#pragma once

#include "sim/time.hpp"

namespace mip6 {

struct Mipv6Config {
  /// Binding lifetime requested in Binding Updates. The paper quotes the
  /// draft default MAX_BINDACK_TIMEOUT = 256 s as the relevant lifetime.
  Time binding_lifetime = Time::sec(256);
  /// How long before expiry the mobile node refreshes its binding.
  Time bu_refresh_interval = Time::sec(128);
  /// Time between attaching to a new link and having a usable care-of
  /// address (movement detection + router discovery + address
  /// configuration). The paper treats this as an opaque delay during which
  /// outgoing datagrams still carry the stale source address.
  Time movement_detection_delay = Time::ms(100);
  /// Request a Binding Acknowledgement (A bit).
  bool request_ack = true;
  /// Initial retransmission timeout for an un-acknowledged BU
  /// (INITIAL_BINDACK_TIMEOUT in draft-10). Each retransmission doubles the
  /// interval — exponential backoff — up to bu_retransmit_max.
  Time bu_retransmit_interval = Time::sec(1);
  /// Backoff ceiling (MAX_BINDACK_TIMEOUT in draft-10 is 256 s; a hostile
  /// or dead home agent must not elicit a fixed-rate BU stream forever).
  Time bu_retransmit_max = Time::sec(32);
  int bu_max_retransmits = 4;
};

}  // namespace mip6
