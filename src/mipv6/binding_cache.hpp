// Home agent binding cache: home address -> (care-of address, lifetime,
// registered multicast groups). Entries expire on a timer; the paper's
// observation that a silent mobile host loses its multicast representation
// after the binding lifetime (default 256 s) is this expiry.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ipv6/address.hpp"
#include "sim/timer.hpp"

namespace mip6 {

class BindingCache {
 public:
  struct Entry {
    Address home;
    Address care_of;
    std::uint16_t sequence = 0;
    std::vector<Address> groups;  // from the Multicast Group List sub-option
    /// From the Multicast Care-of sub-option: relay group traffic into this
    /// multicast group instead of the unicast tunnel (unspecified = tunnel).
    Address mcast_care_of;
    std::unique_ptr<Timer> lifetime_timer;
  };

  /// Receives the just-expired entry (already removed from the cache).
  using ExpiryCallback = std::function<void(const Entry& expired)>;

  /// Captures the construction context's domain (the owning home agent's
  /// node under NodeRuntime's DomainScope) so lifetime timers created later
  /// — from BU events or structural replays alike — expire on that shard.
  explicit BindingCache(Scheduler& sched)
      : sched_(&sched), domain_(sched.binding_domain()) {}

  /// Creates or refreshes a binding. Returns a reference valid until the
  /// next mutation.
  Entry& update(const Address& home, const Address& care_of,
                std::uint16_t sequence, Time lifetime);
  /// Explicit deregistration (lifetime 0 in a BU, or returning home).
  void remove(const Address& home);
  /// Drops every entry without firing expiry callbacks (crash support —
  /// lifetime timers are cancelled alongside).
  void clear() { entries_.clear(); }

  const Entry* find(const Address& home) const;
  Entry* find(const Address& home);
  std::size_t size() const { return entries_.size(); }
  std::vector<const Entry*> entries() const;

  void set_expiry_callback(ExpiryCallback cb) { on_expiry_ = std::move(cb); }

 private:
  void expire(const Address& home);

  Scheduler* sched_;
  Domain domain_;
  std::map<Address, std::unique_ptr<Entry>> entries_;
  ExpiryCallback on_expiry_;
};

}  // namespace mip6
