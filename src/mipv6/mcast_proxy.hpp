// Hierarchical multicast proxy (the hier-proxy delivery approach,
// Schmidt/Waehlisch MAP-style).
//
// A designated router holds group subscriptions on behalf of visiting
// mobile nodes: the MN registers (home, care-of, group list) over UDP, the
// proxy joins the groups into the dense-mode tree (add_local_receiver) and
// tunnels every matching group datagram to the MN's care-of address.
// Intra-domain handoff is one refreshed registration at the same proxy —
// the distribution tree and the home agent are untouched. Registrations
// are soft state: the MN refreshes them, and an unrefreshed registration
// expires after `registration_lifetime` (defaults to T_MLI = 260 s, the
// same stale-listener bound the paper derives for plain MLD).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ipv6/stack.hpp"
#include "ipv6/udp_demux.hpp"
#include "mipv6/proxy_messages.hpp"
#include "net/protocol_module.hpp"
#include "pimdm/dense_engine.hpp"
#include "sim/timer.hpp"

namespace mip6 {

struct MulticastProxyConfig {
  Time registration_lifetime = Time::sec(260);
};

class MulticastProxy : public ProtocolModule {
 public:
  using Config = MulticastProxyConfig;

  MulticastProxy(Ipv6Stack& stack, UdpDemux& udp, DenseModeEngine& dense,
                 Config config = {});

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "mcast-proxy"; }
  /// Crash semantics: forget every registration silently (no wire traffic,
  /// no counters) — visiting MNs re-register on their refresh timers.
  void on_crash() override;
  void on_restart() override {}
  /// Teardown: releases the UDP binding and the group-delivery hook.
  void stop() override;

  // --- Introspection ------------------------------------------------------
  std::size_t registration_count() const { return regs_.size(); }
  bool serves(const Address& home) const { return regs_.contains(home); }
  /// Groups currently subscribed on behalf of at least one MN.
  std::vector<Address> represented_groups() const;

 private:
  struct Registration {
    Address care_of;
    std::set<Address> groups;
    std::unique_ptr<Timer> lifetime;
  };

  void on_ctrl(const UdpDatagram& udp, const ParsedDatagram& d, IfaceId iface);
  void on_group_delivery(const ParsedDatagram& d, const Packet& pkt);
  /// Replaces the group set of `reg`, reference-counting into the dense
  /// engine on 0 <-> 1 transitions.
  void set_groups(Registration& reg, std::set<Address> groups);
  void remove_registration(const Address& home);
  void expire(const Address& home);
  void ref_group(const Address& group);
  void unref_group(const Address& group);
  /// Outer source for proxy tunnels: first attached iface with a global
  /// address (nullopt-equivalent: unspecified).
  Address proxy_source() const;
  void count(std::string_view name, std::uint64_t delta = 1);
  template <typename DetailFn>
  void trace_event(const char* event, DetailFn&& detail_fn) const {
    stack_->network().trace().emit(stack_->network().now(), component_, event,
                                   std::forward<DetailFn>(detail_fn));
  }

  Ipv6Stack* stack_;
  UdpDemux* udp_;
  DenseModeEngine* dense_;
  std::string component_;  // "proxy/<node>"
  Config config_;
  std::size_t group_hook_token_ = 0;
  std::map<Address, Registration> regs_;  // keyed by home address
  std::map<Address, int> group_refs_;
};

}  // namespace mip6
