// Home agent redundancy (the paper's cited further work: "home agent
// redundancy and load balancing", Heissenhuber/Riedl/Fritsche 1999).
//
// Home agents on the same home link replicate binding state to each other
// (binding-replica messages on a link-scope group) and exchange heartbeats.
// When a peer falls silent, a backup *assumes the peer's addresses*
// (VRRP-style) and adopts its replicated bindings: Binding Updates and
// tunneled traffic addressed to the dead agent are now answered by the
// backup, multicast group representation is re-established through the
// backup's own membership backend, and the mobile nodes never notice
// beyond a short outage bounded by heartbeat_interval * failure_threshold.
#pragma once

#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "ipv6/udp_demux.hpp"
#include "mipv6/home_agent.hpp"
#include "sim/timer.hpp"

namespace mip6 {

struct HaRedundancyConfig {
  Time heartbeat_interval = Time::sec(2);
  /// Peer declared dead after this many missed heartbeats.
  int failure_threshold = 3;
  std::uint16_t port = 4001;
};

/// Link-scope group for heartbeats and binding replicas.
Address ha_sync_group();

class HaRedundancy {
 public:
  /// `identity`: this agent's address on the home link (also the heartbeat
  /// identity); `home_iface`: the interface on the shared home link.
  HaRedundancy(Ipv6Stack& stack, HomeAgent& ha, UdpDemux& udp,
               IfaceId home_iface, Address identity,
               HaRedundancyConfig config = {});

  /// Registers a peer home agent: its identity plus every address the
  /// backup must assume on takeover (home link + any shared transit links,
  /// so routed traffic toward the dead agent still resolves).
  void add_peer(const Address& identity,
                std::vector<Address> addresses_to_assume);

  std::size_t replica_count() const { return replicas_.size(); }
  bool has_taken_over(const Address& peer_identity) const;
  std::uint64_t takeovers() const { return takeovers_; }

 private:
  struct Replica {
    Address primary;
    Address home;
    Address care_of;
    std::uint16_t sequence = 0;
    std::uint32_t lifetime_s = 0;
    std::vector<Address> groups;
  };
  struct Peer {
    Address identity;
    std::vector<Address> addresses;
    bool taken_over = false;
    std::unique_ptr<Timer> liveness;
  };

  void on_message(const UdpDatagram& udp, const ParsedDatagram& d,
                  IfaceId iface);
  void on_heartbeat(const Address& identity);
  void on_replica(Replica replica);
  void on_delete(const Address& primary, const Address& home);
  void send_heartbeat();
  void send_replica(const BindingCache::Entry& entry, bool deleted);
  void take_over(Peer& peer);
  void fail_back(Peer& peer);
  void transmit(Bytes payload);
  void count(std::string_view name);

  Ipv6Stack* stack_;
  HomeAgent* ha_;
  IfaceId home_iface_;
  Address identity_;
  HaRedundancyConfig config_;
  Timer heartbeat_timer_;
  std::map<Address, std::unique_ptr<Peer>> peers_;
  // (primary, home) -> replica
  std::map<std::pair<Address, Address>, Replica> replicas_;
  std::uint64_t takeovers_ = 0;
};

}  // namespace mip6
