#include "mipv6/mcast_proxy.hpp"

#include "ipv6/tunnel.hpp"
#include "net/wire_stats.hpp"

namespace mip6 {

MulticastProxy::MulticastProxy(Ipv6Stack& stack, UdpDemux& udp,
                               DenseModeEngine& dense, Config config)
    : stack_(&stack), udp_(&udp), dense_(&dense),
      component_("proxy/" + stack.node().name()), config_(config) {
  udp.bind(kMcastProxyPort,
           [this](const UdpDatagram& u, const ParsedDatagram& d,
                  IfaceId iface) { on_ctrl(u, d, iface); });
  group_hook_token_ = stack.add_group_delivery_hook(
      [this](const ParsedDatagram& d, const Packet& pkt, IfaceId) {
        on_group_delivery(d, pkt);
      });
}

void MulticastProxy::stop() {
  for (auto& [home, reg] : regs_) {
    for (const Address& g : reg.groups) unref_group(g);
  }
  regs_.clear();
  udp_->unbind(kMcastProxyPort);
  stack_->remove_group_delivery_hook(group_hook_token_);
}

void MulticastProxy::on_crash() {
  // Silent: no counters, no wire traffic — corpus replays must see a
  // crashing idle proxy as a no-op.
  for (auto& [home, reg] : regs_) {
    for (const Address& g : reg.groups) {
      auto it = group_refs_.find(g);
      if (it != group_refs_.end() && --it->second <= 0) {
        group_refs_.erase(it);
        dense_->remove_local_receiver(g);
      }
    }
  }
  regs_.clear();
}

std::vector<Address> MulticastProxy::represented_groups() const {
  std::vector<Address> out;
  for (const auto& [g, refs] : group_refs_) out.push_back(g);
  return out;
}

void MulticastProxy::on_ctrl(const UdpDatagram& udp, const ParsedDatagram& d,
                             IfaceId iface) {
  (void)iface;
  ParseResult<MobilityCtrlMessage> msg =
      MobilityCtrlMessage::try_parse(udp.payload);
  if (!msg.ok()) {
    count("proxy/rx-drop/bad-ctrl");
    note_parse_reject(stack_->network(), "mipv6", msg.failure());
    return;
  }
  const MobilityCtrlMessage& m = msg.value();
  switch (m.kind) {
    case MobilityCtrlKind::kProxyRegister: {
      count("proxy/rx/register");
      trace_event("register", [&] {
        return "home=" + m.home.str() + " coa=" + d.hdr.src.str() +
               " groups=" + std::to_string(m.groups.size());
      });
      Registration& reg = regs_[m.home];
      // The care-of address is the datagram's source, not a field the MN
      // could desynchronize from its actual attachment.
      reg.care_of = d.hdr.src;
      set_groups(reg, std::set<Address>(m.groups.begin(), m.groups.end()));
      if (!reg.lifetime) {
        reg.lifetime = std::make_unique<Timer>(
            stack_->scheduler(), [this, home = m.home] { expire(home); },
            stack_->node().domain());
      }
      reg.lifetime->arm(config_.registration_lifetime);
      return;
    }
    case MobilityCtrlKind::kProxyDeregister: {
      count("proxy/rx/dereg");
      trace_event("deregister", [&] { return "home=" + m.home.str(); });
      remove_registration(m.home);
      return;
    }
    default:
      // AR join/prune landed on the proxy port — misdirected.
      count("proxy/rx-drop/bad-kind");
      return;
  }
}

void MulticastProxy::set_groups(Registration& reg, std::set<Address> groups) {
  for (const Address& g : groups) {
    if (!reg.groups.contains(g)) ref_group(g);
  }
  for (const Address& g : reg.groups) {
    if (!groups.contains(g)) unref_group(g);
  }
  reg.groups = std::move(groups);
}

void MulticastProxy::remove_registration(const Address& home) {
  auto it = regs_.find(home);
  if (it == regs_.end()) return;
  for (const Address& g : it->second.groups) unref_group(g);
  regs_.erase(it);
}

void MulticastProxy::expire(const Address& home) {
  count("proxy/expired");
  trace_event("registration-expired", [&] { return "home=" + home.str(); });
  remove_registration(home);
}

void MulticastProxy::ref_group(const Address& group) {
  if (++group_refs_[group] == 1) dense_->add_local_receiver(group);
}

void MulticastProxy::unref_group(const Address& group) {
  auto it = group_refs_.find(group);
  if (it == group_refs_.end()) return;
  if (--it->second <= 0) {
    group_refs_.erase(it);
    dense_->remove_local_receiver(group);
  }
}

void MulticastProxy::on_group_delivery(const ParsedDatagram& d,
                                       const Packet& pkt) {
  const Address& group = d.hdr.dst;
  if (!group_refs_.contains(group)) return;
  const Address src = proxy_source();
  if (src.is_unspecified()) {
    count("proxy/drop/no-tunnel-source");
    return;
  }
  for (const auto& [home, reg] : regs_) {
    if (!reg.groups.contains(group)) continue;
    count("proxy/encap-multicast");
    trace_event("tunnel-multicast", [&] {
      return "group=" + group.str() + " home=" + home.str() + " coa=" +
             reg.care_of.str();
    });
    Bytes outer = encapsulate(pkt.view(), src, reg.care_of);
    stack_->network().counters().add("proxy/tunnel-bytes", outer.size());
    stack_->send_raw(std::move(outer));
  }
}

Address MulticastProxy::proxy_source() const {
  for (const auto& iface : stack_->node().interfaces()) {
    if (iface->attached() && stack_->has_global_address(iface->id())) {
      return stack_->global_address(iface->id());
    }
  }
  return Address();
}

void MulticastProxy::count(std::string_view name, std::uint64_t delta) {
  stack_->network().counters().add(name, delta);
}

}  // namespace mip6
