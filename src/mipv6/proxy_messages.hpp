// Control messages for the two related-work delivery approaches.
//
// Both schemes signal over UDP to a router-side agent:
//  * hier-proxy (Schmidt/Waehlisch MAP-style): the MN registers its home
//    address, care-of address and group list at the domain's multicast
//    proxy (kProxyRegister / kProxyDeregister, port kMcastProxyPort). The
//    registration is soft state the MN refreshes.
//  * mcast-mobility (Helmy): the MN asks the access router of its current
//    link to join / prune its per-MN reachability group (kArJoin /
//    kArPrune, port kArAgentPort). Handoff = join at the new AR, explicit
//    prune at the previous one.
//
// One shared wire format: [kind u8][group count u8][home 16]
// [care_of_or_group 16][groups 16*count].
#pragma once

#include <cstdint>
#include <vector>

#include "ipv6/address.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

/// UDP port of the MulticastProxy module (hier-proxy registrations).
inline constexpr std::uint16_t kMcastProxyPort = 4754;
/// UDP port of the AccessRouterAgent module (mcast-mobility join/prune).
inline constexpr std::uint16_t kArAgentPort = 4755;

enum class MobilityCtrlKind : std::uint8_t {
  kProxyRegister = 1,
  kProxyDeregister = 2,
  kArJoin = 3,
  kArPrune = 4,
};

const char* mobility_ctrl_kind_name(MobilityCtrlKind k);

struct MobilityCtrlMessage {
  MobilityCtrlKind kind = MobilityCtrlKind::kProxyRegister;
  /// The mobile node's home address (its stable identity at the agent).
  Address home;
  /// kProxyRegister: the current care-of address the proxy tunnels to.
  /// kArJoin / kArPrune: the MN's reachability multicast group.
  Address care_of_or_group;
  /// kProxyRegister only: the MN's current group subscriptions.
  std::vector<Address> groups;

  Bytes serialize() const;
  static ParseResult<MobilityCtrlMessage> try_parse(BytesView bytes);
};

namespace bound {
/// Groups in one proxy registration (count field is a single octet anyway;
/// this bounds allocation against hostile input well below that).
inline constexpr std::size_t kMaxProxyGroups = 64;
}  // namespace bound

}  // namespace mip6
