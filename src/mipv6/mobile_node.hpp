// Mobile IPv6 mobile-node engine.
//
// Owns the mobility lifecycle on one interface: link change -> movement
// detection delay -> care-of address via SLAAC -> Binding Update to the home
// agent (retransmitted until acknowledged) -> periodic refresh. The home
// address stays pinned on the interface (packets tunneled from the HA are
// addressed to it after decapsulation).
//
// The multicast delivery strategies of the paper are glued on top through
// three mechanisms exposed here: the BU's optional Multicast Group List
// sub-option, reverse tunneling (tunnel_to_ha), and the attach callback that
// strategies use to re-join groups locally / re-report through the tunnel.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "ipv6/icmpv6_dispatch.hpp"
#include "ipv6/stack.hpp"
#include "mipv6/config.hpp"
#include "mipv6/messages.hpp"
#include "net/protocol_module.hpp"
#include "sim/timer.hpp"

namespace mip6 {

class MobileNode : public ProtocolModule {
 public:
  MobileNode(Ipv6Stack& stack, IfaceId iface, Address home_address,
             Address home_agent, Mipv6Config config);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "mn"; }
  /// Crash semantics: reset_soft_state() — binding and care-of address are
  /// lost; the restart path re-runs attachment and re-registers.
  void reset() override { reset_soft_state(); }
  /// Restart is driven by the interface re-attaching (link-change handler
  /// fires movement detection); nothing extra to do here.
  void on_restart() override {}
  /// Teardown: reset_soft_state() plus releasing the stack registrations
  /// and the interface's link-change handler.
  void stop() override;

  // --- Identity / state -------------------------------------------------
  const Address& home_address() const { return home_address_; }
  const Address& home_agent() const { return home_agent_; }
  IfaceId iface() const { return iface_; }
  /// Care-of address; unspecified while at home or before configuration.
  const Address& care_of() const { return care_of_; }
  bool away_from_home() const { return !care_of_.is_unspecified(); }
  /// True once the current binding was acknowledged by the home agent.
  bool binding_acked() const { return binding_acked_; }
  /// Source address current outgoing datagrams carry: the care-of address
  /// once formed; until then the previous (stale) one — exactly the window
  /// in which the paper's spurious-assert problem occurs.
  Address current_source() const;

  // --- Group subscriptions ----------------------------------------------
  /// Application-level subscription: installs the local receive filter.
  /// What *signaling* results (local MLD, group list in BUs, tunneled MLD
  /// reports) is the delivery strategy's choice.
  void subscribe(const Address& group);
  void unsubscribe(const Address& group);
  const std::set<Address>& subscriptions() const { return subscriptions_; }

  /// Include the Multicast Group List sub-option (paper Figure 5) in BUs.
  void set_group_list_in_bu(bool on) { group_list_in_bu_ = on; }

  /// Include the Multicast Care-of sub-option in BUs: asks the HA to relay
  /// subscribed-group traffic into `group` (the mcast-mobility reachability
  /// group) instead of tunneling to the unicast care-of address.
  /// Unspecified disables the sub-option. Configuration, not soft state —
  /// survives reset_soft_state() like group_list_in_bu_.
  void set_mcast_care_of(const Address& group) { mcast_care_of_ = group; }
  const Address& mcast_care_of() const { return mcast_care_of_; }

  // --- Mechanisms used by the strategies ---------------------------------
  /// (Re)sends a Binding Update now.
  void send_binding_update();
  /// Sends a Binding Update carrying an explicit Multicast Group List with
  /// exactly `groups` (an empty list deregisters all groups at the HA).
  void send_binding_update_with_group_list(std::vector<Address> groups);
  /// Encapsulates `inner` to the home agent (reverse tunnel). Uses the
  /// current source as outer source. Returns false if unroutable.
  bool tunnel_to_ha(Bytes inner);
  /// Sends an MLD Report for `group` through the tunnel with the home
  /// address as inner source (tunnel-as-interface variant). `periodic`
  /// re-sends every `interval` to keep the HA's listener state alive.
  void start_tunneled_reports(const Address& group, Time interval);
  void stop_tunneled_reports(const Address& group);

  /// Invoked after each movement once the care-of address is configured and
  /// the Binding Update has been sent.
  void set_on_attached(std::function<void()> cb) { on_attached_ = std::move(cb); }
  /// Invoked immediately on attach (before movement detection completes).
  void set_on_link_change(std::function<void()> cb) {
    on_link_change_ = std::move(cb);
  }

  /// Simulation-side mobility command: detach and re-attach to `target`.
  void move_to(Link& target);

  /// Crash support: forgets the care-of address, the acked binding, and any
  /// tunneled-report schedule, and cancels every timer. Application-level
  /// subscriptions survive (the app still wants them after restart); the
  /// restart path re-runs attachment and re-registers with the home agent.
  void reset_soft_state();

  Ipv6Stack& stack() const { return *stack_; }

 private:
  void on_link_changed(Link* link);
  void complete_attachment();
  void on_binding_ack(const BindingAckOption& ack);
  void send_bu_impl(std::optional<std::vector<Address>> groups);
  /// Re-sends the last BU wire image (same sequence number) and doubles the
  /// retransmission interval, capped at config.bu_retransmit_max.
  void retransmit_binding_update();
  void send_tunneled_report(const Address& group);
  void count(std::string_view name, std::uint64_t delta = 1);

  Ipv6Stack* stack_;
  IfaceId iface_;
  Address home_address_;
  Address home_agent_;
  Mipv6Config config_;

  Address care_of_;
  std::uint16_t bu_sequence_ = 0;
  bool binding_acked_ = false;
  int bu_retransmits_left_ = 0;
  /// Current backoff interval; reset to config.bu_retransmit_interval on
  /// every fresh BU, doubled (capped) per retransmission.
  Time bu_retransmit_current_ = Time::zero();
  /// Wire image of the last BU, kept so retransmissions reuse the same
  /// sequence number instead of minting a new binding attempt.
  Bytes last_bu_wire_;
  std::unique_ptr<Timer> movement_timer_;
  std::unique_ptr<Timer> bu_refresh_timer_;
  std::unique_ptr<Timer> bu_retransmit_timer_;

  bool group_list_in_bu_ = false;
  Address mcast_care_of_;
  std::set<Address> subscriptions_;
  struct TunneledReportState {
    Time interval;
    std::unique_ptr<Timer> timer;
  };
  std::map<Address, TunneledReportState> tunneled_reports_;

  std::function<void()> on_attached_;
  std::function<void()> on_link_change_;
};

}  // namespace mip6
