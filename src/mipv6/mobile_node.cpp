#include "mipv6/mobile_node.hpp"

#include "ipv6/icmpv6.hpp"
#include "ipv6/tunnel.hpp"
#include "mld/messages.hpp"
#include "net/wire_stats.hpp"

namespace mip6 {

MobileNode::MobileNode(Ipv6Stack& stack, IfaceId iface, Address home_address,
                       Address home_agent, Mipv6Config config)
    : stack_(&stack), iface_(iface), home_address_(home_address),
      home_agent_(home_agent), config_(config) {
  // The home address belongs to the MN permanently.
  stack.add_address(iface, home_address, /*pinned=*/true);

  movement_timer_ = std::make_unique<Timer>(
      stack.scheduler(), [this] { complete_attachment(); });
  // Attachment completion autoconfigures addresses and filters that
  // neighbor resolution on other shards reads; it must run structurally
  // (all shards quiesced), like the move that armed it.
  movement_timer_->bind_domain(kWorldDomain);
  bu_refresh_timer_ = std::make_unique<Timer>(
      stack.scheduler(), [this] {
        if (away_from_home()) {
          send_binding_update();
          bu_refresh_timer_->arm(config_.bu_refresh_interval);
        }
      }, stack.node().domain());
  bu_retransmit_timer_ = std::make_unique<Timer>(
      stack.scheduler(), [this] { retransmit_binding_update(); }, stack.node().domain());

  Interface& i = stack.node().iface_by_id(iface);
  i.set_link_change_handler([this](Link* link) { on_link_changed(link); });

  // Binding Acknowledgements arrive as destination options.
  stack.set_option_handler(
      opt::kBindingAck,
      [this](const DestOption& o, const ParsedDatagram&, IfaceId) {
        ParseResult<BindingAckOption> ack = BindingAckOption::try_decode(o);
        if (!ack.ok()) {
          count("mn/rx-drop/bad-back");
          note_parse_reject(stack_->network(), "mipv6", ack.failure());
          return;
        }
        on_binding_ack(ack.value());
      });

  // Tunneled traffic from the home agent: decapsulate and re-process the
  // inner datagram as if it had arrived natively.
  stack.set_proto_handler(
      proto::kIpv6,
      [this](const ParsedDatagram& d, const Packet&, IfaceId rx_iface) {
        ParseResult<Bytes> inner = try_decapsulate(d);
        if (!inner.ok()) {
          count("mn/rx-drop/bad-tunnel");
          note_parse_reject(stack_->network(), "mipv6", inner.failure());
          return;
        }
        count("mn/decap");
        stack_->receive_as_if(rx_iface, std::move(inner).value());
      });
}

Address MobileNode::current_source() const {
  return care_of_.is_unspecified() ? home_address_ : care_of_;
}

void MobileNode::subscribe(const Address& group) {
  subscriptions_.insert(group);
  stack_->join_local_group(iface_, group);
}

void MobileNode::unsubscribe(const Address& group) {
  subscriptions_.erase(group);
  stack_->leave_local_group(iface_, group);
  stop_tunneled_reports(group);
}

void MobileNode::move_to(Link& target) {
  Interface& i = stack_->node().iface_by_id(iface_);
  i.detach();
  i.attach(target);
}

void MobileNode::reset_soft_state() {
  care_of_ = Address();
  binding_acked_ = false;
  bu_retransmits_left_ = 0;
  bu_retransmit_current_ = Time::zero();
  last_bu_wire_.clear();
  movement_timer_->cancel();
  bu_refresh_timer_->cancel();
  bu_retransmit_timer_->cancel();
  tunneled_reports_.clear();  // cancels the report timers
  count("mn/soft-state-reset");
}

void MobileNode::stop() {
  reset_soft_state();
  stack_->clear_option_handler(opt::kBindingAck);
  stack_->clear_proto_handler(proto::kIpv6);
  stack_->node().iface_by_id(iface_).set_link_change_handler(nullptr);
}

void MobileNode::on_link_changed(Link* link) {
  movement_timer_->cancel();
  if (on_link_change_) on_link_change_();
  if (link == nullptr) return;  // out of coverage
  // Movement detection + address configuration takes a while; until it
  // completes, outgoing traffic keeps the stale source address.
  movement_timer_->arm(config_.movement_detection_delay);
}

void MobileNode::complete_attachment() {
  stack_->autoconfigure(iface_);
  Interface& i = stack_->node().iface_by_id(iface_);
  if (i.link() == nullptr) return;

  bool at_home = false;
  if (stack_->plan().has_prefix(i.link()->id())) {
    at_home = stack_->plan().prefix_of(i.link()->id()).contains(home_address_);
  }
  if (at_home) {
    // Returning home: deregister the binding (lifetime 0 BU).
    care_of_ = Address();
    binding_acked_ = false;
    bu_refresh_timer_->cancel();
    send_binding_update();
  } else {
    // The care-of address is the SLAAC address of the *visited* link (the
    // pinned home address also lives on the interface, so "any global
    // address" would be wrong here).
    care_of_ = Address();
    if (stack_->plan().has_prefix(i.link()->id())) {
      care_of_ = Address::from_prefix_iid(
          stack_->plan().prefix_of(i.link()->id()).network(), stack_->iid());
    }
    // With no prefix on the foreign link there is no care-of address and
    // no connectivity; stay silent until the next move.
    binding_acked_ = false;
    if (!care_of_.is_unspecified()) {
      send_binding_update();
      bu_refresh_timer_->arm(config_.bu_refresh_interval);
    }
  }
  count("mn/attached");
  if (on_attached_) on_attached_();
}

void MobileNode::send_binding_update() {
  std::optional<std::vector<Address>> groups;
  if (group_list_in_bu_ && away_from_home()) {
    groups.emplace(subscriptions_.begin(), subscriptions_.end());
  }
  send_bu_impl(std::move(groups));
}

void MobileNode::send_binding_update_with_group_list(
    std::vector<Address> groups) {
  send_bu_impl(std::move(groups));
}

void MobileNode::send_bu_impl(std::optional<std::vector<Address>> groups) {
  ++bu_sequence_;
  BindingUpdateOption bu;
  bu.home_registration = true;
  bu.ack_requested = config_.request_ack;
  bu.sequence = bu_sequence_;
  bu.lifetime_s = away_from_home()
                      ? static_cast<std::uint32_t>(
                            config_.binding_lifetime.to_seconds())
                      : 0;
  if (groups.has_value() && away_from_home()) {
    MulticastGroupListSubOption list;
    list.groups = std::move(*groups);
    bu.sub_options.push_back(list.encode());
  }
  if (!mcast_care_of_.is_unspecified() && away_from_home()) {
    bu.sub_options.push_back(MulticastCareOfSubOption{mcast_care_of_}.encode());
  }

  DatagramSpec spec;
  spec.src = current_source();
  spec.dst = home_agent_;
  spec.dest_options.push_back(bu.encode());
  // Draft-10: packets sent while away carry the Home Address option so the
  // recipient can identify the mobile node.
  if (away_from_home()) {
    spec.dest_options.push_back(HomeAddressOption{home_address_}.encode());
  }
  spec.protocol = proto::kNoNext;
  Bytes wire = build_datagram(spec);
  stack_->network().counters().add("mn/bu-bytes", wire.size());
  count("mn/tx/bu");

  if (config_.request_ack) {
    // A fresh BU (new sequence number) restarts the retransmission budget
    // and resets the backoff to the initial interval.
    last_bu_wire_ = wire;
    bu_retransmits_left_ = config_.bu_max_retransmits;
    bu_retransmit_current_ = config_.bu_retransmit_interval;
    bu_retransmit_timer_->arm(bu_retransmit_current_);
  }
  stack_->send_raw(std::move(wire));
}

void MobileNode::retransmit_binding_update() {
  if (binding_acked_ || bu_retransmits_left_ <= 0 || last_bu_wire_.empty()) {
    return;
  }
  --bu_retransmits_left_;
  count("mn/bu-retransmit");
  stack_->network().counters().add("mn/bu-bytes", last_bu_wire_.size());
  count("mn/tx/bu");
  stack_->send_raw(Bytes(last_bu_wire_));
  // Exponential backoff (draft-10 §5.5.5): double up to the ceiling. A dead
  // home agent costs O(log) signaling, not a fixed-rate stream.
  Time next = bu_retransmit_current_ * 2;
  if (next > config_.bu_retransmit_max) next = config_.bu_retransmit_max;
  bu_retransmit_current_ = next;
  count("mn/bu-backoff-step");
  if (bu_retransmits_left_ > 0) bu_retransmit_timer_->arm(bu_retransmit_current_);
}

void MobileNode::on_binding_ack(const BindingAckOption& ack) {
  if (ack.sequence != bu_sequence_) return;  // stale ack
  count("mn/rx/back");
  if (ack.status == 0) {
    binding_acked_ = true;
    bu_retransmit_timer_->cancel();
  }
}

bool MobileNode::tunnel_to_ha(Bytes inner) {
  Bytes outer = encapsulate(inner, current_source(), home_agent_);
  stack_->network().counters().add("mn/tunnel-bytes", outer.size());
  count("mn/encap");
  return stack_->send_raw(std::move(outer));
}

void MobileNode::start_tunneled_reports(const Address& group, Time interval) {
  auto [it, fresh] = tunneled_reports_.try_emplace(group);
  it->second.interval = interval;
  if (fresh) {
    it->second.timer = std::make_unique<Timer>(
        stack_->scheduler(), [this, group] {
          send_tunneled_report(group);
          auto rit = tunneled_reports_.find(group);
          if (rit != tunneled_reports_.end()) {
            rit->second.timer->arm(rit->second.interval);
          }
        }, stack_->node().domain());
  }
  send_tunneled_report(group);
  it->second.timer->arm(interval);
}

void MobileNode::stop_tunneled_reports(const Address& group) {
  tunneled_reports_.erase(group);
}

void MobileNode::send_tunneled_report(const Address& group) {
  if (!away_from_home()) return;
  MldMessage rep;
  rep.type = MldType::kReport;
  rep.group = group;
  DatagramSpec inner;
  // Inner source is the home address: through the tunnel the MN is
  // virtually present on its home link.
  inner.src = home_address_;
  inner.dst = group;
  inner.hop_limit = 1;
  inner.protocol = proto::kIcmpv6;
  inner.payload = rep.to_icmpv6().serialize(inner.src, inner.dst);
  count("mn/tx/tunneled-report");
  tunnel_to_ha(build_datagram(inner));
}

void MobileNode::count(std::string_view name, std::uint64_t delta) {
  stack_->network().counters().add(name, delta);
}

}  // namespace mip6
