#include "mipv6/binding_cache.hpp"

namespace mip6 {

BindingCache::Entry& BindingCache::update(const Address& home,
                                          const Address& care_of,
                                          std::uint16_t sequence,
                                          Time lifetime) {
  auto it = entries_.find(home);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->home = home;
    entry->lifetime_timer = std::make_unique<Timer>(
        *sched_, [this, home] { expire(home); }, domain_);
    it = entries_.emplace(home, std::move(entry)).first;
  }
  Entry& e = *it->second;
  e.care_of = care_of;
  e.sequence = sequence;
  e.lifetime_timer->arm(lifetime);
  return e;
}

void BindingCache::remove(const Address& home) { entries_.erase(home); }

const BindingCache::Entry* BindingCache::find(const Address& home) const {
  auto it = entries_.find(home);
  return it == entries_.end() ? nullptr : it->second.get();
}

BindingCache::Entry* BindingCache::find(const Address& home) {
  auto it = entries_.find(home);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<const BindingCache::Entry*> BindingCache::entries() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [home, e] : entries_) out.push_back(e.get());
  return out;
}

void BindingCache::expire(const Address& home) {
  auto it = entries_.find(home);
  if (it == entries_.end()) return;
  // Invoke the callback after erasing so re-entrant lookups see the final
  // state; keep the entry alive until the callback returns.
  auto keep = std::move(it->second);
  entries_.erase(it);
  if (on_expiry_) on_expiry_(*keep);
}

}  // namespace mip6
