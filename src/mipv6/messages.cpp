#include "mipv6/messages.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kFlagAck = 0x80;
constexpr std::uint8_t kFlagHome = 0x40;

}  // namespace

DestOption BindingUpdateOption::encode() const {
  BufferWriter w(16);
  std::uint8_t flags = 0;
  if (ack_requested) flags |= kFlagAck;
  if (home_registration) flags |= kFlagHome;
  w.u8(flags);
  w.u8(0);  // reserved / prefix length (unused here)
  w.u16(sequence);
  w.u32(lifetime_s);
  for (const auto& s : sub_options) {
    if (s.data.size() > 255) throw LogicError("BU sub-option too large");
    w.u8(s.type);
    w.u8(static_cast<std::uint8_t>(s.data.size()));
    w.raw(s.data);
  }
  return DestOption{opt::kBindingUpdate, std::move(w).take()};
}

ParseResult<BindingUpdateOption> BindingUpdateOption::try_decode(
    const DestOption& opt) {
  if (opt.type != opt::kBindingUpdate) {
    return ParseFailure{ParseReason::kBadType, "not a Binding Update option"};
  }
  WireCursor c(opt.data);
  BindingUpdateOption bu;
  std::uint8_t flags = c.u8();
  bu.ack_requested = (flags & kFlagAck) != 0;
  bu.home_registration = (flags & kFlagHome) != 0;
  c.skip(1);
  bu.sequence = c.u16();
  bu.lifetime_s = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "Binding Update fixed part"};
  }
  while (!c.empty()) {
    if (bu.sub_options.size() >= bound::kMaxBuSubOptions) {
      return ParseFailure{ParseReason::kBoundExceeded,
                          "too many BU sub-options"};
    }
    BuSubOption s;
    s.type = c.u8();
    s.data = c.raw(c.u8());
    if (c.failed()) {
      return ParseFailure{ParseReason::kTruncated, "BU sub-option body"};
    }
    bu.sub_options.push_back(std::move(s));
  }
  return bu;
}

BindingUpdateOption BindingUpdateOption::decode(const DestOption& opt) {
  return try_decode(opt).take_or_throw();
}

const BuSubOption* BindingUpdateOption::find_sub_option(
    std::uint8_t type) const {
  for (const auto& s : sub_options) {
    if (s.type == type) return &s;
  }
  return nullptr;
}

DestOption BindingAckOption::encode() const {
  BufferWriter w(11);
  w.u8(status);
  w.u16(sequence);
  w.u32(lifetime_s);
  w.u32(refresh_s);
  return DestOption{opt::kBindingAck, std::move(w).take()};
}

ParseResult<BindingAckOption> BindingAckOption::try_decode(
    const DestOption& opt) {
  if (opt.type != opt::kBindingAck) {
    return ParseFailure{ParseReason::kBadType,
                        "not a Binding Acknowledgement option"};
  }
  WireCursor c(opt.data);
  BindingAckOption ba;
  ba.status = c.u8();
  ba.sequence = c.u16();
  ba.lifetime_s = c.u32();
  ba.refresh_s = c.u32();
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated,
                        "Binding Acknowledgement option"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after Binding Acknowledgement"};
  }
  return ba;
}

BindingAckOption BindingAckOption::decode(const DestOption& opt) {
  return try_decode(opt).take_or_throw();
}

DestOption HomeAddressOption::encode() const {
  BufferWriter w(Address::kBytes);
  home_address.write(w);
  return DestOption{opt::kHomeAddress, std::move(w).take()};
}

ParseResult<HomeAddressOption> HomeAddressOption::try_decode(
    const DestOption& opt) {
  if (opt.type != opt::kHomeAddress) {
    return ParseFailure{ParseReason::kBadType, "not a Home Address option"};
  }
  WireCursor c(opt.data);
  HomeAddressOption h;
  h.home_address = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "Home Address option"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after Home Address option"};
  }
  return h;
}

HomeAddressOption HomeAddressOption::decode(const DestOption& opt) {
  return try_decode(opt).take_or_throw();
}

BuSubOption MulticastGroupListSubOption::encode() const {
  // Figure 5 of the paper: Sub-Option Len must be 16*N, which bounds N at
  // 15 groups per sub-option (len is a single octet).
  if (groups.size() > 15) {
    throw LogicError("Multicast Group List limited to 15 groups");
  }
  BufferWriter w(groups.size() * Address::kBytes);
  for (const auto& g : groups) g.write(w);
  return BuSubOption{subopt::kMulticastGroupList, std::move(w).take()};
}

ParseResult<MulticastGroupListSubOption> MulticastGroupListSubOption::try_decode(
    const BuSubOption& sub) {
  if (sub.type != subopt::kMulticastGroupList) {
    return ParseFailure{ParseReason::kBadType,
                        "not a Multicast Group List sub-option"};
  }
  if (sub.data.size() % Address::kBytes != 0) {
    return ParseFailure{ParseReason::kBadLength,
                        "Multicast Group List length not a multiple of 16"};
  }
  WireCursor c(sub.data);
  MulticastGroupListSubOption m;
  while (!c.empty()) {
    Address g = Address::read(c);
    if (!g.is_multicast()) {
      return ParseFailure{ParseReason::kSemantic,
                          "Multicast Group List contains unicast address"};
    }
    m.groups.push_back(g);
  }
  return m;
}

MulticastGroupListSubOption MulticastGroupListSubOption::decode(
    const BuSubOption& sub) {
  return try_decode(sub).take_or_throw();
}

BuSubOption MulticastCareOfSubOption::encode() const {
  BufferWriter w(Address::kBytes);
  group.write(w);
  return BuSubOption{subopt::kMulticastCareOf, std::move(w).take()};
}

ParseResult<MulticastCareOfSubOption> MulticastCareOfSubOption::try_decode(
    const BuSubOption& sub) {
  if (sub.type != subopt::kMulticastCareOf) {
    return ParseFailure{ParseReason::kBadType,
                        "not a Multicast Care-of sub-option"};
  }
  if (sub.data.size() != Address::kBytes) {
    return ParseFailure{ParseReason::kBadLength,
                        "Multicast Care-of length must be 16"};
  }
  WireCursor c(sub.data);
  MulticastCareOfSubOption m;
  m.group = Address::read(c);
  if (!m.group.is_multicast()) {
    return ParseFailure{ParseReason::kSemantic,
                        "Multicast Care-of address is not multicast"};
  }
  return m;
}

MulticastCareOfSubOption MulticastCareOfSubOption::decode(
    const BuSubOption& sub) {
  return try_decode(sub).take_or_throw();
}

}  // namespace mip6
