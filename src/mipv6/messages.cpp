#include "mipv6/messages.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kFlagAck = 0x80;
constexpr std::uint8_t kFlagHome = 0x40;

}  // namespace

DestOption BindingUpdateOption::encode() const {
  BufferWriter w(16);
  std::uint8_t flags = 0;
  if (ack_requested) flags |= kFlagAck;
  if (home_registration) flags |= kFlagHome;
  w.u8(flags);
  w.u8(0);  // reserved / prefix length (unused here)
  w.u16(sequence);
  w.u32(lifetime_s);
  for (const auto& s : sub_options) {
    if (s.data.size() > 255) throw LogicError("BU sub-option too large");
    w.u8(s.type);
    w.u8(static_cast<std::uint8_t>(s.data.size()));
    w.raw(s.data);
  }
  return DestOption{opt::kBindingUpdate, std::move(w).take()};
}

BindingUpdateOption BindingUpdateOption::decode(const DestOption& opt) {
  if (opt.type != opt::kBindingUpdate) {
    throw ParseError("not a Binding Update option");
  }
  BufferReader r(opt.data);
  BindingUpdateOption bu;
  std::uint8_t flags = r.u8();
  bu.ack_requested = (flags & kFlagAck) != 0;
  bu.home_registration = (flags & kFlagHome) != 0;
  r.skip(1);
  bu.sequence = r.u16();
  bu.lifetime_s = r.u32();
  while (!r.empty()) {
    BuSubOption s;
    s.type = r.u8();
    s.data = r.raw(r.u8());
    bu.sub_options.push_back(std::move(s));
  }
  return bu;
}

const BuSubOption* BindingUpdateOption::find_sub_option(
    std::uint8_t type) const {
  for (const auto& s : sub_options) {
    if (s.type == type) return &s;
  }
  return nullptr;
}

DestOption BindingAckOption::encode() const {
  BufferWriter w(11);
  w.u8(status);
  w.u16(sequence);
  w.u32(lifetime_s);
  w.u32(refresh_s);
  return DestOption{opt::kBindingAck, std::move(w).take()};
}

BindingAckOption BindingAckOption::decode(const DestOption& opt) {
  if (opt.type != opt::kBindingAck) {
    throw ParseError("not a Binding Acknowledgement option");
  }
  BufferReader r(opt.data);
  BindingAckOption ba;
  ba.status = r.u8();
  ba.sequence = r.u16();
  ba.lifetime_s = r.u32();
  ba.refresh_s = r.u32();
  r.expect_end("Binding Acknowledgement option");
  return ba;
}

DestOption HomeAddressOption::encode() const {
  BufferWriter w(Address::kBytes);
  home_address.write(w);
  return DestOption{opt::kHomeAddress, std::move(w).take()};
}

HomeAddressOption HomeAddressOption::decode(const DestOption& opt) {
  if (opt.type != opt::kHomeAddress) {
    throw ParseError("not a Home Address option");
  }
  BufferReader r(opt.data);
  HomeAddressOption h;
  h.home_address = Address::read(r);
  r.expect_end("Home Address option");
  return h;
}

BuSubOption MulticastGroupListSubOption::encode() const {
  // Figure 5 of the paper: Sub-Option Len must be 16*N, which bounds N at
  // 15 groups per sub-option (len is a single octet).
  if (groups.size() > 15) {
    throw LogicError("Multicast Group List limited to 15 groups");
  }
  BufferWriter w(groups.size() * Address::kBytes);
  for (const auto& g : groups) g.write(w);
  return BuSubOption{subopt::kMulticastGroupList, std::move(w).take()};
}

MulticastGroupListSubOption MulticastGroupListSubOption::decode(
    const BuSubOption& sub) {
  if (sub.type != subopt::kMulticastGroupList) {
    throw ParseError("not a Multicast Group List sub-option");
  }
  if (sub.data.size() % Address::kBytes != 0) {
    throw ParseError("Multicast Group List length not a multiple of 16");
  }
  BufferReader r(sub.data);
  MulticastGroupListSubOption m;
  while (!r.empty()) {
    Address g = Address::read(r);
    if (!g.is_multicast()) {
      throw ParseError("Multicast Group List contains unicast address " +
                       g.str());
    }
    m.groups.push_back(g);
  }
  return m;
}

}  // namespace mip6
