#include "mipv6/ha_redundancy.hpp"

#include "ipv6/datagram.hpp"
#include "net/wire_stats.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kHeartbeat = 1;
constexpr std::uint8_t kReplica = 2;
constexpr std::uint8_t kDelete = 3;

}  // namespace

Address ha_sync_group() {
  static const Address kAddr = Address::parse("ff02::6a");
  return kAddr;
}

HaRedundancy::HaRedundancy(Ipv6Stack& stack, HomeAgent& ha, UdpDemux& udp,
                           IfaceId home_iface, Address identity,
                           HaRedundancyConfig config)
    : stack_(&stack), ha_(&ha), home_iface_(home_iface),
      identity_(identity), config_(config),
      heartbeat_timer_(stack.scheduler(), [this] {
        send_heartbeat();
        heartbeat_timer_.arm(config_.heartbeat_interval);
      }) {
  udp.bind(config.port,
           [this](const UdpDatagram& u, const ParsedDatagram& d,
                  IfaceId iface) { on_message(u, d, iface); });
  ha.set_binding_change_callback(
      [this](const BindingCache::Entry& e, bool deleted) {
        send_replica(e, deleted);
      });
  stack.join_local_group(home_iface, ha_sync_group());
  heartbeat_timer_.arm(Time::ms(10));
}

void HaRedundancy::add_peer(const Address& identity,
                            std::vector<Address> addresses_to_assume) {
  auto peer = std::make_unique<Peer>();
  peer->identity = identity;
  peer->addresses = std::move(addresses_to_assume);
  Address id = identity;
  peer->liveness = std::make_unique<Timer>(
      stack_->scheduler(), [this, id] {
        auto it = peers_.find(id);
        if (it != peers_.end()) take_over(*it->second);
      }, stack_->node().domain());
  peer->liveness->arm(config_.heartbeat_interval * config_.failure_threshold);
  peers_[identity] = std::move(peer);
}

bool HaRedundancy::has_taken_over(const Address& peer_identity) const {
  auto it = peers_.find(peer_identity);
  return it != peers_.end() && it->second->taken_over;
}

// ---------------------------------------------------------------------------
// Messages

void HaRedundancy::transmit(Bytes payload) {
  if (!stack_->has_global_address(home_iface_)) return;
  DatagramSpec spec;
  spec.src = stack_->global_address(home_iface_);
  spec.dst = ha_sync_group();
  spec.hop_limit = 1;
  spec.protocol = proto::kUdp;
  UdpDatagram udp;
  udp.src_port = config_.port;
  udp.dst_port = config_.port;
  udp.payload = std::move(payload);
  spec.payload = udp.serialize(spec.src, spec.dst);
  stack_->network().counters().add("hasync/tx-bytes",
                                   Ipv6Header::kSize + spec.payload.size());
  stack_->send_on_iface(home_iface_, spec);
}

void HaRedundancy::send_heartbeat() {
  BufferWriter w(17);
  w.u8(kHeartbeat);
  identity_.write(w);
  transmit(std::move(w).take());
  count("hasync/tx/heartbeat");
}

void HaRedundancy::send_replica(const BindingCache::Entry& entry,
                                bool deleted) {
  BufferWriter w(64);
  w.u8(deleted ? kDelete : kReplica);
  identity_.write(w);
  entry.home.write(w);
  if (!deleted) {
    entry.care_of.write(w);
    w.u16(entry.sequence);
    w.u32(entry.lifetime_timer
              ? static_cast<std::uint32_t>(
                    entry.lifetime_timer->remaining().to_seconds())
              : 0);
    if (entry.groups.size() > 255) {
      throw LogicError("too many groups in binding replica");
    }
    w.u8(static_cast<std::uint8_t>(entry.groups.size()));
    for (const Address& g : entry.groups) g.write(w);
  }
  transmit(std::move(w).take());
  count(deleted ? "hasync/tx/delete" : "hasync/tx/replica");
}

void HaRedundancy::on_message(const UdpDatagram& udp, const ParsedDatagram& d,
                              IfaceId iface) {
  if (iface != home_iface_) return;
  (void)d;
  auto reject = [&](const char* detail) {
    count("hasync/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "hasync",
                      ParseFailure{ParseReason::kTruncated, detail});
  };
  auto overlength = [&](const char* detail) {
    count("hasync/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "hasync",
                      ParseFailure{ParseReason::kOverlength, detail});
  };
  WireCursor c(udp.payload);
  std::uint8_t type = c.u8();
  Address identity = Address::read(c);
  if (c.failed()) return reject("ha-sync message header");
  if (identity == identity_) return;  // our own message
  switch (type) {
    case kHeartbeat:
      if (!c.empty()) return overlength("ha-sync heartbeat");
      on_heartbeat(identity);
      break;
    case kReplica: {
      Replica rep;
      rep.primary = identity;
      rep.home = Address::read(c);
      rep.care_of = Address::read(c);
      rep.sequence = c.u16();
      rep.lifetime_s = c.u32();
      std::uint8_t n = c.u8();
      if (c.failed()) return reject("ha-sync replica");
      for (std::uint8_t i = 0; i < n; ++i) {
        rep.groups.push_back(Address::read(c));
      }
      if (c.failed()) return reject("ha-sync replica group list");
      if (!c.empty()) return overlength("ha-sync replica");
      on_replica(std::move(rep));
      break;
    }
    case kDelete: {
      Address home = Address::read(c);
      if (c.failed()) return reject("ha-sync delete");
      if (!c.empty()) return overlength("ha-sync delete");
      on_delete(identity, home);
      break;
    }
    default:
      count("hasync/rx-drop/unknown-type");
      note_parse_reject(
          stack_->network(), "hasync",
          ParseFailure{ParseReason::kBadType, "unknown ha-sync type"});
  }
}

void HaRedundancy::on_heartbeat(const Address& identity) {
  auto it = peers_.find(identity);
  if (it == peers_.end()) return;
  Peer& peer = *it->second;
  if (peer.taken_over) fail_back(peer);
  peer.liveness->arm(config_.heartbeat_interval * config_.failure_threshold);
}

void HaRedundancy::on_replica(Replica replica) {
  count("hasync/rx/replica");
  auto key = std::make_pair(replica.primary, replica.home);
  bool active = has_taken_over(replica.primary);
  replicas_[key] = replica;
  if (active) {
    // We are currently serving for this peer: apply the update live.
    ha_->adopt_binding(replica.home, replica.care_of, replica.sequence,
                       Time::sec(replica.lifetime_s), replica.groups);
  }
}

void HaRedundancy::on_delete(const Address& primary, const Address& home) {
  count("hasync/rx/delete");
  replicas_.erase({primary, home});
  if (has_taken_over(primary)) ha_->drop_binding(home);
}

// ---------------------------------------------------------------------------
// Failover

void HaRedundancy::take_over(Peer& peer) {
  if (peer.taken_over) return;
  peer.taken_over = true;
  ++takeovers_;
  count("hasync/takeover");
  // Assume the dead agent's addresses so routed traffic (Binding Updates,
  // reverse tunnels, intercepted packets) resolves to us.
  for (const Address& a : peer.addresses) {
    for (const auto& iface : stack_->node().interfaces()) {
      if (!iface->attached()) continue;
      LinkId link = iface->link()->id();
      if (stack_->plan().has_prefix(link) &&
          stack_->plan().prefix_of(link).contains(a)) {
        stack_->add_address(iface->id(), a);
      }
    }
  }
  // Adopt every replicated binding of that peer.
  for (const auto& [key, rep] : replicas_) {
    if (!(key.first == peer.identity)) continue;
    ha_->adopt_binding(rep.home, rep.care_of, rep.sequence,
                       Time::sec(rep.lifetime_s), rep.groups);
  }
}

void HaRedundancy::fail_back(Peer& peer) {
  peer.taken_over = false;
  count("hasync/failback");
  for (const Address& a : peer.addresses) {
    for (const auto& iface : stack_->node().interfaces()) {
      stack_->remove_address(iface->id(), a);
    }
  }
  for (const auto& [key, rep] : replicas_) {
    if (key.first == peer.identity) ha_->drop_binding(rep.home);
  }
}

void HaRedundancy::count(std::string_view name) {
  stack_->network().counters().add(name);
}

}  // namespace mip6
