#include "mipv6/proxy_messages.hpp"

namespace mip6 {

const char* mobility_ctrl_kind_name(MobilityCtrlKind k) {
  switch (k) {
    case MobilityCtrlKind::kProxyRegister: return "proxy-register";
    case MobilityCtrlKind::kProxyDeregister: return "proxy-deregister";
    case MobilityCtrlKind::kArJoin: return "ar-join";
    case MobilityCtrlKind::kArPrune: return "ar-prune";
  }
  return "?";
}

Bytes MobilityCtrlMessage::serialize() const {
  if (groups.size() > bound::kMaxProxyGroups) {
    throw LogicError("proxy registration exceeds group bound");
  }
  BufferWriter w(2 + 2 * Address::kBytes + groups.size() * Address::kBytes);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(groups.size()));
  home.write(w);
  care_of_or_group.write(w);
  for (const Address& g : groups) g.write(w);
  return std::move(w).take();
}

ParseResult<MobilityCtrlMessage> MobilityCtrlMessage::try_parse(
    BytesView bytes) {
  WireCursor c(bytes);
  MobilityCtrlMessage m;
  std::uint8_t kind = c.u8();
  std::uint8_t count = c.u8();
  m.home = Address::read(c);
  m.care_of_or_group = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "mobility control header"};
  }
  switch (kind) {
    case 1: m.kind = MobilityCtrlKind::kProxyRegister; break;
    case 2: m.kind = MobilityCtrlKind::kProxyDeregister; break;
    case 3: m.kind = MobilityCtrlKind::kArJoin; break;
    case 4: m.kind = MobilityCtrlKind::kArPrune; break;
    default:
      return ParseFailure{ParseReason::kBadType, "mobility control kind"};
  }
  if (count > bound::kMaxProxyGroups) {
    return ParseFailure{ParseReason::kBoundExceeded,
                        "proxy registration group count"};
  }
  for (std::uint8_t i = 0; i < count; ++i) {
    Address g = Address::read(c);
    if (c.failed()) {
      return ParseFailure{ParseReason::kTruncated,
                          "proxy registration group list"};
    }
    if (!g.is_multicast()) {
      return ParseFailure{ParseReason::kSemantic,
                          "proxy registration group is not multicast"};
    }
    m.groups.push_back(g);
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after mobility control message"};
  }
  if (m.kind == MobilityCtrlKind::kArJoin ||
      m.kind == MobilityCtrlKind::kArPrune) {
    if (!m.care_of_or_group.is_multicast()) {
      return ParseFailure{ParseReason::kSemantic,
                          "AR join/prune target is not a multicast group"};
    }
  }
  return m;
}

}  // namespace mip6
