// Mobile IPv6 destination-option bodies (draft-ietf-mobileip-ipv6-10):
// Binding Update, Binding Acknowledgement, Home Address — plus the paper's
// proposed Multicast Group List Sub-Option (Figure 5 of the paper):
//
//    |Sub-Option Type| Sub-Option Len|  then N * 128-bit group addresses,
//    with Sub-Option Len = 16 * N.
#pragma once

#include <cstdint>
#include <vector>

#include "ipv6/address.hpp"
#include "ipv6/ext_headers.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

/// Sub-option TLV carried inside a Binding Update.
struct BuSubOption {
  std::uint8_t type = 0;
  Bytes data;
};

namespace subopt {
inline constexpr std::uint8_t kUniqueIdentifier = 1;
inline constexpr std::uint8_t kAlternateCoa = 2;
/// The paper's proposal; "valid only in a BINDING UPDATE sent to a home
/// agent (Home Registration (H) is set)".
inline constexpr std::uint8_t kMulticastGroupList = 5;
/// mcast-mobility (Helmy): asks the HA to relay group traffic into the
/// MN's reachability multicast group instead of the unicast care-of tunnel.
inline constexpr std::uint8_t kMulticastCareOf = 6;
}  // namespace subopt

struct BindingUpdateOption {
  bool ack_requested = false;    // A
  bool home_registration = false;  // H
  std::uint16_t sequence = 0;
  std::uint32_t lifetime_s = 0;  // 0 = delete binding
  std::vector<BuSubOption> sub_options;

  DestOption encode() const;
  /// No-throw decode; bounds the sub-option count.
  static ParseResult<BindingUpdateOption> try_decode(const DestOption& opt);
  static BindingUpdateOption decode(const DestOption& opt);

  const BuSubOption* find_sub_option(std::uint8_t type) const;
};

struct BindingAckOption {
  std::uint8_t status = 0;  // 0 = accepted
  std::uint16_t sequence = 0;
  std::uint32_t lifetime_s = 0;
  std::uint32_t refresh_s = 0;

  DestOption encode() const;
  static ParseResult<BindingAckOption> try_decode(const DestOption& opt);
  static BindingAckOption decode(const DestOption& opt);
};

struct HomeAddressOption {
  Address home_address;

  DestOption encode() const;
  static ParseResult<HomeAddressOption> try_decode(const DestOption& opt);
  static HomeAddressOption decode(const DestOption& opt);
};

/// Figure 5: the group list as a BU sub-option, Sub-Option Len = 16*N.
struct MulticastGroupListSubOption {
  std::vector<Address> groups;

  BuSubOption encode() const;
  /// No-throw decode; length must be a multiple of 16 and every address a
  /// multicast group.
  static ParseResult<MulticastGroupListSubOption> try_decode(
      const BuSubOption& sub);
  static MulticastGroupListSubOption decode(const BuSubOption& sub);
};

/// The multicast care-of address (mcast-mobility reachability group) as a
/// BU sub-option, Sub-Option Len = 16.
struct MulticastCareOfSubOption {
  Address group;

  BuSubOption encode() const;
  /// No-throw decode; length must be exactly 16 and the address multicast.
  static ParseResult<MulticastCareOfSubOption> try_decode(
      const BuSubOption& sub);
  static MulticastCareOfSubOption decode(const BuSubOption& sub);
};

}  // namespace mip6
