#include "mipv6/home_agent.hpp"

#include <algorithm>

#include "ipv6/icmpv6.hpp"
#include "ipv6/tunnel.hpp"
#include "mld/messages.hpp"
#include "net/wire_stats.hpp"

namespace mip6 {

HomeAgent::HomeAgent(Ipv6Stack& stack, Mipv6Config config,
                     MembershipBackend backend)
    : stack_(&stack), component_("ha/" + stack.node().name()),
      config_(config), backend_(std::move(backend)),
      cache_(stack.scheduler()) {
  stack.set_option_handler(
      opt::kBindingUpdate,
      [this](const DestOption& o, const ParsedDatagram& d, IfaceId) {
        ParseResult<BindingUpdateOption> bu =
            BindingUpdateOption::try_decode(o);
        if (!bu.ok()) {
          count("ha/rx-drop/bad-bu");
          note_parse_reject(stack_->network(), "mipv6", bu.failure());
          return;
        }
        on_binding_update(bu.value(), d);
      });
  stack.set_intercept_handler(
      [this](const ParsedDatagram& d, const Packet& pkt) {
        on_intercepted(d, pkt);
      });
  stack.set_proto_handler(
      proto::kIpv6,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_tunneled(d, iface);
      });
  group_hook_token_ = stack.add_group_delivery_hook(
      [this](const ParsedDatagram& d, const Packet& pkt, IfaceId) {
        on_group_delivery(d, pkt);
      });
  cache_.set_expiry_callback(
      [this](const BindingCache::Entry& e) { on_binding_expired(e); });
}

void HomeAgent::stop() {
  clear_bindings();
  stack_->clear_option_handler(opt::kBindingUpdate);
  stack_->clear_intercept_handler();
  stack_->clear_proto_handler(proto::kIpv6);
  stack_->remove_group_delivery_hook(group_hook_token_);
}

std::vector<Address> HomeAgent::represented_groups() const {
  std::vector<Address> out;
  for (const auto& [g, refs] : group_refs_) out.push_back(g);
  return out;
}

// ---------------------------------------------------------------------------
// Binding management

void HomeAgent::on_binding_update(const BindingUpdateOption& bu,
                                  const ParsedDatagram& d) {
  if (!enabled_) {
    count("ha/drop/disabled-bu");
    return;
  }
  if (!bu.home_registration) return;
  // Draft-10: a BU from a roaming MN arrives with the care-of address as
  // IPv6 source and the home address in a Home Address destination option;
  // a deregistration sent from home carries the home address as plain
  // source. effective_src covers both.
  const Address home = d.effective_src;
  const Address care_of = d.hdr.src;
  count("ha/rx/bu");
  trace_event("rx-bu", [&] {
    return "home=" + home.str() + " coa=" + care_of.str() + " lifetime=" +
           std::to_string(bu.lifetime_s);
  });

  if (bu.lifetime_s == 0 || care_of == home) {
    // Deregistration (mobile node returned home).
    trace_event("dereg", [&] { return "home=" + home.str(); });
    BindingCache::Entry* old = cache_.find(home);
    if (old != nullptr && on_binding_change_) on_binding_change_(*old, true);
    set_binding_groups(home, {});
    cache_.remove(home);
    stack_->remove_intercept(home);
    if (bu.ack_requested) send_binding_ack(home, care_of, bu.sequence);
    return;
  }

  BindingCache::Entry& entry =
      cache_.update(home, care_of, bu.sequence, Time::sec(bu.lifetime_s));
  stack_->add_intercept(home);

  if (const BuSubOption* sub =
          bu.find_sub_option(subopt::kMulticastGroupList)) {
    ParseResult<MulticastGroupListSubOption> mgl =
        MulticastGroupListSubOption::try_decode(*sub);
    if (mgl.ok()) {
      set_binding_groups(home, std::move(mgl).value().groups);
      count("ha/rx/bu-group-list");
    } else {
      count("ha/rx-drop/bad-group-list");
      note_parse_reject(stack_->network(), "mipv6", mgl.failure());
    }
  }
  if (const BuSubOption* sub = bu.find_sub_option(subopt::kMulticastCareOf)) {
    ParseResult<MulticastCareOfSubOption> mc =
        MulticastCareOfSubOption::try_decode(*sub);
    if (mc.ok()) {
      entry.mcast_care_of = mc.value().group;
      count("ha/rx/bu-mcast-coa");
    } else {
      count("ha/rx-drop/bad-mcast-coa");
      note_parse_reject(stack_->network(), "mipv6", mc.failure());
    }
  } else {
    // Sub-option absent: fall back to the unicast tunnel (an MN that
    // switched strategies must not keep its old relay mode).
    entry.mcast_care_of = Address();
  }
  if (bu.ack_requested) send_binding_ack(home, care_of, bu.sequence);
  if (on_binding_change_) {
    if (const BindingCache::Entry* e = cache_.find(home)) {
      on_binding_change_(*e, false);
    }
  }
}

void HomeAgent::adopt_binding(const Address& home, const Address& care_of,
                              std::uint16_t sequence, Time lifetime,
                              std::vector<Address> groups) {
  cache_.update(home, care_of, sequence, lifetime);
  stack_->add_intercept(home);
  set_binding_groups(home, std::move(groups));
  count("ha/binding-adopted");
}

void HomeAgent::clear_bindings() {
  for (const BindingCache::Entry* e : cache_.entries()) {
    stack_->remove_intercept(e->home);
    for (const Address& g : e->groups) unref_group(g);
  }
  for (const auto& [key, timer] : tunnel_memberships_) {
    unref_group(key.second);
  }
  tunnel_memberships_.clear();
  cache_.clear();
  count("ha/bindings-cleared");
}

void HomeAgent::set_enabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  count(enabled ? "ha/enabled" : "ha/disabled");
}

void HomeAgent::drop_binding(const Address& home) {
  if (cache_.find(home) == nullptr) return;
  set_binding_groups(home, {});
  cache_.remove(home);
  stack_->remove_intercept(home);
  count("ha/binding-dropped");
}

void HomeAgent::on_binding_expired(const BindingCache::Entry& expired) {
  count("ha/binding-expired");
  trace_event("binding-expired",
              [&] { return "home=" + expired.home.str(); });
  const Address& home = expired.home;
  stack_->remove_intercept(home);
  // Give up multicast representation for this MN: both the BU-registered
  // groups and any tunnel-MLD listener state.
  for (const Address& g : expired.groups) unref_group(g);
  for (auto it = tunnel_memberships_.begin();
       it != tunnel_memberships_.end();) {
    if (it->first.first == home) {
      unref_group(it->first.second);
      it = tunnel_memberships_.erase(it);
    } else {
      ++it;
    }
  }
}

void HomeAgent::set_binding_groups(const Address& home,
                                   std::vector<Address> groups) {
  BindingCache::Entry* e = cache_.find(home);
  std::vector<Address> old;
  if (e != nullptr) old = e->groups;
  for (const auto& g : groups) {
    if (std::find(old.begin(), old.end(), g) == old.end()) ref_group(g);
  }
  for (const auto& g : old) {
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      unref_group(g);
    }
  }
  if (e != nullptr) e->groups = std::move(groups);
}

// ---------------------------------------------------------------------------
// Group membership on behalf of mobile nodes

void HomeAgent::ref_group(const Address& group) {
  if (++group_refs_[group] == 1 && backend_.join) backend_.join(group);
}

void HomeAgent::unref_group(const Address& group) {
  auto it = group_refs_.find(group);
  if (it == group_refs_.end()) return;
  if (--it->second <= 0) {
    group_refs_.erase(it);
    if (backend_.leave) backend_.leave(group);
  }
}

void HomeAgent::register_tunnel_membership(const Address& home,
                                           const Address& group) {
  auto key = std::make_pair(home, group);
  auto it = tunnel_memberships_.find(key);
  if (it == tunnel_memberships_.end()) {
    auto timer = std::make_unique<Timer>(
        stack_->scheduler(),
        [this, home, group] { expire_tunnel_membership(home, group); }, stack_->node().domain());
    timer->arm(tunnel_membership_lifetime_);
    tunnel_memberships_.emplace(key, std::move(timer));
    ref_group(group);
    count("ha/tunnel-membership-added");
  } else {
    it->second->arm(tunnel_membership_lifetime_);
  }
}

void HomeAgent::expire_tunnel_membership(const Address& home,
                                         const Address& group) {
  if (tunnel_memberships_.erase({home, group}) > 0) {
    unref_group(group);
    count("ha/tunnel-membership-expired");
  }
}

// ---------------------------------------------------------------------------
// Data plane

void HomeAgent::on_intercepted(const ParsedDatagram& d, const Packet& pkt) {
  if (!enabled_) {
    count("ha/drop/disabled-intercept");
    return;
  }
  const BindingCache::Entry* e = cache_.find(d.hdr.dst);
  if (e == nullptr) {
    count("ha/drop/intercept-without-binding");
    return;
  }
  count("ha/encap-unicast");
  trace_event("intercept", [&] {
    return "home=" + e->home.str() + " coa=" + e->care_of.str() + " bytes=" +
           std::to_string(pkt.size());
  });
  tunnel_to(e->home, e->care_of, pkt.view());
}

void HomeAgent::on_group_delivery(const ParsedDatagram& d, const Packet& pkt) {
  if (!enabled_) return;
  const Address& group = d.hdr.dst;
  if (!group_refs_.contains(group)) return;
  for (const BindingCache::Entry* e : cache_.entries()) {
    bool in_bu_list =
        std::find(e->groups.begin(), e->groups.end(), group) != e->groups.end();
    bool in_tunnel_mld = tunnel_memberships_.contains({e->home, group});
    if (!in_bu_list && !in_tunnel_mld) continue;
    if (!e->mcast_care_of.is_unspecified()) {
      // mcast-mobility: relay into the MN's reachability group G_mn; the
      // dense-mode tree rooted here delivers to whichever access routers
      // have joined on the MN's behalf.
      count("ha/encap-mcast-coa");
      trace_event("relay-mcast-coa", [&] {
        return "group=" + group.str() + " home=" + e->home.str() + " gmn=" +
               e->mcast_care_of.str();
      });
      relay_to_mcast_care_of(e->home, e->mcast_care_of, pkt.view());
      continue;
    }
    count("ha/encap-multicast");
    trace_event("tunnel-multicast", [&] {
      return "group=" + group.str() + " home=" + e->home.str() + " coa=" +
             e->care_of.str();
    });
    tunnel_to(e->home, e->care_of, pkt.view());
  }
}

void HomeAgent::on_tunneled(const ParsedDatagram& outer, IfaceId iface) {
  (void)iface;
  // Encapsulated traffic addressed to a multicast group (a relay into an
  // mcast-mobility reachability group) is for the *member MNs*, not for
  // every promiscuous router that happens to run a home agent — decapsulate
  // only what is unicast-addressed to us. Silent: this is normal transit
  // traffic, not an error.
  if (outer.hdr.dst.is_multicast()) return;
  if (!enabled_) {
    count("ha/drop/disabled-tunnel");
    return;
  }
  ParseResult<Bytes> decap = try_decapsulate(outer);
  if (!decap.ok()) {
    count("ha/rx-drop/bad-tunnel");
    note_parse_reject(stack_->network(), "mipv6", decap.failure());
    return;
  }
  Bytes inner = std::move(decap).value();
  count("ha/decap");
  ParsedDatagram in = parse_datagram(inner);
  trace_event("decap", [&] {
    return "src=" + in.hdr.src.str() + " dst=" + in.hdr.dst.str();
  });

  // MLD Report through the tunnel (tunnel-as-interface variant): the MN
  // maintains its home-link group membership via the tunnel.
  if (in.protocol == proto::kIcmpv6 && in.hdr.dst.is_multicast()) {
    ParseResult<Icmpv6Message> icmp =
        Icmpv6Message::try_parse(in.payload, in.hdr.src, in.hdr.dst);
    if (!icmp.ok()) {
      count("ha/rx-drop/bad-tunneled-mld");
      note_parse_reject(stack_->network(), "mipv6", icmp.failure());
      return;
    }
    if (icmp.value().type == icmpv6::kMldReport) {
      ParseResult<MldMessage> rep = MldMessage::try_from_icmpv6(icmp.value());
      if (!rep.ok()) {
        count("ha/rx-drop/bad-tunneled-mld");
        note_parse_reject(stack_->network(), "mipv6", rep.failure());
        return;
      }
      register_tunnel_membership(in.hdr.src, rep.value().group);
      count("ha/rx/tunneled-mld-report");
      trace_event("tunneled-mld-report", [&] {
        return "home=" + in.hdr.src.str() + " group=" + rep.value().group.str();
      });
      // Also place the Report on the home link so an MLD querier other
      // than ourselves learns the membership.
      if (auto hi = iface_for_home(in.hdr.src)) {
        stack_->send_raw_on_iface(*hi, inner);
      }
      return;
    }
  }

  if (in.hdr.dst.is_multicast()) {
    // Reverse-tunneled multicast from a mobile sender: re-originate on the
    // home link (paper Figure 4) and run it through our own forwarding
    // plane so the source-rooted tree rooted at the home link is used.
    count("ha/decap-multicast");
    auto hi = iface_for_home(in.hdr.src);
    if (!hi) {
      count("ha/drop/unknown-home-link");
      return;
    }
    stack_->send_raw_on_iface(*hi, inner);
    stack_->receive_as_if(*hi, std::move(inner));
    return;
  }

  // Reverse-tunneled unicast: forward like a freshly received datagram.
  if (auto hi = iface_for_home(in.hdr.src)) {
    stack_->receive_as_if(*hi, std::move(inner));
  }
}

std::optional<IfaceId> HomeAgent::iface_for_home(const Address& home) const {
  if (auto link = stack_->plan().link_of(home)) {
    for (const auto& iface : stack_->node().interfaces()) {
      if (iface->attached() && iface->link()->id() == *link) {
        return iface->id();
      }
    }
  }
  // Fallback: any interface with a global address.
  for (const auto& iface : stack_->node().interfaces()) {
    if (stack_->has_global_address(iface->id())) return iface->id();
  }
  return std::nullopt;
}

void HomeAgent::tunnel_to(const Address& home, const Address& care_of,
                          BytesView inner) {
  auto hi = iface_for_home(home);
  if (!hi || !stack_->has_global_address(*hi)) {
    count("ha/drop/no-tunnel-source");
    return;
  }
  Address src = stack_->global_address(*hi);
  Bytes outer = encapsulate(inner, src, care_of);
  stack_->network().counters().add("ha/tunnel-bytes", outer.size());
  stack_->send_raw(std::move(outer));
}

void HomeAgent::relay_to_mcast_care_of(const Address& home,
                                       const Address& group_coa,
                                       BytesView inner) {
  auto hi = iface_for_home(home);
  if (!hi || !stack_->has_global_address(*hi)) {
    count("ha/drop/no-tunnel-source");
    return;
  }
  // Re-originate the encapsulated copy on the home interface (RPF-
  // consistent: the (HA, G_mn) dense-mode tree roots at the home link) and
  // run it through our own forwarding plane so downstream routers flood it.
  Bytes outer = encapsulate(inner, stack_->global_address(*hi), group_coa);
  stack_->network().counters().add("ha/tunnel-bytes", outer.size());
  stack_->send_raw_on_iface(*hi, Bytes(outer));
  stack_->receive_as_if(*hi, std::move(outer));
}

void HomeAgent::send_binding_ack(const Address& home, const Address& care_of,
                                 std::uint16_t sequence) {
  BindingAckOption ack;
  ack.status = 0;
  ack.sequence = sequence;
  ack.lifetime_s =
      static_cast<std::uint32_t>(config_.binding_lifetime.to_seconds());
  ack.refresh_s =
      static_cast<std::uint32_t>(config_.bu_refresh_interval.to_seconds());
  DatagramSpec spec;
  auto hi = iface_for_home(home);
  if (!hi || !stack_->has_global_address(*hi)) return;
  spec.src = stack_->global_address(*hi);
  spec.dst = care_of;
  spec.dest_options.push_back(ack.encode());
  spec.protocol = proto::kNoNext;
  (void)home;
  count("ha/tx/back");
  stack_->send(spec);
}

void HomeAgent::count(std::string_view name, std::uint64_t delta) {
  stack_->network().counters().add(name, delta);
}

}  // namespace mip6
