// Mobile IPv6 home agent with the paper's multicast extensions.
//
// Core draft-10 duties: process Binding Updates (home registration), defend
// the mobile node's home address on the home link (proxy intercept), tunnel
// intercepted traffic to the care-of address, answer with Binding
// Acknowledgements, expire bindings.
//
// Paper extensions, both Section 4.3.2 variants:
//  * Multicast Group List Sub-Option (Figure 5): the BU carries the MN's
//    subscribed groups; the HA becomes a member on the MN's behalf and
//    relays every matching multicast datagram into the tunnel.
//  * Tunnel-as-interface (HA is a PIM router): the MN sends ordinary MLD
//    Reports *through the tunnel*; the HA keeps per-(MN, group) listener
//    state with the Multicast Listener Interval lifetime, exactly like an
//    MLD router would on a real interface.
// How the HA "becomes a member" is delegated to a MembershipBackend: on a
// PIM router it pins the group via PimDmRouter::add_local_receiver; on a
// plain host-like HA it joins via its MLD host side.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>

#include "ipv6/icmpv6_dispatch.hpp"
#include "ipv6/stack.hpp"
#include "mipv6/binding_cache.hpp"
#include "mipv6/config.hpp"
#include "mipv6/messages.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class HomeAgent : public ProtocolModule {
 public:
  struct MembershipBackend {
    std::function<void(const Address& group)> join;
    std::function<void(const Address& group)> leave;
  };

  HomeAgent(Ipv6Stack& stack, Mipv6Config config, MembershipBackend backend);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "ha"; }
  /// Crash semantics: loses the binding cache (soft state the mobile nodes
  /// must re-register) and goes disabled until on_restart().
  void on_crash() override {
    clear_bindings();
    set_enabled(false);
  }
  void on_restart() override { set_enabled(true); }
  /// Teardown: drops bindings and releases every stack registration.
  void stop() override;

  BindingCache& cache() { return cache_; }
  const BindingCache& cache() const { return cache_; }

  /// Lifetime of tunnel-MLD listener state (defaults to the MLD Multicast
  /// Listener Interval the paper quotes, 260 s).
  void set_tunnel_membership_lifetime(Time t) { tunnel_membership_lifetime_ = t; }

  /// Groups currently represented on behalf of any mobile node.
  std::vector<Address> represented_groups() const;

  /// Invoked whenever a binding is created/refreshed (deleted=false) or
  /// deregistered (deleted=true) by Binding Update processing. Redundancy
  /// peers subscribe to replicate state.
  using BindingChangeCallback =
      std::function<void(const BindingCache::Entry&, bool deleted)>;
  void set_binding_change_callback(BindingChangeCallback cb) {
    on_binding_change_ = std::move(cb);
  }

  /// Installs a binding received from a redundancy peer (same effects as a
  /// locally processed Binding Update: cache entry, intercept, group
  /// membership on behalf of the mobile node).
  void adopt_binding(const Address& home, const Address& care_of,
                     std::uint16_t sequence, Time lifetime,
                     std::vector<Address> groups);
  /// Drops a binding and everything attached to it (failback cleanup).
  void drop_binding(const Address& home);
  /// Drops every binding, tunnel membership, and represented group (the
  /// backend sees the leaves). Used by crash / outage injection.
  void clear_bindings();
  /// A disabled home agent ignores Binding Updates, intercepts, tunneled
  /// traffic and group deliveries — the data-plane face of an HA outage.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }
  bool represents(const Address& group) const {
    return group_refs_.contains(group);
  }

 private:
  void on_binding_update(const BindingUpdateOption& bu,
                         const ParsedDatagram& d);
  void on_intercepted(const ParsedDatagram& d, const Packet& pkt);
  void on_tunneled(const ParsedDatagram& outer, IfaceId iface);
  void on_group_delivery(const ParsedDatagram& d, const Packet& pkt);
  void on_binding_expired(const BindingCache::Entry& expired);

  void set_binding_groups(const Address& home, std::vector<Address> groups);
  void register_tunnel_membership(const Address& home, const Address& group);
  void expire_tunnel_membership(const Address& home, const Address& group);
  void ref_group(const Address& group);
  void unref_group(const Address& group);
  void tunnel_to(const Address& home, const Address& care_of,
                 BytesView inner);
  /// mcast-mobility: re-originates `inner` encapsulated to the MN's
  /// reachability group on the home interface (the root of the G_mn tree).
  void relay_to_mcast_care_of(const Address& home, const Address& group_coa,
                              BytesView inner);
  void send_binding_ack(const Address& home, const Address& care_of,
                        std::uint16_t sequence);
  /// The router interface on the link owning `home`'s prefix (a router can
  /// be home agent on several links at once, e.g. Router D for Links 4 and
  /// 5 in the paper's topology). Falls back to any interface with a global
  /// address.
  std::optional<IfaceId> iface_for_home(const Address& home) const;
  void count(std::string_view name, std::uint64_t delta = 1);
  /// Lazy protocol-event trace; `detail_fn` only runs when a sink is
  /// installed, so this is free in benches.
  template <typename DetailFn>
  void trace_event(const char* event, DetailFn&& detail_fn) const {
    stack_->network().trace().emit(stack_->network().now(), component_, event,
                                   std::forward<DetailFn>(detail_fn));
  }

  Ipv6Stack* stack_;
  std::size_t group_hook_token_;  // for stop()
  std::string component_;  // "ha/<node>", cached for trace records
  Mipv6Config config_;
  MembershipBackend backend_;
  BindingCache cache_;
  Time tunnel_membership_lifetime_ = Time::sec(260);
  // (home, group) -> listener lifetime timer (tunnel-as-interface variant).
  std::map<std::pair<Address, Address>, std::unique_ptr<Timer>>
      tunnel_memberships_;
  std::map<Address, int> group_refs_;
  BindingChangeCallback on_binding_change_;
  bool enabled_ = true;
};

}  // namespace mip6
