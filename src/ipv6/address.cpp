#include "ipv6/address.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace mip6 {
namespace {

bool parse_group(const std::string& s, std::uint16_t& out) {
  if (s.empty() || s.size() > 4) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    std::uint32_t d;
    if (c >= '0' && c <= '9') d = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') d = static_cast<std::uint32_t>(c - 'A' + 10);
    else return false;
    v = (v << 4) | d;
  }
  out = static_cast<std::uint16_t>(v);
  return true;
}

}  // namespace

Address Address::parse(const std::string& text) {
  // Split on "::" (at most one occurrence).
  std::size_t dc = text.find("::");
  if (dc != std::string::npos && text.find("::", dc + 1) != std::string::npos) {
    throw ParseError("IPv6 address with multiple '::': " + text);
  }
  auto parse_groups = [&](const std::string& part,
                          std::vector<std::uint16_t>& out) {
    if (part.empty()) return;
    for (const auto& g : split(part, ':')) {
      std::uint16_t v;
      if (!parse_group(g, v)) {
        throw ParseError("bad IPv6 group '" + g + "' in: " + text);
      }
      out.push_back(v);
    }
  };
  std::vector<std::uint16_t> head, tail;
  if (dc == std::string::npos) {
    parse_groups(text, head);
    if (head.size() != 8) {
      throw ParseError("IPv6 address needs 8 groups: " + text);
    }
  } else {
    parse_groups(text.substr(0, dc), head);
    parse_groups(text.substr(dc + 2), tail);
    if (head.size() + tail.size() > 7) {
      throw ParseError("IPv6 '::' must compress at least one group: " + text);
    }
  }
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  Address a;
  for (std::size_t i = 0; i < 8; ++i) {
    a.b_[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    a.b_[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return a;
}

Address Address::from_bytes(BytesView bytes) {
  if (bytes.size() != kBytes) {
    throw ParseError("IPv6 address needs 16 octets, got " +
                     std::to_string(bytes.size()));
  }
  Address a;
  for (std::size_t i = 0; i < kBytes; ++i) a.b_[i] = bytes[i];
  return a;
}

Address Address::from_prefix_iid(const Address& prefix_bits,
                                 std::uint64_t iid) {
  Address a = prefix_bits;
  for (int i = 0; i < 8; ++i) {
    a.b_[8 + i] = static_cast<std::uint8_t>(iid >> (8 * (7 - i)));
  }
  return a;
}

// Parsed once: these sit on per-packet paths (e.g. the local-delivery check
// against ff02::1), where re-parsing the literal showed up in profiles.
Address Address::all_nodes() {
  static const Address kAddr = parse("ff02::1");
  return kAddr;
}
Address Address::all_routers() {
  static const Address kAddr = parse("ff02::2");
  return kAddr;
}
Address Address::all_pim_routers() {
  static const Address kAddr = parse("ff02::d");
  return kAddr;
}
Address Address::loopback() {
  static const Address kAddr = parse("::1");
  return kAddr;
}

bool Address::is_unspecified() const {
  for (auto b : b_) {
    if (b != 0) return false;
  }
  return true;
}

bool Address::is_loopback() const {
  for (std::size_t i = 0; i < kBytes - 1; ++i) {
    if (b_[i] != 0) return false;
  }
  return b_[kBytes - 1] == 1;
}

bool Address::is_multicast() const { return b_[0] == 0xff; }

bool Address::is_link_local_unicast() const {
  return b_[0] == 0xfe && (b_[1] & 0xc0) == 0x80;
}

std::uint8_t Address::multicast_scope() const { return b_[1] & 0x0f; }

bool Address::is_link_scope_multicast() const {
  return is_multicast() && multicast_scope() == 0x2;
}

std::uint64_t Address::high64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b_[i];
  return v;
}

std::uint64_t Address::low64() const {
  std::uint64_t v = 0;
  for (int i = 8; i < 16; ++i) v = (v << 8) | b_[i];
  return v;
}

void Address::write(BufferWriter& w) const { w.raw(BytesView(b_)); }

Address Address::read(BufferReader& r) { return from_bytes(r.view(kBytes)); }

Address Address::read(WireCursor& c) {
  BytesView v = c.view(kBytes);
  if (v.size() != kBytes) return Address();  // cursor now failed()
  Address a;
  std::copy(v.begin(), v.end(), a.b_.begin());
  return a;
}

std::string Address::str() const {
  std::array<std::uint16_t, 8> g;
  for (std::size_t i = 0; i < 8; ++i) {
    g[i] = static_cast<std::uint16_t>((b_[2 * i] << 8) | b_[2 * i + 1]);
  }
  // Longest run of zero groups (length >= 2) gets "::".
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  int i = 0;
  while (i < 8) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", g[i]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

Prefix::Prefix(const Address& addr, std::uint8_t len) : net_(addr), len_(len) {
  if (len > 128) throw ParseError("prefix length > 128");
  // Zero host bits for canonical comparison.
  auto bytes = net_.bytes();
  std::array<std::uint8_t, Address::kBytes> out = bytes;
  for (std::size_t bit = len; bit < 128; ++bit) {
    out[bit / 8] &= static_cast<std::uint8_t>(~(0x80u >> (bit % 8)));
  }
  net_ = Address::from_bytes(BytesView(out));
}

Prefix Prefix::parse(const std::string& text) {
  std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw ParseError("prefix needs '/len': " + text);
  }
  int len = 0;
  const std::string len_str = text.substr(slash + 1);
  if (len_str.empty() || len_str.size() > 3) {
    throw ParseError("bad prefix length: " + text);
  }
  for (char c : len_str) {
    if (c < '0' || c > '9') throw ParseError("bad prefix length: " + text);
    len = len * 10 + (c - '0');
  }
  if (len > 128) throw ParseError("prefix length > 128: " + text);
  return Prefix(Address::parse(text.substr(0, slash)),
                static_cast<std::uint8_t>(len));
}

bool Prefix::contains(const Address& a) const {
  const auto& n = net_.bytes();
  const auto& x = a.bytes();
  std::size_t full = len_ / 8;
  for (std::size_t i = 0; i < full; ++i) {
    if (n[i] != x[i]) return false;
  }
  std::size_t rem = len_ % 8;
  if (rem != 0) {
    std::uint8_t mask = static_cast<std::uint8_t>(0xff00u >> rem);
    if ((n[full] & mask) != (x[full] & mask)) return false;
  }
  return true;
}

std::string Prefix::str() const {
  return net_.str() + "/" + std::to_string(len_);
}

}  // namespace mip6
