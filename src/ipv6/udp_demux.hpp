// Fan-out of received UDP datagrams by destination port. Owns the stack's
// UDP protocol handler; RIPng, the home-agent sync protocol and any future
// UDP consumer on the same node subscribe per port.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "ipv6/stack.hpp"
#include "ipv6/udp.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class UdpDemux : public ProtocolModule {
 public:
  using Handler =
      std::function<void(const UdpDatagram&, const ParsedDatagram&, IfaceId)>;

  explicit UdpDemux(Ipv6Stack& stack);

  const char* module_kind() const override { return "udp"; }
  /// Drops every binding and releases the stack's UDP protocol handler.
  void stop() override;

  void bind(std::uint16_t port, Handler h);
  void unbind(std::uint16_t port);

 private:
  void on_udp(const ParsedDatagram& d, IfaceId iface);

  Ipv6Stack* stack_;
  std::map<std::uint16_t, Handler> handlers_;
};

}  // namespace mip6
