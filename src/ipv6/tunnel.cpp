#include "ipv6/tunnel.hpp"

namespace mip6 {

Bytes encapsulate(BytesView inner, const Address& tunnel_src,
                  const Address& tunnel_dst, std::uint8_t hop_limit) {
  DatagramSpec outer;
  outer.src = tunnel_src;
  outer.dst = tunnel_dst;
  outer.hop_limit = hop_limit;
  outer.protocol = proto::kIpv6;
  outer.payload.assign(inner.begin(), inner.end());
  return build_datagram(outer);
}

ParseResult<Bytes> try_decapsulate(const ParsedDatagram& outer) {
  if (outer.protocol != proto::kIpv6) {
    return ParseFailure{ParseReason::kBadType,
                        "outer protocol is not IPv6-in-IPv6"};
  }
  // Validate that the payload parses; the caller usually re-parses anyway,
  // but rejecting garbage here keeps tunnel endpoints honest.
  ParseResult<ParsedDatagram> inner = try_parse_datagram(outer.payload);
  if (!inner.ok()) return inner.failure();
  return Bytes(outer.payload.begin(), outer.payload.end());
}

Bytes decapsulate(const ParsedDatagram& outer) {
  return try_decapsulate(outer).take_or_throw();
}

}  // namespace mip6
