// Global unicast route computation (the "oracle" counterpart of an instantly
// converged link-state IGP, in the spirit of ns-3's GlobalRouting).
//
// For every link prefix, a breadth-first search over the router graph
// computes each router's hop distance and next hop; hosts receive their
// default route from the addressing plan via Ipv6Stack::autoconfigure. The
// hop-count metrics installed here are the values PIM-DM uses in its RPF
// checks and Assert comparisons.
#pragma once

#include <map>
#include <vector>

#include "ipv6/stack.hpp"
#include "net/network.hpp"

namespace mip6 {

class GlobalRouting {
 public:
  GlobalRouting(Network& net, AddressingPlan& plan)
      : net_(&net), plan_(&plan) {}

  /// All stacks must be registered (routers and hosts) before recompute().
  void register_stack(Ipv6Stack& stack);

  /// Clears and reinstalls prefix routes in every forwarding stack, and
  /// autoconfigures every registered host interface. Call after topology
  /// construction and after any router-level topology change.
  void recompute();

  /// Autoconfigures every registered host interface without touching
  /// router RIBs (used when a real routing protocol owns those).
  void autoconfigure_hosts();

  /// Hop count between two links over the router graph (number of router
  /// traversals + 1, i.e. links on the path); 0 if same link; negative if
  /// unreachable. Exposed for metrics (optimal-tree computation).
  int link_distance(LinkId from, LinkId to) const;

  /// The links on a shortest path tree from `root` spanning `leaves`
  /// (union of shortest link paths). Used for routing-optimality metrics.
  std::vector<LinkId> shortest_path_tree(LinkId root,
                                         const std::vector<LinkId>& leaves) const;

 private:
  struct HopInfo {
    std::uint32_t dist;
    IfaceId out_iface;
    Address next_hop;  // unspecified = on-link
  };
  /// BFS from destination link `dst` over forwarding stacks; fills
  /// per-router HopInfo.
  std::map<Ipv6Stack*, HopInfo> bfs_from_link(LinkId dst) const;
  /// BFS over links only (for distance/tree queries).
  std::map<LinkId, std::pair<int, LinkId>> link_bfs(LinkId root) const;

  Network* net_;
  AddressingPlan* plan_;
  std::vector<Ipv6Stack*> stacks_;
};

}  // namespace mip6
