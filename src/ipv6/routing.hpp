// Unicast RIB: longest-prefix-match routing table.
//
// PIM-DM is "protocol independent" because it consumes whatever unicast RIB
// exists — the RPF check (incoming interface and metric toward a source) is
// a lookup here. Routes are installed either statically or by GlobalRouting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ipv6/address.hpp"
#include "net/interface.hpp"

namespace mip6 {

struct Route {
  Prefix prefix;
  IfaceId out_iface = 0;
  /// Next-hop router address; unspecified ("::") means on-link delivery.
  Address next_hop;
  /// Hop-count metric; used by PIM Assert comparison.
  std::uint32_t metric = 0;

  bool on_link() const { return next_hop.is_unspecified(); }
};

class Rib {
 public:
  void add(Route route);
  /// Removes all routes with exactly this prefix.
  void remove_prefix(const Prefix& prefix);
  void clear();

  /// Longest-prefix match; ties broken by lowest metric. nullptr = no route.
  const Route* lookup(const Address& dst) const;

  /// Sets/replaces the default route (::/0).
  void set_default(IfaceId out_iface, const Address& next_hop,
                   std::uint32_t metric = 16);

  std::size_t size() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }

  std::string str() const;

 private:
  std::vector<Route> routes_;
};

}  // namespace mip6
