// Minimal UDP (RFC 768 over IPv6): enough to carry the CBR application
// payload with ports and a verified checksum, so data traffic on the wire is
// structurally real.
#pragma once

#include <cstdint>

#include "ipv6/address.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;

  Bytes serialize(const Address& src, const Address& dst) const;
  /// No-throw parse + checksum/length verification.
  static ParseResult<UdpDatagram> try_parse(BytesView bytes,
                                            const Address& src,
                                            const Address& dst);
  /// Throwing wrapper over try_parse for legacy call sites.
  static UdpDatagram parse(BytesView bytes, const Address& src,
                           const Address& dst);

  static constexpr std::size_t kHeaderSize = 8;
};

}  // namespace mip6
