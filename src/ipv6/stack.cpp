#include "ipv6/stack.hpp"

#include <algorithm>
#include <bit>

#include "ipv6/icmpv6.hpp"
#include "net/wire_stats.hpp"
#include "util/errors.hpp"

namespace mip6 {

Ipv6Stack::Ipv6Stack(Node& node, AddressingPlan& plan, bool forwarding)
    : node_(&node), plan_(&plan), forwarding_(forwarding),
      c_fwd_(node.network().counters().cell("ipv6/fwd")) {
  for (const auto& iface : node.interfaces()) register_iface(*iface);
}

void Ipv6Stack::register_iface(Interface& iface) {
  IfaceId id = iface.id();
  iface.set_rx_handler([this, id](const Packet& pkt) { on_rx(id, pkt); });
  iface.set_address_filter([this](BytesView octets) {
    Address a = Address::from_bytes(octets);
    return owns_address(a) || intercepts(a);
  });
  addrs_.try_emplace(id);
  groups_.try_emplace(id);
}

// ---------------------------------------------------------------------------
// Addresses

void Ipv6Stack::add_address(IfaceId iface, const Address& addr, bool pinned) {
  auto& list = addrs_[iface];
  for (auto& e : list) {
    if (e.addr == addr) {
      e.pinned = e.pinned || pinned;
      return;
    }
  }
  list.push_back(AddrEntry{addr, pinned});
}

void Ipv6Stack::remove_address(IfaceId iface, const Address& addr) {
  auto it = addrs_.find(iface);
  if (it == addrs_.end()) return;
  std::erase_if(it->second,
                [&](const AddrEntry& e) { return e.addr == addr; });
}

bool Ipv6Stack::owns_address(const Address& addr) const {
  for (const auto& [id, list] : addrs_) {
    for (const auto& e : list) {
      if (e.addr == addr) return true;
    }
  }
  return false;
}

std::vector<Address> Ipv6Stack::addresses(IfaceId iface) const {
  std::vector<Address> out;
  auto it = addrs_.find(iface);
  if (it != addrs_.end()) {
    for (const auto& e : it->second) out.push_back(e.addr);
  }
  return out;
}

Address Ipv6Stack::global_address(IfaceId iface) const {
  auto it = addrs_.find(iface);
  if (it != addrs_.end()) {
    for (const auto& e : it->second) {
      if (!e.addr.is_link_local_unicast() && !e.addr.is_multicast()) {
        return e.addr;
      }
    }
  }
  throw LogicError(node_->name() + "/if" + std::to_string(iface) +
                   " has no global address");
}

bool Ipv6Stack::has_global_address(IfaceId iface) const {
  auto it = addrs_.find(iface);
  if (it == addrs_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [](const AddrEntry& e) {
                       return !e.addr.is_link_local_unicast() &&
                              !e.addr.is_multicast();
                     });
}

Address Ipv6Stack::link_local_address(IfaceId iface) const {
  auto it = addrs_.find(iface);
  if (it != addrs_.end()) {
    for (const auto& e : it->second) {
      if (e.addr.is_link_local_unicast()) return e.addr;
    }
  }
  throw LogicError(node_->name() + "/if" + std::to_string(iface) +
                   " has no link-local address");
}

bool Ipv6Stack::has_link_local(IfaceId iface) const {
  auto it = addrs_.find(iface);
  if (it == addrs_.end()) return false;
  return std::any_of(
      it->second.begin(), it->second.end(),
      [](const AddrEntry& e) { return e.addr.is_link_local_unicast(); });
}

void Ipv6Stack::autoconfigure(IfaceId iface) {
  auto& list = addrs_[iface];
  std::erase_if(list, [](const AddrEntry& e) { return !e.pinned; });
  // Hosts keep only autoconfigured routes; flush stale on-link/default
  // entries from the previous attachment.
  if (!forwarding_) rib_.clear();

  Interface& i = node_->iface_by_id(iface);
  // fe80::/64 + iid
  add_address(iface,
              Address::from_prefix_iid(Address::parse("fe80::"), iid()));
  if (i.link() == nullptr) return;
  LinkId lid = i.link()->id();
  if (plan_->has_prefix(lid)) {
    add_address(iface, Address::from_prefix_iid(
                           plan_->prefix_of(lid).network(), iid()));
    if (!forwarding_) {
      // Hosts: on-link route for the local prefix, default via the router.
      rib_.remove_prefix(plan_->prefix_of(lid));
      rib_.add(Route{plan_->prefix_of(lid), iface, Address(), 0});
      if (auto gw = plan_->default_router(lid)) {
        rib_.set_default(iface, *gw);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Groups

void Ipv6Stack::join_local_group(IfaceId iface, const Address& group) {
  groups_[iface].insert(group);
}

void Ipv6Stack::leave_local_group(IfaceId iface, const Address& group) {
  auto it = groups_.find(iface);
  if (it != groups_.end()) it->second.erase(group);
}

bool Ipv6Stack::in_group(IfaceId iface, const Address& group) const {
  auto it = groups_.find(iface);
  return it != groups_.end() && it->second.contains(group);
}

// ---------------------------------------------------------------------------
// Sending

Interface* Ipv6Stack::iface_ptr(IfaceId id) const {
  return &node_->iface_by_id(id);
}

bool Ipv6Stack::transmit_unicast_on(IfaceId iface, const Address& l2_target,
                                    const Packet& pkt) {
  Interface* i = iface_ptr(iface);
  if (!i->attached()) {
    count("ipv6/tx-drop/detached");
    return false;
  }
  Interface* peer = i->link()->resolve(BytesView(l2_target.bytes()), i);
  if (peer == nullptr) {
    count("ipv6/tx-drop/neighbor-unresolved");
    return false;
  }
  i->send_to(pkt, peer->id());
  return true;
}

bool Ipv6Stack::send(const DatagramSpec& spec) {
  return send_raw(build_datagram(spec));
}

bool Ipv6Stack::send_raw(Bytes datagram) {
  ParsedDatagram d = parse_datagram(datagram);
  Packet pkt = network().make_packet(std::move(datagram));
  if (d.hdr.dst.is_multicast()) {
    throw LogicError("send_raw with multicast destination; use send_on_iface");
  }
  const Route* route = rib_.lookup(d.hdr.dst);
  if (route == nullptr) {
    count("ipv6/tx-drop/no-route");
    return false;
  }
  const Address& target = route->on_link() ? d.hdr.dst : route->next_hop;
  return transmit_unicast_on(route->out_iface, target, pkt);
}

bool Ipv6Stack::send_on_iface(IfaceId iface, const DatagramSpec& spec) {
  return send_raw_on_iface(iface, build_datagram(spec));
}

bool Ipv6Stack::send_raw_on_iface(IfaceId iface, Bytes datagram) {
  ParsedDatagram d = parse_datagram(datagram);
  Packet pkt = network().make_packet(std::move(datagram));
  Interface* i = iface_ptr(iface);
  if (!i->attached()) {
    count("ipv6/tx-drop/detached");
    return false;
  }
  if (d.hdr.dst.is_multicast()) {
    i->send(pkt);
    return true;
  }
  return transmit_unicast_on(iface, d.hdr.dst, pkt);
}

void Ipv6Stack::receive_as_if(IfaceId iface, Bytes datagram) {
  Packet pkt = network().make_packet(std::move(datagram));
  process(iface, pkt);
}

// ---------------------------------------------------------------------------
// Handlers

void Ipv6Stack::set_proto_handler(std::uint8_t protocol, ProtoHandler h) {
  proto_handlers_[protocol] = std::move(h);
}

void Ipv6Stack::clear_proto_handler(std::uint8_t protocol) {
  proto_handlers_.erase(protocol);
}

void Ipv6Stack::set_option_handler(std::uint8_t type, OptionHandler h) {
  option_handlers_[type] = std::move(h);
}

void Ipv6Stack::clear_option_handler(std::uint8_t type) {
  option_handlers_.erase(type);
}

std::size_t Ipv6Stack::add_group_delivery_hook(GroupDeliveryHook h) {
  group_hooks_.push_back(std::move(h));
  return group_hooks_.size() - 1;
}

void Ipv6Stack::remove_group_delivery_hook(std::size_t token) {
  if (token < group_hooks_.size()) group_hooks_[token] = nullptr;
}

void Ipv6Stack::stop() {
  proto_handlers_.clear();
  option_handlers_.clear();
  group_hooks_.clear();
  mcast_forwarder_ = nullptr;
  intercept_ = nullptr;
}

// ---------------------------------------------------------------------------
// Intercepts

void Ipv6Stack::add_intercept(const Address& home_addr) {
  intercepts_.insert(home_addr);
}

void Ipv6Stack::remove_intercept(const Address& home_addr) {
  intercepts_.erase(home_addr);
}

bool Ipv6Stack::intercepts(const Address& addr) const {
  return intercepts_.contains(addr);
}

// ---------------------------------------------------------------------------
// Receive path

void Ipv6Stack::on_rx(IfaceId iface, const Packet& pkt) {
  process(iface, pkt);
}

void Ipv6Stack::process(IfaceId iface, const Packet& pkt) {
  ParseResult<ParsedDatagram> parsed = try_parse_datagram(pkt.view());
  if (!parsed.ok()) {
    count("ipv6/rx-drop/parse-error");
    note_parse_reject(network(), "ipv6", parsed.failure());
    return;
  }
  ParsedDatagram d = std::move(parsed).value();

  if (d.hdr.dst.is_multicast()) {
    bool local = d.hdr.dst == Address::all_nodes() ||
                 (forwarding_ && d.hdr.dst == Address::all_routers()) ||
                 mcast_promiscuous_ || in_group(iface, d.hdr.dst);
    if (local) deliver_local(d, pkt, iface);
    // Link-scope multicast is never forwarded off-link; wider scopes go to
    // the multicast routing protocol if one is attached.
    if (forwarding_ && !d.hdr.dst.is_link_scope_multicast() &&
        mcast_forwarder_) {
      mcast_forwarder_(d, pkt, iface);
    }
    return;
  }

  if (owns_address(d.hdr.dst)) {
    deliver_local(d, pkt, iface);
    return;
  }
  if (intercepts(d.hdr.dst)) {
    count("ipv6/intercepted");
    if (intercept_) intercept_(d, pkt);
    return;
  }
  if (forwarding_) {
    forward_unicast(d, pkt);
    return;
  }
  count("ipv6/rx-drop/not-mine");
}

namespace {

// Option types this implementation knows structurally, even on nodes that
// registered no handler for them (a host ignoring a Binding Update must not
// start Parameter-Probleming mobility traffic). Pad1/PadN never surface in
// dest_options — the parser consumes them.
bool recognized_option(std::uint8_t type) {
  return type == opt::kBindingUpdate || type == opt::kBindingAck ||
         type == opt::kBindingRequest || type == opt::kHomeAddress;
}

}  // namespace

void Ipv6Stack::deliver_local(const ParsedDatagram& d, const Packet& pkt,
                              IfaceId iface) {
  for (const auto& o : d.dest_options) {
    auto it = option_handlers_.find(o.type);
    if (it != option_handlers_.end()) {
      it->second(o, d, iface);
      continue;
    }
    if (recognized_option(o.type)) continue;
    // RFC 2460 §4.2: the two high-order bits of an unrecognized option's
    // type select the action.
    switch (o.type >> 6) {
      case 0:  // skip over the option
        break;
      case 1:  // silently discard the datagram
        count("ipv6/rx-drop/unrecognized-option");
        return;
      case 2:  // discard + Parameter Problem, even for multicast dst
        count("ipv6/rx-drop/unrecognized-option");
        send_param_problem(d, pkt, iface, icmpv6::kCodeUnrecognizedOption,
                           o.wire_offset);
        return;
      case 3:  // discard + Parameter Problem only for non-multicast dst
        count("ipv6/rx-drop/unrecognized-option");
        if (!d.hdr.dst.is_multicast()) {
          send_param_problem(d, pkt, iface, icmpv6::kCodeUnrecognizedOption,
                             o.wire_offset);
        }
        return;
    }
  }
  if (d.hdr.dst.is_multicast()) {
    for (const auto& hook : group_hooks_) {
      if (hook) hook(d, pkt, iface);
    }
  }
  auto it = proto_handlers_.find(d.protocol);
  if (it != proto_handlers_.end()) {
    it->second(d, pkt, iface);
  } else if (d.protocol != proto::kNoNext && !d.hdr.dst.is_multicast()) {
    count("ipv6/rx-drop/no-proto-handler");
    // RFC 2463 §3.4, code 1: unrecognized Next Header. The pointer names
    // the Next Header octet that selected the unknown protocol.
    send_param_problem(d, pkt, iface, icmpv6::kCodeUnrecognizedNextHeader,
                       d.next_header_offset);
  }
}

void Ipv6Stack::send_param_problem(const ParsedDatagram& d, const Packet& pkt,
                                   IfaceId iface, std::uint8_t code,
                                   std::uint32_t pointer) {
  // RFC 2463 §2.4(e): never answer a source that cannot be replied to.
  if (d.hdr.src.is_unspecified() || d.hdr.src.is_multicast()) return;
  Address src;
  if (d.hdr.src.is_link_local_unicast() && has_link_local(iface)) {
    src = link_local_address(iface);
  } else if (has_global_address(iface)) {
    src = global_address(iface);
  } else if (has_link_local(iface)) {
    src = link_local_address(iface);
  } else {
    return;
  }
  Icmpv6Message msg = make_param_problem(code, pointer, pkt.view());
  DatagramSpec spec;
  spec.src = src;
  spec.dst = d.hdr.src;
  spec.protocol = proto::kIcmpv6;
  spec.payload = msg.serialize(src, d.hdr.src);
  count("icmpv6/tx/param-problem");
  if (d.hdr.src.is_link_local_unicast()) {
    send_on_iface(iface, spec);
  } else {
    send(spec);
  }
}

void Ipv6Stack::forward_unicast(const ParsedDatagram& d, const Packet& pkt) {
  // Route first: a routing miss must not burn a pooled buffer copy.
  const Route* route = rib_.lookup(d.hdr.dst);
  if (route == nullptr) {
    count("ipv6/fwd-drop/no-route");
    return;
  }
  Packet fwd = pkt;
  if (!rewrite_decremented(fwd)) {
    count("ipv6/fwd-drop/hop-limit");
    return;
  }
  c_fwd_.add();
  const Address& target = route->on_link() ? d.hdr.dst : route->next_hop;
  transmit_unicast_on(route->out_iface, target, fwd);
}

bool Ipv6Stack::rewrite_decremented(Packet& pkt) {
  auto buf = network().buffer_pool().checkout_copy(pkt.data());
  if (!decrement_hop_limit(*buf)) return false;
  pkt.set_buffer(std::move(buf));
  return true;
}

bool Ipv6Stack::forward_out(const Packet& pkt, IfaceId out_iface) {
  Interface* i = iface_ptr(out_iface);
  if (!i->attached()) {
    count("ipv6/tx-drop/detached");
    return false;
  }
  Packet fwd = pkt;
  if (!rewrite_decremented(fwd)) {
    count("ipv6/fwd-drop/hop-limit");
    return false;
  }
  i->send(fwd);
  return true;
}

std::size_t Ipv6Stack::forward_out_many(const Packet& pkt,
                                        const std::vector<IfaceId>& oifs) {
  if (oifs.empty()) return 0;
  // One decremented copy shared by every outgoing replica: each interface's
  // transmit only bumps the buffer's reference count. The per-oif copy the
  // naive loop made was the hottest allocation in multicast-heavy runs.
  Packet fwd = pkt;
  if (!rewrite_decremented(fwd)) {
    count("ipv6/fwd-drop/hop-limit");
    return 0;
  }
  std::size_t sent = 0;
  for (IfaceId oif : oifs) {
    Interface* i = iface_ptr(oif);
    if (!i->attached()) {
      count("ipv6/tx-drop/detached");
      continue;
    }
    i->send(fwd);
    ++sent;
  }
  return sent;
}

std::size_t Ipv6Stack::forward_out_many(const Packet& pkt, const IfSet& oifs,
                                        const MifTable& mifs) {
  if (oifs.empty()) return 0;
  Packet fwd = pkt;
  if (!rewrite_decremented(fwd)) {
    count("ipv6/fwd-drop/hop-limit");
    return 0;
  }
  std::size_t sent = 0;
  for (std::size_t w = 0; w < IfSet::kWords; ++w) {
    std::uint64_t bits = oifs.word(w);
    while (bits != 0) {
      auto b = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      Interface* i = iface_ptr(mifs.iface(static_cast<Mifi>(w * 64 + b)));
      if (!i->attached()) {
        count("ipv6/tx-drop/detached");
        continue;
      }
      i->send(fwd);
      ++sent;
    }
  }
  return sent;
}

void Ipv6Stack::count(std::string_view name, std::uint64_t delta) const {
  network().counters().add(name, delta);
}

}  // namespace mip6
