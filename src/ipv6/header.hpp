// IPv6 fixed header (RFC 2460) wire format and the IP protocol numbers used
// in this codebase.
#pragma once

#include <cstdint>

#include "ipv6/address.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

/// Next-header / protocol numbers (IANA).
namespace proto {
inline constexpr std::uint8_t kHopByHop = 0;
inline constexpr std::uint8_t kUdp = 17;
inline constexpr std::uint8_t kIpv6 = 41;    // IPv6-in-IPv6 encapsulation
inline constexpr std::uint8_t kRouting = 43;
inline constexpr std::uint8_t kIcmpv6 = 58;
inline constexpr std::uint8_t kNoNext = 59;
inline constexpr std::uint8_t kDestOpts = 60;
inline constexpr std::uint8_t kPim = 103;
}  // namespace proto

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;
  static constexpr std::uint8_t kDefaultHopLimit = 64;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;      // 20 bits
  std::uint16_t payload_length = 0;  // octets following this header
  std::uint8_t next_header = proto::kNoNext;
  std::uint8_t hop_limit = kDefaultHopLimit;
  Address src;
  Address dst;

  void write(BufferWriter& w) const;
  /// No-throw parse; validates the version field.
  static ParseResult<Ipv6Header> try_read(WireCursor& c);
  /// Throwing wrapper over try_read for legacy call sites; throws ParseError.
  static Ipv6Header read(BufferReader& r);
};

}  // namespace mip6
