// Whole-datagram composition and parsing.
//
// A datagram here is the fixed IPv6 header, zero or more destination-options
// headers, and a final upper-layer payload (UDP, ICMPv6, PIM, an encapsulated
// IPv6 datagram, or nothing). build_datagram() produces the wire octets;
// parse_datagram() walks the chain back and exposes the pieces every engine
// needs, including the Mobile IPv6 "effective source" (the Home Address
// destination option overrides the IPv6 source for upper layers).
#pragma once

#include <optional>
#include <vector>

#include "ipv6/address.hpp"
#include "ipv6/ext_headers.hpp"
#include "ipv6/header.hpp"
#include "util/buffer.hpp"

namespace mip6 {

struct DatagramSpec {
  Address src;
  Address dst;
  std::uint8_t hop_limit = Ipv6Header::kDefaultHopLimit;
  /// Destination options inserted before the payload (empty = none).
  std::vector<DestOption> dest_options;
  /// Final next-header value (proto::kUdp, kIcmpv6, kPim, kIpv6, kNoNext...).
  std::uint8_t protocol = proto::kNoNext;
  Bytes payload;
};

Bytes build_datagram(const DatagramSpec& spec);

struct ParsedDatagram {
  Ipv6Header hdr;
  std::vector<DestOption> dest_options;
  std::uint8_t protocol = proto::kNoNext;  // final next-header
  /// Final upper-layer octets, viewing into the parsed buffer: a
  /// ParsedDatagram must not outlive the octets it was parsed from.
  /// Zero-copy keeps the per-hop receive path allocation-free; every
  /// consumer is a synchronous handler holding the backing Packet.
  BytesView payload;
  /// hdr.src unless a Home Address option is present, then the home address.
  Address effective_src;
  /// Offset within the datagram of the Next Header octet that selected
  /// `protocol` (6 in the fixed header, or inside the last extension
  /// header). Feeds the ICMPv6 Parameter Problem code-1 pointer.
  std::uint16_t next_header_offset = 6;

  bool has_option(std::uint8_t type) const;
  const DestOption* find_option(std::uint8_t type) const;
};

/// No-throw whole-datagram parse: bad version, truncation, payload-length
/// mismatch, extension-chain/option bounds, and Home Address option
/// malformations all come back as taxonomy failures instead of exceptions.
ParseResult<ParsedDatagram> try_parse_datagram(BytesView bytes);

/// Throwing wrapper over try_parse_datagram for legacy call sites.
ParsedDatagram parse_datagram(BytesView bytes);

/// In-place hop-limit decrement on serialized octets (offset 7).
/// Returns false (and leaves the octets alone) if the hop limit is already
/// <= 1 and the packet must be discarded instead of forwarded.
bool decrement_hop_limit(Bytes& datagram);

}  // namespace mip6
