// ICMPv6 (RFC 2463) message framing with the pseudo-header checksum.
// MLD messages (RFC 2710) are ICMPv6 types 130-132 and are built on this.
#pragma once

#include <cstdint>

#include "ipv6/address.hpp"
#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

namespace icmpv6 {
/// Parameter Problem (RFC 2463 §3.4).
inline constexpr std::uint8_t kParamProblem = 4;
inline constexpr std::uint8_t kCodeErroneousField = 0;
inline constexpr std::uint8_t kCodeUnrecognizedNextHeader = 1;
inline constexpr std::uint8_t kCodeUnrecognizedOption = 2;
inline constexpr std::uint8_t kMldQuery = 130;
inline constexpr std::uint8_t kMldReport = 131;
inline constexpr std::uint8_t kMldDone = 132;
}  // namespace icmpv6

struct Icmpv6Message {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  Bytes body;  // everything after the 4-octet type/code/checksum header

  /// Serializes with the checksum computed over the IPv6 pseudo-header
  /// (src, dst, upper-layer length, next-header 58) plus the message.
  Bytes serialize(const Address& src, const Address& dst) const;

  /// No-throw parse + checksum verification.
  static ParseResult<Icmpv6Message> try_parse(BytesView payload,
                                              const Address& src,
                                              const Address& dst);
  /// Throwing wrapper over try_parse for legacy call sites.
  static Icmpv6Message parse(BytesView payload, const Address& src,
                             const Address& dst);
};

/// Builds a Parameter Problem message: 4-octet pointer into the invoking
/// datagram, then as much of the invoking datagram as fits under the
/// minimum-MTU error-size budget (RFC 2463 §2.4(c)).
Icmpv6Message make_param_problem(std::uint8_t code, std::uint32_t pointer,
                                 BytesView invoking);

/// Computes the RFC 2460 §8.1 upper-layer checksum.
std::uint16_t pseudo_header_checksum(const Address& src, const Address& dst,
                                     std::uint32_t upper_len,
                                     std::uint8_t next_header,
                                     BytesView upper_bytes);

}  // namespace mip6
