// IPv6 Destination Options extension header framing (RFC 2460 §4.6).
//
// Mobile IPv6 (draft-10, the version the paper builds on) carries Binding
// Update / Binding Acknowledgement / Binding Request / Home Address as
// *destination options*; the mipv6 library defines those option bodies while
// this file owns the TLV container: option encoding, Pad1/PadN insertion to
// reach a multiple of 8 octets, and tolerant parsing (unknown options with
// the "skip" action bits are ignored, as the spec requires).
#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

/// One TLV option inside a destination-options header.
struct DestOption {
  std::uint8_t type = 0;
  Bytes data;
  /// Offset of the option's type octet from the start of the datagram (set
  /// by parsing; ignored when writing). Feeds the ICMPv6 Parameter Problem
  /// pointer for unrecognized options.
  std::uint16_t wire_offset = 0;
};

namespace opt {
inline constexpr std::uint8_t kPad1 = 0;
inline constexpr std::uint8_t kPadN = 1;
// Mobile IPv6 draft option types. The two high bits of the type encode the
// unrecognized-option action; 0xC6 = "discard + ICMP if not multicast".
inline constexpr std::uint8_t kBindingUpdate = 0xC6;
inline constexpr std::uint8_t kBindingAck = 0x07;
inline constexpr std::uint8_t kBindingRequest = 0x08;
inline constexpr std::uint8_t kHomeAddress = 0xC9;
}  // namespace opt

struct DestOptionsHeader {
  std::uint8_t next_header = 0;
  std::vector<DestOption> options;

  /// Serializes with PadN so the header length is a multiple of 8 octets.
  void write(BufferWriter& w) const;
  /// No-throw parse of one destination-options header; consumes exactly its
  /// length. `base_offset` is the header's offset within the datagram, used
  /// to stamp each option's wire_offset.
  static ParseResult<DestOptionsHeader> try_read(WireCursor& c,
                                                 std::size_t base_offset = 0);
  /// Throwing wrapper over try_read for tests/legacy callers. Consumes the
  /// whole reader; throws ParseError on malformation.
  static DestOptionsHeader read(BufferReader& r);

  /// Returns the first option of `type`, or nullptr.
  const DestOption* find(std::uint8_t type) const;

  /// Size on the wire after padding.
  std::size_t wire_size() const;
};

}  // namespace mip6
