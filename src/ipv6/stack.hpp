// Per-node IPv6 stack: address ownership, neighbor-resolution filters,
// sending (with unicast routing), receiving (local delivery, option and
// protocol dispatch), router forwarding, and the hooks the multicast and
// mobility engines plug into.
//
// Division of labour: the stack moves serialized datagrams and enforces the
// generic IPv6 rules (hop limit, link-scope multicast never forwarded,
// destination-option dispatch). Everything protocol-specific — MLD, PIM-DM,
// Mobile IPv6 — registers handlers.
#pragma once

#include <string_view>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ipv6/addressing.hpp"
#include "ipv6/datagram.hpp"
#include "ipv6/routing.hpp"
#include "net/mfc.hpp"
#include "net/network.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class Ipv6Stack : public ProtocolModule {
 public:
  /// `forwarding` true makes this node a router.
  Ipv6Stack(Node& node, AddressingPlan& plan, bool forwarding);
  Ipv6Stack(const Ipv6Stack&) = delete;
  Ipv6Stack& operator=(const Ipv6Stack&) = delete;

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "ipv6"; }
  /// Forgets every learned route (crash: the RIB is soft state; addresses
  /// and handler registrations belong to configuration and survive).
  void reset() override { rib_.clear(); }
  /// Deterministic teardown: drops every registered handler so dependent
  /// modules can be destroyed in any order after stop().
  void stop() override;

  Node& node() const { return *node_; }
  Network& network() const { return node_->network(); }
  Scheduler& scheduler() const { return network().scheduler(); }
  AddressingPlan& plan() const { return *plan_; }
  bool forwarding() const { return forwarding_; }

  /// Hooks a (possibly later-added) interface into the stack. The stack
  /// constructor registers all interfaces existing at that moment.
  void register_iface(Interface& iface);

  // --- Address configuration -----------------------------------------
  /// `pinned` addresses survive autoconfigure() (the mobile node's home
  /// address is pinned; care-of addresses are not).
  void add_address(IfaceId iface, const Address& addr, bool pinned = false);
  void remove_address(IfaceId iface, const Address& addr);
  bool owns_address(const Address& addr) const;
  std::vector<Address> addresses(IfaceId iface) const;
  /// First global (non-link-local) address on the interface; throws if none.
  Address global_address(IfaceId iface) const;
  bool has_global_address(IfaceId iface) const;
  Address link_local_address(IfaceId iface) const;
  bool has_link_local(IfaceId iface) const;
  std::uint64_t iid() const { return AddressingPlan::iid_for_node(node_->id()); }

  /// SLAAC against the addressing plan for the currently attached link:
  /// removes non-pinned addresses, assigns fe80::iid plus prefix:iid (if the
  /// link has a prefix), and — on hosts — installs the default route via the
  /// link's default router. No-op address-wise if detached (addresses are
  /// still flushed).
  void autoconfigure(IfaceId iface);

  // --- Multicast group membership (receive filter) --------------------
  void join_local_group(IfaceId iface, const Address& group);
  void leave_local_group(IfaceId iface, const Address& group);
  bool in_group(IfaceId iface, const Address& group) const;
  /// Routers running MLD/PIM listen to all multicast on their links.
  void set_mcast_promiscuous(bool on) { mcast_promiscuous_ = on; }

  // --- Sending ---------------------------------------------------------
  /// Builds and routes a unicast datagram. Returns false if no route or the
  /// output interface is detached / neighbor resolution fails.
  bool send(const DatagramSpec& spec);
  /// Routes pre-serialized octets (tunnel outer packets, forwarded inners).
  bool send_raw(Bytes datagram);
  /// Transmits on a specific interface without routing; multicast and
  /// link-local destinations go out as broadcast frames, unicast resolves
  /// the neighbor on that link.
  bool send_on_iface(IfaceId iface, const DatagramSpec& spec);
  bool send_raw_on_iface(IfaceId iface, Bytes datagram);

  /// Feeds a serialized datagram through the full receive path as if it had
  /// just arrived on `iface` — used by tunnel endpoints to process inner
  /// datagrams (decapsulated traffic re-enters the stack here).
  void receive_as_if(IfaceId iface, Bytes datagram);

  // --- Local delivery handlers ----------------------------------------
  using ProtoHandler =
      std::function<void(const ParsedDatagram&, const Packet&, IfaceId)>;
  void set_proto_handler(std::uint8_t protocol, ProtoHandler h);
  void clear_proto_handler(std::uint8_t protocol);

  using OptionHandler =
      std::function<void(const DestOption&, const ParsedDatagram&, IfaceId)>;
  void set_option_handler(std::uint8_t type, OptionHandler h);
  void clear_option_handler(std::uint8_t type);

  /// Invoked whenever a multicast datagram is accepted locally (any group).
  /// The home agent hooks this to relay group traffic into MN tunnels.
  /// Returns a token for remove_group_delivery_hook.
  using GroupDeliveryHook =
      std::function<void(const ParsedDatagram&, const Packet&, IfaceId)>;
  std::size_t add_group_delivery_hook(GroupDeliveryHook h);
  void remove_group_delivery_hook(std::size_t token);

  // --- Router-side hooks -------------------------------------------------
  Rib& rib() { return rib_; }
  const Rib& rib() const { return rib_; }

  /// Installed by PIM-DM: called for every non-link-scope multicast
  /// datagram received on a forwarding node.
  using McastForwarder =
      std::function<void(const ParsedDatagram&, const Packet&, IfaceId)>;
  void set_mcast_forwarder(McastForwarder f) { mcast_forwarder_ = std::move(f); }
  void clear_mcast_forwarder() { mcast_forwarder_ = nullptr; }

  /// Replicates `pkt` out of `out_iface` with the hop limit decremented
  /// (used by PIM to place a copy on a downstream link). Returns false if
  /// the hop limit ran out or the interface is detached.
  bool forward_out(const Packet& pkt, IfaceId out_iface);

  /// Fan-out variant: decrements the hop limit ONCE and shares the same
  /// rewritten buffer across every outgoing interface, so replicating to N
  /// links costs one buffer copy instead of N. Returns the number of
  /// interfaces actually transmitted on (detached ones are skipped).
  std::size_t forward_out_many(const Packet& pkt,
                               const std::vector<IfaceId>& oifs);

  /// Bitmap variant for precomputed MFC entries: iterates the set bits of
  /// `oifs` (mifi order == ascending IfaceId order by MifTable contract,
  /// so transmission order matches the vector overload) and shares one
  /// hop-limit-decremented buffer across every replica. Allocation-free.
  std::size_t forward_out_many(const Packet& pkt, const IfSet& oifs,
                               const MifTable& mifs);

  // --- Home-agent intercept (proxy for away-from-home addresses) -------
  void add_intercept(const Address& home_addr);
  void remove_intercept(const Address& home_addr);
  bool intercepts(const Address& addr) const;
  /// Receives datagrams whose destination is an intercepted address.
  using InterceptHandler = std::function<void(const ParsedDatagram&, const Packet&)>;
  void set_intercept_handler(InterceptHandler h) { intercept_ = std::move(h); }
  void clear_intercept_handler() { intercept_ = nullptr; }

 private:
  struct AddrEntry {
    Address addr;
    bool pinned;
  };

  void on_rx(IfaceId iface, const Packet& pkt);
  void process(IfaceId iface, const Packet& pkt);
  void deliver_local(const ParsedDatagram& d, const Packet& pkt,
                     IfaceId iface);
  /// Originates an ICMPv6 Parameter Problem (RFC 2463 §3.4) back at the
  /// offending datagram's source, unless that source is unanswerable
  /// (multicast / unspecified) or no usable local address exists.
  void send_param_problem(const ParsedDatagram& d, const Packet& pkt,
                          IfaceId iface, std::uint8_t code,
                          std::uint32_t pointer);
  void forward_unicast(const ParsedDatagram& d, const Packet& pkt);
  /// Installs a pooled, hop-limit-decremented copy of pkt's octets into
  /// `pkt`; false (pkt untouched semantically) when the hop limit ran out.
  bool rewrite_decremented(Packet& pkt);
  bool transmit_unicast_on(IfaceId iface, const Address& l2_target,
                           const Packet& pkt);
  Interface* iface_ptr(IfaceId id) const;
  void count(std::string_view name, std::uint64_t delta = 1) const;

  Node* node_;
  AddressingPlan* plan_;
  bool forwarding_;
  /// Cell for the per-packet "ipv6/fwd" counter, resolved once (the string
  /// lookup per forwarded datagram showed up in profiles).
  CounterCell c_fwd_;
  bool mcast_promiscuous_ = false;

  std::map<IfaceId, std::vector<AddrEntry>> addrs_;
  std::map<IfaceId, std::set<Address>> groups_;
  std::set<Address> intercepts_;
  Rib rib_;

  std::map<std::uint8_t, ProtoHandler> proto_handlers_;
  std::map<std::uint8_t, OptionHandler> option_handlers_;
  std::vector<GroupDeliveryHook> group_hooks_;
  McastForwarder mcast_forwarder_;
  InterceptHandler intercept_;
};

}  // namespace mip6
