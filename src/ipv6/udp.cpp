#include "ipv6/udp.hpp"

#include "ipv6/header.hpp"
#include "ipv6/icmpv6.hpp"

namespace mip6 {

Bytes UdpDatagram::serialize(const Address& src, const Address& dst) const {
  BufferWriter w(kHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
  w.u16(0);  // checksum placeholder
  w.raw(payload);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kUdp, w.bytes());
  if (ck == 0) ck = 0xffff;  // RFC 768: zero is "no checksum"
  w.patch_u16(6, ck);
  return std::move(w).take();
}

UdpDatagram UdpDatagram::parse(BytesView bytes, const Address& src,
                               const Address& dst) {
  if (bytes.size() < kHeaderSize) throw ParseError("UDP datagram too short");
  if (pseudo_header_checksum(src, dst,
                             static_cast<std::uint32_t>(bytes.size()),
                             proto::kUdp, bytes) != 0) {
    throw ParseError("UDP checksum mismatch");
  }
  BufferReader r(bytes);
  UdpDatagram d;
  d.src_port = r.u16();
  d.dst_port = r.u16();
  std::uint16_t len = r.u16();
  if (len != bytes.size()) throw ParseError("UDP length field mismatch");
  r.skip(2);  // checksum
  d.payload = r.raw(r.remaining());
  return d;
}

}  // namespace mip6
