#include "ipv6/udp.hpp"

#include "ipv6/header.hpp"
#include "ipv6/icmpv6.hpp"

namespace mip6 {

Bytes UdpDatagram::serialize(const Address& src, const Address& dst) const {
  BufferWriter w(kHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
  w.u16(0);  // checksum placeholder
  w.raw(payload);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kUdp, w.bytes());
  if (ck == 0) ck = 0xffff;  // RFC 768: zero is "no checksum"
  w.patch_u16(6, ck);
  return std::move(w).take();
}

ParseResult<UdpDatagram> UdpDatagram::try_parse(BytesView bytes,
                                                const Address& src,
                                                const Address& dst) {
  if (bytes.size() < kHeaderSize) {
    return ParseFailure{ParseReason::kTruncated, "UDP datagram too short"};
  }
  if (pseudo_header_checksum(src, dst,
                             static_cast<std::uint32_t>(bytes.size()),
                             proto::kUdp, bytes) != 0) {
    return ParseFailure{ParseReason::kBadChecksum, "UDP checksum"};
  }
  WireCursor c(bytes);
  UdpDatagram d;
  d.src_port = c.u16();
  d.dst_port = c.u16();
  std::uint16_t len = c.u16();
  if (len > bytes.size()) {
    return ParseFailure{ParseReason::kTruncated,
                        "UDP length field exceeds received octets"};
  }
  if (len < bytes.size()) {
    return ParseFailure{ParseReason::kOverlength,
                        "octets beyond UDP length field"};
  }
  c.skip(2);  // checksum
  d.payload = c.raw(c.remaining());
  return d;
}

UdpDatagram UdpDatagram::parse(BytesView bytes, const Address& src,
                               const Address& dst) {
  return try_parse(bytes, src, dst).take_or_throw();
}

}  // namespace mip6
