#include "ipv6/header.hpp"

#include <algorithm>

namespace mip6 {

void Ipv6Header::write(BufferWriter& w) const {
  std::uint32_t word0 = (std::uint32_t{6} << 28) |
                        (std::uint32_t{traffic_class} << 20) |
                        (flow_label & 0xfffff);
  w.u32(word0);
  w.u16(payload_length);
  w.u8(next_header);
  w.u8(hop_limit);
  src.write(w);
  dst.write(w);
}

ParseResult<Ipv6Header> Ipv6Header::try_read(WireCursor& c) {
  std::uint32_t word0 = c.u32();
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>(word0 >> 20);
  h.flow_label = word0 & 0xfffff;
  h.payload_length = c.u16();
  h.next_header = c.u8();
  h.hop_limit = c.u8();
  h.src = Address::read(c);
  h.dst = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "IPv6 fixed header"};
  }
  if ((word0 >> 28) != 6) {
    return ParseFailure{ParseReason::kBadType, "IPv6 version field is not 6"};
  }
  return h;
}

Ipv6Header Ipv6Header::read(BufferReader& r) {
  WireCursor c(r.view(std::min(r.remaining(), kSize)));
  return Ipv6Header::try_read(c).take_or_throw();
}

}  // namespace mip6
