#include "ipv6/header.hpp"

namespace mip6 {

void Ipv6Header::write(BufferWriter& w) const {
  std::uint32_t word0 = (std::uint32_t{6} << 28) |
                        (std::uint32_t{traffic_class} << 20) |
                        (flow_label & 0xfffff);
  w.u32(word0);
  w.u16(payload_length);
  w.u8(next_header);
  w.u8(hop_limit);
  src.write(w);
  dst.write(w);
}

Ipv6Header Ipv6Header::read(BufferReader& r) {
  std::uint32_t word0 = r.u32();
  if ((word0 >> 28) != 6) {
    throw ParseError("IPv6 version field is not 6");
  }
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>(word0 >> 20);
  h.flow_label = word0 & 0xfffff;
  h.payload_length = r.u16();
  h.next_header = r.u8();
  h.hop_limit = r.u8();
  h.src = Address::read(r);
  h.dst = Address::read(r);
  return h;
}

}  // namespace mip6
