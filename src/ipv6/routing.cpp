#include "ipv6/routing.hpp"

#include <algorithm>

namespace mip6 {

void Rib::add(Route route) { routes_.push_back(std::move(route)); }

void Rib::remove_prefix(const Prefix& prefix) {
  std::erase_if(routes_, [&](const Route& r) { return r.prefix == prefix; });
}

void Rib::clear() { routes_.clear(); }

const Route* Rib::lookup(const Address& dst) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.prefix.contains(dst)) continue;
    if (best == nullptr || r.prefix.length() > best->prefix.length() ||
        (r.prefix.length() == best->prefix.length() &&
         r.metric < best->metric)) {
      best = &r;
    }
  }
  return best;
}

void Rib::set_default(IfaceId out_iface, const Address& next_hop,
                      std::uint32_t metric) {
  Prefix def(Address(), 0);
  remove_prefix(def);
  add(Route{def, out_iface, next_hop, metric});
}

std::string Rib::str() const {
  std::string out;
  for (const auto& r : routes_) {
    out += r.prefix.str() + " -> if" + std::to_string(r.out_iface) +
           (r.on_link() ? " on-link" : (" via " + r.next_hop.str())) +
           " metric " + std::to_string(r.metric) + "\n";
  }
  return out;
}

}  // namespace mip6
