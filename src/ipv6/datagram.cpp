#include "ipv6/datagram.hpp"

namespace mip6 {

Bytes build_datagram(const DatagramSpec& spec) {
  BufferWriter w(Ipv6Header::kSize + 64 + spec.payload.size());

  DestOptionsHeader dopts;
  bool with_opts = !spec.dest_options.empty();
  std::size_t ext_size = 0;
  if (with_opts) {
    dopts.next_header = spec.protocol;
    dopts.options = spec.dest_options;
    ext_size = dopts.wire_size();
  }

  Ipv6Header hdr;
  hdr.src = spec.src;
  hdr.dst = spec.dst;
  hdr.hop_limit = spec.hop_limit;
  hdr.next_header = with_opts ? proto::kDestOpts : spec.protocol;
  std::size_t payload_len = ext_size + spec.payload.size();
  if (payload_len > 0xffff) {
    throw LogicError("datagram payload exceeds 65535 octets");
  }
  hdr.payload_length = static_cast<std::uint16_t>(payload_len);

  hdr.write(w);
  if (with_opts) dopts.write(w);
  w.raw(spec.payload);
  return std::move(w).take();
}

bool ParsedDatagram::has_option(std::uint8_t type) const {
  return find_option(type) != nullptr;
}

const DestOption* ParsedDatagram::find_option(std::uint8_t type) const {
  for (const auto& o : dest_options) {
    if (o.type == type) return &o;
  }
  return nullptr;
}

ParseResult<ParsedDatagram> try_parse_datagram(BytesView bytes) {
  WireCursor c(bytes);
  ParsedDatagram d;
  ParseResult<Ipv6Header> hdr = Ipv6Header::try_read(c);
  if (!hdr.ok()) return hdr.failure();
  d.hdr = hdr.value();
  if (d.hdr.payload_length > c.remaining()) {
    return ParseFailure{ParseReason::kTruncated,
                        "IPv6 payload length exceeds received octets"};
  }
  if (d.hdr.payload_length < c.remaining()) {
    return ParseFailure{ParseReason::kOverlength,
                        "octets beyond IPv6 payload length"};
  }
  std::uint8_t next = d.hdr.next_header;
  std::size_t chain = 0;
  while (next == proto::kDestOpts) {
    if (++chain > bound::kMaxExtHeaderChain) {
      return ParseFailure{ParseReason::kBoundExceeded,
                          "extension header chain"};
    }
    std::size_t base = c.position();
    d.next_header_offset = static_cast<std::uint16_t>(base);
    ParseResult<DestOptionsHeader> h = DestOptionsHeader::try_read(c, base);
    if (!h.ok()) return h.failure();
    if (d.dest_options.size() + h.value().options.size() >
        bound::kMaxDestOptions) {
      return ParseFailure{ParseReason::kBoundExceeded,
                          "destination options in one datagram"};
    }
    for (auto& o : h.value().options) d.dest_options.push_back(std::move(o));
    next = h.value().next_header;
  }
  d.protocol = next;
  d.payload = c.view(c.remaining());
  d.effective_src = d.hdr.src;
  if (const DestOption* home = d.find_option(opt::kHomeAddress)) {
    if (home->data.size() != Address::kBytes) {
      return ParseFailure{ParseReason::kBadLength,
                          "Home Address option length"};
    }
    Address ha = Address::from_bytes(home->data);
    if (ha.is_multicast() || ha.is_unspecified()) {
      return ParseFailure{ParseReason::kSemantic,
                          "Home Address option is not a unicast address"};
    }
    d.effective_src = ha;
  }
  return d;
}

ParsedDatagram parse_datagram(BytesView bytes) {
  return try_parse_datagram(bytes).take_or_throw();
}

bool decrement_hop_limit(Bytes& datagram) {
  if (datagram.size() < Ipv6Header::kSize) {
    throw ParseError("datagram shorter than fixed header");
  }
  if (datagram[7] <= 1) return false;
  datagram[7] -= 1;
  return true;
}

}  // namespace mip6
