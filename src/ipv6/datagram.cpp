#include "ipv6/datagram.hpp"

namespace mip6 {

Bytes build_datagram(const DatagramSpec& spec) {
  BufferWriter w(Ipv6Header::kSize + 64 + spec.payload.size());

  DestOptionsHeader dopts;
  bool with_opts = !spec.dest_options.empty();
  std::size_t ext_size = 0;
  if (with_opts) {
    dopts.next_header = spec.protocol;
    dopts.options = spec.dest_options;
    ext_size = dopts.wire_size();
  }

  Ipv6Header hdr;
  hdr.src = spec.src;
  hdr.dst = spec.dst;
  hdr.hop_limit = spec.hop_limit;
  hdr.next_header = with_opts ? proto::kDestOpts : spec.protocol;
  std::size_t payload_len = ext_size + spec.payload.size();
  if (payload_len > 0xffff) {
    throw LogicError("datagram payload exceeds 65535 octets");
  }
  hdr.payload_length = static_cast<std::uint16_t>(payload_len);

  hdr.write(w);
  if (with_opts) dopts.write(w);
  w.raw(spec.payload);
  return std::move(w).take();
}

bool ParsedDatagram::has_option(std::uint8_t type) const {
  return find_option(type) != nullptr;
}

const DestOption* ParsedDatagram::find_option(std::uint8_t type) const {
  for (const auto& o : dest_options) {
    if (o.type == type) return &o;
  }
  return nullptr;
}

ParsedDatagram parse_datagram(BytesView bytes) {
  BufferReader r(bytes);
  ParsedDatagram d;
  d.hdr = Ipv6Header::read(r);
  if (d.hdr.payload_length != r.remaining()) {
    throw ParseError("IPv6 payload length " +
                     std::to_string(d.hdr.payload_length) +
                     " != actual " + std::to_string(r.remaining()));
  }
  std::uint8_t next = d.hdr.next_header;
  while (next == proto::kDestOpts) {
    DestOptionsHeader h = DestOptionsHeader::read(r);
    for (auto& o : h.options) d.dest_options.push_back(std::move(o));
    next = h.next_header;
  }
  d.protocol = next;
  d.payload = r.raw(r.remaining());
  d.effective_src = d.hdr.src;
  if (const DestOption* home = d.find_option(opt::kHomeAddress)) {
    if (home->data.size() == Address::kBytes) {
      d.effective_src = Address::from_bytes(home->data);
    } else {
      throw ParseError("Home Address option with bad length");
    }
  }
  return d;
}

bool decrement_hop_limit(Bytes& datagram) {
  if (datagram.size() < Ipv6Header::kSize) {
    throw ParseError("datagram shorter than fixed header");
  }
  if (datagram[7] <= 1) return false;
  datagram[7] -= 1;
  return true;
}

}  // namespace mip6
