#include "ipv6/ext_headers.hpp"

namespace mip6 {
namespace {

std::size_t options_payload_size(const std::vector<DestOption>& options) {
  std::size_t n = 0;
  for (const auto& o : options) n += 2 + o.data.size();
  return n;
}

}  // namespace

std::size_t DestOptionsHeader::wire_size() const {
  std::size_t body = 2 + options_payload_size(options);
  return (body + 7) / 8 * 8;
}

void DestOptionsHeader::write(BufferWriter& w) const {
  std::size_t body = 2 + options_payload_size(options);
  std::size_t padded = (body + 7) / 8 * 8;
  std::size_t pad = padded - body;
  if (padded / 8 - 1 > 255) {
    throw LogicError("destination options header too large");
  }
  w.u8(next_header);
  w.u8(static_cast<std::uint8_t>(padded / 8 - 1));
  for (const auto& o : options) {
    if (o.data.size() > 255) {
      throw LogicError("destination option data > 255 octets");
    }
    w.u8(o.type);
    w.u8(static_cast<std::uint8_t>(o.data.size()));
    w.raw(o.data);
  }
  // Pad to the 8-octet boundary: one Pad1 or a PadN.
  if (pad == 1) {
    w.u8(opt::kPad1);
  } else if (pad >= 2) {
    w.u8(opt::kPadN);
    w.u8(static_cast<std::uint8_t>(pad - 2));
    w.zeros(pad - 2);
  }
}

ParseResult<DestOptionsHeader> DestOptionsHeader::try_read(
    WireCursor& c, std::size_t base_offset) {
  DestOptionsHeader h;
  h.next_header = c.u8();
  std::size_t len = (static_cast<std::size_t>(c.u8()) + 1) * 8;
  BytesView body_view = c.view(len - 2);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "destination-options header"};
  }
  WireCursor body(body_view);
  while (!body.empty()) {
    std::size_t opt_off = base_offset + 2 + body.position();
    std::uint8_t type = body.u8();
    if (type == opt::kPad1) continue;
    std::uint8_t dlen = body.u8();
    Bytes data = body.raw(dlen);
    if (body.failed()) {
      return ParseFailure{ParseReason::kTruncated, "destination option TLV"};
    }
    if (type == opt::kPadN) continue;
    if (h.options.size() >= bound::kMaxDestOptions) {
      return ParseFailure{ParseReason::kBoundExceeded,
                          "destination options in one header"};
    }
    h.options.push_back(DestOption{type, std::move(data),
                                   static_cast<std::uint16_t>(opt_off)});
  }
  return h;
}

DestOptionsHeader DestOptionsHeader::read(BufferReader& r) {
  WireCursor c(r.view(r.remaining()));
  return DestOptionsHeader::try_read(c).take_or_throw();
}

const DestOption* DestOptionsHeader::find(std::uint8_t type) const {
  for (const auto& o : options) {
    if (o.type == type) return &o;
  }
  return nullptr;
}

}  // namespace mip6
