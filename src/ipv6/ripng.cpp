#include "ipv6/ripng.hpp"

#include "net/wire_stats.hpp"

namespace mip6 {
namespace {

constexpr std::uint8_t kCommandResponse = 2;
constexpr std::uint8_t kVersion = 1;

}  // namespace

Address ripng_group() {
  static const Address kAddr = Address::parse("ff02::9");
  return kAddr;
}

Bytes ripng_response_payload(const std::vector<RipngRte>& rtes) {
  BufferWriter w(4 + rtes.size() * 20);
  w.u8(kCommandResponse);
  w.u8(kVersion);
  w.u16(0);
  for (const auto& rte : rtes) {
    rte.prefix.network().write(w);
    w.u16(0);  // route tag
    w.u8(rte.prefix.length());
    w.u8(rte.metric);
  }
  return std::move(w).take();
}

ParseResult<std::vector<RipngRte>> try_parse_ripng_response(
    BytesView payload) {
  WireCursor c(payload);
  std::uint8_t command = c.u8();
  std::uint8_t version = c.u8();
  c.skip(2);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "RIPng header"};
  }
  if (command != kCommandResponse) {
    return ParseFailure{ParseReason::kBadType, "RIPng: not a Response"};
  }
  if (version != kVersion) {
    return ParseFailure{ParseReason::kBadType, "RIPng: bad version"};
  }
  if (c.remaining() % 20 != 0) {
    return ParseFailure{ParseReason::kTruncated,
                        "RIPng: truncated route entries"};
  }
  if (c.remaining() / 20 > bound::kMaxRipngRtes) {
    return ParseFailure{ParseReason::kBoundExceeded,
                        "RIPng route entries per response"};
  }
  std::vector<RipngRte> rtes;
  while (!c.empty()) {
    Address addr = Address::read(c);
    c.skip(2);  // route tag
    std::uint8_t len = c.u8();
    std::uint8_t metric = c.u8();
    if (c.failed()) {
      return ParseFailure{ParseReason::kTruncated, "RIPng route entry"};
    }
    if (len > 128) {
      return ParseFailure{ParseReason::kSemantic,
                          "RIPng: prefix length > 128"};
    }
    rtes.push_back(RipngRte{Prefix(addr, len), metric});
  }
  return rtes;
}

std::vector<RipngRte> parse_ripng_response(BytesView payload) {
  return try_parse_ripng_response(payload).take_or_throw();
}

Ripng::Ripng(Ipv6Stack& stack, UdpDemux& udp, RipngConfig config)
    : stack_(&stack), udp_(&udp), config_(config),
      update_timer_(stack.scheduler(), [this] {
        send_periodic_update();
        update_timer_.arm(config_.update_interval);
      }),
      triggered_timer_(stack.scheduler(), [this] {
        if (!triggered_pending_) return;
        triggered_pending_ = false;
        for (IfaceId iface : ifaces_) send_update_on(iface, true);
        for (auto& [prefix, r] : routes_) r->changed = false;
      }) {
  udp.bind(kRipngPort,
           [this](const UdpDatagram& u, const ParsedDatagram& d,
                  IfaceId iface) { on_response(u, d, iface); });
  // First full update shortly after start (jitter avoided: deterministic).
  update_timer_.arm(Time::ms(100));
}

void Ripng::start() {
  for (const auto& ifp : stack_->node().interfaces()) {
    if (ifp->attached() && configured_.contains(ifp->id())) {
      enable_iface(ifp->id());
    }
  }
}

void Ripng::stop() {
  shutdown();
  udp_->unbind(kRipngPort);
}

void Ripng::enable_iface(IfaceId iface) {
  configured_.insert(iface);
  ifaces_.push_back(iface);
  stack_->join_local_group(iface, ripng_group());
  // Re-arm the update cycle if a shutdown() stopped it.
  if (!update_timer_.running()) update_timer_.arm(Time::ms(100));

  Interface& i = stack_->node().iface_by_id(iface);
  if (i.link() != nullptr && stack_->plan().has_prefix(i.link()->id())) {
    const Prefix& prefix = stack_->plan().prefix_of(i.link()->id());
    auto r = std::make_unique<RouteState>();
    r->prefix = prefix;
    r->iface = iface;
    r->metric = 1;
    r->connected = true;
    r->changed = true;
    sync_rib(*r, false);
    routes_[prefix] = std::move(r);
  }
}

void Ripng::shutdown() {
  for (const auto& [prefix, r] : routes_) sync_rib(*r, /*removed=*/true);
  routes_.clear();  // cancels timeout / gc timers
  ifaces_.clear();
  update_timer_.cancel();
  triggered_timer_.cancel();
  triggered_pending_ = false;
  count("ripng/shutdown");
}

std::uint8_t Ripng::metric_of(const Prefix& prefix) const {
  auto it = routes_.find(prefix);
  return it == routes_.end() ? config_.infinity : it->second->metric;
}

void Ripng::on_response(const UdpDatagram& udp, const ParsedDatagram& d,
                        IfaceId iface) {
  // RFC 2080: updates must come from a link-local source on this link.
  if (!d.hdr.src.is_link_local_unicast()) {
    count("ripng/rx-drop/not-link-local");
    return;
  }
  if (stack_->has_link_local(iface) &&
      d.hdr.src == stack_->link_local_address(iface)) {
    return;  // our own update echoed back
  }
  ParseResult<std::vector<RipngRte>> rtes =
      try_parse_ripng_response(udp.payload);
  if (!rtes.ok()) {
    count("ripng/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "ripng", rtes.failure());
    return;
  }
  count("ripng/rx/response");
  for (const auto& rte : rtes.value()) process_rte(rte, d.hdr.src, iface);
}

void Ripng::process_rte(const RipngRte& rte, const Address& from,
                        IfaceId iface) {
  std::uint8_t metric = static_cast<std::uint8_t>(
      std::min<int>(rte.metric + 1, config_.infinity));
  auto it = routes_.find(rte.prefix);
  if (it == routes_.end()) {
    if (metric >= config_.infinity) return;  // unreachable, nothing to add
    auto r = std::make_unique<RouteState>();
    r->prefix = rte.prefix;
    r->iface = iface;
    r->next_hop = from;
    r->metric = metric;
    r->changed = true;
    start_timeout(*r);
    sync_rib(*r, false);
    routes_[rte.prefix] = std::move(r);
    count("ripng/route-added");
    schedule_triggered_update();
    return;
  }
  RouteState& r = *it->second;
  if (r.connected) return;  // connected routes never learned over the wire
  bool same_gw = (r.next_hop == from && r.iface == iface);
  if (same_gw) {
    // Refresh; adopt whatever the gateway now says (including worse news).
    if (metric != r.metric) {
      r.metric = metric;
      r.changed = true;
      if (metric >= config_.infinity) {
        expire_route(r.prefix);
      } else {
        sync_rib(r, false);
        start_timeout(r);
      }
      schedule_triggered_update();
    } else if (metric < config_.infinity) {
      start_timeout(r);
    }
  } else if (metric < r.metric) {
    // Strictly better path via a different gateway.
    r.iface = iface;
    r.next_hop = from;
    r.metric = metric;
    r.changed = true;
    start_timeout(r);
    sync_rib(r, false);
    schedule_triggered_update();
  }
}

void Ripng::start_timeout(RouteState& r) {
  Prefix prefix = r.prefix;
  if (!r.timeout) {
    r.timeout = std::make_unique<Timer>(
        stack_->scheduler(), [this, prefix] { expire_route(prefix); }, stack_->node().domain());
  }
  r.timeout->arm(config_.route_timeout);
  if (r.gc) r.gc->cancel();
}

void Ripng::expire_route(const Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return;
  RouteState& r = *it->second;
  if (r.connected) return;
  count("ripng/route-expired");
  r.metric = config_.infinity;
  r.changed = true;
  if (r.timeout) r.timeout->cancel();
  sync_rib(r, /*removed=*/true);
  if (!r.gc) {
    r.gc = std::make_unique<Timer>(
        stack_->scheduler(), [this, prefix] { delete_route(prefix); }, stack_->node().domain());
  }
  r.gc->arm(config_.gc_interval);
  schedule_triggered_update();
}

void Ripng::delete_route(const Prefix& prefix) { routes_.erase(prefix); }

void Ripng::send_periodic_update() {
  for (IfaceId iface : ifaces_) send_update_on(iface, false);
  for (auto& [prefix, r] : routes_) r->changed = false;
}

void Ripng::send_update_on(IfaceId iface, bool changed_only) {
  if (!stack_->has_link_local(iface)) return;
  std::vector<RipngRte> rtes;
  for (const auto& [prefix, r] : routes_) {
    if (changed_only && !r->changed) continue;
    // Split horizon with poisoned reverse: routes learned over this
    // interface are advertised back with infinity.
    std::uint8_t metric =
        (!r->connected && r->iface == iface) ? config_.infinity : r->metric;
    rtes.push_back(RipngRte{prefix, metric});
  }
  if (rtes.empty()) return;

  DatagramSpec spec;
  spec.src = stack_->link_local_address(iface);
  spec.dst = ripng_group();
  spec.hop_limit = 255;
  spec.protocol = proto::kUdp;
  UdpDatagram udp;
  udp.src_port = kRipngPort;
  udp.dst_port = kRipngPort;
  udp.payload = ripng_response_payload(rtes);
  spec.payload = udp.serialize(spec.src, spec.dst);
  std::size_t wire = Ipv6Header::kSize + spec.payload.size();
  stack_->send_on_iface(iface, spec);
  count("ripng/tx/response");
  stack_->network().counters().add("ripng/tx-bytes", wire);
}

void Ripng::schedule_triggered_update() {
  triggered_pending_ = true;
  triggered_timer_.arm_if_idle(config_.triggered_update_delay);
}

void Ripng::sync_rib(const RouteState& r, bool removed) {
  stack_->rib().remove_prefix(r.prefix);
  if (!removed) {
    stack_->rib().add(Route{r.prefix, r.iface,
                            r.connected ? Address() : r.next_hop, r.metric});
  }
}

void Ripng::count(std::string_view name) {
  stack_->network().counters().add(name);
}

}  // namespace mip6
