#include "ipv6/global_routing.hpp"

#include <algorithm>
#include <deque>

namespace mip6 {
namespace {

/// Router interfaces attached to `link` whose stack is in `stacks`.
struct Adjacency {
  Ipv6Stack* stack;
  IfaceId iface;
};

}  // namespace

void GlobalRouting::register_stack(Ipv6Stack& stack) {
  if (std::find(stacks_.begin(), stacks_.end(), &stack) == stacks_.end()) {
    stacks_.push_back(&stack);
  }
}

std::map<Ipv6Stack*, GlobalRouting::HopInfo> GlobalRouting::bfs_from_link(
    LinkId dst) const {
  // stack -> (iface attached to link L), for quick adjacency scans.
  auto stack_of_iface = [&](const Interface* iface) -> Ipv6Stack* {
    for (Ipv6Stack* s : stacks_) {
      if (&s->node() == &iface->node() && s->forwarding()) return s;
    }
    return nullptr;
  };

  std::map<Ipv6Stack*, HopInfo> result;
  std::deque<Ipv6Stack*> queue;

  // Routers directly on the destination link deliver on-link.
  const Link& dst_link = net_->link(dst);
  for (const Interface* iface : dst_link.attached()) {
    Ipv6Stack* s = stack_of_iface(iface);
    if (s == nullptr) continue;
    auto [it, fresh] = result.try_emplace(
        s, HopInfo{1, iface->id(), Address()});
    if (fresh) queue.push_back(s);
  }

  while (!queue.empty()) {
    Ipv6Stack* cur = queue.front();
    queue.pop_front();
    const HopInfo& cur_info = result.at(cur);
    // Expand to routers that share any link with `cur`.
    for (const auto& iface : cur->node().interfaces()) {
      if (!iface->attached()) continue;
      Link* l = iface->link();
      if (!l->up()) continue;  // down links carry nothing
      // The address a neighbor uses to reach `cur` over link l.
      Address cur_addr;
      bool have_addr = false;
      for (const Address& a : cur->addresses(iface->id())) {
        if (!a.is_link_local_unicast() && !a.is_multicast()) {
          cur_addr = a;
          have_addr = true;
          break;
        }
      }
      if (!have_addr) {
        // Fall back to link-local (links without a global prefix).
        for (const Address& a : cur->addresses(iface->id())) {
          if (a.is_link_local_unicast()) {
            cur_addr = a;
            have_addr = true;
            break;
          }
        }
      }
      if (!have_addr) continue;
      for (const Interface* peer_iface : l->attached()) {
        if (peer_iface == iface.get()) continue;
        Ipv6Stack* peer = stack_of_iface(peer_iface);
        if (peer == nullptr || result.contains(peer)) continue;
        result.emplace(peer, HopInfo{cur_info.dist + 1, peer_iface->id(),
                                     cur_addr});
        queue.push_back(peer);
      }
    }
  }
  return result;
}

void GlobalRouting::recompute() {
  // Router prefix routes.
  for (Ipv6Stack* s : stacks_) {
    if (s->forwarding()) s->rib().clear();
  }
  for (const auto& link : net_->links()) {
    if (!plan_->has_prefix(link->id())) continue;
    const Prefix& prefix = plan_->prefix_of(link->id());
    auto hops = bfs_from_link(link->id());
    for (auto& [stack, info] : hops) {
      stack->rib().add(
          Route{prefix, info.out_iface, info.next_hop, info.dist});
    }
  }
  autoconfigure_hosts();
}

void GlobalRouting::autoconfigure_hosts() {
  // Host autoconfiguration (link-local + SLAAC + default route).
  for (Ipv6Stack* s : stacks_) {
    if (s->forwarding()) continue;
    for (const auto& iface : s->node().interfaces()) {
      s->autoconfigure(iface->id());
    }
  }
}

std::map<LinkId, std::pair<int, LinkId>> GlobalRouting::link_bfs(
    LinkId root) const {
  // dist/parent over the link graph; two links are adjacent if a forwarding
  // stack has interfaces attached to both.
  std::map<LinkId, std::pair<int, LinkId>> result;
  result[root] = {0, root};
  std::deque<LinkId> queue{root};
  while (!queue.empty()) {
    LinkId cur = queue.front();
    queue.pop_front();
    int d = result.at(cur).first;
    for (Ipv6Stack* s : stacks_) {
      if (!s->forwarding()) continue;
      bool on_cur = false;
      for (const auto& iface : s->node().interfaces()) {
        if (iface->attached() && iface->link()->id() == cur) on_cur = true;
      }
      if (!on_cur) continue;
      for (const auto& iface : s->node().interfaces()) {
        if (!iface->attached() || !iface->link()->up()) continue;
        LinkId next = iface->link()->id();
        if (result.contains(next)) continue;
        result[next] = {d + 1, cur};
        queue.push_back(next);
      }
    }
  }
  return result;
}

int GlobalRouting::link_distance(LinkId from, LinkId to) const {
  auto bfs = link_bfs(from);
  auto it = bfs.find(to);
  return it == bfs.end() ? -1 : it->second.first;
}

std::vector<LinkId> GlobalRouting::shortest_path_tree(
    LinkId root, const std::vector<LinkId>& leaves) const {
  auto bfs = link_bfs(root);
  std::vector<LinkId> tree;
  auto add_unique = [&](LinkId l) {
    if (std::find(tree.begin(), tree.end(), l) == tree.end())
      tree.push_back(l);
  };
  for (LinkId leaf : leaves) {
    if (!bfs.contains(leaf)) continue;
    LinkId cur = leaf;
    while (true) {
      add_unique(cur);
      if (cur == root) break;
      cur = bfs.at(cur).second;
    }
  }
  std::sort(tree.begin(), tree.end());
  return tree;
}

}  // namespace mip6
