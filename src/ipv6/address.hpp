// 128-bit IPv6 addresses and prefixes (RFC 4291 textual forms, including
// "::" zero compression), plus the classification predicates and well-known
// addresses the protocol engines need.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/buffer.hpp"
#include "util/parse_result.hpp"

namespace mip6 {

class Address {
 public:
  static constexpr std::size_t kBytes = 16;

  /// The unspecified address "::".
  constexpr Address() : b_{} {}

  /// Parses textual form; throws ParseError on malformed input.
  static Address parse(const std::string& text);
  /// From 16 raw octets.
  static Address from_bytes(BytesView bytes);
  /// Prefix (high 64 bits of `prefix_bits`) + interface identifier.
  static Address from_prefix_iid(const Address& prefix_bits,
                                 std::uint64_t iid);

  // Well-known addresses.
  static Address all_nodes();         // ff02::1
  static Address all_routers();       // ff02::2
  static Address all_pim_routers();   // ff02::d
  static Address loopback();          // ::1

  bool is_unspecified() const;
  bool is_loopback() const;
  bool is_multicast() const;          // ff00::/8
  bool is_link_local_unicast() const; // fe80::/10
  /// RFC 4291 multicast scope nibble; only meaningful if is_multicast().
  std::uint8_t multicast_scope() const;
  /// Multicast with link-local scope (ff02::/16): never forwarded.
  bool is_link_scope_multicast() const;

  const std::array<std::uint8_t, kBytes>& bytes() const { return b_; }
  std::uint64_t high64() const;
  std::uint64_t low64() const;

  void write(BufferWriter& w) const;
  static Address read(BufferReader& r);
  /// No-throw read: returns the unspecified address and fails the cursor on
  /// underrun (callers check c.failed() once after reading a whole layout).
  static Address read(WireCursor& c);

  /// Canonical textual form with longest-zero-run compression.
  std::string str() const;

  friend constexpr auto operator<=>(const Address&, const Address&) = default;

 private:
  std::array<std::uint8_t, kBytes> b_;
};

/// An address prefix (network). Host bits are zeroed on construction so
/// equal networks compare equal regardless of how they were written.
class Prefix {
 public:
  Prefix() : len_(0) {}
  Prefix(const Address& addr, std::uint8_t len);
  /// Parses "2001:db8:1::/64"; throws ParseError.
  static Prefix parse(const std::string& text);

  const Address& network() const { return net_; }
  std::uint8_t length() const { return len_; }
  bool contains(const Address& a) const;

  std::string str() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Address net_;
  std::uint8_t len_;
};

}  // namespace mip6

template <>
struct std::hash<mip6::Address> {
  std::size_t operator()(const mip6::Address& a) const noexcept {
    return std::hash<std::uint64_t>()(a.high64() * 0x9e3779b97f4a7c15ULL ^
                                      a.low64());
  }
};
