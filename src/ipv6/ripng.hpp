// RIPng-style distance-vector unicast routing (RFC 2080 subset).
//
// PIM is "protocol independent": its RPF checks consume whatever unicast
// RIB exists. The default substrate here is the instantly-converged
// GlobalRouting oracle; this module provides the alternative the paper's
// setting would actually have run — a real routing protocol with periodic
// and triggered updates, split horizon with poisoned reverse, route
// timeout/garbage-collection, and metric-16 infinity — so convergence
// transients (and their effect on multicast) are simulated, not assumed.
//
// Wire format per RFC 2080: UDP port 521, Response messages to ff02::9,
// 20-octet route entries (prefix, tag, prefix-len, metric).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "ipv6/stack.hpp"
#include "ipv6/udp.hpp"
#include "ipv6/udp_demux.hpp"
#include "net/protocol_module.hpp"
#include "sim/timer.hpp"

namespace mip6 {

struct RipngConfig {
  Time update_interval = Time::sec(30);
  /// A route not refreshed within this window starts deletion.
  Time route_timeout = Time::sec(180);
  /// After timing out, a route is advertised with metric 16 for this long.
  Time gc_interval = Time::sec(120);
  /// Triggered updates are batched/rate-limited by this delay.
  Time triggered_update_delay = Time::sec(1);
  std::uint8_t infinity = 16;
};

struct RipngRte {
  Prefix prefix;
  std::uint8_t metric = 16;
};

/// Serialized RIPng Response carrying route entries.
Bytes ripng_response_payload(const std::vector<RipngRte>& rtes);
/// No-throw parse of a RIPng Response; bounds the route-entry count.
ParseResult<std::vector<RipngRte>> try_parse_ripng_response(BytesView payload);
/// Throwing wrapper over try_parse_ripng_response for legacy call sites.
std::vector<RipngRte> parse_ripng_response(BytesView payload);

inline constexpr std::uint16_t kRipngPort = 521;
/// All-RIP-routers link-scope group.
Address ripng_group();

class Ripng : public ProtocolModule {
 public:
  Ripng(Ipv6Stack& stack, UdpDemux& udp, RipngConfig config = {});

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "ripng"; }
  /// Re-enables RIPng on every configured interface that is currently
  /// attached (cold boot after a restart).
  void start() override;
  /// Crash semantics: shutdown(), keeping the configured-interface set.
  void reset() override { shutdown(); }
  /// Teardown: shutdown() plus releasing the UDP port binding.
  void stop() override;

  /// Starts RIPng on an interface and installs the connected prefix (from
  /// the addressing plan) at metric 1. Remembered for start() after a
  /// crash/restart cycle.
  void enable_iface(IfaceId iface);

  /// Crash support: forgets every route (and its RIB entry), all enabled
  /// interfaces, and stops the update timers. enable_iface() after a
  /// restart brings the protocol back from scratch.
  void shutdown();
  /// The interfaces RIPng is currently enabled on (for restart wiring).
  const std::vector<IfaceId>& enabled_ifaces() const { return ifaces_; }

  std::size_t route_count() const { return routes_.size(); }
  /// Metric toward `prefix`, or infinity if unknown.
  std::uint8_t metric_of(const Prefix& prefix) const;

 private:
  struct RouteState {
    Prefix prefix;
    IfaceId iface = 0;
    Address next_hop;  // unspecified = connected
    std::uint8_t metric = 16;
    bool connected = false;
    bool changed = false;
    std::unique_ptr<Timer> timeout;
    std::unique_ptr<Timer> gc;
  };

  void on_response(const UdpDatagram& udp, const ParsedDatagram& d,
                   IfaceId iface);
  void process_rte(const RipngRte& rte, const Address& from, IfaceId iface);
  void start_timeout(RouteState& r);
  void expire_route(const Prefix& prefix);
  void delete_route(const Prefix& prefix);
  void send_periodic_update();
  void send_update_on(IfaceId iface, bool changed_only);
  void schedule_triggered_update();
  void sync_rib(const RouteState& r, bool removed);
  void count(std::string_view name);

  Ipv6Stack* stack_;
  UdpDemux* udp_;
  RipngConfig config_;
  /// Every interface enable_iface() was ever called for (restart wiring).
  std::set<IfaceId> configured_;
  std::vector<IfaceId> ifaces_;
  std::map<Prefix, std::unique_ptr<RouteState>> routes_;
  Timer update_timer_;
  Timer triggered_timer_;
  bool triggered_pending_ = false;
};

}  // namespace mip6
