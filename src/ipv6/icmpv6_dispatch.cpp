#include "ipv6/icmpv6_dispatch.hpp"

namespace mip6 {

Icmpv6Dispatcher::Icmpv6Dispatcher(Ipv6Stack& stack) : stack_(&stack) {
  stack.set_proto_handler(
      proto::kIcmpv6,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_icmpv6(d, iface);
      });
}

void Icmpv6Dispatcher::subscribe(std::uint8_t type, Handler h) {
  handlers_[type].push_back(std::move(h));
}

void Icmpv6Dispatcher::on_icmpv6(const ParsedDatagram& d, IfaceId iface) {
  Icmpv6Message msg;
  try {
    msg = Icmpv6Message::parse(d.payload, d.hdr.src, d.hdr.dst);
  } catch (const ParseError&) {
    stack_->network().counters().add("icmpv6/rx-drop/parse-error");
    return;
  }
  auto it = handlers_.find(msg.type);
  if (it == handlers_.end()) {
    stack_->network().counters().add("icmpv6/rx-drop/unhandled-type");
    return;
  }
  for (const auto& h : it->second) h(msg, d, iface);
}

}  // namespace mip6
