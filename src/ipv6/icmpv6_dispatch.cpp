#include "ipv6/icmpv6_dispatch.hpp"

#include "net/wire_stats.hpp"

namespace mip6 {

Icmpv6Dispatcher::Icmpv6Dispatcher(Ipv6Stack& stack) : stack_(&stack) {
  stack.set_proto_handler(
      proto::kIcmpv6,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_icmpv6(d, iface);
      });
}

std::size_t Icmpv6Dispatcher::subscribe(std::uint8_t type, Handler h) {
  auto& slot = handlers_[type];
  slot.push_back(std::move(h));
  return slot.size() - 1;
}

void Icmpv6Dispatcher::unsubscribe(std::uint8_t type, std::size_t token) {
  auto it = handlers_.find(type);
  if (it == handlers_.end() || token >= it->second.size()) return;
  it->second[token] = nullptr;
}

void Icmpv6Dispatcher::stop() {
  handlers_.clear();
  stack_->clear_proto_handler(proto::kIcmpv6);
}

void Icmpv6Dispatcher::on_icmpv6(const ParsedDatagram& d, IfaceId iface) {
  ParseResult<Icmpv6Message> parsed =
      Icmpv6Message::try_parse(d.payload, d.hdr.src, d.hdr.dst);
  if (!parsed.ok()) {
    stack_->network().counters().add("icmpv6/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "icmpv6", parsed.failure());
    return;
  }
  Icmpv6Message msg = std::move(parsed).value();
  auto it = handlers_.find(msg.type);
  if (it == handlers_.end()) {
    stack_->network().counters().add("icmpv6/rx-drop/unhandled-type");
    return;
  }
  // Isolation boundary: a malformed body that slips past one subscriber's
  // decoder must not abort delivery to its siblings. Only the offending
  // subscriber's element is dropped.
  for (const auto& h : it->second) {
    if (!h) continue;
    try {
      h(msg, d, iface);
    } catch (const ParseError&) {
      stack_->network().counters().add("icmpv6/rx-drop/handler-parse-error");
      note_parse_reject(
          stack_->network(), "icmpv6",
          ParseFailure{ParseReason::kSemantic, "subscriber rejected body"});
    }
  }
}

}  // namespace mip6
