// RFC 2473 generic packet tunneling: the entire inner IPv6 datagram becomes
// the payload of an outer datagram with next-header 41 (IPv6). Mobile IPv6
// home agents and mobile nodes use this for every tunneled packet in
// approaches 2-4 of the paper.
#pragma once

#include "ipv6/address.hpp"
#include "ipv6/datagram.hpp"
#include "util/buffer.hpp"

namespace mip6 {

/// Wraps `inner` (a complete serialized datagram) for transport from
/// `tunnel_src` to `tunnel_dst`.
Bytes encapsulate(BytesView inner, const Address& tunnel_src,
                  const Address& tunnel_dst,
                  std::uint8_t hop_limit = Ipv6Header::kDefaultHopLimit);

/// Per-packet tunneling overhead on the wire.
inline constexpr std::size_t kTunnelOverhead = Ipv6Header::kSize;

/// No-throw extraction of the inner datagram octets from a parsed outer
/// datagram whose protocol is proto::kIpv6; fails if the outer protocol is
/// wrong or the payload is not itself a well-formed datagram.
ParseResult<Bytes> try_decapsulate(const ParsedDatagram& outer);

/// Throwing wrapper over try_decapsulate for legacy call sites.
Bytes decapsulate(const ParsedDatagram& outer);

}  // namespace mip6
