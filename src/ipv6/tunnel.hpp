// RFC 2473 generic packet tunneling: the entire inner IPv6 datagram becomes
// the payload of an outer datagram with next-header 41 (IPv6). Mobile IPv6
// home agents and mobile nodes use this for every tunneled packet in
// approaches 2-4 of the paper.
#pragma once

#include "ipv6/address.hpp"
#include "ipv6/datagram.hpp"
#include "util/buffer.hpp"

namespace mip6 {

/// Wraps `inner` (a complete serialized datagram) for transport from
/// `tunnel_src` to `tunnel_dst`.
Bytes encapsulate(BytesView inner, const Address& tunnel_src,
                  const Address& tunnel_dst,
                  std::uint8_t hop_limit = Ipv6Header::kDefaultHopLimit);

/// Per-packet tunneling overhead on the wire.
inline constexpr std::size_t kTunnelOverhead = Ipv6Header::kSize;

/// Extracts the inner datagram octets from a parsed outer datagram whose
/// protocol is proto::kIpv6; throws ParseError if the payload is not a
/// well-formed datagram.
Bytes decapsulate(const ParsedDatagram& outer);

}  // namespace mip6
