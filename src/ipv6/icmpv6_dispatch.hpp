// Fan-out of received ICMPv6 messages by type. Owns the stack's ICMPv6
// protocol handler; MLD router and host sides (and any future ICMPv6
// consumer on the same node) subscribe per message type.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ipv6/icmpv6.hpp"
#include "ipv6/stack.hpp"

namespace mip6 {

class Icmpv6Dispatcher {
 public:
  using Handler = std::function<void(const Icmpv6Message&,
                                     const ParsedDatagram&, IfaceId)>;

  explicit Icmpv6Dispatcher(Ipv6Stack& stack);

  void subscribe(std::uint8_t type, Handler h);

 private:
  void on_icmpv6(const ParsedDatagram& d, IfaceId iface);

  Ipv6Stack* stack_;
  std::map<std::uint8_t, std::vector<Handler>> handlers_;
};

}  // namespace mip6
