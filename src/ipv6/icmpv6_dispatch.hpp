// Fan-out of received ICMPv6 messages by type. Owns the stack's ICMPv6
// protocol handler; MLD router and host sides (and any future ICMPv6
// consumer on the same node) subscribe per message type.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "ipv6/icmpv6.hpp"
#include "ipv6/stack.hpp"
#include "net/protocol_module.hpp"

namespace mip6 {

class Icmpv6Dispatcher : public ProtocolModule {
 public:
  using Handler = std::function<void(const Icmpv6Message&,
                                     const ParsedDatagram&, IfaceId)>;

  explicit Icmpv6Dispatcher(Ipv6Stack& stack);

  const char* module_kind() const override { return "icmpv6"; }
  /// Drops every subscription and releases the stack's ICMPv6 protocol
  /// handler so a later dispatcher (same node, rebuilt world) can claim it.
  void stop() override;

  /// Subscribes to one ICMPv6 type; returns a token for unsubscribe.
  std::size_t subscribe(std::uint8_t type, Handler h);
  void unsubscribe(std::uint8_t type, std::size_t token);

 private:
  void on_icmpv6(const ParsedDatagram& d, IfaceId iface);

  Ipv6Stack* stack_;
  std::map<std::uint8_t, std::vector<Handler>> handlers_;
};

}  // namespace mip6
