#include "ipv6/addressing.hpp"

#include "util/errors.hpp"

namespace mip6 {

void AddressingPlan::set_link_prefix(LinkId link, const Prefix& prefix) {
  prefixes_[link] = prefix;
}

const Prefix& AddressingPlan::prefix_of(LinkId link) const {
  auto it = prefixes_.find(link);
  if (it == prefixes_.end()) {
    throw LogicError("link " + std::to_string(link) + " has no prefix");
  }
  return it->second;
}

bool AddressingPlan::has_prefix(LinkId link) const {
  return prefixes_.contains(link);
}

void AddressingPlan::set_default_router(LinkId link, const Address& router) {
  default_routers_[link] = router;
}

std::optional<Address> AddressingPlan::default_router(LinkId link) const {
  auto it = default_routers_.find(link);
  if (it == default_routers_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> AddressingPlan::link_of(const Address& a) const {
  for (const auto& [id, prefix] : prefixes_) {
    if (prefix.contains(a)) return id;
  }
  return std::nullopt;
}

}  // namespace mip6
