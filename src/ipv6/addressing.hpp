// Network-wide addressing plan.
//
// Each link has a /64 prefix and a designated default router, the
// information real hosts learn from Router Advertisements. Modelling the RA
// *content* as an oracle (rather than RA packets) keeps host attachment
// simple; the movement-detection + address-configuration latency that RAs
// would introduce is an explicit, configurable delay in the MobileNode — the
// same simplification the paper itself makes ("it takes the mobile sender a
// certain time to detect the link change and generate a new care-of
// address").
#pragma once

#include <map>
#include <optional>

#include "ipv6/address.hpp"
#include "net/link.hpp"

namespace mip6 {

class AddressingPlan {
 public:
  void set_link_prefix(LinkId link, const Prefix& prefix);
  /// Throws LogicError if the link has no prefix.
  const Prefix& prefix_of(LinkId link) const;
  bool has_prefix(LinkId link) const;

  void set_default_router(LinkId link, const Address& router);
  /// Router address hosts on `link` use as default gateway; nullopt if none.
  std::optional<Address> default_router(LinkId link) const;

  /// Designates the hier-proxy domain proxy serving `link` (the MAP-style
  /// agent a visiting MN registers its groups with). Like the default
  /// router, this is RA-content-as-oracle: real deployments would advertise
  /// the proxy in RAs.
  void set_mcast_proxy(LinkId link, const Address& proxy) {
    mcast_proxies_[link] = proxy;
  }
  std::optional<Address> mcast_proxy(LinkId link) const {
    auto it = mcast_proxies_.find(link);
    if (it == mcast_proxies_.end()) return std::nullopt;
    return it->second;
  }

  /// The link whose prefix contains `a`, if any.
  std::optional<LinkId> link_of(const Address& a) const;

  /// Deterministic interface identifier for a node (EUI-64 stand-in).
  static std::uint64_t iid_for_node(std::uint32_t node_id) {
    return 0x0200'0000'0000'0000ULL | (static_cast<std::uint64_t>(node_id) + 1);
  }

 private:
  std::map<LinkId, Prefix> prefixes_;
  std::map<LinkId, Address> default_routers_;
  std::map<LinkId, Address> mcast_proxies_;
};

}  // namespace mip6
