#include "ipv6/udp_demux.hpp"

namespace mip6 {

UdpDemux::UdpDemux(Ipv6Stack& stack) : stack_(&stack) {
  stack.set_proto_handler(
      proto::kUdp,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_udp(d, iface);
      });
}

void UdpDemux::bind(std::uint16_t port, Handler h) {
  handlers_[port] = std::move(h);
}

void UdpDemux::on_udp(const ParsedDatagram& d, IfaceId iface) {
  UdpDatagram udp;
  try {
    udp = UdpDatagram::parse(d.payload, d.hdr.src, d.hdr.dst);
  } catch (const ParseError&) {
    stack_->network().counters().add("udp/rx-drop/parse-error");
    return;
  }
  auto it = handlers_.find(udp.dst_port);
  if (it == handlers_.end()) {
    stack_->network().counters().add("udp/rx-drop/no-listener");
    return;
  }
  it->second(udp, d, iface);
}

}  // namespace mip6
