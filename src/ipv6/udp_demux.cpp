#include "ipv6/udp_demux.hpp"

#include "net/wire_stats.hpp"

namespace mip6 {

UdpDemux::UdpDemux(Ipv6Stack& stack) : stack_(&stack) {
  stack.set_proto_handler(
      proto::kUdp,
      [this](const ParsedDatagram& d, const Packet&, IfaceId iface) {
        on_udp(d, iface);
      });
}

void UdpDemux::bind(std::uint16_t port, Handler h) {
  handlers_[port] = std::move(h);
}

void UdpDemux::unbind(std::uint16_t port) { handlers_.erase(port); }

void UdpDemux::stop() {
  handlers_.clear();
  stack_->clear_proto_handler(proto::kUdp);
}

void UdpDemux::on_udp(const ParsedDatagram& d, IfaceId iface) {
  ParseResult<UdpDatagram> parsed =
      UdpDatagram::try_parse(d.payload, d.hdr.src, d.hdr.dst);
  if (!parsed.ok()) {
    stack_->network().counters().add("udp/rx-drop/parse-error");
    note_parse_reject(stack_->network(), "udp", parsed.failure());
    return;
  }
  UdpDatagram udp = std::move(parsed).value();
  auto it = handlers_.find(udp.dst_port);
  if (it == handlers_.end()) {
    stack_->network().counters().add("udp/rx-drop/no-listener");
    return;
  }
  it->second(udp, d, iface);
}

}  // namespace mip6
