#include "ipv6/icmpv6.hpp"

#include <algorithm>

#include "ipv6/header.hpp"
#include "util/checksum.hpp"

namespace mip6 {

std::uint16_t pseudo_header_checksum(const Address& src, const Address& dst,
                                     std::uint32_t upper_len,
                                     std::uint8_t next_header,
                                     BytesView upper_bytes) {
  InternetChecksum c;
  c.add(BytesView(src.bytes()));
  c.add(BytesView(dst.bytes()));
  c.add_u32(upper_len);
  c.add_u32(next_header);  // 3 zero octets + next header
  c.add(upper_bytes);
  return c.finish();
}

Bytes Icmpv6Message::serialize(const Address& src, const Address& dst) const {
  BufferWriter w(4 + body.size());
  w.u8(type);
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.raw(body);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kIcmpv6,
      w.bytes());
  w.patch_u16(2, ck);
  return std::move(w).take();
}

ParseResult<Icmpv6Message> Icmpv6Message::try_parse(BytesView payload,
                                                    const Address& src,
                                                    const Address& dst) {
  if (payload.size() < 4) {
    return ParseFailure{ParseReason::kTruncated, "ICMPv6 message too short"};
  }
  std::uint16_t folded = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(payload.size()), proto::kIcmpv6,
      payload);
  if (folded != 0) {
    return ParseFailure{ParseReason::kBadChecksum, "ICMPv6 checksum"};
  }
  WireCursor c(payload);
  Icmpv6Message m;
  m.type = c.u8();
  m.code = c.u8();
  c.skip(2);  // checksum, already verified
  m.body = c.raw(c.remaining());
  return m;
}

Icmpv6Message Icmpv6Message::parse(BytesView payload, const Address& src,
                                   const Address& dst) {
  return try_parse(payload, src, dst).take_or_throw();
}

Icmpv6Message make_param_problem(std::uint8_t code, std::uint32_t pointer,
                                 BytesView invoking) {
  // Whole error datagram must stay under the IPv6 minimum MTU: 1280 minus
  // the 40-octet IPv6 header, the 4-octet ICMPv6 header, and the pointer.
  constexpr std::size_t kMaxInvoking = 1280 - 40 - 4 - 4;
  BufferWriter w(4 + std::min(invoking.size(), kMaxInvoking));
  w.u32(pointer);
  w.raw(invoking.subspan(0, std::min(invoking.size(), kMaxInvoking)));
  Icmpv6Message m;
  m.type = icmpv6::kParamProblem;
  m.code = code;
  m.body = std::move(w).take();
  return m;
}

}  // namespace mip6
