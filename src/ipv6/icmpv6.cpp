#include "ipv6/icmpv6.hpp"

#include "ipv6/header.hpp"
#include "util/checksum.hpp"

namespace mip6 {

std::uint16_t pseudo_header_checksum(const Address& src, const Address& dst,
                                     std::uint32_t upper_len,
                                     std::uint8_t next_header,
                                     BytesView upper_bytes) {
  InternetChecksum c;
  c.add(BytesView(src.bytes()));
  c.add(BytesView(dst.bytes()));
  c.add_u32(upper_len);
  c.add_u32(next_header);  // 3 zero octets + next header
  c.add(upper_bytes);
  return c.finish();
}

Bytes Icmpv6Message::serialize(const Address& src, const Address& dst) const {
  BufferWriter w(4 + body.size());
  w.u8(type);
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.raw(body);
  std::uint16_t ck = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(w.size()), proto::kIcmpv6,
      w.bytes());
  w.patch_u16(2, ck);
  return std::move(w).take();
}

Icmpv6Message Icmpv6Message::parse(BytesView payload, const Address& src,
                                   const Address& dst) {
  if (payload.size() < 4) throw ParseError("ICMPv6 message too short");
  std::uint16_t folded = pseudo_header_checksum(
      src, dst, static_cast<std::uint32_t>(payload.size()), proto::kIcmpv6,
      payload);
  if (folded != 0) throw ParseError("ICMPv6 checksum mismatch");
  BufferReader r(payload);
  Icmpv6Message m;
  m.type = r.u8();
  m.code = r.u8();
  r.skip(2);  // checksum, already verified
  m.body = r.raw(r.remaining());
  return m;
}

}  // namespace mip6
