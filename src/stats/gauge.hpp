// Time-weighted gauge: tracks a piecewise-constant quantity (queue depth,
// (S,G) entry count, binding-cache size) and reports its time-average and
// peak over the observation window.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/errors.hpp"

namespace mip6 {

class TimeWeightedGauge {
 public:
  /// Starts observing at `start` with value 0.
  explicit TimeWeightedGauge(Time start = Time::zero()) : last_change_(start) {}

  /// Records that the value changed to `value` at time `now` (must be
  /// monotonically non-decreasing).
  void set(Time now, double value);
  void add(Time now, double delta) { set(now, value_ + delta); }

  double value() const { return value_; }
  double peak() const { return peak_; }
  /// Time average over [start, now].
  double average(Time now) const;

 private:
  Time last_change_;
  Time start_ = last_change_;
  double value_ = 0;
  double peak_ = 0;
  double weighted_sum_ = 0;  // integral of value dt, in value*seconds
};

}  // namespace mip6
