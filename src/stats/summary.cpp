#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace mip6 {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  double n = static_cast<double>(samples_.size());
  double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  for (double x : other.samples_) add(x);
}

double Summary::mean() const { return samples_.empty() ? 0.0 : mean_; }

double Summary::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / (static_cast<double>(samples_.size()) - 1.0);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  double rank = p / 100.0 * (static_cast<double>(samples_.size()) - 1.0);
  std::size_t lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Summary::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

std::string Summary::str(int decimals) const {
  if (empty()) return "n=0";
  return "mean=" + fmt_double(mean(), decimals) +
         " sd=" + fmt_double(stddev(), decimals) +
         " min=" + fmt_double(min(), decimals) +
         " p50=" + fmt_double(median(), decimals) +
         " max=" + fmt_double(max(), decimals) +
         " n=" + std::to_string(count());
}

}  // namespace mip6
