#include "stats/table.hpp"

#include <algorithm>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mip6 {
namespace {

std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw LogicError("table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw LogicError("row width " + std::to_string(cells.size()) +
                     " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += (c == 0 ? "| " : " | ") + pad_right(row[c], width[c]);
    }
    return line + " |\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_cell(row[c]);
    }
    out += '\n';
  };
  render(header_);
  for (const auto& row : rows_) render(row);
  return out;
}

}  // namespace mip6
