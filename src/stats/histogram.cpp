#include "stats/histogram.hpp"

#include <algorithm>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mip6 {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) throw LogicError("bad histogram range");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                    static_cast<double>(counts_.size()));
  counts_[std::min(i, counts_.size() - 1)] += 1;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::str(std::size_t bar_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) /
                        static_cast<double>(peak) *
                        static_cast<double>(bar_width));
    out += "[" + pad_left(fmt_double(bin_lo(i), 1), 8) + "," +
           pad_left(fmt_double(bin_hi(i), 1), 8) + ") " +
           pad_left(std::to_string(counts_[i]), 7) + " " +
           std::string(bar, '#') + "\n";
  }
  if (underflow_ || overflow_) {
    out += "underflow=" + std::to_string(underflow_) +
           " overflow=" + std::to_string(overflow_) + "\n";
  }
  return out;
}

}  // namespace mip6
