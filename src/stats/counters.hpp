// Named counter registry.
//
// Protocol engines account control/data traffic and processing events
// (encapsulations, tree rebuilds, asserts...) against hierarchical names
// like "pimdm/tx/graft" or "ha/encap". Scenario code reads them back by
// exact name or by prefix sum, which is how the Section 4.3 criteria
// (protocol overhead, system load) are computed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mip6 {

class CounterRegistry {
 public:
  /// Lookups are heterogeneous (std::less<> map): bumping an existing
  /// counter from a string literal or string_view never materializes a
  /// std::string, so count sites on the data path stay allocation-free
  /// once the name has been registered.
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t get(std::string_view name) const;
  /// Direct reference to a counter cell, created at zero if absent. The
  /// reference stays valid for the registry's lifetime (reset() zeroes
  /// values in place rather than erasing); hot paths resolve it once and
  /// increment through it instead of paying a string lookup per event.
  std::uint64_t& counter(std::string_view name);
  /// Sum of all counters whose name starts with `prefix`.
  std::uint64_t sum_prefix(std::string_view prefix) const;
  /// All (name, value) pairs with a non-zero count, name-ordered.
  /// (Zero-valued cells are pre-registered hot counters that never fired.)
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  void reset();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace mip6
