// Named counter registry.
//
// Protocol engines account control/data traffic and processing events
// (encapsulations, tree rebuilds, asserts...) against hierarchical names
// like "pimdm/tx/graft" or "ha/encap". Scenario code reads them back by
// exact name or by prefix sum, which is how the Section 4.3 criteria
// (protocol overhead, system load) are computed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mip6 {

class CounterRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t get(const std::string& name) const;
  /// Sum of all counters whose name starts with `prefix`.
  std::uint64_t sum_prefix(const std::string& prefix) const;
  /// All (name, value) pairs, name-ordered.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mip6
