// Named counter registry.
//
// Protocol engines account control/data traffic and processing events
// (encapsulations, tree rebuilds, asserts...) against hierarchical names
// like "pimdm/tx/graft" or "ha/encap". Scenario code reads them back by
// exact name or by prefix sum, which is how the Section 4.3 criteria
// (protocol overhead, system load) are computed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mip6 {

class CounterRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t get(const std::string& name) const;
  /// Direct reference to a counter cell, created at zero if absent. The
  /// reference stays valid for the registry's lifetime (reset() zeroes
  /// values in place rather than erasing); hot paths resolve it once and
  /// increment through it instead of paying a string lookup per event.
  std::uint64_t& counter(const std::string& name);
  /// Sum of all counters whose name starts with `prefix`.
  std::uint64_t sum_prefix(const std::string& prefix) const;
  /// All (name, value) pairs with a non-zero count, name-ordered.
  /// (Zero-valued cells are pre-registered hot counters that never fired.)
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mip6
