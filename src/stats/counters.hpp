// Named counter registry.
//
// Protocol engines account control/data traffic and processing events
// (encapsulations, tree rebuilds, asserts...) against hierarchical names
// like "pimdm/tx/graft" or "ha/encap". Scenario code reads them back by
// exact name or by prefix sum, which is how the Section 4.3 criteria
// (protocol overhead, system load) are computed.
//
// Sharded operation: under parallel execution every write from a worker
// shard lands in that shard's overlay — an indexed array for pre-resolved
// CounterCells plus a name-keyed map for cold, lazily-named counters — and
// the overlays are folded into the base store at window barriers (and
// before any read). Sums are commutative, so the merged totals are
// identical to a serial run's; the overlay arrays are retained across
// merges, keeping the steady-state write path allocation-free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scheduler.hpp"

namespace mip6 {

class CounterRegistry;

/// Shard-safe handle to one counter: resolves the name once, then every
/// add() routes to the calling shard's overlay (or straight to the base
/// store in serial/structural contexts). Hot paths hold one of these
/// instead of a raw cell reference, which a shard overlay could not
/// intercept.
class CounterCell {
 public:
  CounterCell() = default;
  inline void add(std::uint64_t delta = 1) const;
  /// Merged value; call only from quiesced contexts (between windows).
  inline std::uint64_t value() const;

 private:
  friend class CounterRegistry;
  CounterCell(CounterRegistry* reg, std::uint64_t* base, std::uint32_t idx)
      : reg_(reg), base_(base), idx_(idx) {}
  CounterRegistry* reg_ = nullptr;
  std::uint64_t* base_ = nullptr;
  std::uint32_t idx_ = 0;
};

class CounterRegistry {
 public:
  /// Lookups are heterogeneous (std::less<> map): bumping an existing
  /// counter from a string literal or string_view never materializes a
  /// std::string, so count sites on the data path stay allocation-free
  /// once the name has been registered.
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t get(std::string_view name) const;
  /// Direct reference to a counter cell, created at zero if absent. The
  /// reference stays valid for the registry's lifetime (reset() zeroes
  /// values in place rather than erasing). Only for code that never runs
  /// on a worker shard; shard-visited paths use cell() instead.
  std::uint64_t& counter(std::string_view name);
  /// Shard-safe handle (see CounterCell). Resolve at construction time.
  CounterCell cell(std::string_view name);
  /// Sum of all counters whose name starts with `prefix`.
  std::uint64_t sum_prefix(std::string_view prefix) const;
  /// All (name, value) pairs with a non-zero count, name-ordered.
  /// (Zero-valued cells are pre-registered hot counters that never fired.)
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  void reset();

  // --- Sharded operation -------------------------------------------------
  /// Allocates one overlay per shard; writes from worker contexts divert
  /// there until merge_shards() folds them into the base store.
  void enable_shards(std::size_t shards);
  /// Merges and drops the overlays (back to serial operation).
  void disable_shards();
  /// Folds every overlay into the base store, zeroing the overlays in
  /// place. Called at window barriers and lazily before reads.
  void merge_shards() const;
  bool sharded() const { return sharded_; }

 private:
  friend class CounterCell;

  struct Overlay {
    std::vector<std::uint64_t> vals;  // indexed by CounterCell idx
    std::map<std::string, std::uint64_t, std::less<>> by_name;
  };

  void cell_add(const CounterCell& c, std::uint64_t delta) {
    if (sharded_) {
      const int s = Scheduler::current_shard_slot();
      if (s >= 0) {
        overlays_[static_cast<std::size_t>(s)].vals[c.idx_] += delta;
        return;
      }
    }
    *c.base_ += delta;
  }

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  /// idx -> base cell, for folding overlay arrays back in.
  std::vector<std::uint64_t*> cell_base_;
  std::map<std::string, std::uint32_t, std::less<>> cell_idx_;
  mutable std::vector<Overlay> overlays_;
  bool sharded_ = false;
};

inline void CounterCell::add(std::uint64_t delta) const {
  if (reg_ != nullptr) reg_->cell_add(*this, delta);
}

inline std::uint64_t CounterCell::value() const {
  if (reg_ == nullptr) return 0;
  if (reg_->sharded()) reg_->merge_shards();
  return *base_;
}

}  // namespace mip6
