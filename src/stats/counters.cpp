#include "stats/counters.hpp"

namespace mip6 {

void CounterRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t CounterRegistry::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t CounterRegistry::sum_prefix(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  return {counters_.begin(), counters_.end()};
}

void CounterRegistry::reset() { counters_.clear(); }

}  // namespace mip6
