#include "stats/counters.hpp"

namespace mip6 {

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  if (sharded_) {
    const int s = Scheduler::current_shard_slot();
    if (s >= 0) {
      // Shard-local by-name overlay: no shared map mutation from workers.
      auto& by_name = overlays_[static_cast<std::size_t>(s)].by_name;
      auto it = by_name.find(name);
      if (it == by_name.end()) {
        by_name.emplace(std::string(name), delta);
      } else {
        it->second += delta;
      }
      return;
    }
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t CounterRegistry::get(std::string_view name) const {
  if (sharded_) merge_shards();
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t& CounterRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

CounterCell CounterRegistry::cell(std::string_view name) {
  std::uint64_t& base = counter(name);
  auto it = cell_idx_.find(name);
  if (it == cell_idx_.end()) {
    it = cell_idx_.emplace(std::string(name),
                           static_cast<std::uint32_t>(cell_base_.size()))
             .first;
    cell_base_.push_back(&base);
    for (auto& o : overlays_) o.vals.resize(cell_base_.size(), 0);
  }
  return CounterCell(this, &base, it->second);
}

std::uint64_t CounterRegistry::sum_prefix(std::string_view prefix) const {
  if (sharded_) merge_shards();
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) break;
    total += it->second;
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  if (sharded_) merge_shards();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    if (value != 0) out.emplace_back(name, value);
  }
  return out;
}

// Zero in place instead of erasing: counter() references must survive reset.
void CounterRegistry::reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& o : overlays_) {
    for (auto& v : o.vals) v = 0;
    o.by_name.clear();
  }
}

void CounterRegistry::enable_shards(std::size_t shards) {
  overlays_.assign(shards, Overlay{});
  for (auto& o : overlays_) o.vals.resize(cell_base_.size(), 0);
  sharded_ = true;
}

void CounterRegistry::disable_shards() {
  if (!sharded_) return;
  merge_shards();
  overlays_.clear();
  sharded_ = false;
}

void CounterRegistry::merge_shards() const {
  // Controller-side: all shards quiesced. Sums are commutative, so folding
  // at barriers (or lazily before a read) produces the serial totals.
  auto* self = const_cast<CounterRegistry*>(this);
  for (auto& o : overlays_) {
    for (std::size_t i = 0; i < o.vals.size(); ++i) {
      if (o.vals[i] != 0) {
        *self->cell_base_[i] += o.vals[i];
        o.vals[i] = 0;
      }
    }
    if (!o.by_name.empty()) {
      for (const auto& [name, value] : o.by_name) {
        auto it = self->counters_.find(name);
        if (it == self->counters_.end()) {
          self->counters_.emplace(name, value);
        } else {
          it->second += value;
        }
      }
      o.by_name.clear();
    }
  }
}

}  // namespace mip6
