#include "stats/counters.hpp"

namespace mip6 {

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t CounterRegistry::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t& CounterRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

std::uint64_t CounterRegistry::sum_prefix(std::string_view prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) break;
    total += it->second;
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    if (value != 0) out.emplace_back(name, value);
  }
  return out;
}

// Zero in place instead of erasing: counter() references must survive reset.
void CounterRegistry::reset() {
  for (auto& [name, value] : counters_) value = 0;
}

}  // namespace mip6
