#include "stats/counters.hpp"

namespace mip6 {

void CounterRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t CounterRegistry::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t& CounterRegistry::counter(const std::string& name) {
  return counters_[name];
}

std::uint64_t CounterRegistry::sum_prefix(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    if (value != 0) out.emplace_back(name, value);
  }
  return out;
}

// Zero in place instead of erasing: counter() references must survive reset.
void CounterRegistry::reset() {
  for (auto& [name, value] : counters_) value = 0;
}

}  // namespace mip6
