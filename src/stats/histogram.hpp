// Fixed-bin histogram for delay distributions (e.g. join-delay spread of the
// query-wait policy, which is uniform over [0, T_Query + response delay]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mip6 {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi); out-of-range samples are counted
  /// in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// ASCII rendering, one bin per line with a proportional bar.
  std::string str(std::size_t bar_width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace mip6
