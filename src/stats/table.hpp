// Plain-text and CSV table renderers used by every bench binary to print the
// reproduced rows of the paper's tables/figures.
#pragma once

#include <string>
#include <vector>

namespace mip6 {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Monospace rendering with aligned columns.
  std::string str() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mip6
