#include "stats/gauge.hpp"

namespace mip6 {

void TimeWeightedGauge::set(Time now, double value) {
  if (now < last_change_) {
    throw LogicError("TimeWeightedGauge: time went backwards");
  }
  weighted_sum_ += value_ * (now - last_change_).to_seconds();
  last_change_ = now;
  value_ = value;
  if (value > peak_) peak_ = value;
}

double TimeWeightedGauge::average(Time now) const {
  double span = (now - start_).to_seconds();
  if (span <= 0) return value_;
  double total = weighted_sum_ + value_ * (now - last_change_).to_seconds();
  return total / span;
}

}  // namespace mip6
