// Streaming sample summary: count/mean/variance via Welford, min/max, and
// exact percentiles (samples retained; scenario sample counts are small).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mip6 {

class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::uint64_t count() const { return static_cast<std::uint64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  /// Exact percentile by linear interpolation, p in [0,100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Half-width of the 95% confidence interval on the mean (normal approx).
  double ci95_halfwidth() const;

  /// "mean=1.23 sd=0.4 min=0.8 p50=1.2 max=2.0 n=17"
  std::string str(int decimals = 3) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace mip6
