#include "util/buffer.hpp"

namespace mip6 {

void BufferWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufferWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void BufferWriter::raw(BytesView bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void BufferWriter::zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

void BufferWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) {
    throw LogicError("BufferWriter::patch_u16 out of range");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void BufferReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw ParseError("buffer underrun: need " + std::to_string(n) +
                     " octets, have " + std::to_string(remaining()));
  }
}

std::uint8_t BufferReader::u8() {
  require(1);
  return view_[pos_++];
}

std::uint16_t BufferReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(view_[pos_]) << 8) | view_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t BufferReader::u32() {
  require(4);
  std::uint32_t v = (static_cast<std::uint32_t>(view_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(view_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(view_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(view_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t BufferReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

Bytes BufferReader::raw(std::size_t n) {
  require(n);
  Bytes out(view_.begin() + static_cast<std::ptrdiff_t>(pos_),
            view_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

BytesView BufferReader::view(std::size_t n) {
  require(n);
  BytesView out = view_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void BufferReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

void BufferReader::expect_end(const char* what) const {
  if (!empty()) {
    throw ParseError(std::string(what) + ": " + std::to_string(remaining()) +
                     " trailing octets");
  }
}

std::string to_hex(BytesView bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

}  // namespace mip6
