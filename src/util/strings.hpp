// Small string/formatting helpers shared by trace output and table renderers.
#pragma once

#include <string>
#include <vector>

namespace mip6 {

/// Splits on a single character; keeps empty fields ("a::b" -> "a","","b").
std::vector<std::string> split(const std::string& s, char sep);

/// printf-style double with fixed decimals, locale-independent.
std::string fmt_double(double v, int decimals);

/// Human-readable byte count ("1.2 MiB").
std::string fmt_bytes(double bytes);

/// Left-pads / right-pads to a field width with spaces.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace mip6
