// Error types shared across the mip6mcast libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace mip6 {

/// Thrown when a received byte sequence cannot be parsed as the expected
/// protocol message (truncated, bad version field, inconsistent lengths...).
/// Parsers throw this instead of asserting so that malformed-input tests and
/// fuzz-style property tests can exercise every rejection path.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on violations of simulator API contracts (attaching an interface
/// twice, scheduling into the past, ...). Indicates a bug in the caller, but
/// is an exception rather than an abort so tests can verify the contracts.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace mip6
