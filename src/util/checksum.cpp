#include "util/checksum.hpp"

namespace mip6 {

void InternetChecksum::add(BytesView bytes) {
  std::size_t i = 0;
  if (odd_ && !bytes.empty()) {
    sum_ += (static_cast<std::uint16_t>(pending_) << 8) | bytes[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < bytes.size(); i += 2) {
    sum_ += (static_cast<std::uint16_t>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) {
    odd_ = true;
    pending_ = bytes[i];
  }
}

void InternetChecksum::add_u16(std::uint16_t v) {
  std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)};
  add(BytesView(b, 2));
}

void InternetChecksum::add_u32(std::uint32_t v) {
  add_u16(static_cast<std::uint16_t>(v >> 16));
  add_u16(static_cast<std::uint16_t>(v));
}

std::uint16_t InternetChecksum::finish() const {
  std::uint64_t s = sum_;
  if (odd_) {
    s += static_cast<std::uint16_t>(pending_) << 8;
  }
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(BytesView bytes) {
  InternetChecksum c;
  c.add(bytes);
  return c.finish();
}

bool verify_internet_checksum(BytesView bytes) {
  // Summing data that already contains a correct checksum yields all-ones,
  // whose complement is zero.
  return internet_checksum(bytes) == 0;
}

}  // namespace mip6
