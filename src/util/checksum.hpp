// RFC 1071 Internet checksum, used by the ICMPv6-family messages (MLD) and
// PIM. Computed over real serialized octets so corrupted-packet injection in
// tests is detected the same way a real stack would detect it.
#pragma once

#include <cstdint>

#include "util/buffer.hpp"

namespace mip6 {

/// One's-complement sum accumulator. Feed octet ranges (16-bit words, big
/// endian; a trailing odd octet is padded with zero) then call finish().
class InternetChecksum {
 public:
  void add(BytesView bytes);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);

  /// Folds the accumulator and returns the one's complement (the value to
  /// place in the checksum field).
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true if an odd octet is pending in `pending_`
  std::uint8_t pending_ = 0;
};

/// Convenience: checksum of a single contiguous range.
std::uint16_t internet_checksum(BytesView bytes);

/// Verifies a message whose checksum field was included in `bytes`; a valid
/// message sums to 0xffff (i.e. folded sum of data incl. checksum is 0).
bool verify_internet_checksum(BytesView bytes);

}  // namespace mip6
