// Minimal JSON value type for the machine-readable bench trajectory.
//
// Covers exactly what the BENCH_*.json reports need: objects, arrays,
// strings, doubles, bools and null, with a strict recursive-descent parser
// (throws ParseError on malformed input) and a deterministic dumper
// (object keys keep insertion order, so reports diff cleanly run-to-run).
// Not a general-purpose library: no \uXXXX escapes beyond pass-through,
// no integer/double distinction.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/errors.hpp"

namespace mip6 {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), num_(n) {}
  Json(int n) : type_(Type::kNumber), num_(n) {}
  Json(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::uint64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw LogicError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // --- Array ------------------------------------------------------------
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  const std::vector<Json>& items() const;

  // --- Object -----------------------------------------------------------
  /// Inserts or replaces; keys keep first-insertion order.
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const;
  /// Throws LogicError if absent.
  const Json& operator[](const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a complete document; throws ParseError on any malformation
  /// (trailing garbage included).
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace mip6
