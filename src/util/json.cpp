#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace mip6 {

namespace {

void check(bool ok, const char* what) {
  if (!ok) throw LogicError(std::string("Json: ") + what);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("JSON at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* kw) {
    std::size_t n = std::char_traits<char>::length(kw);
    if (text_.compare(pos_, n, kw) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_keyword("true")) return Json(true);
        fail("bad keyword");
      case 'f':
        if (consume_keyword("false")) return Json(false);
        fail("bad keyword");
      case 'n':
        if (consume_keyword("null")) return Json();
        fail("bad keyword");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    std::size_t consumed = 0;
    double v = 0.0;
    try {
      v = std::stod(text_.substr(start, pos_ - start), &consumed);
    } catch (const std::exception&) {
      fail("bad number");
    }
    if (consumed != pos_ - start) fail("bad number");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the least-bad representation.
    out += "null";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

bool Json::as_bool() const {
  check(type_ == Type::kBool, "not a bool");
  return bool_;
}

double Json::as_number() const {
  check(type_ == Type::kNumber, "not a number");
  return num_;
}

const std::string& Json::as_string() const {
  check(type_ == Type::kString, "not a string");
  return str_;
}

void Json::push_back(Json v) {
  check(type_ == Type::kArray, "push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  check(false, "size of non-container");
  return 0;
}

const Json& Json::at(std::size_t i) const {
  check(type_ == Type::kArray, "at on non-array");
  check(i < arr_.size(), "array index out of range");
  return arr_[i];
}

const std::vector<Json>& Json::items() const {
  check(type_ == Type::kArray, "items of non-array");
  return arr_;
}

void Json::set(const std::string& key, Json v) {
  check(type_ == Type::kObject, "set on non-object");
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

bool Json::contains(const std::string& key) const {
  check(type_ == Type::kObject, "contains on non-object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::operator[](const std::string& key) const {
  check(type_ == Type::kObject, "lookup on non-object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw LogicError("Json: missing key '" + key + "'");
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  check(type_ == Type::kObject, "members of non-object");
  return obj_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: number_to(out, num_); break;
    case Type::kString: escape_to(out, str_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        escape_to(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace mip6
