// Byte-order-safe serialization primitives.
//
// All protocol messages in this codebase are serialized to real octet
// sequences in network byte order and parsed back on receive, mirroring what
// an implementation on a wire would do. BufferWriter appends to a growable
// byte vector; BufferReader consumes a read-only view and throws ParseError
// on underrun, so every parser rejects truncated input by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/errors.hpp"

namespace mip6 {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends integers (network byte order) and raw octets to a byte vector.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(BytesView bytes);
  /// Appends `n` zero octets (padding).
  void zeros(std::size_t n);

  /// Overwrites a previously written big-endian u16 at `offset`.
  /// Used to patch length/checksum fields after the body is known.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes a byte view front-to-back; throws ParseError on underrun.
class BufferReader {
 public:
  explicit BufferReader(BytesView view) : view_(view) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads exactly `n` octets into a fresh vector.
  Bytes raw(std::size_t n);
  /// Reads exactly `n` octets as a subview (no copy). The view is only valid
  /// while the underlying buffer lives.
  BytesView view(std::size_t n);
  /// Skips `n` octets.
  void skip(std::size_t n);

  std::size_t remaining() const { return view_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  /// Throws ParseError unless the reader is fully consumed; call at the end
  /// of a parse to reject trailing garbage.
  void expect_end(const char* what) const;

 private:
  void require(std::size_t n) const;

  BytesView view_;
  std::size_t pos_ = 0;
};

/// Renders bytes as lowercase hex, e.g. "0a1b2c". For diagnostics and tests.
std::string to_hex(BytesView bytes);

}  // namespace mip6
