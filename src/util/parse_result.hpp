// No-throw parse taxonomy for hostile wire input.
//
// Every wire decoder in this codebase has a `try_*` entry point that returns
// ParseResult<T> instead of throwing: malformed input is a *value* carrying a
// ParseReason, so one bad option cannot unwind a dispatch path, and every
// rejection is attributable to exactly one taxonomy bucket (the fuzz harness
// asserts sum-of-reason-counters == total rejects). The legacy throwing
// parsers remain as thin wrappers over the try_* forms for tests and
// cold call sites.
//
// WireCursor is the no-throw sibling of BufferReader: an underrun latches a
// failure flag and subsequent reads return zeros/empty views, so decoders
// can read an entire fixed layout and check failed() once at the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/buffer.hpp"
#include "util/errors.hpp"

namespace mip6 {

/// Why an input was rejected. Exactly one reason per rejection.
enum class ParseReason : std::uint8_t {
  kTruncated = 0,      // ran out of octets mid-field
  kOverlength,         // trailing garbage after a complete message
  kBadType,            // unknown/unsupported type, version, or family field
  kBadChecksum,        // checksum verification failed
  kBadLength,          // an internal length field is inconsistent
  kBoundExceeded,      // loop/amplification bound hit (see bound::)
  kSemantic,           // fields parse but violate protocol semantics
};

inline constexpr std::size_t kParseReasonCount = 7;

constexpr const char* parse_reason_name(ParseReason r) {
  switch (r) {
    case ParseReason::kTruncated: return "truncated";
    case ParseReason::kOverlength: return "overlength";
    case ParseReason::kBadType: return "bad-type";
    case ParseReason::kBadChecksum: return "bad-checksum";
    case ParseReason::kBadLength: return "bad-length";
    case ParseReason::kBoundExceeded: return "bound-exceeded";
    case ParseReason::kSemantic: return "semantic";
  }
  return "unknown";
}

/// Hard bounds on attacker-controlled repetition counts. A count field that
/// promises more elements than these is rejected with kBoundExceeded before
/// any per-element work happens, capping both CPU and allocation per frame.
namespace bound {
/// Destination-options (and other extension) headers chained per datagram.
inline constexpr std::size_t kMaxExtHeaderChain = 8;
/// TLV options accumulated across the whole extension-header chain.
inline constexpr std::size_t kMaxDestOptions = 64;
/// Group records in one PIM Join/Prune/Graft body.
inline constexpr std::size_t kMaxPimGroupRecords = 64;
/// Joined + pruned sources in one PIM group record.
inline constexpr std::size_t kMaxPimSourcesPerGroup = 256;
/// Route entries in one RIPng Response.
inline constexpr std::size_t kMaxRipngRtes = 128;
/// Sub-options in one Binding Update.
inline constexpr std::size_t kMaxBuSubOptions = 16;
/// (S,G) entries in one HPIM-DM Sync fragment.
inline constexpr std::size_t kMaxHpimSyncEntries = 256;
}  // namespace bound

/// One rejection: the taxonomy bucket plus a static human-readable detail.
/// `detail` must point at a string literal (no ownership, no allocation).
struct ParseFailure {
  ParseReason reason = ParseReason::kTruncated;
  const char* detail = "";

  std::string str() const {
    std::string out = parse_reason_name(reason);
    if (detail != nullptr && detail[0] != '\0') {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

/// Minimal expected<T, ParseFailure>. Implicitly constructible from either a
/// value or a failure so decoders read naturally:
///   if (cond) return ParseFailure{ParseReason::kBadType, "PIM version"};
///   return msg;
template <typename T>
class [[nodiscard]] ParseResult {
 public:
  ParseResult(T value) : value_(std::move(value)) {}
  ParseResult(ParseFailure f) : fail_(f) {}
  ParseResult(ParseReason reason, const char* detail)
      : fail_{reason, detail} {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  const ParseFailure& failure() const { return fail_; }

  /// Bridge for the legacy throwing API: unwraps or throws ParseError.
  T take_or_throw() && {
    if (!ok()) throw ParseError(fail_.str());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  ParseFailure fail_{};
};

/// No-throw front-to-back byte consumer. An underrun latches failed() and
/// clamps the cursor at the end; all subsequent reads yield zeros / empty
/// views. Decoders read a whole layout, then check failed() once.
class WireCursor {
 public:
  explicit WireCursor(BytesView view) : view_(view) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return view_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(view_[pos_]) << 8) | view_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t v = (static_cast<std::uint32_t>(view_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(view_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(view_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(view_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  /// Reads `n` octets as a subview; empty view (and failed()) on underrun.
  BytesView view(std::size_t n) {
    if (!require(n)) return {};
    BytesView out = view_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  /// Reads `n` octets into a fresh vector; empty (and failed()) on underrun.
  Bytes raw(std::size_t n) {
    BytesView v = view(n);
    return Bytes(v.begin(), v.end());
  }
  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

  std::size_t remaining() const { return view_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  /// True once any read overran the input. Latched: never resets.
  bool failed() const { return failed_; }

 private:
  bool require(std::size_t n) {
    if (remaining() < n) {
      failed_ = true;
      pos_ = view_.size();
      return false;
    }
    return true;
  }

  BytesView view_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace mip6
