#include "util/strings.hpp"

#include <cstdio>

namespace mip6 {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_double(bytes, u == 0 ? 0 : 1) + " " + units[u];
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

}  // namespace mip6
