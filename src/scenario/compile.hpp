// ScenarioSpec -> live World.
//
// compile_scenario() materializes a validated spec in a fixed canonical
// order so that a compiled scenario is event-for-event identical to the
// equivalent hand-wired construction (the round-trip tests assert byte
// parity on traces and counters):
//
//   1. World(seed, config); links, routers, link_routers overrides, hosts
//      in listed order (or the generated random/line/star topology);
//      finalize().
//   2. McastMetrics observing the first traffic flow's (group, port).
//   3. One GroupReceiverApp per subscribing host, in first-subscription
//      order.
//   4. One CbrSource per traffic flow (not yet started).
//   5. Subscriptions: at_s == 0 applied synchronously now, later ones
//      scheduled — all in listed order.
//   6. Traffic flows started at their start_s.
//   7. Mobility steps scheduled in listed order.
//   8. ChaosEngine armed with the fault plan (if any).
//
// The caller then just runs world->run_until(...) and reads the apps,
// counters and chaos reports back.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "core/world.hpp"
#include "fault/chaos.hpp"
#include "scenario/spec.hpp"

namespace mip6 {

struct CompiledScenario {
  std::unique_ptr<World> world;

  /// Network-wide group-data accounting for the first flow's (group, port);
  /// null when the scenario has no traffic.
  std::unique_ptr<McastMetrics> metrics;

  struct Receiver {
    std::string host;
    std::unique_ptr<GroupReceiverApp> app;
  };
  /// One per subscribing host, in first-subscription order.
  std::vector<Receiver> receivers;

  struct Flow {
    std::string source;
    std::unique_ptr<CbrSource> cbr;
  };
  /// One per traffic entry, in listed order.
  std::vector<Flow> flows;

  /// Armed fault engine; null when the spec has no fault events.
  std::unique_ptr<ChaosEngine> chaos;

  /// Receiver app of `host`, or nullptr if it never subscribes.
  GroupReceiverApp* receiver(const std::string& host) const;
};

/// Builds the world for one replication. `seed` overrides the spec's seed
/// (run_replications derives one per replication). `on_world_ready`, if
/// set, runs right after finalize() and before any app/subscription side
/// effects — the hook tests use to install a trace sink that sees the
/// whole protocol exchange.
CompiledScenario compile_scenario(
    const ScenarioSpec& spec, std::uint64_t seed,
    const std::function<void(World&)>& on_world_ready = nullptr);

}  // namespace mip6
