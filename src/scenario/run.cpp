#include "scenario/run.hpp"

namespace mip6 {

ReplicationResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed,
                               std::optional<Time> duration) {
  CompiledScenario c = compile_scenario(spec, seed);
  c.world->run_until(duration.value_or(spec.duration));

  ReplicationResult r;
  if (spec.metrics.events) {
    r["events"] =
        static_cast<double>(c.world->scheduler().executed_events());
  }
  if (spec.metrics.delivery) {
    for (const CompiledScenario::Flow& f : c.flows) {
      r["sent/" + f.source] += static_cast<double>(f.cbr->sent());
    }
    for (const CompiledScenario::Receiver& rec : c.receivers) {
      r["delivered/" + rec.host] =
          static_cast<double>(rec.app->unique_received());
      r["duplicates/" + rec.host] =
          static_cast<double>(rec.app->duplicates());
    }
  }
  const CounterRegistry& counters = c.world->net().counters();
  for (const std::string& name : spec.metrics.counters) {
    r["counter/" + name] = static_cast<double>(counters.get(name));
  }
  for (const std::string& prefix : spec.metrics.counter_prefixes) {
    r["prefix/" + prefix] = static_cast<double>(counters.sum_prefix(prefix));
  }
  if (c.chaos) {
    r["faults_applied"] = static_cast<double>(c.chaos->executed().size());
    if (spec.fault_audit) {
      double violations = 0;
      for (const AuditReport& report : c.chaos->audit_reports()) {
        violations += static_cast<double>(report.violations.size());
      }
      r["fault_audit_violations"] = violations;
    }
    // Disruptions no receiver ever came back from (only meaningful when
    // traffic flows — without packets there is nothing to recover).
    if (!spec.traffic.empty() && !c.receivers.empty()) {
      double unrecovered_total = 0;
      for (const CompiledScenario::Receiver& rec : c.receivers) {
        double unrecovered = 0;
        for (const auto& recovery : c.chaos->recoveries(*rec.app)) {
          if (!recovery.recovered_at) unrecovered += 1;
        }
        r["unrecovered/" + rec.host] = unrecovered;
        unrecovered_total += unrecovered;
      }
      r["fault_unrecovered"] = unrecovered_total;
    }
  }
  // Deterministic teardown before the next replication reuses the process.
  c.world->stop();
  return r;
}

}  // namespace mip6
