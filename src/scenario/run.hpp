// One scenario replication: compile, run, collect the selected metrics.
#pragma once

#include <cstdint>
#include <optional>

#include "runner/parallel.hpp"
#include "scenario/compile.hpp"

namespace mip6 {

/// Compiles `spec` with `seed`, runs it to the spec's horizon (or
/// `duration` when given) and returns the metric samples selected by
/// spec.metrics:
///   "events"                    scheduler executed-event count
///   "sent/<host>"               per traffic flow
///   "delivered/<host>"          per subscribing host
///   "duplicates/<host>"         per subscribing host
///   "counter/<name>"            each metrics.counters entry
///   "prefix/<prefix>"           each metrics.counter_prefixes sum
///   "faults_applied"            when the spec has a fault plan
///   "fault_audit_violations"    when fault auditing is on
///   "unrecovered/<host>"        disruptions the receiver never came back
///                               from (faulted runs with traffic only)
///   "fault_unrecovered"         sum of the above across receivers
/// Deterministic per (spec, seed): feeding this through run_replications
/// on any thread count yields identical per-seed results.
ReplicationResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed,
                               std::optional<Time> duration = {});

}  // namespace mip6
