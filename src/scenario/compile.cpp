#include "scenario/compile.hpp"

#include <map>
#include <thread>

#include "core/random_topology.hpp"

namespace mip6 {

namespace {

Link& resolve_link(World& world, const std::string& name) {
  return world.net().link_by_name(name);
}

std::unique_ptr<World> build_topology(const ScenarioSpec& spec,
                                      std::uint64_t seed) {
  if (spec.random) {
    RandomTopology t;
    switch (spec.random->kind) {
      case ScenarioRandomTopology::Kind::kRandom: {
        RandomTopologyParams params;
        params.routers = spec.random->routers;
        params.extra_links = spec.random->extra_links;
        params.seed = seed;
        t = build_random_topology(params, spec.config);
        break;
      }
      case ScenarioRandomTopology::Kind::kLine:
        t = build_line_topology(spec.random->routers, spec.config, seed);
        break;
      case ScenarioRandomTopology::Kind::kStar:
        // build_star_topology's `arms` excludes the core router.
        t = build_star_topology(spec.random->routers - 1, spec.config, seed);
        break;
    }
    return std::move(t.world);
  }

  auto world = std::make_unique<World>(seed, spec.config);
  std::map<std::string, Link*> links;
  for (const ScenarioLink& l : spec.links) {
    links[l.name] = &world->add_link(l.name, l.prefix);
  }
  for (const ScenarioRouter& r : spec.routers) {
    std::vector<Link*> attach;
    attach.reserve(r.links.size());
    for (const std::string& name : r.links) attach.push_back(links.at(name));
    world->add_router(r.name, attach, r.opts);
  }
  return world;
}

}  // namespace

GroupReceiverApp* CompiledScenario::receiver(const std::string& host) const {
  for (const Receiver& r : receivers) {
    if (r.host == host) return r.app.get();
  }
  return nullptr;
}

CompiledScenario compile_scenario(
    const ScenarioSpec& spec, std::uint64_t seed,
    const std::function<void(World&)>& on_world_ready) {
  CompiledScenario c;
  c.world = build_topology(spec, seed);
  World& w = *c.world;

  for (const ScenarioLinkRouter& lr : spec.link_routers) {
    w.set_link_router(resolve_link(w, lr.link), w.router_by_name(lr.router));
  }
  for (const ScenarioLinkRouter& lp : spec.link_proxies) {
    w.set_link_proxy(resolve_link(w, lp.link), w.router_by_name(lp.router));
  }
  for (const ScenarioHost& h : spec.hosts) {
    w.add_host(h.name, resolve_link(w, h.home), h.opts);
  }
  w.finalize();
  if (on_world_ready) on_world_ready(w);

  if (!spec.traffic.empty()) {
    c.metrics = std::make_unique<McastMetrics>(
        w.net(), w.routing(), spec.traffic.front().group,
        spec.traffic.front().port);
  }

  // Receiver apps, in first-subscription order. The app's UDP port is the
  // port of the first flow addressed to any group this host subscribes to
  // (falling back to the first flow's port, then 9000).
  for (const ScenarioSubscription& sub : spec.subscriptions) {
    if (c.receiver(sub.host) != nullptr) continue;
    std::uint16_t port =
        spec.traffic.empty() ? std::uint16_t{9000} : spec.traffic.front().port;
    for (const ScenarioFlow& f : spec.traffic) {
      bool match = false;
      for (const ScenarioSubscription& other : spec.subscriptions) {
        if (other.host == sub.host && other.group == f.group) {
          match = true;
          break;
        }
      }
      if (match) {
        port = f.port;
        break;
      }
    }
    NodeRuntime& rt = w.host_by_name(sub.host);
    c.receivers.push_back(
        {sub.host, std::make_unique<GroupReceiverApp>(*rt.stack, port)});
  }

  for (const ScenarioFlow& f : spec.traffic) {
    NodeRuntime& src = w.host_by_name(f.source);
    MobileMulticastService* service = src.service;
    Address group = f.group;
    std::uint16_t port = f.port;
    // The tick timer is bound to the source host's own domain — mode-
    // independent, so serial and parallel runs execute the identical event
    // sequence and the ticks stay on the host's shard instead of forcing a
    // world-domain quiesce per packet.
    c.flows.push_back(
        {f.source,
         std::make_unique<CbrSource>(
             w.scheduler(),
             [service, group, port](Bytes p) {
               service->send_multicast(group, port, port, std::move(p));
             },
             f.interval, f.payload_bytes, src.node->domain())});
  }

  for (const ScenarioSubscription& sub : spec.subscriptions) {
    MobileMulticastService* service = w.host_by_name(sub.host).service;
    if (sub.at == Time::zero()) {
      service->subscribe(sub.group);
    } else {
      Address group = sub.group;
      w.scheduler().schedule_at(sub.at,
                                [service, group] { service->subscribe(group); });
    }
  }

  for (std::size_t i = 0; i < spec.traffic.size(); ++i) {
    c.flows[i].cbr->start(spec.traffic[i].start);
  }

  for (const ScenarioMove& m : spec.moves) {
    MobileNode* mn = w.host_by_name(m.host).mn;
    Link* to = &resolve_link(w, m.to);
    w.scheduler().schedule_at(m.at, [mn, to] { mn->move_to(*to); });
  }

  if (!spec.faults.empty()) {
    ChaosConfig chaos_config;
    chaos_config.audit_after_each_event = spec.fault_audit;
    c.chaos = std::make_unique<ChaosEngine>(w, spec.faults, chaos_config);
    c.chaos->arm();
  }

  if (spec.threads != 1) {
    // The spec's threads knob: shard the world for windowed parallel
    // execution (0 = hardware). Byte-identical to serial by construction;
    // topologies the partitioner cannot split fall back to one shard.
    const std::uint32_t want =
        spec.threads != 0
            ? spec.threads
            : std::max(1u, std::thread::hardware_concurrency());
    w.enable_parallel(want);
  }
  return c;
}

}  // namespace mip6
