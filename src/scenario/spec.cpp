#include "scenario/spec.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

namespace mip6 {

namespace {

// --- Low-level field access with contextual errors ------------------------

[[noreturn]] void fail(const std::string& what) { throw ScenarioError(what); }

const Json& field(const Json& obj, const std::string& key,
                  const std::string& ctx) {
  if (!obj.contains(key)) fail(ctx + ": missing required key '" + key + "'");
  return obj[key];
}

std::string str_field(const Json& obj, const std::string& key,
                      const std::string& ctx) {
  const Json& v = field(obj, key, ctx);
  if (!v.is_string()) fail(ctx + ": '" + key + "' must be a string");
  return v.as_string();
}

std::string str_or(const Json& obj, const std::string& key,
                   const std::string& ctx, const std::string& fallback) {
  if (!obj.contains(key)) return fallback;
  if (!obj[key].is_string()) fail(ctx + ": '" + key + "' must be a string");
  return obj[key].as_string();
}

double num_field(const Json& obj, const std::string& key,
                 const std::string& ctx) {
  const Json& v = field(obj, key, ctx);
  if (!v.is_number()) fail(ctx + ": '" + key + "' must be a number");
  return v.as_number();
}

double num_or(const Json& obj, const std::string& key, const std::string& ctx,
              double fallback) {
  if (!obj.contains(key)) return fallback;
  if (!obj[key].is_number()) fail(ctx + ": '" + key + "' must be a number");
  return obj[key].as_number();
}

bool bool_or(const Json& obj, const std::string& key, const std::string& ctx,
             bool fallback) {
  if (!obj.contains(key)) return fallback;
  if (!obj[key].is_bool()) fail(ctx + ": '" + key + "' must be a boolean");
  return obj[key].as_bool();
}

std::uint64_t uint_field(const Json& obj, const std::string& key,
                         const std::string& ctx) {
  double d = num_field(obj, key, ctx);
  if (d < 0 || d != std::floor(d)) {
    fail(ctx + ": '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

std::uint64_t uint_or(const Json& obj, const std::string& key,
                      const std::string& ctx, std::uint64_t fallback) {
  if (!obj.contains(key)) return fallback;
  return uint_field(obj, key, ctx);
}

Time secs_or(const Json& obj, const std::string& key, const std::string& ctx,
             Time fallback) {
  if (!obj.contains(key)) return fallback;
  return Time::seconds(num_field(obj, key, ctx));
}

void require_object(const Json& v, const std::string& ctx) {
  if (!v.is_object()) fail(ctx + " must be a JSON object");
}

void require_array(const Json& v, const std::string& ctx) {
  if (!v.is_array()) fail(ctx + " must be a JSON array");
}

/// Strict key check: a typo'd key is an error, not silence.
void reject_unknown_keys(const Json& obj, const std::string& ctx,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string list;
      for (const char* k : known) {
        if (!list.empty()) list += ", ";
        list += k;
      }
      fail(ctx + ": unknown key '" + key + "' (known keys: " + list + ")");
    }
  }
}

Address group_field(const Json& obj, const std::string& key,
                    const std::string& ctx) {
  std::string text = str_field(obj, key, ctx);
  Address a;
  try {
    a = Address::parse(text);
  } catch (const ParseError& e) {
    fail(ctx + ": '" + key + "' is not an IPv6 address: " + e.what());
  }
  if (!a.is_multicast()) {
    fail(ctx + ": '" + key + "' (" + text + ") is not a multicast address");
  }
  return a;
}

// --- Enumerations ----------------------------------------------------------

McastStrategy parse_strategy(const std::string& s, const std::string& ctx) {
  if (auto k = strategy_from_name(s)) return *k;
  std::string known;
  for (McastStrategy k : kAllStrategies) {
    if (!known.empty()) known += ", ";
    known += strategy_name(k);
  }
  fail(ctx + ": unknown strategy '" + s + "' (known: " + known + ")");
}

HaRegistration parse_registration(const std::string& s,
                                  const std::string& ctx) {
  if (auto r = registration_from_name(s)) return *r;
  fail(ctx + ": unknown registration '" + s + "' (known: " +
       registration_name(HaRegistration::kGroupListBu) + ", " +
       registration_name(HaRegistration::kTunnelMld) + ")");
}

FaultKind parse_fault_kind(const std::string& s, const std::string& ctx) {
  if (auto k = fault_kind_from_name(s)) return *k;
  fail(ctx + ": unknown fault kind '" + s +
       "' (known: link-down, link-up, link-degrade, link-restore, "
       "router-crash, router-restart, host-crash, host-restart, ha-outage, "
       "ha-restore)");
}

// --- Config overrides ------------------------------------------------------

MldConfig parse_mld(const Json& v, const std::string& ctx, MldConfig base) {
  require_object(v, ctx);
  reject_unknown_keys(
      v, ctx,
      {"robustness", "query_interval_s", "query_response_interval_s",
       "last_listener_query_interval_s", "last_listener_query_count",
       "unsolicited_report_interval_s", "unsolicited_report_count",
       "adaptive_querier"});
  base.robustness = static_cast<int>(
      uint_or(v, "robustness", ctx, static_cast<std::uint64_t>(base.robustness)));
  base.query_interval = secs_or(v, "query_interval_s", ctx, base.query_interval);
  base.query_response_interval =
      secs_or(v, "query_response_interval_s", ctx, base.query_response_interval);
  base.last_listener_query_interval = secs_or(
      v, "last_listener_query_interval_s", ctx,
      base.last_listener_query_interval);
  base.last_listener_query_count = static_cast<int>(uint_or(
      v, "last_listener_query_count", ctx,
      static_cast<std::uint64_t>(base.last_listener_query_count)));
  base.unsolicited_report_interval =
      secs_or(v, "unsolicited_report_interval_s", ctx,
              base.unsolicited_report_interval);
  base.unsolicited_report_count = static_cast<int>(uint_or(
      v, "unsolicited_report_count", ctx,
      static_cast<std::uint64_t>(base.unsolicited_report_count)));
  base.adaptive_querier =
      bool_or(v, "adaptive_querier", ctx, base.adaptive_querier);
  return base;
}

MldHostPolicy parse_mld_host(const Json& v, const std::string& ctx,
                             MldHostPolicy base) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx, {"unsolicited_reports", "send_done_on_leave"});
  base.unsolicited_reports =
      bool_or(v, "unsolicited_reports", ctx, base.unsolicited_reports);
  base.send_done_on_leave =
      bool_or(v, "send_done_on_leave", ctx, base.send_done_on_leave);
  return base;
}

PimDmConfig parse_pim(const Json& v, const std::string& ctx, PimDmConfig base) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"hello_period_s", "data_timeout_s", "prune_hold_time_s",
                       "prune_delay_s", "graft_retry_period_s",
                       "assert_time_s", "state_refresh",
                       "state_refresh_interval_s"});
  base.hello_period = secs_or(v, "hello_period_s", ctx, base.hello_period);
  base.data_timeout = secs_or(v, "data_timeout_s", ctx, base.data_timeout);
  base.prune_hold_time =
      secs_or(v, "prune_hold_time_s", ctx, base.prune_hold_time);
  base.prune_delay = secs_or(v, "prune_delay_s", ctx, base.prune_delay);
  base.graft_retry_period =
      secs_or(v, "graft_retry_period_s", ctx, base.graft_retry_period);
  base.assert_time = secs_or(v, "assert_time_s", ctx, base.assert_time);
  base.state_refresh = bool_or(v, "state_refresh", ctx, base.state_refresh);
  base.state_refresh_interval =
      secs_or(v, "state_refresh_interval_s", ctx, base.state_refresh_interval);
  return base;
}

HpimDmConfig parse_hpim(const Json& v, const std::string& ctx,
                        HpimDmConfig base) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"hello_period_s", "hello_holdtime_s", "data_timeout_s",
                       "ack_timeout_ms", "ack_timeout_max_ms",
                       "max_retransmit_queue", "sync_min_interval_ms",
                       "assert_time_s", "leaf_reconcile_delay_s"});
  base.hello_period = secs_or(v, "hello_period_s", ctx, base.hello_period);
  base.hello_holdtime_s = static_cast<std::uint16_t>(uint_or(
      v, "hello_holdtime_s", ctx,
      static_cast<std::uint64_t>(base.hello_holdtime_s)));
  base.data_timeout = secs_or(v, "data_timeout_s", ctx, base.data_timeout);
  if (v.contains("ack_timeout_ms")) {
    base.ack_timeout =
        Time::seconds(num_field(v, "ack_timeout_ms", ctx) / 1000.0);
  }
  if (v.contains("ack_timeout_max_ms")) {
    base.ack_timeout_max =
        Time::seconds(num_field(v, "ack_timeout_max_ms", ctx) / 1000.0);
  }
  base.max_retransmit_queue = static_cast<std::size_t>(uint_or(
      v, "max_retransmit_queue", ctx,
      static_cast<std::uint64_t>(base.max_retransmit_queue)));
  if (v.contains("sync_min_interval_ms")) {
    base.sync_min_interval =
        Time::seconds(num_field(v, "sync_min_interval_ms", ctx) / 1000.0);
  }
  base.assert_time = secs_or(v, "assert_time_s", ctx, base.assert_time);
  base.leaf_reconcile_delay =
      secs_or(v, "leaf_reconcile_delay_s", ctx, base.leaf_reconcile_delay);
  return base;
}

Mipv6Config parse_mipv6(const Json& v, const std::string& ctx,
                        Mipv6Config base) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"binding_lifetime_s", "bu_refresh_interval_s",
                       "movement_detection_delay_ms", "request_ack"});
  base.binding_lifetime =
      secs_or(v, "binding_lifetime_s", ctx, base.binding_lifetime);
  base.bu_refresh_interval =
      secs_or(v, "bu_refresh_interval_s", ctx, base.bu_refresh_interval);
  if (v.contains("movement_detection_delay_ms")) {
    base.movement_detection_delay = Time::seconds(
        num_field(v, "movement_detection_delay_ms", ctx) / 1000.0);
  }
  base.request_ack = bool_or(v, "request_ack", ctx, base.request_ack);
  return base;
}

RipngConfig parse_ripng(const Json& v, const std::string& ctx,
                        RipngConfig base) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"update_interval_s", "route_timeout_s", "gc_interval_s",
                       "triggered_update_delay_s"});
  base.update_interval =
      secs_or(v, "update_interval_s", ctx, base.update_interval);
  base.route_timeout = secs_or(v, "route_timeout_s", ctx, base.route_timeout);
  base.gc_interval = secs_or(v, "gc_interval_s", ctx, base.gc_interval);
  base.triggered_update_delay =
      secs_or(v, "triggered_update_delay_s", ctx, base.triggered_update_delay);
  return base;
}

WorldConfig parse_world_config(const Json& v, const std::string& ctx) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"unicast", "dense_engine", "link_delay_us",
                       "link_bit_rate_bps", "mld", "mld_host", "pim", "hpim",
                       "mipv6", "ripng"});
  WorldConfig c;
  std::string unicast = str_or(v, "unicast", ctx, "oracle");
  if (unicast == "oracle") {
    c.unicast = UnicastRouting::kGlobalOracle;
  } else if (unicast == "ripng") {
    c.unicast = UnicastRouting::kRipng;
  } else {
    fail(ctx + ": unknown unicast mode '" + unicast +
         "' (known: oracle, ripng)");
  }
  std::string engine = str_or(v, "dense_engine", ctx, "pimdm");
  if (engine == "pimdm") {
    c.dense_engine = DenseEngineKind::kPimDm;
  } else if (engine == "hpimdm") {
    c.dense_engine = DenseEngineKind::kHpimDm;
  } else {
    fail(ctx + ": unknown dense_engine '" + engine +
         "' (known: pimdm, hpimdm)");
  }
  if (v.contains("link_delay_us")) {
    c.link_delay = Time::seconds(num_field(v, "link_delay_us", ctx) / 1e6);
  }
  c.link_bit_rate_bps =
      uint_or(v, "link_bit_rate_bps", ctx, c.link_bit_rate_bps);
  if (v.contains("mld")) c.mld = parse_mld(v["mld"], ctx + ".mld", c.mld);
  if (v.contains("mld_host")) {
    c.mld_host = parse_mld_host(v["mld_host"], ctx + ".mld_host", c.mld_host);
  }
  if (v.contains("pim")) c.pim = parse_pim(v["pim"], ctx + ".pim", c.pim);
  if (v.contains("hpim")) {
    c.hpim = parse_hpim(v["hpim"], ctx + ".hpim", c.hpim);
  }
  if (v.contains("mipv6")) {
    c.mipv6 = parse_mipv6(v["mipv6"], ctx + ".mipv6", c.mipv6);
  }
  if (v.contains("ripng")) {
    c.ripng = parse_ripng(v["ripng"], ctx + ".ripng", c.ripng);
  }
  return c;
}

// --- Topology entries ------------------------------------------------------

RouterOptions parse_router_modules(const Json& list, const std::string& ctx) {
  require_array(list, ctx + ".modules");
  RouterOptions o;
  o.with_mld = o.with_pim = o.with_ha = false;
  o.with_proxy = o.with_ar_agent = false;
  o.with_ripng = false;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Json& m = list.at(i);
    if (!m.is_string()) fail(ctx + ".modules must contain strings");
    const std::string& name = m.as_string();
    if (name == "mld") {
      o.with_mld = true;
    } else if (name == "pimdm") {
      if (o.engine == DenseEngineKind::kHpimDm) {
        fail(ctx + ": modules list names both 'pimdm' and 'hpimdm' (pick one "
             "dense-mode engine)");
      }
      o.with_pim = true;
      o.engine = DenseEngineKind::kPimDm;
    } else if (name == "hpimdm") {
      if (o.engine == DenseEngineKind::kPimDm) {
        fail(ctx + ": modules list names both 'pimdm' and 'hpimdm' (pick one "
             "dense-mode engine)");
      }
      o.with_pim = true;
      o.engine = DenseEngineKind::kHpimDm;
    } else if (name == "home-agent") {
      o.with_ha = true;
    } else if (name == "mcast-proxy") {
      o.with_proxy = true;
    } else if (name == "ar-agent") {
      o.with_ar_agent = true;
    } else if (name == "ripng") {
      o.with_ripng = true;
    } else {
      fail(ctx + ": unknown module '" + name +
           "' (known modules: mld, pimdm, hpimdm, home-agent, mcast-proxy, "
           "ar-agent, ripng)");
    }
  }
  return o;
}

ScenarioRouter parse_router(const Json& v, const std::string& ctx,
                            const WorldConfig& world_config) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx, {"name", "links", "modules", "config"});
  ScenarioRouter r;
  r.name = str_field(v, "name", ctx);
  const std::string rctx = "router '" + r.name + "'";
  const Json& links = field(v, "links", rctx);
  require_array(links, rctx + ".links");
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (!links.at(i).is_string()) fail(rctx + ".links must contain strings");
    r.links.push_back(links.at(i).as_string());
  }
  if (v.contains("modules")) {
    r.opts = parse_router_modules(v["modules"], rctx);
  }
  if (v.contains("config")) {
    const Json& c = v["config"];
    require_object(c, rctx + ".config");
    reject_unknown_keys(c, rctx + ".config",
                        {"mld", "pim", "hpim", "mipv6", "ripng"});
    if (c.contains("mld")) {
      r.opts.mld = parse_mld(c["mld"], rctx + ".config.mld", world_config.mld);
    }
    if (c.contains("pim")) {
      r.opts.pim = parse_pim(c["pim"], rctx + ".config.pim", world_config.pim);
    }
    if (c.contains("hpim")) {
      r.opts.hpim =
          parse_hpim(c["hpim"], rctx + ".config.hpim", world_config.hpim);
    }
    if (c.contains("mipv6")) {
      r.opts.mipv6 =
          parse_mipv6(c["mipv6"], rctx + ".config.mipv6", world_config.mipv6);
    }
    if (c.contains("ripng")) {
      r.opts.ripng =
          parse_ripng(c["ripng"], rctx + ".config.ripng", world_config.ripng);
    }
  }
  return r;
}

ScenarioHost parse_host(const Json& v, const std::string& ctx,
                        const WorldConfig& world_config) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"name", "home", "strategy", "registration", "config"});
  ScenarioHost h;
  h.name = str_field(v, "name", ctx);
  const std::string hctx = "host '" + h.name + "'";
  h.home = str_field(v, "home", hctx);
  if (v.contains("strategy")) {
    h.opts.strategy.strategy =
        parse_strategy(str_field(v, "strategy", hctx), hctx);
  }
  if (v.contains("registration")) {
    h.opts.strategy.registration =
        parse_registration(str_field(v, "registration", hctx), hctx);
  }
  if (v.contains("config")) {
    const Json& c = v["config"];
    require_object(c, hctx + ".config");
    reject_unknown_keys(c, hctx + ".config", {"mld", "mld_host", "mipv6"});
    if (c.contains("mld")) {
      h.opts.mld = parse_mld(c["mld"], hctx + ".config.mld", world_config.mld);
    }
    if (c.contains("mld_host")) {
      h.opts.mld_host = parse_mld_host(c["mld_host"], hctx + ".config.mld_host",
                                       world_config.mld_host);
    }
    if (c.contains("mipv6")) {
      h.opts.mipv6 =
          parse_mipv6(c["mipv6"], hctx + ".config.mipv6", world_config.mipv6);
    }
  }
  return h;
}

ScenarioRandomTopology parse_random(const Json& v, const std::string& ctx) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx, {"kind", "routers", "extra_links"});
  ScenarioRandomTopology r;
  std::string kind = str_or(v, "kind", ctx, "random");
  if (kind == "random") {
    r.kind = ScenarioRandomTopology::Kind::kRandom;
  } else if (kind == "line") {
    r.kind = ScenarioRandomTopology::Kind::kLine;
  } else if (kind == "star") {
    r.kind = ScenarioRandomTopology::Kind::kStar;
  } else {
    fail(ctx + ": unknown topology kind '" + kind +
         "' (known: random, line, star)");
  }
  r.routers = uint_or(v, "routers", ctx, r.routers);
  r.extra_links = uint_or(v, "extra_links", ctx, r.extra_links);
  if (r.routers == 0) fail(ctx + ": 'routers' must be at least 1");
  return r;
}

FaultEvent parse_fault(const Json& v, const std::string& ctx) {
  require_object(v, ctx);
  reject_unknown_keys(v, ctx,
                      {"kind", "target", "at_s", "loss", "corrupt",
                       "jitter_ms"});
  FaultEvent e;
  e.kind = parse_fault_kind(str_field(v, "kind", ctx), ctx);
  e.target = str_field(v, "target", ctx);
  e.at = Time::seconds(num_field(v, "at_s", ctx));
  if (e.kind == FaultKind::kLinkDegrade) {
    e.impairment.loss = num_or(v, "loss", ctx, 0.0);
    e.impairment.corrupt = num_or(v, "corrupt", ctx, 0.0);
    e.impairment.jitter = Time::seconds(num_or(v, "jitter_ms", ctx, 0.0) /
                                        1000.0);
  }
  return e;
}

}  // namespace

ScenarioSpec ScenarioSpec::from_json(const Json& doc) {
  require_object(doc, "scenario document");
  reject_unknown_keys(doc, "scenario",
                      {"name", "description", "duration_s", "seed", "threads",
                       "config", "topology", "subscriptions", "traffic",
                       "mobility", "faults", "fault_audit", "metrics"});
  ScenarioSpec s;
  s.name = str_or(doc, "name", "scenario", s.name);
  s.description = str_or(doc, "description", "scenario", "");
  s.duration = secs_or(doc, "duration_s", "scenario", s.duration);
  s.seed = uint_or(doc, "seed", "scenario", s.seed);
  s.threads = static_cast<std::uint32_t>(
      uint_or(doc, "threads", "scenario", s.threads));
  if (doc.contains("config")) {
    s.config = parse_world_config(doc["config"], "config");
  }

  const Json& topo = field(doc, "topology", "scenario");
  require_object(topo, "topology");
  reject_unknown_keys(topo, "topology",
                      {"links", "routers", "random", "link_routers",
                       "link_proxies", "hosts"});
  if (topo.contains("random")) {
    if (topo.contains("links") || topo.contains("routers")) {
      fail("topology: 'random' is mutually exclusive with explicit "
           "'links'/'routers'");
    }
    s.random = parse_random(topo["random"], "topology.random");
  } else {
    const Json& links = field(topo, "links", "topology");
    require_array(links, "topology.links");
    for (std::size_t i = 0; i < links.size(); ++i) {
      const Json& l = links.at(i);
      const std::string ctx = "topology.links[" + std::to_string(i) + "]";
      require_object(l, ctx);
      reject_unknown_keys(l, ctx, {"name", "prefix"});
      s.links.push_back(
          {str_field(l, "name", ctx), str_or(l, "prefix", ctx, "")});
    }
    const Json& routers = field(topo, "routers", "topology");
    require_array(routers, "topology.routers");
    for (std::size_t i = 0; i < routers.size(); ++i) {
      s.routers.push_back(
          parse_router(routers.at(i),
                       "topology.routers[" + std::to_string(i) + "]",
                       s.config));
    }
  }
  if (topo.contains("link_routers")) {
    const Json& lr = topo["link_routers"];
    require_array(lr, "topology.link_routers");
    for (std::size_t i = 0; i < lr.size(); ++i) {
      const Json& v = lr.at(i);
      const std::string ctx =
          "topology.link_routers[" + std::to_string(i) + "]";
      require_object(v, ctx);
      reject_unknown_keys(v, ctx, {"link", "router"});
      s.link_routers.push_back(
          {str_field(v, "link", ctx), str_field(v, "router", ctx)});
    }
  }
  if (topo.contains("link_proxies")) {
    const Json& lp = topo["link_proxies"];
    require_array(lp, "topology.link_proxies");
    for (std::size_t i = 0; i < lp.size(); ++i) {
      const Json& v = lp.at(i);
      const std::string ctx =
          "topology.link_proxies[" + std::to_string(i) + "]";
      require_object(v, ctx);
      reject_unknown_keys(v, ctx, {"link", "router"});
      s.link_proxies.push_back(
          {str_field(v, "link", ctx), str_field(v, "router", ctx)});
    }
  }
  if (topo.contains("hosts")) {
    const Json& hosts = topo["hosts"];
    require_array(hosts, "topology.hosts");
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      s.hosts.push_back(parse_host(
          hosts.at(i), "topology.hosts[" + std::to_string(i) + "]", s.config));
    }
  }

  if (doc.contains("subscriptions")) {
    const Json& subs = doc["subscriptions"];
    require_array(subs, "subscriptions");
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const Json& v = subs.at(i);
      const std::string ctx = "subscriptions[" + std::to_string(i) + "]";
      require_object(v, ctx);
      reject_unknown_keys(v, ctx, {"host", "group", "at_s"});
      ScenarioSubscription sub;
      sub.host = str_field(v, "host", ctx);
      sub.group = group_field(v, "group", ctx);
      sub.at = secs_or(v, "at_s", ctx, Time::zero());
      s.subscriptions.push_back(sub);
    }
  }

  if (doc.contains("traffic")) {
    const Json& flows = doc["traffic"];
    require_array(flows, "traffic");
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const Json& v = flows.at(i);
      const std::string ctx = "traffic[" + std::to_string(i) + "]";
      require_object(v, ctx);
      reject_unknown_keys(v, ctx,
                          {"type", "source", "group", "port", "interval_ms",
                           "payload_bytes", "start_s"});
      std::string type = str_or(v, "type", ctx, "cbr");
      if (type != "cbr") {
        fail(ctx + ": unknown traffic type '" + type + "' (known: cbr)");
      }
      ScenarioFlow f;
      f.source = str_field(v, "source", ctx);
      f.group = group_field(v, "group", ctx);
      f.port = static_cast<std::uint16_t>(uint_or(v, "port", ctx, f.port));
      if (v.contains("interval_ms")) {
        f.interval = Time::seconds(num_field(v, "interval_ms", ctx) / 1000.0);
      }
      f.payload_bytes = uint_or(v, "payload_bytes", ctx, f.payload_bytes);
      f.start = secs_or(v, "start_s", ctx, f.start);
      s.traffic.push_back(f);
    }
  }

  if (doc.contains("mobility")) {
    const Json& moves = doc["mobility"];
    require_array(moves, "mobility");
    for (std::size_t i = 0; i < moves.size(); ++i) {
      const Json& v = moves.at(i);
      const std::string ctx = "mobility[" + std::to_string(i) + "]";
      require_object(v, ctx);
      reject_unknown_keys(v, ctx, {"host", "at_s", "to"});
      ScenarioMove m;
      m.host = str_field(v, "host", ctx);
      m.at = Time::seconds(num_field(v, "at_s", ctx));
      m.to = str_field(v, "to", ctx);
      s.moves.push_back(m);
    }
  }

  if (doc.contains("faults")) {
    const Json& faults = doc["faults"];
    require_array(faults, "faults");
    for (std::size_t i = 0; i < faults.size(); ++i) {
      s.faults.add(
          parse_fault(faults.at(i), "faults[" + std::to_string(i) + "]"));
    }
  }
  s.fault_audit = bool_or(doc, "fault_audit", "scenario", s.fault_audit);

  if (doc.contains("metrics")) {
    const Json& m = doc["metrics"];
    require_object(m, "metrics");
    reject_unknown_keys(m, "metrics",
                        {"counters", "counter_prefixes", "delivery", "events"});
    if (m.contains("counters")) {
      require_array(m["counters"], "metrics.counters");
      for (std::size_t i = 0; i < m["counters"].size(); ++i) {
        if (!m["counters"].at(i).is_string()) {
          fail("metrics.counters must contain strings");
        }
        s.metrics.counters.push_back(m["counters"].at(i).as_string());
      }
    }
    if (m.contains("counter_prefixes")) {
      require_array(m["counter_prefixes"], "metrics.counter_prefixes");
      for (std::size_t i = 0; i < m["counter_prefixes"].size(); ++i) {
        if (!m["counter_prefixes"].at(i).is_string()) {
          fail("metrics.counter_prefixes must contain strings");
        }
        s.metrics.counter_prefixes.push_back(
            m["counter_prefixes"].at(i).as_string());
      }
    }
    s.metrics.delivery = bool_or(m, "delivery", "metrics", s.metrics.delivery);
    s.metrics.events = bool_or(m, "events", "metrics", s.metrics.events);
  }

  s.validate();
  return s;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  return from_json(Json::parse(text));
}

ScenarioSpec ScenarioSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot read scenario file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const ParseError& e) {
    throw ScenarioError(path + ": " + e.what());
  } catch (const ScenarioError& e) {
    // Re-prefix with the file so a sweep over many scenarios names the
    // culprit. (e.what() already carries the "scenario: " prefix.)
    throw ScenarioError(path + ": " + e.what());
  }
}

void ScenarioSpec::validate() const {
  std::set<std::string> link_names;
  std::set<std::string> node_names;

  if (random) {
    // Generated topology: links are Stub<i>/Transit<j>, routers Router<i>.
    for (std::size_t i = 0; i < random->routers; ++i) {
      link_names.insert("Stub" + std::to_string(i));
      node_names.insert("Router" + std::to_string(i));
    }
    // Transit link count depends on the RNG (random kind skips self-pairs),
    // so transit names are not statically checkable here; hosts should home
    // on stubs. Compile resolves transits dynamically.
  } else {
    if (links.empty()) fail("topology has no links");
    if (routers.empty()) fail("topology has no routers");
    for (const ScenarioLink& l : links) {
      if (l.name.empty()) fail("topology.links: a link has an empty name");
      if (!link_names.insert(l.name).second) {
        fail("duplicate link '" + l.name + "'");
      }
    }
    for (const ScenarioRouter& r : routers) {
      if (r.name.empty()) fail("topology.routers: a router has an empty name");
      if (!node_names.insert(r.name).second) {
        fail("duplicate node '" + r.name + "'");
      }
      if (r.links.empty()) {
        fail("router '" + r.name + "' is attached to no links");
      }
      for (const std::string& l : r.links) {
        if (!link_names.contains(l)) {
          fail("router '" + r.name + "' references undefined link '" + l +
               "' (dangling link)");
        }
      }
      if (r.opts.with_pim && !r.opts.with_mld) {
        const bool hpim = r.opts.engine == DenseEngineKind::kHpimDm;
        fail("router '" + r.name + "': module '" +
             (hpim ? "hpimdm" : "pimdm") +
             "' requires 'mld' (PIM learns local receivers from MLD)");
      }
      if (r.opts.with_ha && !r.opts.with_pim) {
        fail("router '" + r.name +
             "': module 'home-agent' requires 'pimdm' (PIM-backed group "
             "membership)");
      }
      if (r.opts.with_proxy && !r.opts.with_pim) {
        fail("router '" + r.name +
             "': module 'mcast-proxy' requires 'pimdm' (the proxy joins "
             "groups into the dense-mode tree)");
      }
      if (r.opts.with_ar_agent && !r.opts.with_mld) {
        fail("router '" + r.name +
             "': module 'ar-agent' requires 'mld' (the agent injects MLD "
             "listener state)");
      }
    }
  }

  std::set<std::string> host_names;
  std::set<std::string> router_names = node_names;
  for (const ScenarioHost& h : hosts) {
    if (h.name.empty()) fail("topology.hosts: a host has an empty name");
    if (!node_names.insert(h.name).second) {
      fail("duplicate node '" + h.name + "'");
    }
    host_names.insert(h.name);
    if (!random && !link_names.contains(h.home)) {
      fail("host '" + h.name + "' is homed on undefined link '" + h.home +
           "' (dangling link)");
    }
  }

  for (const ScenarioLinkRouter& lr : link_routers) {
    if (!random && !link_names.contains(lr.link)) {
      fail("link_routers references undefined link '" + lr.link + "'");
    }
    if (!router_names.contains(lr.router)) {
      fail("link_routers references undefined router '" + lr.router + "'");
    }
  }

  for (const ScenarioLinkRouter& lp : link_proxies) {
    if (!random && !link_names.contains(lp.link)) {
      fail("link_proxies references undefined link '" + lp.link + "'");
    }
    if (!router_names.contains(lp.router)) {
      fail("link_proxies references undefined router '" + lp.router + "'");
    }
    for (const ScenarioRouter& r : routers) {
      if (r.name == lp.router && !r.opts.with_proxy) {
        fail("link_proxies designates router '" + lp.router +
             "' which does not run the 'mcast-proxy' module");
      }
    }
  }

  for (const ScenarioSubscription& sub : subscriptions) {
    if (!host_names.contains(sub.host)) {
      fail("subscription references undefined host '" + sub.host + "'");
    }
  }
  for (const ScenarioFlow& f : traffic) {
    if (!host_names.contains(f.source)) {
      fail("traffic source references undefined host '" + f.source + "'");
    }
    if (f.payload_bytes < 12) {
      fail("traffic flow from '" + f.source +
           "': payload_bytes must be at least 12 (CBR header)");
    }
  }
  for (const ScenarioMove& m : moves) {
    if (!host_names.contains(m.host)) {
      fail("mobility references undefined host '" + m.host + "'");
    }
    if (!random && !link_names.contains(m.to)) {
      fail("mobility moves '" + m.host + "' to undefined link '" + m.to +
           "'");
    }
  }
  for (const FaultEvent& e : faults.events()) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkRestore:
        if (!random && !link_names.contains(e.target)) {
          fail(std::string("fault ") + fault_kind_name(e.kind) +
               " targets undefined link '" + e.target + "'");
        }
        break;
      case FaultKind::kRouterCrash:
      case FaultKind::kRouterRestart:
      case FaultKind::kHaOutage:
      case FaultKind::kHaRestore:
        if (!router_names.contains(e.target)) {
          fail(std::string("fault ") + fault_kind_name(e.kind) +
               " targets undefined router '" + e.target + "'");
        }
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostRestart:
        if (!host_names.contains(e.target)) {
          fail(std::string("fault ") + fault_kind_name(e.kind) +
               " targets undefined host '" + e.target + "'");
        }
        break;
    }
  }
}

}  // namespace mip6
