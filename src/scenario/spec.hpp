// Declarative scenario descriptions.
//
// A ScenarioSpec is plain data parsed from JSON: topology (explicit links +
// routers + hosts, or a generated random/line/star router graph), per-node
// module sets and config overrides, subscriptions, CBR traffic flows,
// scripted mobility, a fault plan and a metric selection. Building a spec
// has no side effects; compile_scenario() turns it into a live World. The
// full schema is documented in docs/SCENARIOS.md.
//
// Parsing is strict: unknown keys, unknown module names, dangling link
// references and duplicate node names are rejected with a ScenarioError
// that names the offending entry — a scenario file either loads completely
// or fails with an actionable message.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "core/world.hpp"
#include "fault/plan.hpp"
#include "util/json.hpp"

namespace mip6 {

/// Semantic scenario errors (malformed structure, unknown references).
/// JSON *syntax* errors surface as ParseError from Json::parse.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error("scenario: " + what) {}
};

struct ScenarioLink {
  std::string name;
  /// Empty = auto-assigned "2001:db8:<n>::/64".
  std::string prefix;
};

struct ScenarioRouter {
  std::string name;
  std::vector<std::string> links;
  /// Module set; defaults to the full paper role. Parsed from the JSON
  /// "modules" list (subset of "mld", "pimdm", "hpimdm", "home-agent",
  /// "ripng"; pimdm/hpimdm are mutually exclusive dense-engine picks) plus
  /// per-router "config" overrides.
  RouterOptions opts;
};

struct ScenarioHost {
  std::string name;
  std::string home;
  HostOptions opts;
};

/// Generated router graph (one stub LAN per router); hosts reference the
/// generated "Stub<i>" links by name.
struct ScenarioRandomTopology {
  enum class Kind { kRandom, kLine, kStar };
  Kind kind = Kind::kRandom;
  std::size_t routers = 8;
  /// Extra non-tree links (kRandom only).
  std::size_t extra_links = 2;
};

struct ScenarioLinkRouter {
  std::string link;
  std::string router;
};

struct ScenarioSubscription {
  std::string host;
  Address group;
  /// zero = applied synchronously before the run starts.
  Time at = Time::zero();
};

struct ScenarioFlow {
  std::string source;
  Address group;
  std::uint16_t port = 9000;
  Time interval = Time::ms(100);
  std::size_t payload_bytes = 64;
  Time start = Time::sec(1);
};

struct ScenarioMove {
  std::string host;
  Time at;
  std::string to;
};

struct ScenarioMetrics {
  /// Exact counter names read back per replication ("counter/<name>").
  std::vector<std::string> counters;
  /// Prefix sums ("prefix/<prefix>"), e.g. "pimdm/tx/".
  std::vector<std::string> counter_prefixes;
  /// Per-receiver delivered/duplicate counts and per-flow sent counts.
  bool delivery = true;
  /// Scheduler executed-event count.
  bool events = true;
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::string description;
  Time duration = Time::sec(60);
  std::uint64_t seed = 1;
  /// Worker shards for in-world parallel execution (World::enable_parallel):
  /// 1 = serial, 0 = one per hardware thread. Any value yields byte-identical
  /// traces and metrics — this is a speed knob, not a semantics knob.
  std::uint32_t threads = 1;
  WorldConfig config;

  // Topology: either explicit links+routers or a generated graph.
  std::vector<ScenarioLink> links;
  std::vector<ScenarioRouter> routers;
  std::optional<ScenarioRandomTopology> random;
  std::vector<ScenarioLinkRouter> link_routers;
  /// hier-proxy domain assignment: which proxy-running router serves each
  /// link ("link_proxies" key; same shape as link_routers).
  std::vector<ScenarioLinkRouter> link_proxies;
  std::vector<ScenarioHost> hosts;

  std::vector<ScenarioSubscription> subscriptions;
  std::vector<ScenarioFlow> traffic;
  std::vector<ScenarioMove> moves;
  FaultPlan faults;
  /// Audit after each fault event (ChaosConfig::audit_after_each_event).
  bool fault_audit = true;
  ScenarioMetrics metrics;

  /// Parses and validates; throws ScenarioError with the offending entry
  /// named on any malformation.
  static ScenarioSpec from_json(const Json& doc);
  static ScenarioSpec parse(const std::string& text);
  /// Reads `path`, parses and validates; errors are prefixed with the path.
  static ScenarioSpec load_file(const std::string& path);

  /// Referential integrity: every link/router/host reference resolves,
  /// names are unique, module dependencies hold. from_json calls this;
  /// call it directly on programmatically built specs.
  void validate() const;
};

}  // namespace mip6
