#include "runner/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/rng.hpp"

namespace mip6 {

std::map<std::string, Summary> run_replications(
    const ReplicationOptions& options,
    const std::function<ReplicationResult(std::uint64_t seed)>& body) {
  const std::size_t n = options.replications;
  std::vector<ReplicationResult> results(n);

  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n == 0 ? std::size_t{1} : n);

  std::atomic<std::size_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (first_error) return;  // fail fast, skip remaining work
      }
      try {
        results[i] = body(Rng::derive_seed(options.base_seed, i));
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);

  std::map<std::string, Summary> merged;
  for (const auto& r : results) {
    for (const auto& [name, value] : r) merged[name].add(value);
  }
  return merged;
}

}  // namespace mip6
