// Parallel replication runner.
//
// Simulations here are single-threaded and deterministic per seed, so the
// natural parallelism is across replications: run_replications() fans N
// independent seeded runs over a thread pool and collects their per-metric
// samples into Summary statistics. Worker threads never share simulation
// state — each replication builds its own Network — so no synchronization
// beyond the work queue is needed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace mip6 {

/// One replication's named metric samples.
using ReplicationResult = std::map<std::string, double>;

struct ReplicationOptions {
  std::size_t replications = 8;
  std::uint64_t base_seed = 42;
  /// 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// Runs `body(seed)` for `options.replications` derived seeds in parallel
/// and merges the per-name samples. Exceptions inside a replication
/// propagate to the caller (the first one thrown, after all workers stop).
std::map<std::string, Summary> run_replications(
    const ReplicationOptions& options,
    const std::function<ReplicationResult(std::uint64_t seed)>& body);

}  // namespace mip6
