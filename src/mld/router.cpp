#include "mld/router.hpp"

#include <algorithm>

#include "net/wire_stats.hpp"

namespace mip6 {

MldRouter::MldRouter(Ipv6Stack& stack, Icmpv6Dispatcher& dispatch,
                     MldConfig config)
    : stack_(&stack), dispatch_(&dispatch),
      component_("mld/" + stack.node().name()), config_(config) {
  // Routers must hear Reports addressed to arbitrary group addresses.
  stack.set_mcast_promiscuous(true);
  auto handler = [this](const Icmpv6Message& msg, const ParsedDatagram& d,
                        IfaceId iface) {
    ParseResult<MldMessage> m = MldMessage::try_from_icmpv6(msg);
    if (!m.ok()) {
      count("mld/rx-drop/parse-error");
      note_parse_reject(stack_->network(), "mld", m.failure());
      return;
    }
    on_message(m.value(), d, iface);
  };
  subs_.emplace_back(icmpv6::kMldQuery,
                     dispatch.subscribe(icmpv6::kMldQuery, handler));
  subs_.emplace_back(icmpv6::kMldReport,
                     dispatch.subscribe(icmpv6::kMldReport, handler));
  subs_.emplace_back(icmpv6::kMldDone,
                     dispatch.subscribe(icmpv6::kMldDone, handler));
}

void MldRouter::start() {
  for (const auto& ifp : stack_->node().interfaces()) {
    if (ifp->attached() && configured_.contains(ifp->id())) {
      enable_iface(ifp->id());
    }
  }
}

void MldRouter::stop() {
  shutdown();
  for (auto [type, token] : subs_) dispatch_->unsubscribe(type, token);
  subs_.clear();
}

void MldRouter::enable_iface(IfaceId iface) {
  configured_.insert(iface);
  auto [it, fresh] = ifaces_.try_emplace(iface);
  if (!fresh) return;
  IfaceState& st = it->second;
  st.iface = iface;
  st.querier = true;
  st.startup_queries_left = config_.startup_query_count;
  st.query_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface] { send_general_query(iface); }, stack_->node().domain());
  st.other_querier_timer = std::make_unique<Timer>(
      stack_->scheduler(), [this, iface] {
        // The other querier vanished: resume querier duty.
        IfaceState& s = state(iface);
        s.querier = true;
        count("mld/querier-elected");
        trace_event("querier-elected",
                    [&] { return "iface=" + std::to_string(iface); });
        send_general_query(iface);
      }, stack_->node().domain());
  // First startup query goes out immediately.
  st.query_timer->arm(Time::zero());
}

void MldRouter::shutdown() {
  listeners_.clear();  // cancels listener-interval timers
  ifaces_.clear();     // cancels query / other-querier timers
  count("mld/shutdown");
}

std::vector<IfaceId> MldRouter::enabled_ifaces() const {
  std::vector<IfaceId> out;
  for (const auto& [iface, st] : ifaces_) out.push_back(iface);
  return out;
}

bool MldRouter::is_querier(IfaceId iface) const {
  auto it = ifaces_.find(iface);
  return it != ifaces_.end() && it->second.querier;
}

bool MldRouter::has_listeners(IfaceId iface, const Address& group) const {
  return listeners_.contains({iface, group});
}

std::vector<Address> MldRouter::groups_on(IfaceId iface) const {
  std::vector<Address> out;
  for (const auto& [key, st] : listeners_) {
    if (key.first == iface) out.push_back(key.second);
  }
  return out;
}

MldRouter::IfaceState& MldRouter::state(IfaceId iface) {
  auto it = ifaces_.find(iface);
  if (it == ifaces_.end()) {
    throw LogicError("MLD not enabled on iface " + std::to_string(iface));
  }
  return it->second;
}

void MldRouter::schedule_next_query(IfaceState& st) {
  if (st.startup_queries_left > 0) {
    st.query_timer->arm(config_.startup_query_interval);
  } else {
    st.query_timer->arm(effective_query_interval(st.iface));
  }
}

Time MldRouter::effective_query_interval(IfaceId iface) const {
  if (!config_.adaptive_querier) return config_.query_interval;
  auto it = ifaces_.find(iface);
  if (it == ifaces_.end()) return config_.query_interval;
  Time now = stack_->scheduler().now();
  int recent = static_cast<int>(std::count_if(
      it->second.churn_events.begin(), it->second.churn_events.end(),
      [&](Time t) { return now - t <= config_.adaptive_window; }));
  return recent >= config_.adaptive_churn_threshold
             ? config_.adaptive_min_interval
             : config_.query_interval;
}

void MldRouter::note_churn(IfaceId iface) {
  if (!config_.adaptive_querier) return;
  auto it = ifaces_.find(iface);
  if (it == ifaces_.end()) return;
  IfaceState& st = it->second;
  Time now = stack_->scheduler().now();
  st.churn_events.push_back(now);
  std::erase_if(st.churn_events, [&](Time t) {
    return now - t > config_.adaptive_window;
  });
  // React immediately: if the accelerated interval is shorter than the
  // pending general query, pull it forward.
  if (st.querier) {
    st.query_timer->arm_to_earlier(effective_query_interval(iface));
  }
}

void MldRouter::send_general_query(IfaceId iface) {
  IfaceState& st = state(iface);
  if (!st.querier) return;
  if (st.startup_queries_left > 0) --st.startup_queries_left;
  send_query(iface, Address(), config_.query_response_interval);
  schedule_next_query(st);
}

void MldRouter::send_group_specific_query(IfaceId iface, const Address& group,
                                          int remaining) {
  if (remaining <= 0) return;
  // Only keep querying while the listener entry is still pending deletion.
  if (!listeners_.contains({iface, group})) return;
  send_query(iface, group, config_.last_listener_query_interval);
  stack_->scheduler().schedule_in(
      config_.last_listener_query_interval,
      [this, iface, group, remaining] {
        send_group_specific_query(iface, group, remaining - 1);
      });
}

void MldRouter::send_query(IfaceId iface, const Address& group,
                           Time max_resp) {
  MldMessage q;
  q.type = MldType::kQuery;
  q.max_response_delay_ms =
      static_cast<std::uint16_t>(max_resp.to_millis());
  q.group = group;
  DatagramSpec spec;
  spec.src = stack_->link_local_address(iface);
  spec.dst = group.is_unspecified() ? Address::all_nodes() : group;
  spec.hop_limit = 1;
  spec.protocol = proto::kIcmpv6;
  spec.payload = q.to_icmpv6().serialize(spec.src, spec.dst);
  stack_->send_on_iface(iface, spec);
  count("mld/tx/query");
  trace_event("tx-query", [&] {
    return "iface=" + std::to_string(iface) +
           (group.is_unspecified() ? std::string(" general")
                                   : " group=" + group.str());
  });
  stack_->network().counters().add("mld/tx-bytes",
                                   MldMessage::kDatagramSize);
}

void MldRouter::on_message(const MldMessage& msg, const ParsedDatagram& d,
                           IfaceId iface) {
  if (!ifaces_.contains(iface)) return;  // MLD not enabled here
  switch (msg.type) {
    case MldType::kQuery:
      on_query(msg, d, iface);
      break;
    case MldType::kReport:
      on_report(msg, iface);
      break;
    case MldType::kDone:
      on_done(msg, iface);
      break;
  }
}

void MldRouter::on_query(const MldMessage& msg, const ParsedDatagram& d,
                         IfaceId iface) {
  (void)msg;
  // Querier election: lowest source address wins (RFC 2710 §5).
  IfaceState& st = state(iface);
  Address mine = stack_->link_local_address(iface);
  if (d.hdr.src < mine) {
    if (st.querier) {
      count("mld/querier-resigned");
      trace_event("querier-resigned", [&] {
        return "iface=" + std::to_string(iface) + " to=" + d.hdr.src.str();
      });
    }
    st.querier = false;
    st.query_timer->cancel();
    st.other_querier_timer->arm(config_.other_querier_present_interval());
  }
}

void MldRouter::on_report(const MldMessage& msg, IfaceId iface) {
  count("mld/rx/report");
  auto key = std::make_pair(iface, msg.group);
  auto it = listeners_.find(key);
  if (it == listeners_.end()) {
    ListenerState st;
    st.timer = std::make_unique<Timer>(
        stack_->scheduler(),
        [this, iface, group = msg.group] { expire_listener(iface, group); }, stack_->node().domain());
    st.timer->arm(config_.multicast_listener_interval());
    listeners_.emplace(key, std::move(st));
    count("mld/listener-added");
    trace_event("listener-added", [&] {
      return "iface=" + std::to_string(iface) + " group=" + msg.group.str();
    });
    note_churn(iface);
    if (group_cb_) group_cb_(iface, msg.group, true);
  } else {
    it->second.timer->arm(config_.multicast_listener_interval());
  }
}

void MldRouter::on_done(const MldMessage& msg, IfaceId iface) {
  count("mld/rx/done");
  trace_event("rx-done", [&] {
    return "iface=" + std::to_string(iface) + " group=" + msg.group.str();
  });
  auto key = std::make_pair(iface, msg.group);
  auto it = listeners_.find(key);
  if (it == listeners_.end()) return;
  IfaceState& st = state(iface);
  if (!st.querier) return;  // non-queriers leave Done handling to the querier
  // Shorten the listener timer to LLQI * count and probe for remaining
  // listeners with group-specific queries.
  it->second.timer->arm(config_.last_listener_query_interval *
                        config_.last_listener_query_count);
  send_group_specific_query(iface, msg.group,
                            config_.last_listener_query_count);
}

void MldRouter::inject_proxy_report(IfaceId iface, const Address& group) {
  if (!ifaces_.contains(iface)) return;  // MLD not enabled here
  count("mld/proxy-report");
  // Local state first: same path as a received Report (creates/refreshes
  // the T_MLI listener timer and fires the group callback into PIM).
  MldMessage rep;
  rep.type = MldType::kReport;
  rep.group = group;
  on_report(rep, iface);
  // And a real Report on the wire so co-located routers learn it too.
  if (!stack_->has_link_local(iface)) return;
  DatagramSpec spec;
  spec.src = stack_->link_local_address(iface);
  spec.dst = group;
  spec.hop_limit = 1;
  spec.protocol = proto::kIcmpv6;
  spec.payload = rep.to_icmpv6().serialize(spec.src, spec.dst);
  stack_->send_on_iface(iface, spec);
  count("mld/tx/proxy-report");
  stack_->network().counters().add("mld/tx-bytes", MldMessage::kDatagramSize);
}

void MldRouter::retract_proxy_listener(IfaceId iface, const Address& group) {
  if (!listeners_.contains({iface, group})) return;
  count("mld/proxy-retract");
  // Done on the wire: other queriers shorten their timers and probe.
  if (stack_->has_link_local(iface)) {
    MldMessage done;
    done.type = MldType::kDone;
    done.group = group;
    DatagramSpec spec;
    spec.src = stack_->link_local_address(iface);
    spec.dst = Address::all_routers();
    spec.hop_limit = 1;
    spec.protocol = proto::kIcmpv6;
    spec.payload = done.to_icmpv6().serialize(spec.src, spec.dst);
    stack_->send_on_iface(iface, spec);
    count("mld/tx/proxy-done");
    stack_->network().counters().add("mld/tx-bytes",
                                     MldMessage::kDatagramSize);
  }
  // We *know* the proxied listener is gone — drop it now instead of the
  // last-listener query dance (no host will answer for it anyway).
  expire_listener(iface, group);
}

void MldRouter::expire_listener(IfaceId iface, const Address& group) {
  listeners_.erase({iface, group});
  count("mld/listener-expired");
  trace_event("listener-expired", [&] {
    return "iface=" + std::to_string(iface) + " group=" + group.str();
  });
  note_churn(iface);
  if (group_cb_) group_cb_(iface, group, false);
}

void MldRouter::count(std::string_view name) {
  stack_->network().counters().add(name);
}

}  // namespace mip6
