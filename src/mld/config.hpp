// MLD protocol timer configuration (RFC 2710 §7).
//
// The defaults are the RFC values the paper quotes: Query Interval 125 s,
// Maximum Response Delay 10 s, Multicast Listener Interval
// 2*125 + 10 = 260 s. Section 4.4 of the paper proposes shrinking the Query
// Interval for mobile receivers — the TMR44 bench sweeps exactly this
// structure.
#pragma once

#include "sim/time.hpp"

namespace mip6 {

struct MldConfig {
  /// [Robustness Variable]: expected packet-loss tolerance.
  int robustness = 2;
  /// [Query Interval] between General Queries from the querier.
  Time query_interval = Time::sec(125);
  /// [Query Response Interval] = Maximum Response Delay in General Queries.
  Time query_response_interval = Time::sec(10);
  /// [Last Listener Query Interval] = Max Response Delay in group-specific
  /// queries sent in response to a Done.
  Time last_listener_query_interval = Time::sec(1);
  /// [Last Listener Query Count].
  int last_listener_query_count = 2;
  /// [Startup Query Interval] between the querier's first queries.
  Time startup_query_interval = Time::sec(125 / 4);
  /// [Startup Query Count].
  int startup_query_count = 2;
  /// [Unsolicited Report Interval] between a joining host's first reports.
  Time unsolicited_report_interval = Time::sec(10);
  /// Number of initial unsolicited reports a joining host transmits.
  int unsolicited_report_count = 2;

  /// Adaptive querier (extension beyond RFC 2710 / the paper): Section 4.4
  /// asks administrators to lower T_Query on links visited by mobile
  /// hosts. With this enabled the querier tunes itself — when listener
  /// churn (adds + expiries) within `adaptive_window` reaches
  /// `adaptive_churn_threshold`, queries are sent every
  /// `adaptive_min_interval`; when the link goes quiet the interval decays
  /// back to `query_interval`.
  bool adaptive_querier = false;
  Time adaptive_min_interval = Time::sec(10);
  Time adaptive_window = Time::sec(250);
  int adaptive_churn_threshold = 2;

  /// [Multicast Listener Interval]: listener state lifetime without reports.
  Time multicast_listener_interval() const {
    return robustness * query_interval + query_response_interval;
  }
  /// [Other Querier Present Interval].
  Time other_querier_present_interval() const {
    return robustness * query_interval +
           Time::ns(query_response_interval.nanos() / 2);
  }

  /// The paper's Section 4.4 tuning: a smaller Query Interval (bounded below
  /// by the Maximum Response Delay, as footnote 5 requires).
  static MldConfig with_query_interval(Time tq) {
    MldConfig c;
    if (tq < c.query_response_interval) {
      tq = c.query_response_interval;
    }
    c.query_interval = tq;
    c.startup_query_interval = Time::ns(tq.nanos() / 4);
    return c;
  }
};

}  // namespace mip6
