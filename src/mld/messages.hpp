// MLD message wire format (RFC 2710 §3): all three message types share one
// 24-octet ICMPv6 body layout.
//
//    | Maximum Response Delay (16) | Reserved (16) | Multicast Address (128)|
#pragma once

#include <cstdint>

#include "ipv6/address.hpp"
#include "ipv6/icmpv6.hpp"

namespace mip6 {

enum class MldType : std::uint8_t {
  kQuery = icmpv6::kMldQuery,    // 130
  kReport = icmpv6::kMldReport,  // 131
  kDone = icmpv6::kMldDone,      // 132
};

struct MldMessage {
  MldType type = MldType::kQuery;
  /// Milliseconds; only meaningful in Queries.
  std::uint16_t max_response_delay_ms = 0;
  /// Unspecified ("::") in a General Query.
  Address group;

  /// True for a General Query (group is unspecified).
  bool is_general_query() const {
    return type == MldType::kQuery && group.is_unspecified();
  }

  Icmpv6Message to_icmpv6() const;
  /// No-throw parse from an ICMPv6 message of type 130-132.
  static ParseResult<MldMessage> try_from_icmpv6(const Icmpv6Message& msg);
  /// Throwing wrapper over try_from_icmpv6 for legacy call sites.
  static MldMessage from_icmpv6(const Icmpv6Message& msg);

  /// Wire size of the full IPv6 datagram carrying an MLD message (fixed
  /// header + ICMPv6 header + body); used for overhead accounting.
  static constexpr std::size_t kDatagramSize = 40 + 4 + 20;
};

}  // namespace mip6
