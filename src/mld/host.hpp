// MLD host side (RFC 2710 §4, host behaviour): joining sends unsolicited
// Reports (configurably — the paper compares "wait for next Query" against
// the unsolicited-Report recommendation for mobile hosts), Queries start a
// random delay timer per joined group, hearing another member's Report
// suppresses the pending one, leaving sends Done if we were the last
// reporter.
//
// flush_on_detach(): a mobile receiver leaving a link sends nothing (the
// paper: "mobile hosts cannot use the Done message when they leave a link")
// — the router only notices via the listener timeout. rejoin(): what the
// mobile receiver does after attaching elsewhere.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "ipv6/icmpv6_dispatch.hpp"
#include "ipv6/stack.hpp"
#include "mld/config.hpp"
#include "mld/messages.hpp"
#include "net/protocol_module.hpp"
#include "sim/timer.hpp"

namespace mip6 {

struct MldHostPolicy {
  /// Send unsolicited Reports when joining / after moving to a new link.
  /// RFC behaviour is true; the paper's "wait for the next Query" baseline
  /// is false.
  bool unsolicited_reports = true;
  /// Send Done on an explicit leave() (not on detach).
  bool send_done_on_leave = true;
};

class MldHost : public ProtocolModule {
 public:
  MldHost(Ipv6Stack& stack, Icmpv6Dispatcher& dispatch, MldConfig config,
          MldHostPolicy policy = {});

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "mld-host"; }
  /// Crash semantics: shutdown() — the application re-joins after restart.
  void reset() override { shutdown(); }
  /// Teardown: shutdown() plus unsubscribing from the ICMPv6 dispatcher.
  void stop() override;

  /// Application-level join: installs the receive filter and (per policy)
  /// transmits unsolicited Reports.
  void join(IfaceId iface, const Address& group);
  /// Application-level leave: removes the filter, sends Done per policy.
  void leave(IfaceId iface, const Address& group);
  bool joined(IfaceId iface, const Address& group) const;

  /// Re-announces all joined groups (unsolicited Reports per policy);
  /// called by mobility logic after attaching to a new link.
  void announce_all(IfaceId iface);

  /// Cancels pending response timers (link went away). Group membership is
  /// kept — the application is still subscribed; it just has no link.
  void cancel_pending(IfaceId iface);

  /// cancel_pending() plus forgetting last-reporter status: after a silent
  /// link change the old link's suppression state must not leak onto the
  /// new link (a spurious Done there would be wrong).
  void reset_link_state(IfaceId iface);

  /// Crash support: forgets every joined group and cancels all timers (the
  /// receive filters in the stack are left to the caller). The application
  /// re-joins after restart.
  void shutdown();

  const MldHostPolicy& policy() const { return policy_; }
  void set_policy(MldHostPolicy p) { policy_ = p; }

 private:
  struct GroupState {
    std::unique_ptr<Timer> response_timer;
    bool we_were_last_reporter = false;
    int pending_unsolicited = 0;
  };

  void on_message(const MldMessage& msg, const ParsedDatagram& d,
                  IfaceId iface);
  void send_report(IfaceId iface, const Address& group);
  void send_done(IfaceId iface, const Address& group);
  void start_unsolicited(IfaceId iface, const Address& group);
  void count(std::string_view name);

  Ipv6Stack* stack_;
  Icmpv6Dispatcher* dispatch_;
  std::vector<std::pair<std::uint8_t, std::size_t>> subs_;  // for stop()
  MldConfig config_;
  MldHostPolicy policy_;
  std::map<std::pair<IfaceId, Address>, GroupState> groups_;
};

}  // namespace mip6
