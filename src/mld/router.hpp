// MLD router side (RFC 2710 §4): querier election, per-(interface, group)
// listener state with the Multicast Listener Interval timer, Done handling
// via Last-Listener Queries, and change notifications into the multicast
// routing protocol (PIM-DM subscribes).
//
// This component is the origin of the paper's join/leave delays: a stale
// listener entry persists up to T_MLI = 260 s after a mobile receiver left
// the link (leave delay), and a new listener is only learned when a Report
// arrives (join delay, bounded by the Query Interval when the host waits
// for a Query).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ipv6/icmpv6_dispatch.hpp"
#include "ipv6/stack.hpp"
#include "mld/config.hpp"
#include "mld/messages.hpp"
#include "net/protocol_module.hpp"
#include "sim/timer.hpp"

namespace mip6 {

class MldRouter : public ProtocolModule {
 public:
  /// `present` true when the first listener for (iface, group) appears,
  /// false when the last one times out / leaves.
  using GroupCallback =
      std::function<void(IfaceId, const Address& group, bool present)>;

  MldRouter(Ipv6Stack& stack, Icmpv6Dispatcher& dispatch, MldConfig config);

  // --- ProtocolModule ----------------------------------------------------
  const char* module_kind() const override { return "mld"; }
  /// Re-enables MLD on every configured interface that is currently
  /// attached (cold boot after a restart).
  void start() override;
  /// Crash semantics: shutdown(), keeping the configured-interface set so
  /// start() can bring the protocol back up.
  void reset() override { shutdown(); }
  /// Teardown: shutdown() plus unsubscribing from the ICMPv6 dispatcher.
  void stop() override;

  /// Enables MLD on a router interface and starts querier duty (startup
  /// queries, then periodic general queries). Remembers the interface for
  /// start() after a crash/restart cycle.
  void enable_iface(IfaceId iface);

  /// Crash support: forgets all listener state and querier duty on every
  /// interface (timers cancelled). Listener-removal callbacks are NOT
  /// invoked — the multicast routing protocol is wiped alongside.
  void shutdown();
  /// The interfaces MLD is currently enabled on (for restart wiring).
  std::vector<IfaceId> enabled_ifaces() const;

  void set_group_callback(GroupCallback cb) { group_cb_ = std::move(cb); }

  /// Proxy-originated membership (mcast-mobility): installs / refreshes
  /// listener state for `group` on `iface` as if a Report had been received
  /// there, and places a real Report on the wire so co-located queriers
  /// learn it too. The state ages out at T_MLI like any listener — the
  /// injecting agent refreshes it.
  void inject_proxy_report(IfaceId iface, const Address& group);
  /// Withdraws proxy-originated membership: emits an MLD Done on the wire
  /// (other queriers run last-listener queries) and drops the listener
  /// entry immediately.
  void retract_proxy_listener(IfaceId iface, const Address& group);

  bool is_querier(IfaceId iface) const;
  bool has_listeners(IfaceId iface, const Address& group) const;
  /// The general-query interval currently in effect on `iface` (differs
  /// from the configured one when the adaptive querier reacted to churn).
  Time effective_query_interval(IfaceId iface) const;
  std::vector<Address> groups_on(IfaceId iface) const;
  const MldConfig& config() const { return config_; }

 private:
  struct IfaceState {
    IfaceId iface;
    bool querier = true;
    int startup_queries_left = 0;
    std::unique_ptr<Timer> query_timer;          // next general query
    std::unique_ptr<Timer> other_querier_timer;  // present-interval
    /// Listener add/expire timestamps (adaptive querier churn window).
    std::vector<Time> churn_events;
  };
  struct ListenerState {
    std::unique_ptr<Timer> timer;  // multicast listener interval
  };

  void on_message(const MldMessage& msg, const ParsedDatagram& d,
                  IfaceId iface);
  void on_query(const MldMessage& msg, const ParsedDatagram& d,
                IfaceId iface);
  void on_report(const MldMessage& msg, IfaceId iface);
  void on_done(const MldMessage& msg, IfaceId iface);
  void send_general_query(IfaceId iface);
  void send_group_specific_query(IfaceId iface, const Address& group,
                                 int remaining);
  void send_query(IfaceId iface, const Address& group, Time max_resp);
  void schedule_next_query(IfaceState& st);
  void expire_listener(IfaceId iface, const Address& group);
  void note_churn(IfaceId iface);
  IfaceState& state(IfaceId iface);
  void count(std::string_view name);
  /// Lazy protocol-event trace; `detail_fn` only runs when a sink is
  /// installed, so this is free in benches.
  template <typename DetailFn>
  void trace_event(const char* event, DetailFn&& detail_fn) const {
    stack_->network().trace().emit(stack_->network().now(), component_, event,
                                   std::forward<DetailFn>(detail_fn));
  }

  Ipv6Stack* stack_;
  Icmpv6Dispatcher* dispatch_;
  std::vector<std::pair<std::uint8_t, std::size_t>> subs_;  // for stop()
  std::string component_;  // "mld/<node>", cached for trace records
  MldConfig config_;
  GroupCallback group_cb_;
  /// Every interface enable_iface() was ever called for — the set start()
  /// re-enables after a node restart (intersected with attached ifaces).
  std::set<IfaceId> configured_;
  std::map<IfaceId, IfaceState> ifaces_;
  std::map<std::pair<IfaceId, Address>, ListenerState> listeners_;
};

}  // namespace mip6
