#include "mld/messages.hpp"

namespace mip6 {

Icmpv6Message MldMessage::to_icmpv6() const {
  BufferWriter w(20);
  w.u16(max_response_delay_ms);
  w.u16(0);  // reserved
  group.write(w);
  Icmpv6Message m;
  m.type = static_cast<std::uint8_t>(type);
  m.code = 0;
  m.body = std::move(w).take();
  return m;
}

ParseResult<MldMessage> MldMessage::try_from_icmpv6(const Icmpv6Message& msg) {
  if (msg.type != icmpv6::kMldQuery && msg.type != icmpv6::kMldReport &&
      msg.type != icmpv6::kMldDone) {
    return ParseFailure{ParseReason::kBadType, "not an MLD message type"};
  }
  WireCursor c(msg.body);
  MldMessage m;
  m.type = static_cast<MldType>(msg.type);
  m.max_response_delay_ms = c.u16();
  c.skip(2);  // reserved
  m.group = Address::read(c);
  if (c.failed()) {
    return ParseFailure{ParseReason::kTruncated, "MLD message body"};
  }
  if (!c.empty()) {
    return ParseFailure{ParseReason::kOverlength,
                        "trailing octets after MLD message"};
  }
  if (m.type != MldType::kQuery && m.group.is_unspecified()) {
    return ParseFailure{ParseReason::kSemantic,
                        "MLD report/done without group address"};
  }
  if (!m.group.is_unspecified() && !m.group.is_multicast()) {
    return ParseFailure{ParseReason::kSemantic,
                        "MLD group address is not multicast"};
  }
  return m;
}

MldMessage MldMessage::from_icmpv6(const Icmpv6Message& msg) {
  return try_from_icmpv6(msg).take_or_throw();
}

}  // namespace mip6
