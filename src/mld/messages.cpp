#include "mld/messages.hpp"

namespace mip6 {

Icmpv6Message MldMessage::to_icmpv6() const {
  BufferWriter w(20);
  w.u16(max_response_delay_ms);
  w.u16(0);  // reserved
  group.write(w);
  Icmpv6Message m;
  m.type = static_cast<std::uint8_t>(type);
  m.code = 0;
  m.body = std::move(w).take();
  return m;
}

MldMessage MldMessage::from_icmpv6(const Icmpv6Message& msg) {
  if (msg.type != icmpv6::kMldQuery && msg.type != icmpv6::kMldReport &&
      msg.type != icmpv6::kMldDone) {
    throw ParseError("not an MLD message type: " + std::to_string(msg.type));
  }
  BufferReader r(msg.body);
  MldMessage m;
  m.type = static_cast<MldType>(msg.type);
  m.max_response_delay_ms = r.u16();
  r.skip(2);  // reserved
  m.group = Address::read(r);
  r.expect_end("MLD message");
  if (m.type != MldType::kQuery && m.group.is_unspecified()) {
    throw ParseError("MLD report/done without group address");
  }
  return m;
}

}  // namespace mip6
