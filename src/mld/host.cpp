#include "mld/host.hpp"

#include "net/wire_stats.hpp"

namespace mip6 {

MldHost::MldHost(Ipv6Stack& stack, Icmpv6Dispatcher& dispatch,
                 MldConfig config, MldHostPolicy policy)
    : stack_(&stack), dispatch_(&dispatch), config_(config), policy_(policy) {
  auto handler = [this](const Icmpv6Message& msg, const ParsedDatagram& d,
                        IfaceId iface) {
    ParseResult<MldMessage> m = MldMessage::try_from_icmpv6(msg);
    if (!m.ok()) {
      count("mld/rx-drop/parse-error");
      note_parse_reject(stack_->network(), "mld", m.failure());
      return;
    }
    on_message(m.value(), d, iface);
  };
  subs_.emplace_back(icmpv6::kMldQuery,
                     dispatch.subscribe(icmpv6::kMldQuery, handler));
  subs_.emplace_back(icmpv6::kMldReport,
                     dispatch.subscribe(icmpv6::kMldReport, handler));
}

void MldHost::stop() {
  shutdown();
  for (auto [type, token] : subs_) dispatch_->unsubscribe(type, token);
  subs_.clear();
}

void MldHost::join(IfaceId iface, const Address& group) {
  if (!group.is_multicast()) {
    throw LogicError("MLD join of non-multicast address " + group.str());
  }
  auto key = std::make_pair(iface, group);
  auto [it, fresh] = groups_.try_emplace(key);
  stack_->join_local_group(iface, group);
  if (!fresh) return;
  it->second.response_timer = std::make_unique<Timer>(
      stack_->scheduler(),
      [this, iface, group] { send_report(iface, group); }, stack_->node().domain());
  if (policy_.unsolicited_reports) start_unsolicited(iface, group);
}

void MldHost::leave(IfaceId iface, const Address& group) {
  auto key = std::make_pair(iface, group);
  auto it = groups_.find(key);
  if (it == groups_.end()) return;
  bool last_reporter = it->second.we_were_last_reporter;
  groups_.erase(it);
  stack_->leave_local_group(iface, group);
  if (policy_.send_done_on_leave && last_reporter) {
    send_done(iface, group);
  }
}

bool MldHost::joined(IfaceId iface, const Address& group) const {
  return groups_.contains({iface, group});
}

void MldHost::announce_all(IfaceId iface) {
  for (auto& [key, st] : groups_) {
    if (key.first != iface) continue;
    if (policy_.unsolicited_reports) {
      start_unsolicited(iface, key.second);
    }
  }
}

void MldHost::cancel_pending(IfaceId iface) {
  for (auto& [key, st] : groups_) {
    if (key.first != iface) continue;
    st.response_timer->cancel();
    st.pending_unsolicited = 0;
  }
}

void MldHost::reset_link_state(IfaceId iface) {
  for (auto& [key, st] : groups_) {
    if (key.first != iface) continue;
    st.response_timer->cancel();
    st.pending_unsolicited = 0;
    st.we_were_last_reporter = false;
  }
}

void MldHost::shutdown() {
  groups_.clear();  // cancels response timers
  count("mld/host-shutdown");
}

void MldHost::start_unsolicited(IfaceId iface, const Address& group) {
  auto it = groups_.find({iface, group});
  if (it == groups_.end()) return;
  it->second.pending_unsolicited = config_.unsolicited_report_count;
  // First report goes out immediately; repeats are spaced by the
  // Unsolicited Report Interval via the response timer.
  send_report(iface, group);
}

void MldHost::on_message(const MldMessage& msg, const ParsedDatagram& d,
                         IfaceId iface) {
  if (msg.type == MldType::kQuery) {
    Time max_resp = Time::ms(msg.max_response_delay_ms);
    for (auto& [key, st] : groups_) {
      if (key.first != iface) continue;
      if (!msg.is_general_query() && !(msg.group == key.second)) continue;
      // RFC 2710 §4: random delay in [0, Maximum Response Delay]; re-arm
      // only if the new value is earlier than a pending one.
      Time delay = Time::ns(static_cast<std::int64_t>(
          stack_->network().rng().uniform() *
          static_cast<double>(max_resp.nanos())));
      st.response_timer->arm_to_earlier(delay);
    }
    return;
  }
  if (msg.type == MldType::kReport) {
    // Suppression: someone else reported this group on this link.
    if (stack_->has_link_local(iface) &&
        d.hdr.src == stack_->link_local_address(iface)) {
      return;
    }
    auto it = groups_.find({iface, msg.group});
    if (it == groups_.end()) return;
    if (it->second.response_timer->running()) {
      it->second.response_timer->cancel();
      count("mld/report-suppressed");
    }
    it->second.we_were_last_reporter = false;
    it->second.pending_unsolicited = 0;
  }
}

void MldHost::send_report(IfaceId iface, const Address& group) {
  auto it = groups_.find({iface, group});
  if (it == groups_.end()) return;
  if (!stack_->has_link_local(iface)) {
    count("mld/tx-skip/no-address");
    return;
  }
  MldMessage rep;
  rep.type = MldType::kReport;
  rep.group = group;
  DatagramSpec spec;
  spec.src = stack_->link_local_address(iface);
  spec.dst = group;  // Reports go to the group itself (RFC 2710 §5)
  spec.hop_limit = 1;
  spec.protocol = proto::kIcmpv6;
  spec.payload = rep.to_icmpv6().serialize(spec.src, spec.dst);
  stack_->send_on_iface(iface, spec);
  count("mld/tx/report");
  stack_->network().counters().add("mld/tx-bytes",
                                   MldMessage::kDatagramSize);
  it->second.we_were_last_reporter = true;
  if (it->second.pending_unsolicited > 0) {
    --it->second.pending_unsolicited;
    if (it->second.pending_unsolicited > 0) {
      it->second.response_timer->arm(config_.unsolicited_report_interval);
    }
  }
}

void MldHost::send_done(IfaceId iface, const Address& group) {
  if (!stack_->has_link_local(iface)) {
    count("mld/tx-skip/no-address");
    return;
  }
  MldMessage done;
  done.type = MldType::kDone;
  done.group = group;
  DatagramSpec spec;
  spec.src = stack_->link_local_address(iface);
  spec.dst = Address::all_routers();
  spec.hop_limit = 1;
  spec.protocol = proto::kIcmpv6;
  spec.payload = done.to_icmpv6().serialize(spec.src, spec.dst);
  stack_->send_on_iface(iface, spec);
  count("mld/tx/done");
  stack_->network().counters().add("mld/tx-bytes",
                                   MldMessage::kDatagramSize);
}

void MldHost::count(std::string_view name) {
  stack_->network().counters().add(name);
}

}  // namespace mip6
