// Unit coverage for the MFC primitives (net/mfc.hpp): bitmap semantics,
// dense index assignment with renumbering, and the epoch-invalidated flow
// cache. The engine-level invalidation rules are covered separately by
// tests/integration/mfc_invalidation_test.cpp.
#include "net/mfc.hpp"

#include <bit>
#include <vector>

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace mip6 {
namespace {

TEST(IfSetTest, SetClearTestCount) {
  IfSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);

  s.set(0);
  s.set(63);
  s.set(64);   // word boundary
  s.set(255);  // last representable bit
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(255));
  EXPECT_FALSE(s.test(1));
  EXPECT_FALSE(s.test(128));

  s.clear(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_EQ(s.count(), 3u);

  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(IfSetTest, WordIterationVisitsBitsInAscendingOrder) {
  IfSet s;
  std::vector<Mifi> expect = {3, 64, 65, 200, 255};
  for (Mifi m : expect) s.set(m);

  std::vector<Mifi> seen;
  for (std::size_t w = 0; w < IfSet::kWords; ++w) {
    std::uint64_t bits = s.word(w);
    while (bits != 0) {
      int b = std::countr_zero(bits);
      bits &= bits - 1;
      seen.push_back(static_cast<Mifi>(w * 64 + static_cast<std::size_t>(b)));
    }
  }
  EXPECT_EQ(seen, expect);
}

TEST(MifTableTest, AssignsSortedDenseIndices) {
  MifTable t;
  EXPECT_EQ(t.lookup(7), kNoMif);

  // Out-of-order registration still yields ascending-IfaceId numbering.
  EXPECT_EQ(t.add(7), 0u);
  EXPECT_EQ(t.add(3), 0u);  // inserted before 7: renumbers it
  EXPECT_EQ(t.add(5), 1u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.lookup(3), 0u);
  EXPECT_EQ(t.lookup(5), 1u);
  EXPECT_EQ(t.lookup(7), 2u);
  EXPECT_EQ(t.iface(0), 3u);
  EXPECT_EQ(t.iface(1), 5u);
  EXPECT_EQ(t.iface(2), 7u);
}

TEST(MifTableTest, AddIsIdempotentAndVersionTracksInsertions) {
  MifTable t;
  std::uint64_t v0 = t.version();
  t.add(4);
  EXPECT_GT(t.version(), v0);
  std::uint64_t v1 = t.version();
  EXPECT_EQ(t.add(4), t.lookup(4));
  EXPECT_EQ(t.version(), v1);  // re-registering changes nothing
  t.add(2);
  EXPECT_GT(t.version(), v1);
}

TEST(MifTableTest, WidthOverflowFailsFast) {
  MifTable t(2);
  t.add(10);
  t.add(20);
  EXPECT_THROW(t.add(30), LogicError);
  // The table is untouched by the failed add.
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.lookup(30), kNoMif);
}

FlowKey key(std::uint64_t a, std::uint64_t b = 0) {
  return FlowKey{{a, b, a ^ 0x5a5a, b + 1}};
}

TEST(FlowCacheTest, InsertFindRoundTrip) {
  FlowCache c;
  EXPECT_EQ(c.find(key(1)), nullptr);

  MfcEntry& e = c.insert(key(1));
  e.iif = 9;
  e.oif_count = 2;
  e.oifs.set(3);
  e.oifs.set(11);

  MfcEntry* got = c.find(key(1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->iif, 9u);
  EXPECT_EQ(got->oif_count, 2u);
  EXPECT_TRUE(got->oifs.test(3));
  EXPECT_EQ(c.find(key(2)), nullptr);
}

TEST(FlowCacheTest, TargetedInvalidateHidesOneEntry) {
  FlowCache c;
  c.insert(key(1));
  c.insert(key(2));
  c.invalidate(key(1));
  EXPECT_EQ(c.find(key(1)), nullptr);
  EXPECT_NE(c.find(key(2)), nullptr);
  // Invalidating an absent key is a no-op, not an insertion.
  std::size_t sz = c.size();
  c.invalidate(key(99));
  EXPECT_EQ(c.size(), sz);

  // Re-insert resurrects the same slot as fresh.
  c.insert(key(1)).iif = 42;
  ASSERT_NE(c.find(key(1)), nullptr);
  EXPECT_EQ(c.find(key(1))->iif, 42u);
}

TEST(FlowCacheTest, InvalidateAllHidesEverything) {
  FlowCache c;
  c.insert(key(1));
  c.insert(key(2));
  c.invalidate_all();
  EXPECT_EQ(c.find(key(1)), nullptr);
  EXPECT_EQ(c.find(key(2)), nullptr);
  // Slots survive (epoch invalidation, not erasure) …
  EXPECT_EQ(c.size(), 2u);
  // … and refresh on the next insert.
  c.insert(key(2));
  EXPECT_NE(c.find(key(2)), nullptr);
  EXPECT_EQ(c.find(key(1)), nullptr);
}

TEST(FlowCacheTest, ClearDropsSlots) {
  FlowCache c;
  c.insert(key(1));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.find(key(1)), nullptr);
}

TEST(FlowCacheTest, GrowthPreservesFreshAndStaleStates) {
  FlowCache c(4);
  // Enough keys to force several growth rounds through the 70% load
  // factor, with every third entry invalidated along the way.
  for (std::uint64_t i = 0; i < 200; ++i) {
    c.insert(key(i)).iif = static_cast<IfaceId>(i);
    if (i % 3 == 0) c.invalidate(key(i));
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    MfcEntry* e = c.find(key(i));
    if (i % 3 == 0) {
      EXPECT_EQ(e, nullptr) << i;
    } else {
      ASSERT_NE(e, nullptr) << i;
      EXPECT_EQ(e->iif, static_cast<IfaceId>(i));
    }
  }
}

TEST(FlowCacheTest, StaleEntriesAreNeverReturned) {
  FlowCache c;
  for (int round = 0; round < 5; ++round) {
    c.insert(key(7)).oif_count = static_cast<std::uint16_t>(round);
    ASSERT_NE(c.find(key(7)), nullptr);
    c.invalidate_all();
    EXPECT_EQ(c.find(key(7)), nullptr);
  }
}

TEST(ShardedFlowCacheTest, SubTablesAreIsolatedByRpfMifi) {
  ShardedFlowCache c;
  // Same key inserted under two RPF interfaces lands in two sub-tables.
  c.insert(key(1), /*rpf=*/0).iif = 10;
  c.insert(key(1), /*rpf=*/3).iif = 30;
  ASSERT_NE(c.find(key(1), 0), nullptr);
  ASSERT_NE(c.find(key(1), 3), nullptr);
  EXPECT_EQ(c.find(key(1), 0)->iif, 10u);
  EXPECT_EQ(c.find(key(1), 3)->iif, 30u);
  // A never-used mifi (in range or past the bank) has no entries.
  EXPECT_EQ(c.find(key(1), 1), nullptr);
  EXPECT_EQ(c.find(key(1), 200), nullptr);
  EXPECT_EQ(c.shard_count(), 4u);
  EXPECT_EQ(c.shard_size(0), 1u);
  EXPECT_EQ(c.shard_size(1), 0u);
  EXPECT_EQ(c.shard_size(3), 1u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(ShardedFlowCacheTest, InvalidateByKeySweepsEverySubTable) {
  ShardedFlowCache c;
  // An (S,G) whose RPF interface moved leaves a slot in the old shard;
  // key invalidation must hide both.
  c.insert(key(5), 0);
  c.insert(key(5), 2);
  c.insert(key(6), 2);
  c.invalidate(key(5));
  EXPECT_EQ(c.find(key(5), 0), nullptr);
  EXPECT_EQ(c.find(key(5), 2), nullptr);
  EXPECT_NE(c.find(key(6), 2), nullptr);

  c.invalidate_all();
  EXPECT_EQ(c.find(key(6), 2), nullptr);
  // Epoch invalidation, not erasure: occupied slots survive.
  EXPECT_EQ(c.size(), 3u);

  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.shard_count(), 0u);
}

TEST(ShardedFlowCacheTest, ShardsGrowIndependently) {
  ShardedFlowCache c(4);
  // Load one sub-table through several growth rounds while its neighbor
  // keeps a single entry: growth in one must not disturb the other.
  c.insert(key(9999), 1).iif = 7;
  for (std::uint64_t i = 0; i < 200; ++i) {
    c.insert(key(i), 0).iif = static_cast<IfaceId>(i);
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    MfcEntry* e = c.find(key(i), 0);
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->iif, static_cast<IfaceId>(i));
  }
  ASSERT_NE(c.find(key(9999), 1), nullptr);
  EXPECT_EQ(c.find(key(9999), 1)->iif, 7u);
  EXPECT_EQ(c.shard_size(1), 1u);
}

}  // namespace
}  // namespace mip6
