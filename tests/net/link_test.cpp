#include "net/link.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace mip6 {
namespace {

struct Fixture {
  Network net{1};
  Link& lan;
  Node& n1;
  Node& n2;
  Node& n3;
  Interface& i1;
  Interface& i2;
  Interface& i3;
  std::vector<std::uint64_t> rx1, rx2, rx3;

  Fixture()
      : lan(net.add_link("lan", Time::ms(1))),
        n1(net.add_node("n1")), n2(net.add_node("n2")), n3(net.add_node("n3")),
        i1(n1.add_interface()), i2(n2.add_interface()),
        i3(n3.add_interface()) {
    i1.attach(lan);
    i2.attach(lan);
    i3.attach(lan);
    i1.set_rx_handler([this](const Packet& p) { rx1.push_back(p.uid()); });
    i2.set_rx_handler([this](const Packet& p) { rx2.push_back(p.uid()); });
    i3.set_rx_handler([this](const Packet& p) { rx3.push_back(p.uid()); });
  }

  Packet packet(std::size_t size = 10) { return net.make_packet(Bytes(size)); }
};

TEST(Link, BroadcastReachesAllButSender) {
  Fixture f;
  f.i1.send(f.packet());
  f.net.scheduler().run();
  EXPECT_TRUE(f.rx1.empty());
  EXPECT_EQ(f.rx2.size(), 1u);
  EXPECT_EQ(f.rx3.size(), 1u);
}

TEST(Link, UnicastReachesOnlyTarget) {
  Fixture f;
  f.i1.send_to(f.packet(), f.i3.id());
  f.net.scheduler().run();
  EXPECT_TRUE(f.rx1.empty());
  EXPECT_TRUE(f.rx2.empty());
  EXPECT_EQ(f.rx3.size(), 1u);
}

TEST(Link, DeliveryDelayedByPropagation) {
  Fixture f;
  f.i1.send(f.packet());
  f.net.scheduler().run_until(Time::us(999));
  EXPECT_TRUE(f.rx2.empty());
  f.net.scheduler().run_until(Time::ms(1));
  EXPECT_EQ(f.rx2.size(), 1u);
}

TEST(Link, SerializationDelayFromBitRate) {
  Network net(1);
  // 1 Mbit/s, zero propagation: 1000-byte packet = 8 ms on the wire.
  Link& lan = net.add_link("lan", Time::zero(), 1'000'000);
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Interface& ia = a.add_interface();
  Interface& ib = b.add_interface();
  ia.attach(lan);
  ib.attach(lan);
  Time arrival = Time::never();
  ib.set_rx_handler([&](const Packet&) { arrival = net.now(); });
  ia.send(net.make_packet(Bytes(1000)));
  net.scheduler().run();
  EXPECT_EQ(arrival, Time::ms(8));
}

TEST(Link, ReceiverThatLeftMidFlightMissesPacket) {
  Fixture f;
  f.i1.send(f.packet());
  // i2 detaches before the 1 ms delivery.
  f.i2.detach();
  f.net.scheduler().run();
  EXPECT_TRUE(f.rx2.empty());
  EXPECT_EQ(f.rx3.size(), 1u);
}

TEST(Link, SendWhileDetachedIsDropped) {
  Fixture f;
  f.i1.detach();
  f.i1.send(f.packet());
  f.net.scheduler().run();
  EXPECT_TRUE(f.rx2.empty());
  EXPECT_TRUE(f.rx3.empty());
}

TEST(Link, ByteAndPacketCountersAccumulate) {
  Fixture f;
  f.i1.send(f.packet(100));
  f.i2.send(f.packet(50));
  f.net.scheduler().run();
  EXPECT_EQ(f.lan.tx_packets(), 2u);
  EXPECT_EQ(f.lan.tx_bytes(), 150u);
}

TEST(Link, DropFunctionInjectsLoss) {
  Fixture f;
  f.lan.set_drop_fn([&](const Packet&, const Interface& to) {
    return to.id() == f.i2.id();  // i2 is deaf
  });
  f.i1.send(f.packet());
  f.net.scheduler().run();
  EXPECT_TRUE(f.rx2.empty());
  EXPECT_EQ(f.rx3.size(), 1u);
}

TEST(Link, TxHookObservesTransmissions) {
  Fixture f;
  int hooked = 0;
  f.net.add_tx_hook(
      [&](const Link&, const Interface&, const Packet&) { ++hooked; });
  f.i1.send(f.packet());
  f.i1.send(f.packet());
  EXPECT_EQ(hooked, 2);
}

TEST(Link, ReattachToSameLinkIsNoop) {
  Fixture f;
  f.i1.attach(f.lan);  // already attached: must not duplicate
  EXPECT_EQ(f.lan.attached().size(), 3u);
  f.i1.send(f.packet());
  f.net.scheduler().run();
  EXPECT_EQ(f.rx2.size(), 1u);  // still exactly one delivery
}

TEST(Link, ResolveFindsAnsweringInterface) {
  Fixture f;
  Bytes addr{1, 2, 3};
  f.i2.set_address_filter(
      [&](BytesView a) { return a.size() == 3 && a[0] == 1; });
  Interface* found = f.lan.resolve(addr, &f.i1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id(), f.i2.id());
  // The asker itself is skipped.
  f.i1.set_address_filter([](BytesView) { return true; });
  EXPECT_EQ(f.lan.resolve(addr, &f.i1)->id(), f.i2.id());
  // No answer -> nullptr.
  Bytes other{9};
  EXPECT_EQ(f.lan.resolve(other, &f.i1), nullptr);
}

TEST(Interface, LinkChangeHandlerFires) {
  Network net(1);
  Link& l1 = net.add_link("l1");
  Link& l2 = net.add_link("l2");
  Node& n = net.add_node("n");
  Interface& i = n.add_interface();
  std::vector<Link*> changes;
  i.set_link_change_handler([&](Link* l) { changes.push_back(l); });
  i.attach(l1);
  i.attach(l2);  // implicit detach + attach
  i.detach();
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0], &l1);
  EXPECT_EQ(changes[1], &l2);
  EXPECT_EQ(changes[2], nullptr);
}

}  // namespace
}  // namespace mip6
