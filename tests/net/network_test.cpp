#include "net/network.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace mip6 {
namespace {

TEST(Network, NodesAndLinksByNameAndId) {
  Network net(1);
  Node& a = net.add_node("alpha");
  Node& b = net.add_node("beta");
  Link& l = net.add_link("lan");
  EXPECT_EQ(&net.node(0), &a);
  EXPECT_EQ(&net.node(1), &b);
  EXPECT_EQ(&net.node_by_name("beta"), &b);
  EXPECT_EQ(&net.link_by_name("lan"), &l);
  EXPECT_THROW(net.node_by_name("nope"), LogicError);
  EXPECT_THROW(net.link_by_name("nope"), LogicError);
}

TEST(Network, PacketUidsAreUniqueAndStamped) {
  Network net(1);
  net.scheduler().run_until(Time::sec(3));
  Packet p1 = net.make_packet(Bytes{1});
  Packet p2 = net.make_packet(Bytes{2});
  EXPECT_NE(p1.uid(), p2.uid());
  EXPECT_EQ(p1.created(), Time::sec(3));
  EXPECT_EQ(p1.size(), 1u);
}

TEST(Network, IfaceIdsUniqueAcrossNodes) {
  Network net(1);
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Interface& ia = a.add_interface();
  Interface& ib = b.add_interface();
  Interface& ia2 = a.add_interface();
  EXPECT_NE(ia.id(), ib.id());
  EXPECT_NE(ia.id(), ia2.id());
  EXPECT_EQ(&a.iface_by_id(ia2.id()), &ia2);
  EXPECT_THROW(a.iface_by_id(ib.id()), LogicError);
}

TEST(Node, InterfaceNameIncludesNode) {
  Network net(1);
  Node& a = net.add_node("router");
  Interface& i = a.add_interface();
  EXPECT_EQ(i.name(), "router/if" + std::to_string(i.id()));
}

}  // namespace
}  // namespace mip6
