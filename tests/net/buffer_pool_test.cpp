#include "net/buffer_pool.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace mip6 {
namespace {

TEST(BufferPool, ReusesSlotOnceAllReferencesDrop) {
  BufferPool pool;
  auto a = pool.checkout();
  a->assign({1, 2, 3, 4});
  const Bytes* storage = a.get();
  EXPECT_EQ(pool.fresh(), 1u);

  // Still referenced: checkout must NOT hand the same buffer out again.
  auto b = pool.checkout();
  EXPECT_NE(b.get(), storage);
  EXPECT_EQ(pool.fresh(), 2u);

  a.reset();
  b.reset();
  auto c = pool.checkout();
  EXPECT_TRUE(c->empty());  // recycled buffers come back cleared
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.slots(), 2u);
}

TEST(BufferPool, RecycledBufferKeepsCapacity) {
  BufferPool pool;
  {
    auto a = pool.checkout();
    a->assign(512, 0xab);
  }
  auto b = pool.checkout();
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_TRUE(b->empty());
  EXPECT_GE(b->capacity(), 512u);  // clear() keeps the allocation
}

TEST(BufferPool, LiveBufferIsNeverMutatedByLaterCheckouts) {
  BufferPool pool;
  auto held = pool.checkout_copy(Bytes{9, 9, 9});
  for (int i = 0; i < 100; ++i) {
    auto tmp = pool.checkout_copy(Bytes{1, 2});
  }
  EXPECT_EQ(*held, (Bytes{9, 9, 9}));
}

TEST(BufferPool, FallsBackToPlainAllocationWhenFull) {
  BufferPool pool;
  std::vector<std::shared_ptr<Bytes>> live;
  for (std::size_t i = 0; i < BufferPool::kMaxSlots + 10; ++i) {
    live.push_back(pool.checkout());
  }
  EXPECT_EQ(pool.slots(), BufferPool::kMaxSlots);
  // Every buffer is distinct even past the cap.
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = i + 1; j < live.size(); ++j) {
      ASSERT_NE(live[i].get(), live[j].get());
    }
  }
}

TEST(BufferPool, PacketSharingIsReferenceNotCopy) {
  Network net;
  Packet pkt = net.make_packet(Bytes{1, 2, 3});
  Packet copy = pkt;
  EXPECT_EQ(&pkt.data(), &copy.data());  // same underlying octets
  EXPECT_EQ(copy.uid(), pkt.uid());

  // Replacing one copy's buffer must not disturb the other.
  copy.set_data(Bytes{4, 5});
  EXPECT_EQ(pkt.data(), (Bytes{1, 2, 3}));
  EXPECT_EQ(copy.data(), (Bytes{4, 5}));
}

}  // namespace
}  // namespace mip6
