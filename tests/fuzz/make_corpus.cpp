// Regenerates the committed boundary-length corpus under
// tests/fuzz/corpus/. Each entry is a deterministic malformation of a
// serializer-produced frame (checksums stay honest, so the malformation
// under test — not a broken checksum — is what the decoder sees), verified
// against its expected taxonomy bucket before anything is written.
//
//   ./mip6_make_corpus <output-dir>
//
// Run it only to extend the corpus; the committed files are the regression
// baseline that corpus_replay_test replays byte-exact.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "hpimdm/messages.hpp"
#include "ipv6/datagram.hpp"
#include "ipv6/icmpv6.hpp"
#include "ipv6/ripng.hpp"
#include "ipv6/udp.hpp"
#include "mipv6/messages.hpp"
#include "mld/messages.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

struct Entry {
  std::string file;
  FuzzProto proto;
  std::string expected;  // "ok" or a taxonomy reason name
  Bytes octets;
};

std::string classify(FuzzProto proto, BytesView frame) {
  auto fail = drive_decoder(proto, frame);
  return fail ? parse_reason_name(fail->reason) : "ok";
}

Bytes truncated(Bytes b, std::size_t n) {
  b.resize(n);
  return b;
}

Icmpv6Message mld_wire(MldType type, const Address& group) {
  MldMessage m;
  m.type = type;
  m.group = group;
  return m.to_icmpv6();
}

std::vector<Entry> build_entries() {
  std::vector<Entry> out;
  auto add = [&](std::string file, FuzzProto proto, std::string expected,
                 Bytes octets) {
    out.push_back(Entry{std::move(file), proto, std::move(expected),
                        std::move(octets)});
  };

  // --- MLD (via ICMPv6): truncated / overlength / zero-group ------------
  {
    // Body shorter than the 20-octet MLD layout, checksum still valid.
    Icmpv6Message short_report = mld_wire(MldType::kReport, fuzz_group());
    short_report.body.resize(10);
    add("mld-report-truncated.hex", FuzzProto::kIcmpv6, "truncated",
        short_report.serialize(fuzz_src(), fuzz_dst()));
  }
  {
    Icmpv6Message long_query = mld_wire(MldType::kQuery, Address());
    long_query.body.resize(28, 0);  // 8 trailing octets
    add("mld-query-overlength.hex", FuzzProto::kIcmpv6, "overlength",
        long_query.serialize(fuzz_src(), fuzz_dst()));
  }
  {
    // Report with the unspecified address as group: parses, semantically void.
    add("mld-report-zero-group.hex", FuzzProto::kIcmpv6, "semantic",
        mld_wire(MldType::kReport, Address())
            .serialize(fuzz_src(), fuzz_dst()));
  }

  // --- PIM Join/Prune / Graft -------------------------------------------
  PimJoinPrune jp = PimJoinPrune::join(fuzz_src(), fuzz_src(), fuzz_group());
  jp.groups[0].pruned_sources.push_back(fuzz_dst());
  Bytes jp_body = jp.body();
  {
    // Body cut mid-group-record; checksum computed over the cut body.
    add("pim-jp-truncated.hex", FuzzProto::kPim, "truncated",
        serialize_pim(PimType::kJoinPrune, truncated(jp_body, 30), fuzz_src(),
                      fuzz_dst()));
  }
  {
    // Joined-source count lies (promises 100 sources, frame holds 1). Stays
    // under bound::kMaxPimSourcesPerGroup so the truncation check, not the
    // amplification bound, is what rejects it.
    Bytes lie = jp_body;
    lie[42] = 0;    // njoined hi (18 upstream + 2 + 2 + 20 group = 42)
    lie[43] = 100;  // njoined lo
    add("pim-jp-source-count-lie.hex", FuzzProto::kPim, "truncated",
        serialize_pim(PimType::kJoinPrune, lie, fuzz_src(), fuzz_dst()));
  }
  {
    // Group-record count beyond the amplification bound.
    Bytes many = jp_body;
    many[19] = 0xff;  // ngroups (after 18-octet encoded unicast + reserved)
    add("pim-jp-group-bound.hex", FuzzProto::kPim, "bound-exceeded",
        serialize_pim(PimType::kJoinPrune, many, fuzz_src(), fuzz_dst()));
  }
  {
    add("pim-graft-truncated.hex", FuzzProto::kPim, "truncated",
        serialize_pim(PimType::kGraft, truncated(jp_body, 10), fuzz_src(),
                      fuzz_dst()));
  }
  {
    Bytes bad = serialize_pim(PimType::kJoinPrune, jp_body, fuzz_src(),
                              fuzz_dst());
    bad[2] ^= 0xff;  // checksum hi
    add("pim-bad-checksum.hex", FuzzProto::kPim, "bad-checksum",
        std::move(bad));
  }

  // --- Binding Update + Multicast Group List sub-option ------------------
  BindingUpdateOption bu;
  bu.ack_requested = true;
  bu.home_registration = true;
  bu.sequence = 11;
  bu.lifetime_s = 256;
  {
    add("bu-truncated.hex", FuzzProto::kBindingUpdate, "truncated",
        truncated(bu.encode().data, 5));
  }
  {
    BindingUpdateOption with = bu;
    MulticastGroupListSubOption mgl;
    mgl.groups = {fuzz_group(), Address::parse("ff1e::31")};
    with.sub_options.push_back(mgl.encode());
    add("bu-group-list-ok.hex", FuzzProto::kBindingUpdate, "ok",
        with.encode().data);
  }
  {
    BindingUpdateOption with = bu;
    MulticastGroupListSubOption none;
    with.sub_options.push_back(none.encode());
    add("bu-zero-groups-ok.hex", FuzzProto::kBindingUpdate, "ok",
        with.encode().data);
  }
  {
    // Group-list length not a multiple of 16.
    BindingUpdateOption with = bu;
    with.sub_options.push_back(
        BuSubOption{subopt::kMulticastGroupList, Bytes(10, 0xff)});
    add("bu-group-list-ragged.hex", FuzzProto::kBindingUpdate, "bad-length",
        with.encode().data);
  }
  {
    // Group list carrying a unicast address.
    BindingUpdateOption with = bu;
    Bytes data(16, 0);
    data[0] = 0x20;  // 2000::/3 global unicast, not ff00::/8
    with.sub_options.push_back(
        BuSubOption{subopt::kMulticastGroupList, std::move(data)});
    add("bu-group-list-unicast.hex", FuzzProto::kBindingUpdate, "semantic",
        with.encode().data);
  }
  {
    // Sub-option length octet promises more than the option holds.
    Bytes raw = bu.encode().data;
    raw.push_back(subopt::kMulticastGroupList);
    raw.push_back(200);  // length lie, no data follows
    add("bu-subopt-overrun.hex", FuzzProto::kBindingUpdate, "truncated",
        std::move(raw));
  }
  {
    // More sub-options than bound::kMaxBuSubOptions.
    Bytes raw = bu.encode().data;
    for (int i = 0; i < 20; ++i) {
      raw.push_back(1);  // unique-identifier type
      raw.push_back(0);  // empty
    }
    add("bu-subopt-bound.hex", FuzzProto::kBindingUpdate, "bound-exceeded",
        std::move(raw));
  }

  // --- HPIM-DM ------------------------------------------------------------
  HpimSync sync;
  sync.seq = 9;
  sync.entries.push_back({fuzz_src(), fuzz_group(), true});
  sync.entries.push_back({fuzz_dst(), fuzz_group(), false});
  Bytes sync_body = sync.body();
  {
    // Valid single-fragment sync: the accept side of the boundary.
    HpimHello hello;
    hello.holdtime = 105;
    hello.generation_id = 0xdecade02;
    add("hpim-hello-ok.hex", FuzzProto::kHpim, "ok",
        serialize_hpim(HpimType::kHello, hello.body(), fuzz_src(),
                       fuzz_dst()));
  }
  {
    // Body cut mid-entry; checksum computed over the cut body.
    add("hpim-sync-truncated.hex", FuzzProto::kHpim, "truncated",
        serialize_hpim(HpimType::kSync, truncated(sync_body, 20), fuzz_src(),
                       fuzz_dst()));
  }
  {
    // Entry count lies (promises 200 entries, frame holds 2). Stays under
    // bound::kMaxHpimSyncEntries so the O(1) count-vs-body check, not the
    // amplification bound, is what rejects it.
    Bytes lie = sync_body;
    lie[5] = 0;    // count hi (4 seq + 1 more-flag)
    lie[6] = 200;  // count lo
    add("hpim-sync-count-lie.hex", FuzzProto::kHpim, "truncated",
        serialize_hpim(HpimType::kSync, lie, fuzz_src(), fuzz_dst()));
  }
  {
    // Entry count beyond the amplification bound.
    Bytes many = sync_body;
    many[5] = 0xff;
    many[6] = 0xff;
    add("hpim-sync-bound.hex", FuzzProto::kHpim, "bound-exceeded",
        serialize_hpim(HpimType::kSync, many, fuzz_src(), fuzz_dst()));
  }
  {
    // Cross-engine frames: the two engines share proto 103, so each decoder
    // must reject the other's version nibble by name instead of half-parsing.
    PimHello pim_hello;
    pim_hello.holdtime = 105;
    add("pim-frame-via-hpim-decoder.hex", FuzzProto::kHpim, "bad-type",
        serialize_pim(PimType::kHello, pim_hello.body(), fuzz_src(),
                      fuzz_dst()));
    HpimInterest interest;
    interest.seq = 1;
    interest.source = fuzz_src();
    interest.group = fuzz_group();
    interest.interested = true;
    add("hpim-frame-via-pim-decoder.hex", FuzzProto::kPim, "bad-type",
        serialize_hpim(HpimType::kInterest, interest.body(), fuzz_src(),
                       fuzz_dst()));
  }

  // --- Whole datagrams ---------------------------------------------------
  {
    DatagramSpec spec;
    spec.src = fuzz_src();
    spec.dst = fuzz_dst();
    spec.protocol = proto::kNoNext;
    Bytes d = build_datagram(spec);
    d[0] = 0x50;  // version 5
    add("datagram-bad-version.hex", FuzzProto::kDatagram, "bad-type",
        std::move(d));
  }
  {
    DatagramSpec spec;
    spec.src = fuzz_src();
    spec.dst = fuzz_dst();
    spec.protocol = proto::kUdp;
    UdpDatagram udp;
    udp.src_port = 1;
    udp.dst_port = 2;
    udp.payload = Bytes(8, 0xab);
    spec.payload = udp.serialize(spec.src, spec.dst);
    Bytes d = build_datagram(spec);
    Bytes longer = d;
    longer[5] = static_cast<std::uint8_t>(longer[5] + 40);  // payload len lie
    add("datagram-payload-lie.hex", FuzzProto::kDatagram, "truncated",
        std::move(longer));
    Bytes shorter = d;
    shorter[5] = static_cast<std::uint8_t>(shorter[5] - 4);
    add("datagram-overlength.hex", FuzzProto::kDatagram, "overlength",
        std::move(shorter));
  }

  // --- UDP ---------------------------------------------------------------
  {
    UdpDatagram udp;
    udp.src_port = 7;
    udp.dst_port = 8;
    udp.payload = Bytes(4, 0x11);
    Bytes wire = udp.serialize(fuzz_src(), fuzz_dst());
    add("udp-truncated.hex", FuzzProto::kUdp, "truncated",
        truncated(wire, 5));
    Bytes bad = udp.serialize(fuzz_src(), fuzz_dst());
    bad[6] ^= 0xff;  // checksum
    add("udp-bad-checksum.hex", FuzzProto::kUdp, "bad-checksum",
        std::move(bad));
  }

  // --- RIPng --------------------------------------------------------------
  {
    std::vector<RipngRte> rtes;
    rtes.push_back(RipngRte{Prefix::parse("2001:db8:1::/64"), 1});
    Bytes wire = ripng_response_payload(rtes);
    add("ripng-ragged.hex", FuzzProto::kRipng, "truncated",
        truncated(wire, wire.size() - 3));
    Bytes badlen = ripng_response_payload(rtes);
    badlen[22] = 200;  // prefix length > 128
    add("ripng-bad-prefix-len.hex", FuzzProto::kRipng, "semantic",
        std::move(badlen));
  }

  return out;
}

int run(const std::string& dir) {
  std::vector<Entry> entries = build_entries();
  bool ok = true;
  for (const Entry& e : entries) {
    std::string got = classify(e.proto, e.octets);
    if (got != e.expected) {
      std::cerr << e.file << ": expected " << e.expected << ", decoder says "
                << got << "\n";
      ok = false;
    }
  }
  if (!ok) return 1;

  std::ofstream manifest(dir + "/MANIFEST");
  if (!manifest) {
    std::cerr << "cannot write to " << dir << " (does it exist?)\n";
    return 1;
  }
  manifest << "# <file> <protocol> <expected classification>\n"
           << "# Regenerate with mip6_make_corpus (tests/fuzz/make_corpus.cpp);\n"
           << "# corpus_replay_test replays every entry byte-exact.\n";
  for (const Entry& e : entries) {
    std::ofstream f(dir + "/" + e.file);
    f << to_hex(e.octets) << "\n";
    manifest << e.file << " " << fuzz_proto_name(e.proto) << " " << e.expected
             << "\n";
  }
  std::cout << "wrote " << entries.size() << " corpus frames to " << dir
            << "\n";
  return 0;
}

}  // namespace
}  // namespace mip6

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: mip6_make_corpus <output-dir>\n";
    return 2;
  }
  return mip6::run(argv[1]);
}
