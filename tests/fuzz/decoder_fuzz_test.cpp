// Deterministic structure-aware decoder fuzz: every protocol family gets
// >= 10 seeds x >= 1000 mutated frames, each case classified into exactly
// one taxonomy bucket, with no exception ever escaping a try_* decoder.
// Run under the `fuzz-smoke` ctest preset this executes with ASan+UBSan.
#include <gtest/gtest.h>

#include "fuzz/harness.hpp"

namespace mip6 {
namespace {

constexpr std::uint64_t kBaseSeed = 0xD15EA5E;
constexpr std::size_t kSeeds = 10;
constexpr std::size_t kCasesPerSeed = 1000;

class DecoderFuzz : public ::testing::TestWithParam<FuzzProto> {};

TEST_P(DecoderFuzz, MutationSweepClassifiesEveryCase) {
  FuzzReport total;
  for (std::size_t s = 0; s < kSeeds; ++s) {
    FuzzReport r = fuzz_decoder(GetParam(), Rng::derive_seed(kBaseSeed, s),
                                kCasesPerSeed);
    EXPECT_TRUE(r.attribution_consistent()) << r.str();
    total.cases += r.cases;
    total.accepted += r.accepted;
    total.rejected += r.rejected;
    for (std::size_t i = 0; i < r.by_reason.size(); ++i) {
      total.by_reason[i] += r.by_reason[i];
    }
  }
  EXPECT_EQ(total.cases, kSeeds * kCasesPerSeed);
  EXPECT_TRUE(total.attribution_consistent()) << total.str();
  // Structure-aware mutation of valid frames must actually exercise the
  // reject paths; a sweep that accepts everything means the mutator broke.
  EXPECT_GT(total.rejected, 0u) << total.str();
  // At least two distinct taxonomy buckets fire across 10k cases — the
  // decoders distinguish failure modes instead of collapsing into one.
  std::size_t buckets = 0;
  for (std::uint64_t v : total.by_reason) buckets += (v != 0) ? 1 : 0;
  EXPECT_GE(buckets, 2u) << total.str();
}

TEST_P(DecoderFuzz, SameSeedReproducesIdenticalReport) {
  FuzzReport a = fuzz_decoder(GetParam(), kBaseSeed, 500);
  FuzzReport b = fuzz_decoder(GetParam(), kBaseSeed, 500);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.by_reason, b.by_reason);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DecoderFuzz,
    ::testing::Values(FuzzProto::kDatagram, FuzzProto::kIcmpv6,
                      FuzzProto::kPim, FuzzProto::kUdp, FuzzProto::kRipng,
                      FuzzProto::kBindingUpdate, FuzzProto::kHpim),
    [](const ::testing::TestParamInfo<FuzzProto>& param_info) {
      std::string name(fuzz_proto_name(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Mutator, EveryOperatorChangesOrResizesTheFrame) {
  Rng rng(42);
  FuzzFrame seed;
  seed.name = "probe";
  seed.octets = Bytes(64, 0xAA);
  seed.length_offsets = {4, 5};
  for (int i = 0; i < 1000; ++i) {
    Bytes mutated = mutate_frame(seed, rng);
    // Either the size changed or at least one octet differs; a silent
    // no-op would shrink effective coverage without failing anything.
    if (mutated.size() == seed.octets.size()) {
      bool changed = false;
      for (std::size_t k = 0; k < mutated.size(); ++k) {
        if (mutated[k] != seed.octets[k]) {
          changed = true;
          break;
        }
      }
      // Splice may roll the same value; tolerate rare no-ops but they must
      // not dominate.
      if (!changed) continue;
    }
    SUCCEED();
  }
}

TEST(Mutator, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(from_hex(to_hex(b)), b);
  EXPECT_EQ(to_hex(b), "0001abff7f");
  EXPECT_EQ(from_hex("00 01\nab"), (Bytes{0x00, 0x01, 0xab}));
}

}  // namespace
}  // namespace mip6
