// Replays the committed boundary-length corpus byte-exact: every frame under
// tests/fuzz/corpus/ must keep classifying into the taxonomy bucket recorded
// in MANIFEST. A change here means the accept/reject boundary of a decoder
// moved — either fix the regression or regenerate the corpus deliberately
// with mip6_make_corpus and review the diff.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "fuzz/corpus.hpp"

#ifndef MIP6_FUZZ_CORPUS_DIR
#error "MIP6_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace mip6 {
namespace {

std::optional<FuzzProto> proto_by_name(const std::string& name) {
  for (std::size_t i = 0; i < kFuzzProtoCount; ++i) {
    auto p = static_cast<FuzzProto>(i);
    if (fuzz_proto_name(p) == name) return p;
  }
  return std::nullopt;
}

struct ManifestEntry {
  std::string file;
  FuzzProto proto;
  std::string expected;
};

std::vector<ManifestEntry> load_manifest() {
  std::ifstream in(std::string(MIP6_FUZZ_CORPUS_DIR) + "/MANIFEST");
  EXPECT_TRUE(in.good()) << "missing " << MIP6_FUZZ_CORPUS_DIR << "/MANIFEST";
  std::vector<ManifestEntry> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string file, proto, expected;
    fields >> file >> proto >> expected;
    EXPECT_FALSE(expected.empty()) << "malformed MANIFEST line: " << line;
    auto p = proto_by_name(proto);
    EXPECT_TRUE(p.has_value()) << "unknown protocol in MANIFEST: " << proto;
    if (!p || expected.empty()) continue;
    out.push_back(ManifestEntry{file, *p, expected});
  }
  return out;
}

TEST(CorpusReplay, EveryFrameKeepsItsClassification) {
  std::vector<ManifestEntry> entries = load_manifest();
  ASSERT_GE(entries.size(), 15u) << "corpus unexpectedly small";
  for (const ManifestEntry& e : entries) {
    std::ifstream f(std::string(MIP6_FUZZ_CORPUS_DIR) + "/" + e.file);
    ASSERT_TRUE(f.good()) << "corpus file missing: " << e.file;
    std::string hex((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
    Bytes frame = from_hex(hex);
    ASSERT_FALSE(frame.empty()) << e.file << " decoded to zero octets";

    auto fail = drive_decoder(e.proto, frame);
    std::string got = fail ? parse_reason_name(fail->reason) : "ok";
    EXPECT_EQ(got, e.expected)
        << e.file << " (" << fuzz_proto_name(e.proto) << "): "
        << (fail ? fail->str() : std::string("accepted"));
  }
}

TEST(CorpusReplay, CorpusCoversRejectAndAcceptSides) {
  std::vector<ManifestEntry> entries = load_manifest();
  std::size_t ok = 0, rejected = 0;
  for (const ManifestEntry& e : entries) {
    (e.expected == "ok" ? ok : rejected)++;
  }
  // The corpus must pin the boundary from both sides: valid frames that must
  // stay accepted, malformed neighbours that must stay rejected.
  EXPECT_GT(ok, 0u);
  EXPECT_GT(rejected, ok);
}

}  // namespace
}  // namespace mip6
