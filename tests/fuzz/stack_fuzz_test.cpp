// Full receive-path fuzz: mutated datagrams are injected into live router
// and host stacks (all engines wired: PIM-DM, MLD, home agent, UDP demux)
// and must be classified — never crash, never corrupt the node. Afterwards
// the network still forwards multicast end-to-end, and every rejection is
// attributed to exactly one taxonomy counter.
#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "core/world.hpp"
#include "fuzz/harness.hpp"
#include "hpimdm/messages.hpp"
#include "ipv6/datagram.hpp"
#include "mipv6/messages.hpp"
#include "mld/messages.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::77");
constexpr std::uint16_t kPort = 9000;
const Address kAllPimRouters = Address::parse("ff02::d");

/// S -- L0 -- R -- L1 -- H
struct FuzzWorld {
  World world;
  Link& l0;
  Link& l1;
  NodeRuntime& r;
  NodeRuntime& sender;
  NodeRuntime& host;

  FuzzWorld()
      : world(7), l0(world.add_link("L0")), l1(world.add_link("L1")),
        r(world.add_router("R", {&l0, &l1})), sender(world.add_host("S", l0)),
        host(world.add_host("H", l1)) {
    world.finalize();
  }
};

/// Hostile templates aimed at the router's L0 interface: every protocol the
/// paper's router role actually terminates (PIM, MLD, BU-at-HA, UDP,
/// plain forwarding).
std::vector<FuzzFrame> router_templates(FuzzWorld& t) {
  Address src = t.sender.stack->global_address(t.sender.iface());
  Address router = t.r.address_on(t.l0);
  std::vector<FuzzFrame> out;

  {
    PimJoinPrune jp = PimJoinPrune::join(router, src, kGroup);
    DatagramSpec spec;
    spec.src = src;
    spec.dst = kAllPimRouters;
    spec.hop_limit = 1;
    spec.protocol = proto::kPim;
    spec.payload = serialize_pim(PimType::kJoinPrune, jp.body(), src,
                                 kAllPimRouters);
    out.push_back(FuzzFrame{"pim-jp", build_datagram(spec), {4, 5, 63, 86}});
  }
  {
    MldMessage rep;
    rep.type = MldType::kReport;
    rep.group = kGroup;
    DatagramSpec spec;
    spec.src = src;
    spec.dst = kGroup;
    spec.hop_limit = 1;
    spec.protocol = proto::kIcmpv6;
    spec.payload = rep.to_icmpv6().serialize(src, kGroup);
    out.push_back(FuzzFrame{"mld-report", build_datagram(spec), {4, 5}});
  }
  {
    BindingUpdateOption bu;
    bu.ack_requested = true;
    bu.home_registration = true;
    bu.sequence = 9;
    bu.lifetime_s = 64;
    MulticastGroupListSubOption mgl;
    mgl.groups = {kGroup};
    bu.sub_options.push_back(mgl.encode());
    DatagramSpec spec;
    spec.src = src;
    spec.dst = router;
    spec.dest_options.push_back(bu.encode());
    spec.dest_options.push_back(HomeAddressOption{src}.encode());
    spec.protocol = proto::kNoNext;
    out.push_back(FuzzFrame{"bu-to-ha", build_datagram(spec), {4, 5, 41}});
  }
  {
    UdpDatagram udp;
    udp.src_port = 40000;
    udp.dst_port = 521;
    udp.payload = Bytes(16, 0x5a);
    DatagramSpec spec;
    spec.src = src;
    spec.dst = router;
    spec.protocol = proto::kUdp;
    spec.payload = udp.serialize(src, router);
    out.push_back(FuzzFrame{"udp-to-router", build_datagram(spec), {4, 5, 44, 45}});
  }
  return out;
}

TEST(StackFuzz, BombardmentIsClassifiedAndServiceSurvives) {
  FuzzWorld t;
  t.host.service->subscribe(kGroup);
  t.world.run_until(Time::sec(1));

  std::vector<FuzzFrame> templates = router_templates(t);
  IfaceId rx = t.r.iface_on(t.l0);
  constexpr std::uint64_t kSeedCount = 10;
  constexpr int kCasesPerSeed = 200;
  for (std::uint64_t s = 0; s < kSeedCount; ++s) {
    Rng rng(Rng::derive_seed(0xFEEDFACE, s));
    for (int i = 0; i < kCasesPerSeed; ++i) {
      const FuzzFrame& base = templates[rng.uniform_int(templates.size())];
      t.r.stack->receive_as_if(rx, mutate_frame(base, rng));
      // Drain any response traffic (Parameter Problems, acks, prunes).
      if (i % 50 == 0) {
        t.world.run_until(t.world.now() + Time::ms(10));
      }
    }
    t.world.run_until(t.world.now() + Time::ms(100));
  }

  const CounterRegistry& counters = t.world.net().counters();
  // The bombardment actually exercised the reject paths...
  EXPECT_GT(counters.sum_prefix("parse/"), 0u);
  // ...and every rejection landed in exactly one taxonomy bucket.
  std::string detail;
  EXPECT_TRUE(reject_counters_consistent(counters, &detail)) << detail;

  // The router survived: multicast data still flows sender -> host.
  GroupReceiverApp app(*t.host.stack, kPort);
  Time start = t.world.now();
  for (int i = 0; i < 20; ++i) {
    t.world.scheduler().schedule_at(start + Time::ms(50 * (i + 1)), [&t, i] {
      CbrPayload p;
      p.seq = static_cast<std::uint32_t>(i);
      p.sent_at = t.world.now();
      t.sender.service->send_multicast(kGroup, kPort, kPort, p.encode(32));
    });
  }
  t.world.run_until(start + Time::sec(3));
  EXPECT_GT(app.unique_received(), 0u);
}

/// Both dense-mode engines on one link: S0 -- L0 -- RP -- LX -- RH -- L1 -- S1
/// with a listener H1 on the shared link. RP runs PIM-DM, RH runs HPIM-DM;
/// they share IP protocol 103, so each sees every control frame the other
/// emits plus whatever the bombardment injects.
struct CrossEngineWorld {
  World world;
  Link& l0;
  Link& lx;
  Link& l1;
  NodeRuntime& rp;
  NodeRuntime& rh;
  NodeRuntime& s0;
  NodeRuntime& s1;
  NodeRuntime& h1;

  static RouterOptions hpim_opts() {
    RouterOptions o;
    o.engine = DenseEngineKind::kHpimDm;
    return o;
  }

  CrossEngineWorld()
      : world(11), l0(world.add_link("L0")), lx(world.add_link("LX")),
        l1(world.add_link("L1")), rp(world.add_router("RP", {&l0, &lx})),
        rh(world.add_router("RH", {&lx, &l1}, hpim_opts())),
        s0(world.add_host("S0", l0)), s1(world.add_host("S1", l1)),
        h1(world.add_host("H1", lx)) {
    world.finalize();
  }
};

/// Valid control frames of both engines aimed at the shared link.
std::vector<FuzzFrame> cross_engine_templates(CrossEngineWorld& t) {
  Address src = t.h1.stack->global_address(t.h1.iface());
  std::vector<FuzzFrame> out;
  {
    PimHello hello;
    hello.holdtime = 105;
    DatagramSpec spec;
    spec.src = src;
    spec.dst = kAllPimRouters;
    spec.hop_limit = 1;
    spec.protocol = proto::kPim;
    spec.payload = serialize_pim(PimType::kHello, hello.body(), src,
                                 kAllPimRouters);
    out.push_back(FuzzFrame{"pim-hello", build_datagram(spec), {4, 5}});
  }
  {
    HpimHello hello;
    hello.holdtime = 105;
    hello.generation_id = 0xabad1dea;
    DatagramSpec spec;
    spec.src = src;
    spec.dst = kAllPimRouters;
    spec.hop_limit = 1;
    spec.protocol = proto::kPim;
    spec.payload = serialize_hpim(HpimType::kHello, hello.body(), src,
                                  kAllPimRouters);
    out.push_back(FuzzFrame{"hpim-hello", build_datagram(spec), {4, 5}});
  }
  {
    HpimSync sync;
    sync.seq = 1;
    sync.entries.push_back(
        {t.s1.stack->global_address(t.s1.iface()), kGroup, true});
    DatagramSpec spec;
    spec.src = src;
    spec.dst = t.rh.address_on(t.lx);
    spec.hop_limit = 1;
    spec.protocol = proto::kPim;
    spec.payload =
        serialize_hpim(HpimType::kSync, sync.body(), src, spec.dst);
    // Offsets 49-50: the sync entry-count field inside the datagram
    // (40 IPv6 header + 4 HPIM header + 5 into the body).
    out.push_back(FuzzFrame{"hpim-sync", build_datagram(spec), {4, 5, 49, 50}});
  }
  {
    HpimInterest interest;
    interest.seq = 2;
    interest.source = t.s1.stack->global_address(t.s1.iface());
    interest.group = kGroup;
    interest.interested = true;
    DatagramSpec spec;
    spec.src = src;
    spec.dst = t.rh.address_on(t.lx);
    spec.hop_limit = 1;
    spec.protocol = proto::kPim;
    spec.payload =
        serialize_hpim(HpimType::kInterest, interest.body(), src, spec.dst);
    out.push_back(FuzzFrame{"hpim-interest", build_datagram(spec), {4, 5}});
  }
  {
    HpimAck ack;
    ack.seq = 3;
    DatagramSpec spec;
    spec.src = src;
    spec.dst = t.rp.address_on(t.lx);  // an Ack at the PIM-DM router
    spec.hop_limit = 1;
    spec.protocol = proto::kPim;
    spec.payload = serialize_hpim(HpimType::kAck, ack.body(), src, spec.dst);
    out.push_back(FuzzFrame{"hpim-ack-to-pim", build_datagram(spec), {4, 5}});
  }
  return out;
}

TEST(StackFuzz, CrossEngineBombardmentRejectsByNameAndBothEnginesSurvive) {
  CrossEngineWorld t;
  t.h1.service->subscribe(kGroup);
  t.world.run_until(Time::sec(2));

  // Organic coexistence alone produces cross-engine rejects: each engine's
  // hellos land in the other's decoder and bounce off the version nibble.
  const CounterRegistry& counters = t.world.net().counters();
  EXPECT_GT(counters.get("parse/pimdm/reject/bad-type"), 0u);
  EXPECT_GT(counters.get("parse/hpimdm/reject/bad-type"), 0u);

  // Bombard both routers' shared-link interfaces with mixed, mutated frames
  // of both dialects.
  std::vector<FuzzFrame> templates = cross_engine_templates(t);
  IfaceId rp_rx = t.rp.iface_on(t.lx);
  IfaceId rh_rx = t.rh.iface_on(t.lx);
  for (std::uint64_t s = 0; s < 5; ++s) {
    Rng rng(Rng::derive_seed(0xC0E71517, s));
    for (int i = 0; i < 200; ++i) {
      const FuzzFrame& base = templates[rng.uniform_int(templates.size())];
      Bytes mutated = mutate_frame(base, rng);
      t.rp.stack->receive_as_if(rp_rx, mutated);
      t.rh.stack->receive_as_if(rh_rx, mutated);
      if (i % 50 == 0) t.world.run_until(t.world.now() + Time::ms(10));
    }
    t.world.run_until(t.world.now() + Time::ms(100));
  }

  // Every rejection is attributed to exactly one named taxonomy bucket.
  std::string detail;
  EXPECT_TRUE(reject_counters_consistent(counters, &detail)) << detail;

  // Both engines still forward: S0 -> H1 crosses the PIM-DM router, S1 -> H1
  // crosses the HPIM-DM router.
  GroupReceiverApp app(*t.h1.stack, kPort);
  Time start = t.world.now();
  for (int i = 0; i < 20; ++i) {
    t.world.scheduler().schedule_at(start + Time::ms(50 * (i + 1)), [&t, i] {
      CbrPayload p;
      p.seq = static_cast<std::uint32_t>(i);
      p.sent_at = t.world.now();
      t.s0.service->send_multicast(kGroup, kPort, kPort, p.encode(32));
      CbrPayload q;
      q.seq = static_cast<std::uint32_t>(100 + i);
      q.sent_at = t.world.now();
      t.s1.service->send_multicast(kGroup, kPort, kPort, q.encode(32));
    });
  }
  t.world.run_until(start + Time::sec(3));
  EXPECT_GT(app.unique_received(), 20u)
      << "expected traffic from both sides of the mixed-engine link";
}

TEST(StackFuzz, ValidTemplatesAreAcceptedUnmutated) {
  FuzzWorld t;
  t.world.run_until(Time::sec(1));
  std::uint64_t parse_errors_before =
      t.world.net().counters().get("ipv6/rx-drop/parse-error");
  for (const FuzzFrame& f : router_templates(t)) {
    t.r.stack->receive_as_if(t.r.iface_on(t.l0), f.octets);
  }
  t.world.run_until(t.world.now() + Time::ms(100));
  EXPECT_EQ(t.world.net().counters().get("ipv6/rx-drop/parse-error"),
            parse_errors_before);
}

}  // namespace
}  // namespace mip6
