// Auditor time-integrated window edge cases: zero-length windows, a window
// still open at run end, and two overlapping disruptions on one (S,G)
// charging the union of their spans, not the sum.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "fault/auditor.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

/// Figure 1 with Receiver1 and Receiver3 subscribed at home and traffic
/// flowing, run to a converged instant (tree over Links 1-4).
Figure1 converged_world(std::uint64_t seed) {
  Figure1 f = build_figure1(seed);
  Address group = Figure1::group();
  f.recv1->service->subscribe(group);
  f.recv3->service->subscribe(group);
  auto* sender = f.sender;
  auto source = std::make_shared<CbrSource>(
      f.world->scheduler(),
      [sender, group](Bytes p) {
        sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source->start(Time::sec(1));
  f.world->run_until(Time::sec(30));
  source->stop();
  return f;
}

double total_blackhole(const Auditor& auditor) {
  double s = 0.0;
  for (const auto& [key, w] : auditor.windows()) s += w.blackhole_s;
  return s;
}

double total_duplication(const Auditor& auditor) {
  double s = 0.0;
  for (const auto& [key, w] : auditor.windows()) s += w.duplication_s;
  return s;
}

TEST(AuditorWindows, ZeroLengthWindowChargesNothing) {
  Figure1 f = converged_world(41);
  Auditor auditor(*f.world);
  auditor.sample_windows();  // charge the (healthy) span since construction

  // Fault and repair at the same instant: no simulated time passes while
  // the link is down, so the window must stay empty even though the
  // blackhole predicate held between the two samples.
  f.link3->set_up(false);
  auditor.sample_windows();
  f.link3->set_up(true);
  auditor.sample_windows();
  EXPECT_EQ(total_blackhole(auditor), 0.0);
  EXPECT_EQ(total_duplication(auditor), 0.0);
}

TEST(AuditorWindows, WindowStillOpenAtRunEndIsChargedInFull) {
  Figure1 f = converged_world(43);
  Auditor auditor(*f.world);
  auditor.sample_windows();

  // Receiver3's only upstream path crosses Link3; never repaired. (The
  // auditor charges nothing when the receiver's own access link is down —
  // an offline receiver is not starved — so the disruption must hit a
  // transit link.)
  f.link3->set_up(false);
  auditor.sample_windows();
  f.world->run_until(Time::sec(40));
  auditor.sample_windows();  // final sample at "run end": window still open

  EXPECT_NEAR(total_blackhole(auditor), 10.0, 0.5);
}

TEST(AuditorWindows, OverlappingDisruptionsOnOneSgChargeTheUnion) {
  Figure1 f = converged_world(45);
  Auditor auditor(*f.world);
  auditor.sample_windows();

  // Two overlapping disruptions both blackholing the same (S,G) for
  // Receiver3: transit Link3 down from 30 s, transit Link2 down from 35 s,
  // neither repaired. 30->40 s must be charged once (10 s), not once per
  // fault.
  f.link3->set_up(false);
  auditor.sample_windows();
  f.world->run_until(Time::sec(35));
  auditor.sample_windows();
  f.link2->set_up(false);
  auditor.sample_windows();
  f.world->run_until(Time::sec(40));
  auditor.sample_windows();

  EXPECT_NEAR(total_blackhole(auditor), 10.0, 0.5);
}

TEST(AuditorWindows, PeriodicSamplerAccumulatesWithoutManualSamples) {
  Figure1 f = converged_world(47);
  Auditor auditor(*f.world);
  auditor.arm_window_sampler(Time::ms(250));
  f.link3->set_up(false);
  f.world->run_until(Time::sec(36));
  auditor.sample_windows();
  EXPECT_NEAR(total_blackhole(auditor), 6.0, 0.5);
}

}  // namespace
}  // namespace mip6
