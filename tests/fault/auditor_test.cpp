// Auditor: a healthy converged Figure 1 world passes every check, and
// deliberately corrupted cross-node state fails loudly.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "fault/auditor.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

/// Figure 1 with traffic flowing and Receiver3 roaming to Link6, run to a
/// converged instant.
Figure1 converged_world(std::uint64_t seed, bool move_recv3) {
  Figure1 f = build_figure1(seed);
  Address group = Figure1::group();
  f.recv1->service->subscribe(group);
  f.recv3->service->subscribe(group);
  auto* sender = f.sender;
  auto source = std::make_shared<CbrSource>(
      f.world->scheduler(),
      [sender, group](Bytes p) {
        sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source->start(Time::sec(1));
  if (move_recv3) {
    f.world->scheduler().schedule_at(Time::sec(10), [&f] {
      f.recv3->mn->move_to(*f.link6);
    });
  }
  f.world->run_until(Time::sec(60));
  source->stop();
  return f;
}

TEST(Auditor, CleanWorldPassesStructuralChecks) {
  Figure1 f = converged_world(21, /*move_recv3=*/true);
  Auditor auditor(*f.world);
  AuditReport r = auditor.run();
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_GT(f.world->net().counters().get("audit/runs"), 0u);
}

TEST(Auditor, CleanWorldPassesQuiescedChecks) {
  Figure1 f = converged_world(23, /*move_recv3=*/true);
  AuditorConfig cfg;
  cfg.quiesced = true;
  Auditor auditor(*f.world, cfg);
  AuditReport r = auditor.run();
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST(Auditor, WrongCareOfBindingFailsLoudly) {
  Figure1 f = converged_world(25, /*move_recv3=*/true);
  // Receiver3 is away on Link6 with an acknowledged binding at RouterD.
  ASSERT_TRUE(f.recv3->mn->away_from_home());
  ASSERT_TRUE(f.recv3->mn->binding_acked());
  ASSERT_NE(f.d->ha->cache().find(f.recv3->mn->home_address()), nullptr);

  // Corrupt the binding: point it at an address the MN never configured
  // (a stale replica adopted from a redundancy peer, say).
  f.d->ha->adopt_binding(f.recv3->mn->home_address(),
                         Address::parse("2001:db8:6::dead"), 999,
                         Time::sec(100), {});

  Auditor auditor(*f.world);
  AuditReport r = auditor.run();
  ASSERT_FALSE(r.ok()) << "auditor missed the corrupted binding";
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.check == "binding-care-of-mismatch") found = true;
  }
  EXPECT_TRUE(found) << r.str();
  EXPECT_GT(f.world->net().counters().get("audit/violations"), 0u);
}

TEST(Auditor, LostMldListenerStateFailsQuiescedCoverage) {
  Figure1 f = converged_world(27, /*move_recv3=*/false);
  // Wipe RouterD's MLD state behind the protocol's back: Receiver3 is still
  // joined on Link4, so the quiesced superset invariant must break.
  f.d->mld->shutdown();
  AuditorConfig cfg;
  cfg.quiesced = true;
  Auditor auditor(*f.world, cfg);
  AuditReport r = auditor.run();
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.check == "mld-listener-missing") found = true;
  }
  EXPECT_TRUE(found) << r.str();
}

TEST(Auditor, MissingBindingForAckedMnFailsQuiesced) {
  Figure1 f = converged_world(29, /*move_recv3=*/true);
  ASSERT_TRUE(f.recv3->mn->binding_acked());
  // Drop the binding without telling the MN (an HA reboot would do this).
  f.d->ha->drop_binding(f.recv3->mn->home_address());
  AuditorConfig cfg;
  cfg.quiesced = true;
  Auditor auditor(*f.world, cfg);
  AuditReport r = auditor.run();
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.check == "binding-missing") found = true;
  }
  EXPECT_TRUE(found) << r.str();
}

TEST(Auditor, ChecksCanBeDisabledIndividually) {
  Figure1 f = converged_world(31, /*move_recv3=*/true);
  f.d->ha->adopt_binding(f.recv3->mn->home_address(),
                         Address::parse("2001:db8:6::dead"), 999,
                         Time::sec(100), {});
  AuditorConfig cfg;
  cfg.check_binding_coherence = false;
  Auditor auditor(*f.world, cfg);
  EXPECT_TRUE(auditor.run().ok());
}

}  // namespace
}  // namespace mip6
