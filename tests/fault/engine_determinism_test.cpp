// Engine-swap determinism and the crash-recovery A/B the HPIM-DM engine
// exists for. Runs under the `chaos-smoke` ctest label (and the chaos
// presets): a short seeded FaultPlan through BOTH dense-mode engines.
//
//  * Per engine, the same world + seed + fault schedule twice yields
//    byte-identical traces, counters and delivery — chaos replay is exact
//    regardless of which engine is selected.
//  * Under an identical mid-run router crash/restart, HPIM-DM's hard state
//    survives the crash and restores forwarding strictly earlier than
//    PIM-DM's re-flood + MLD-relearn path, without creating a single new
//    (S,G) entry.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "fault/chaos.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct RunOutput {
  std::string trace;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t delivered = 0;
  Time recovered = Time::never();
  std::size_t entries_while_down = 0;
  std::uint64_t refloods = 0;  // sg-created after the crash event
  bool audits_ok = false;
};

/// Figure 1 + Receiver3 + CBR + the given fault plan under one engine.
RunOutput run_chaos(DenseEngineKind engine, std::uint64_t seed,
                    const FaultPlan& plan, Time horizon) {
  WorldConfig config;
  config.dense_engine = engine;
  Figure1 f = build_figure1(seed, config);
  std::vector<TraceRecord> records;
  f.world->net().trace().set_sink(Trace::recorder(records));

  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  auto* sender = f.sender;
  CbrSource source(
      f.world->scheduler(),
      [sender, group](Bytes p) {
        sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  ChaosEngine chaos(*f.world, plan);
  chaos.arm();

  RunOutput out;
  // Snapshot the crashed router's (S,G) table mid-outage and the engine's
  // sg-created counter right after the crash — hard state vs wiped state,
  // and whatever re-flooding follows, is where the engines diverge.
  const std::string sg_created =
      engine == DenseEngineKind::kPimDm ? "pimdm/sg-created"
                                        : "hpimdm/sg-created";
  std::uint64_t created_at_crash = 0;
  for (const FaultEvent& e : plan.sorted()) {
    if (e.kind == FaultKind::kRouterCrash) {
      NodeRuntime* rt = &f.world->router_by_name(e.target);
      CounterRegistry& counters = f.world->net().counters();
      f.world->scheduler().schedule_at(
          e.at + Time::ms(1), [&out, &created_at_crash, &counters, rt,
                               sg_created] {
            out.entries_while_down = rt->dense->entry_count();
            created_at_crash = counters.get(sg_created);
          });
      break;
    }
  }
  f.world->run_until(horizon);
  out.refloods = f.world->net().counters().get(sg_created) - created_at_crash;

  for (const TraceRecord& r : records) out.trace += r.str() + "\n";
  out.counters = f.world->net().counters().snapshot();
  out.delivered = app.unique_received();
  out.audits_ok = chaos.all_audits_ok();
  auto recs = chaos.recoveries(app);
  if (!recs.empty() && recs[0].recovered_at) {
    out.recovered = *recs[0].recovered_at;
  }
  return out;
}

FaultPlan crash_restart_plan() {
  FaultPlan plan;
  plan.router_crash(Time::sec(20), "RouterD")
      .router_restart(Time::sec(25), "RouterD");
  return plan;
}

class EngineChaosDeterminism
    : public ::testing::TestWithParam<DenseEngineKind> {};

TEST_P(EngineChaosDeterminism, SameSeedSameFaultsSameTraceTwice) {
  RunOutput a = run_chaos(GetParam(), 51, crash_restart_plan(), Time::sec(40));
  RunOutput b = run_chaos(GetParam(), 51, crash_restart_plan(), Time::sec(40));
  EXPECT_GT(a.trace.size(), 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_GT(a.delivered, 0u);
  EXPECT_TRUE(a.audits_ok);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineChaosDeterminism,
                         ::testing::Values(DenseEngineKind::kPimDm,
                                           DenseEngineKind::kHpimDm),
                         [](const auto& param_info) {
                           return param_info.param == DenseEngineKind::kPimDm
                                      ? "pimdm"
                                      : "hpimdm";
                         });

TEST(EngineChaosAb, HpimRestartRecoversStrictlyFasterWithoutReflood) {
  const Time horizon = Time::sec(50);
  RunOutput pim =
      run_chaos(DenseEngineKind::kPimDm, 53, crash_restart_plan(), horizon);
  RunOutput hpim =
      run_chaos(DenseEngineKind::kHpimDm, 53, crash_restart_plan(), horizon);

  ASSERT_FALSE(pim.recovered.is_never());
  ASSERT_FALSE(hpim.recovered.is_never());
  // PIM-DM's crash wipes the (S,G) entry and the restart re-learns it from
  // a fresh flood; HPIM-DM holds the entry through the outage and restarts
  // without creating a single new one.
  EXPECT_EQ(pim.entries_while_down, 0u);
  EXPECT_GT(hpim.entries_while_down, 0u);
  EXPECT_GT(pim.refloods, 0u);
  EXPECT_EQ(hpim.refloods, 0u);
  EXPECT_LT(hpim.recovered, pim.recovered);
  // Hard state means forwarding resumes with the first post-restart
  // datagrams (CBR period 100 ms, plus one interval of slack).
  EXPECT_LT(hpim.recovered, Time::sec(25) + Time::ms(300));
  EXPECT_TRUE(pim.audits_ok);
  EXPECT_TRUE(hpim.audits_ok);
}

}  // namespace
}  // namespace mip6
